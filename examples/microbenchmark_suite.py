#!/usr/bin/env python3
"""Regenerate the paper's micro-benchmark tables and curves on the simulator.

Produces text renderings of:

* Table 2  — Kepler FFMA throughput vs operand register indices,
* Figure 2 — throughput of FFMA/LDS.X mixes vs the mix ratio,
* Figure 4 — throughput of the 6:1 FFMA/LDS.64 mix vs active threads
             (independent and dependent variants).

Run:  python examples/microbenchmark_suite.py            (several minutes)
      python examples/microbenchmark_suite.py --quick    (coarser sweeps)
"""

from __future__ import annotations

import argparse

from repro.arch import get_gpu_spec
from repro.microbench import figure2_curves, figure4_curves, table2_rows
from repro.microbench.instruction_table import format_table2


def print_figure2(gpu_name: str, quick: bool) -> None:
    gpu = get_gpu_spec(gpu_name)
    ratios = (0, 2, 6, 12, 24) if quick else (0, 1, 2, 4, 6, 8, 12, 16, 24, 32)
    curves = figure2_curves(gpu, ratios=ratios, groups=16 if quick else 32)
    print(f"\nFigure 2 — {gpu.name}: thread-instruction throughput vs FFMA/LDS.X ratio")
    header = "  ratio  " + "".join(f"LDS.{width:<9d}" for width in sorted(curves))
    print(header)
    for index, ratio in enumerate(ratios):
        row = f"  {ratio:5d}  "
        for width in sorted(curves):
            row += f"{curves[width][index].instructions_per_cycle:8.1f}     "
        print(row)


def print_figure4(gpu_name: str, quick: bool) -> None:
    gpu = get_gpu_spec(gpu_name)
    thread_counts = (128, 256, 512, 1024) if quick else None
    curves = figure4_curves(gpu, thread_counts=thread_counts, groups=16 if quick else 32)
    print(f"\nFigure 4 — {gpu.name}: FFMA:LDS.64 = 6:1 throughput vs active threads")
    print("  threads   independent   dependent")
    for independent, dependent in zip(curves["independent"], curves["dependent"]):
        print(
            f"  {int(independent.x):7d}   {independent.instructions_per_cycle:11.1f}"
            f"   {dependent.instructions_per_cycle:9.1f}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="coarser, faster sweeps")
    args = parser.parse_args()

    kepler = get_gpu_spec("gtx680")
    print("Table 2 — Kepler FFMA throughput vs operand register indices")
    rows = table2_rows(kepler, instruction_count=128 if args.quick else 384)
    print(format_table2(rows))

    for gpu_name in ("gtx580", "gtx680"):
        print_figure2(gpu_name, args.quick)
    for gpu_name in ("gtx580", "gtx680"):
        print_figure4(gpu_name, args.quick)


if __name__ == "__main__":
    main()
