#!/usr/bin/env python3
"""Optimize a naive SGEMM kernel with the repro.opt pass pipeline.

Walks the paper's optimization story as an automated pipeline instead of
hand-editing SASS:

1. generate the bank-oblivious (compiler-like) SGEMM kernel;
2. run the pass pipeline — liveness report, bank-conflict-eliminating
   register reallocation (Fig. 8/9), latency-aware list scheduling, Kepler
   control-notation assignment — and show the per-pass report;
3. simulate the naive, hand-allocated and pipeline-optimized kernels on the
   GTX580 and GTX680 models and compare cycle counts;
4. run a small parallel autotune sweep over variants × pass configs.

Run:  python examples/opt_pipeline_demo.py
      python examples/opt_pipeline_demo.py --quick   (skip the sweep)
"""

from __future__ import annotations

import argparse

from repro.arch import fermi_gtx580, kepler_gtx680
from repro.opt import (
    autotune,
    default_candidates,
    format_leaderboard,
    optimize_kernel,
    simulate_one_block,
)
from repro.sgemm import (
    SgemmKernelConfig,
    analyse_ffma_conflicts,
    generate_naive_sgemm_kernel,
    generate_sgemm_kernel,
)


def simulate_cycles(gpu, kernel) -> float:
    """Timing-mode cycle count of one block on one SM."""
    return simulate_one_block(gpu, kernel, max_cycles=5_000_000).cycles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="skip the autotune sweep")
    args = parser.parse_args()

    config = SgemmKernelConfig(m=96, n=96, k=16)
    naive = generate_naive_sgemm_kernel(config)
    hand = generate_sgemm_kernel(config)  # golden Figure 9 allocation

    print("== 1. The naive kernel (pipeline input) ==")
    report = analyse_ffma_conflicts(naive)
    print(
        f"  {report.ffma_count} FFMAs, {report.two_way} two-way and "
        f"{report.three_way} three-way bank conflicts"
    )

    for gpu in (fermi_gtx580(), kepler_gtx680()):
        print(f"\n== 2. Pass pipeline on {gpu.name} ==")
        result = optimize_kernel(naive, gpu)
        for stats in result.stats:
            print(
                f"  {stats.name:14s} conflicts {stats.ffma_conflicts_before:3d} -> "
                f"{stats.ffma_conflicts_after:3d}   regs {stats.register_count_before:2d} -> "
                f"{stats.register_count_after:2d}   {stats.notes}"
            )
        print("\n== 3. Simulated cycles (one block, one SM) ==")
        for label, kernel in (("naive", naive), ("hand", hand), ("pipeline", result.kernel)):
            print(f"  {label:10s} {simulate_cycles(gpu, kernel):10.0f} cycles")

    if not args.quick:
        print("\n== 4. Autotune sweep (variants x pass configs, parallel) ==")
        outcomes = autotune("gtx680", default_candidates())
        print(format_leaderboard(outcomes))


if __name__ == "__main__":
    main()
