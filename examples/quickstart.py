#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline upper-bound numbers.

Computes the SGEMM performance upper bound for the GTX580 (Fermi) and the
GTX680 (Kepler GK104) from the paper's own measured throughputs, prints the
full Equation 1-9 breakdown, and compares against the published headlines
(82.5 % of peak on Fermi; 54.6 % / 57.6 % on Kepler with LDS.64 / LDS.128).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.arch import get_gpu_spec
from repro.microbench import paper_database
from repro.microbench.paper_data import PAPER_UPPER_BOUNDS
from repro.model import UpperBoundModel
from repro.model.params import (
    FERMI_PAPER_CONFIG,
    KEPLER_LDS64_CONFIG,
    KEPLER_LDS128_CONFIG,
)
from repro.model.report import format_report


def main() -> None:
    database = paper_database()

    fermi = get_gpu_spec("gtx580")
    kepler = get_gpu_spec("gtx680")

    fermi_model = UpperBoundModel(fermi, database, gpu_key="gtx580")
    kepler_model = UpperBoundModel(kepler, database, gpu_key="gtx680")

    breakdowns = [
        fermi_model.analyse(FERMI_PAPER_CONFIG),
        kepler_model.analyse(KEPLER_LDS64_CONFIG),
        kepler_model.analyse(KEPLER_LDS128_CONFIG),
    ]

    print(format_report("SGEMM performance upper bounds (paper-measured throughputs)", breakdowns))

    print("Comparison with the paper's Section 4.5 headlines:")
    expectations = [
        ("GTX580, LDS.64", ("gtx580", 64), breakdowns[0]),
        ("GTX680, LDS.64", ("gtx680", 64), breakdowns[1]),
        ("GTX680, LDS.128", ("gtx680", 128), breakdowns[2]),
    ]
    for label, key, breakdown in expectations:
        published = 100.0 * PAPER_UPPER_BOUNDS[key]
        computed = 100.0 * breakdown.potential_fraction
        print(f"  {label:18s}  paper {published:5.1f}%   reproduced {computed:5.1f}%")

    print()
    print("Achieved performance the paper reports against these bounds:")
    print("  GTX580 assembly kernel:  ~74.2% of peak  (~90% of the 82.5% bound)")
    print("  GTX680 assembly kernel:  ~77.3% of the 57.6% bound (~1300 GFLOPS)")


if __name__ == "__main__":
    main()
