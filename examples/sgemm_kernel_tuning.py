#!/usr/bin/env python3
"""Generate, analyse and validate SASS-level SGEMM kernels (paper Section 5).

Walks through the paper's kernel-engineering story on the simulator:

1. generate the 6-register-blocking SGEMM kernel for the GTX580 and show that
   it spends exactly 63 registers per thread with zero spills (Section 5.2);
2. compare the register-bank-conflict statistics of the naive allocation and
   the bank-conflict-free allocation of Figure 9 (the Figure 8 comparison);
3. run the kernel functionally on the simulator and validate it against
   NumPy;
4. measure the sustained main-loop throughput with the Fermi occupancy
   (two resident 256-thread blocks) and project achieved GFLOPS.

Run:  python examples/sgemm_kernel_tuning.py          (takes a few minutes)
      python examples/sgemm_kernel_tuning.py --quick  (single block, shorter K)
"""

from __future__ import annotations

import argparse

from repro.arch import get_gpu_spec
from repro.microbench import paper_database
from repro.model import UpperBoundModel
from repro.model.params import FERMI_PAPER_CONFIG
from repro.sgemm import (
    SgemmKernelConfig,
    analyse_ffma_conflicts,
    fermi_register_budget,
    generate_sgemm_kernel,
)
from repro.sgemm.conflict_analysis import format_conflict_table
from repro.sgemm.runner import run_sgemm


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="simulate a single block only")
    args = parser.parse_args()

    fermi = get_gpu_spec("gtx580")

    print("== 1. Register budget (Section 5.2) ==")
    budget = fermi_register_budget()
    for item, count in budget.as_dict().items():
        print(f"  {item:24s} {count:3d}")
    print(f"  fits the 63-register ISA limit with no spills: {budget.fits(63)}")

    print("\n== 2. Register-bank conflicts (Figure 8) ==")
    size = 96
    k_extent = 16 if args.quick else 32
    conflict_free = generate_sgemm_kernel(
        SgemmKernelConfig(m=size, n=size, k=k_extent, conflict_free_allocation=True)
    )
    naive = generate_sgemm_kernel(
        SgemmKernelConfig(m=size, n=size, k=k_extent, conflict_free_allocation=False)
    )
    reports = [analyse_ffma_conflicts(naive), analyse_ffma_conflicts(conflict_free)]
    print(format_conflict_table(reports))
    print("  (paper: MAGMA ~30% 2-way; first asm version 68.8%/10.6%; final version ~0%)")

    print("\n== 3. Functional validation against NumPy ==")
    run = run_sgemm(fermi, SgemmKernelConfig(m=size, n=size, k=k_extent), validate=True)
    print(f"  kernel instructions : {run.kernel.instruction_count}")
    print(f"  registers per thread: {run.kernel.register_count}")
    print(f"  max |error| vs NumPy: {run.max_error:.2e}")

    print("\n== 4. Sustained throughput and projected GFLOPS ==")
    blocks = [(0, 0)] if args.quick else [(0, 0), (1, 0)]
    measured = run_sgemm(
        fermi,
        SgemmKernelConfig(m=192, n=192, k=k_extent),
        blocks=blocks,
        validate=False,
    )
    result = measured.result
    gflops = result.gflops(fermi)
    bound = UpperBoundModel(fermi, paper_database(), gpu_key="gtx580").analyse(FERMI_PAPER_CONFIG)
    print(f"  resident blocks simulated : {len(blocks)}")
    print(f"  FFMA throughput per SM    : {result.ffma_per_cycle:.1f} thread instr/cycle")
    print(f"  projected whole-GPU rate  : {gflops:.0f} GFLOPS")
    print(f"  analytic upper bound      : {bound.potential_gflops:.0f} GFLOPS")
    print(f"  fraction of the bound     : {gflops / bound.potential_gflops:.1%}")
    print("  (paper: the hand-written kernel reaches ~90% of the bound on the GTX580)")


if __name__ == "__main__":
    main()
