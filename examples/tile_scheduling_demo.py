#!/usr/bin/env python3
"""Tile-IR walkthrough: schedule a naive loop nest up to hand-kernel speed.

Builds the paper's SGEMM from the textbook triple loop by composing
scheduling primitives (`repro.tile.schedule`), checks each step against the
NumPy oracle, lowers the result to SASS (`repro.tile.lower`), pushes it
through the optimization pipeline, and races it against the hand-written
golden kernel on both machine models.  Ends with the schedule-space
autotuner leaderboard.

Run:  python examples/tile_scheduling_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import fermi_gtx580, kepler_gtx680
from repro.opt import format_leaderboard
from repro.opt.autotune import simulate_one_block
from repro.opt.pipeline import optimize_kernel
from repro.sgemm.config import SgemmKernelConfig
from repro.sgemm.generator import generate_sgemm_kernel
from repro.tile import interpret, library, lower
from repro.tile.autotune import schedule_candidates, autotune_schedules


def main() -> None:
    # 1. The algorithm once, as a naive loop nest.
    naive = library.matmul_proc(96, 96, 16)
    print("=== naive loop nest (first lines)")
    print("\n".join(str(naive).splitlines()[:5]))
    print()

    # 2. The golden schedule: split/bind/stage/unroll, oracle-checked.
    scheduled = library.schedule_sgemm(naive)
    rng = np.random.default_rng(0)
    inputs = {
        "A": rng.uniform(-1, 1, (96, 16)).astype(np.float32),
        "B": rng.uniform(-1, 1, (16, 96)).astype(np.float32),
    }
    oracle = interpret(naive, inputs)["C"]
    assert np.array_equal(interpret(scheduled, inputs)["C"], oracle)
    print("=== golden schedule is oracle-equivalent (bit-exact) ===")
    buffers = ", ".join(
        f"{b.name}[{'x'.join(map(str, b.shape))}]@{b.memory}" for b in scheduled.buffers
    )
    print(f"  staging buffers: {buffers}")
    print()

    # 3. Lower to SASS and race the hand-written golden kernel.
    kernel = lower(scheduled)
    golden = generate_sgemm_kernel(
        SgemmKernelConfig(m=96, n=96, k=16, conflict_free_allocation=True)
    )
    print("=== lowered kernel vs hand golden kernel")
    print(
        f"  registers {kernel.register_count} vs {golden.register_count}   "
        f"instructions {kernel.instruction_count} vs {golden.instruction_count}"
    )
    for name, gpu in (("Fermi ", fermi_gtx580()), ("Kepler", kepler_gtx680())):
        optimized = optimize_kernel(kernel, gpu).kernel
        dsl = simulate_one_block(gpu, optimized).cycles
        hand = simulate_one_block(gpu, golden).cycles
        print(
            f"  {name} cycles: DSL as-lowered {simulate_one_block(gpu, kernel).cycles:7.0f}   "
            f"DSL+pipeline {dsl:7.0f}   hand golden {hand:7.0f}   "
            f"({100 * (dsl / hand - 1):+.1f}%)"
        )
    print()

    # 4. Sweep the schedule space (a small serial slice for demo purposes).
    print("=== schedule sweep on Fermi (staging / pipelining / windowing)")
    candidates = [c for c in schedule_candidates() if c.workload == "tile_sgemm"]
    print(format_leaderboard(autotune_schedules(fermi_gtx580(), candidates, workers=1)))


if __name__ == "__main__":
    main()
