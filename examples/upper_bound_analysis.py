#!/usr/bin/env python3
"""Full methodology walk-through on the simulated GPUs.

Reproduces the paper's workflow end to end without its hardware:

1. micro-benchmark the simulated GTX580 and GTX680 (FFMA/LDS.X mixes at the
   ratios produced by register blocking) and collect the results in a
   PerfDatabase;
2. run the register-blocking analysis (Equations 2-5, Figure 3);
3. feed the measured throughputs into the bound equations (Equations 6-9);
4. sweep the design space and print the best configurations, i.e. the
   parameters an auto-tuner should start from (Section 5.5).

Run:  python examples/upper_bound_analysis.py          (takes a minute or two)
      python examples/upper_bound_analysis.py --quick  (coarser micro-benchmarks)
"""

from __future__ import annotations

import argparse

from repro.arch import get_gpu_spec
from repro.microbench import MicrobenchRunner
from repro.model import DesignSpaceSweep, UpperBoundModel, ffma_percentage, max_blocking_factor
from repro.model.blocking import figure3_series
from repro.model.params import FERMI_PAPER_CONFIG, KEPLER_LDS64_CONFIG
from repro.model.report import format_report


def analyse_gpu(name: str, *, groups: int) -> None:
    gpu = get_gpu_spec(name)
    runner = MicrobenchRunner(gpu)
    print(f"\n=== {gpu.name} ({gpu.chip}) ===")
    print(f"theoretical peak: {gpu.theoretical_peak_gflops:.0f} GFLOPS")

    print("\n-- step 1: micro-benchmark the FFMA/LDS.X mixes on the simulator --")
    database = runner.populate_database(groups=groups)
    for record in database.records():
        key = record.key
        print(
            f"  ratio {key.ffma_per_lds:4.0f}:1  LDS.{key.lds_width_bits:<3d} "
            f"threads {key.active_threads:4d}  ->  {record.instructions_per_cycle:6.1f} "
            "thread instr/cycle"
        )

    print("\n-- step 2: register blocking analysis (Fig 3 / Eq 2-5) --")
    limit = gpu.register_file.max_registers_per_thread
    print(f"  max blocking factor under the {limit}-register limit "
          f"(strict, with prefetch): {max_blocking_factor(limit)}")
    for width in (32, 64, 128):
        print(f"  FFMA share at B_R=6 with LDS.{width}: {ffma_percentage(6, width):.1f}%")

    print("\n-- step 3: upper bound (Eq 6-9) --")
    model = UpperBoundModel(gpu, database, gpu_key=runner.gpu_key)
    config = FERMI_PAPER_CONFIG if "580" in gpu.name else KEPLER_LDS64_CONFIG
    breakdown = model.analyse(config)
    print(format_report("Simulator-measured upper bound", [breakdown]))

    print("-- step 4: design-space sweep (auto-tuning guidance, §5.5) --")
    sweep = DesignSpaceSweep(gpu, database, gpu_key=runner.gpu_key)
    entries = [entry for entry in sweep.run() if entry.feasible][:5]
    for rank, entry in enumerate(entries, start=1):
        cfg = entry.config
        print(
            f"  #{rank}: B_R={cfg.register_blocking}  LDS.{cfg.lds_width_bits:<3d} "
            f"T_B={cfg.threads_per_block:4d}  L={cfg.stride:2d}  ->  "
            f"{entry.potential_gflops:6.0f} GFLOPS upper bound"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use shorter micro-benchmarks")
    args = parser.parse_args()
    groups = 16 if args.quick else 32

    print("Figure 3 series (FFMA percentage vs blocking factor):")
    series = figure3_series(max_blocking=8)
    header = "  B_R: " + "  ".join(f"{b:5d}" for b in range(1, 9))
    print(header)
    for width in (32, 64, 128):
        row = "  ".join(f"{series[width][b]:5.1f}" for b in range(1, 9))
        print(f"  LDS.{width:<4d} {row}")

    for name in ("gtx580", "gtx680"):
        analyse_gpu(name, groups=groups)


if __name__ == "__main__":
    main()
