#!/usr/bin/env python3
"""Workload gallery: every registered kernel, naive vs optimized vs bound.

Walks the workload registry (`repro.kernels`): for each workload it
functionally simulates the naive and the pipeline-optimized kernel on the
Fermi model, validates both against NumPy, reports single-block cycle
counts on Fermi and Kepler, and prints the generic memory-/compute-bound
breakdown that generalises the paper's Eq. 6/8/9.

Run:  python examples/workload_gallery.py
"""

from __future__ import annotations

from repro.arch import fermi_gtx580, kepler_gtx680
from repro.kernels import list_workloads, run_workload, workload_cycles
from repro.model import format_bound


def main() -> None:
    fermi = fermi_gtx580()
    kepler = kepler_gtx680()

    for workload in list_workloads():
        config = workload.default_config()
        print(f"=== {workload.name}: {workload.description}")

        naive_run = run_workload(fermi, workload, config, optimized=False)
        opt_run = run_workload(fermi, workload, config, optimized=True)
        print(
            f"  functional:  naive max|err| {naive_run.max_error:.2e}   "
            f"optimized max|err| {opt_run.max_error:.2e}   "
            f"({naive_run.kernel.name})"
        )

        naive = workload.generate_naive(config)
        for gpu_name, gpu in (("Fermi ", fermi), ("Kepler", kepler)):
            optimized, result = workload.generate_optimized(config, gpu)
            moved = next(
                (s.notes.get("schedule.instructions_moved") for s in result.stats
                 if s.name == "schedule"),
                0,
            )
            print(
                f"  {gpu_name} cycles: naive {workload_cycles(gpu, naive):7.0f}   "
                f"pipeline {workload_cycles(gpu, optimized):7.0f}   "
                f"(scheduler moved {moved} instructions)"
            )

        print("  " + format_bound(workload.bound(config, fermi)).replace("\n", "\n  "))
        print()


if __name__ == "__main__":
    main()
