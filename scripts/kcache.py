#!/usr/bin/env python
"""Inspect and manage the durable kernel cache (``.repro/kcache/``).

The command-line front end of :mod:`repro.kcache`:

* ``list`` — every committed routine key with kind, workload, GPU and size;
* ``show <key>`` — the full meta JSON of one entry (artifact names, kernel
  hashes, recorded metrics, winner schedule, provenance);
* ``stats`` — entry counts and on-disk bytes, grouped by entry kind;
* ``gc --max-bytes N`` — evict oldest entries until the store fits the
  budget, sweeping stale build claims in the same pass;
* ``warm <workload>`` — tune-and-publish one workload's shape into the
  store via :func:`repro.kcache.get_kernel`, so later processes start warm;
* ``doctor`` — checksum-verify every committed entry and report torn
  artifacts, orphan payloads, leftover tmp files, stale build claims and
  poison markers; ``--repair`` removes what it reports.  Exits non-zero
  while the store is unclean, so it doubles as a CI health gate.

Every command takes ``--json`` for machine-readable output.

Usage::

    PYTHONPATH=src python scripts/kcache.py list
    PYTHONPATH=src python scripts/kcache.py stats --json
    PYTHONPATH=src python scripts/kcache.py gc --max-bytes 50000000
    PYTHONPATH=src python scripts/kcache.py warm tile_sgemm --m 193 --n 161 --k 97
    PYTHONPATH=src python scripts/kcache.py doctor --repair
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.kcache import DEFAULT_KCACHE_ROOT, KernelStore


def _cmd_list(store: KernelStore, args: argparse.Namespace) -> int:
    metas = list(store.metas())
    if args.json:
        print(json.dumps(
            [
                {
                    "key": meta.get("key"),
                    "kind": meta.get("kind"),
                    "workload": meta.get("workload"),
                    "gpu": meta.get("gpu"),
                    "bytes": store.entry_bytes(str(meta.get("key"))),
                    "created_at": meta.get("created_at"),
                }
                for meta in metas
            ],
            indent=1, sort_keys=True,
        ))
        return 0
    if not metas:
        print(f"no entries under {store.root}")
        return 0
    for meta in metas:
        key = str(meta.get("key"))
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(float(meta.get("created_at", 0.0)))
        )
        print(f"{meta.get('kind', '-'):6s} {meta.get('workload') or '-':14s} "
              f"{meta.get('gpu') or '-':8s} {store.entry_bytes(key):>9d}B  "
              f"{stamp}  {key}")
    return 0


def _cmd_show(store: KernelStore, args: argparse.Namespace) -> int:
    meta = store.load_meta(args.key)
    if meta is None:
        print(f"no entry for key {args.key!r}", file=sys.stderr)
        return 1
    print(json.dumps(meta, indent=1, sort_keys=True))
    return 0


def _cmd_stats(store: KernelStore, args: argparse.Namespace) -> int:
    stats = store.stats()
    if args.json:
        print(json.dumps(
            {
                "root": str(store.root),
                "entries": stats.entries,
                "total_bytes": stats.total_bytes,
                "by_kind": stats.by_kind,
                "corrupt_discarded": stats.corrupt_discarded,
            },
            indent=1, sort_keys=True,
        ))
        return 0
    print(f"{stats.entries} entr{'y' if stats.entries == 1 else 'ies'}, "
          f"{stats.total_bytes} bytes under {store.root}")
    for kind, count in stats.by_kind.items():
        print(f"  {kind:8s} {count}")
    if stats.corrupt_discarded:
        print(f"  ({stats.corrupt_discarded} corrupt entr"
              f"{'y' if stats.corrupt_discarded == 1 else 'ies'} detected)")
    return 0


def _cmd_gc(store: KernelStore, args: argparse.Namespace) -> int:
    report = store.gc(args.max_bytes, stale_lock_s=args.stale_lock_s)
    if args.json:
        print(json.dumps(
            {
                "evicted": list(report.evicted),
                "freed_bytes": report.freed_bytes,
                "kept_bytes": report.kept_bytes,
                "stale_locks_removed": report.stale_locks_removed,
            },
            indent=1, sort_keys=True,
        ))
        return 0
    print(f"evicted {len(report.evicted)} entr"
          f"{'y' if len(report.evicted) == 1 else 'ies'} "
          f"({report.freed_bytes} bytes), kept {report.kept_bytes} bytes "
          f"<= budget {args.max_bytes}")
    if report.stale_locks_removed:
        print(f"swept {report.stale_locks_removed} stale build claim"
              f"{'' if report.stale_locks_removed == 1 else 's'}")
    return 0


def _warm_config(workload_name: str, args: argparse.Namespace):
    from dataclasses import replace

    from repro.kernels.registry import get_workload

    config = get_workload(workload_name).default_config()
    overrides = {
        dim: getattr(args, dim)
        for dim in ("m", "n", "k")
        if getattr(args, dim, None) is not None and hasattr(config, dim)
    }
    return replace(config, **overrides) if overrides else config


def _cmd_warm(store: KernelStore, args: argparse.Namespace) -> int:
    from repro.kcache import get_kernel

    config = _warm_config(args.workload, args)
    reply = get_kernel(
        args.workload, config, args.gpu,
        tune=args.tune, store=store, workers=args.workers,
    )
    if args.json:
        print(json.dumps(
            {
                "key": reply.key,
                "source": reply.source,
                "cycles": reply.cycles,
                "build_s": reply.build_s,
                "lookup_s": reply.lookup_s,
            },
            indent=1, sort_keys=True,
        ))
        return 0
    cycles = f"{reply.cycles:.0f} cycles" if reply.cycles is not None else "unmeasured"
    print(f"{reply.source}: {reply.key} ({cycles}, "
          f"build {reply.build_s:.2f}s, lookup {reply.lookup_s * 1e3:.1f}ms)")
    return 0


def _cmd_doctor(store: KernelStore, args: argparse.Namespace) -> int:
    report = store.doctor(repair=args.repair, stale_after=args.stale_lock_s)
    if args.json:
        print(json.dumps(report.as_dict(), indent=1, sort_keys=True))
        return 0 if report.clean else 1
    verified = len(report.ok)
    print(f"{verified} entr{'y' if verified == 1 else 'ies'} verified clean "
          f"under {store.root}")
    for key, reason in sorted(report.torn.items()):
        print(f"  torn: {key}: {reason}")
    for key in report.repaired:
        print(f"  repaired (removed): {key}")
    for payload in report.orphan_payloads:
        print(f"  orphan payload: {payload}")
    if report.tmp_files:
        print(f"  {report.tmp_files} leftover tmp file"
              f"{'' if report.tmp_files == 1 else 's'}")
    if report.tmp_files_removed:
        print(f"  {report.tmp_files_removed} leftover tmp file"
              f"{'' if report.tmp_files_removed == 1 else 's'} removed")
    if report.stale_claims:
        print(f"  {report.stale_claims} stale build claim"
              f"{'' if report.stale_claims == 1 else 's'}")
    if report.live_claims:
        print(f"  {report.live_claims} live build claim"
              f"{'' if report.live_claims == 1 else 's'} (left alone)")
    for key in report.poisoned:
        print(f"  poisoned: {key}")
    if report.expired_poison:
        print(f"  {report.expired_poison} expired poison marker"
              f"{'' if report.expired_poison == 1 else 's'} cleared")
    if report.clean:
        print("store is clean")
        return 0
    if args.repair:
        print("store repaired; damaged entries will rebuild on next request")
        return 0
    print("store is UNCLEAN (re-run with --repair to fix)", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", type=str, default=DEFAULT_KCACHE_ROOT,
                        help=f"store directory (default: {DEFAULT_KCACHE_ROOT})")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list committed entries")

    show = commands.add_parser("show", help="print one entry's meta as JSON")
    show.add_argument("key")

    commands.add_parser("stats", help="entry counts and bytes by kind")

    gc = commands.add_parser(
        "gc", help="evict oldest entries until the store fits a byte budget"
    )
    gc.add_argument("--max-bytes", type=int, required=True)
    gc.add_argument("--stale-lock-s", type=float, default=300.0,
                    help="sweep build claims older than this (default: 300)")

    warm = commands.add_parser(
        "warm", help="build-and-publish one workload request into the store"
    )
    warm.add_argument("workload", help="registry name, e.g. tile_sgemm")
    warm.add_argument("--gpu", default="gtx580")
    warm.add_argument("--m", type=int, default=None)
    warm.add_argument("--n", type=int, default=None)
    warm.add_argument("--k", type=int, default=None)
    warm.add_argument("--tune", action="store_true",
                      help="run the warm-started generative sweep on a miss")
    warm.add_argument("--workers", type=int, default=1)

    doctor = commands.add_parser(
        "doctor", help="verify every entry; report (or repair) damage"
    )
    doctor.add_argument("--repair", action="store_true",
                        help="discard torn entries, sweep orphans/tmp/stale claims")
    doctor.add_argument("--stale-lock-s", type=float, default=300.0,
                        help="claims older than this count as stale (default: 300)")

    args = parser.parse_args(argv)
    store = KernelStore(args.root)
    handler = {
        "list": _cmd_list,
        "show": _cmd_show,
        "stats": _cmd_stats,
        "gc": _cmd_gc,
        "warm": _cmd_warm,
        "doctor": _cmd_doctor,
    }[args.command]
    return handler(store, args)


if __name__ == "__main__":
    raise SystemExit(main())
