#!/usr/bin/env python
"""Profile a registry workload: per-provenance cycles, stalls and bound gap.

Functionally simulates the whole grid of one workload on each requested
machine model with per-instruction counters enabled, rolls the counters up
by tile-IR provenance tag, and joins the result against the workload's
analytic upper bound (Eq. 6/8/9) — the achieved-vs-bound gap decomposed into
issue slots and per-reason stall cycles.

Usage::

    PYTHONPATH=src python scripts/profile_kernel.py tile_sgemm
    PYTHONPATH=src python scripts/profile_kernel.py tile_sgemm --gpu gtx580 \
        --m 193 --n 161 --k 97 --json profile.json --trace profile.trace.json

``--json`` writes the full machine-readable profile; ``--trace`` writes a
Chrome trace-event file (load it in Perfetto) covering schedule application,
lowering and the optimization passes of the profiled build.
``--check-attribution`` exits non-zero unless every profile attributes at
least the given fraction of simulated cycles — the CI smoke gate.
``--ledger`` appends one ``kind="profile"`` record per profiled GPU to the
run ledger (``--ledger-root``, default ``.repro/ledger``) — the rollup and
gap-attribution headline figures, diffable across runs with
``scripts/ledger.py diff``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.arch.specs import get_gpu_spec
from repro.kernels.registry import get_workload, workload_names
from repro.opt.rewrite import kernel_hash
from repro.prof import format_profile, profile_workload, tracing
from repro.telemetry.ledger import (
    DEFAULT_LEDGER_ROOT,
    RunLedger,
    config_digest,
    install_ledger,
    normalize_gpu,
    record_run,
)

DEFAULT_GPUS = ("gtx580", "gtx680")


def _ledger_profile(profile, workload: str, config, optimized: bool) -> None:
    """Append one profile record: cycles, stall totals and the bound gap."""
    gpu_key = normalize_gpu(profile.gpu_name)
    variant = "opt" if optimized else "naive"
    metrics: dict[str, object] = {
        "cycles": profile.result.cycles,
        "warp_instructions": profile.result.warp_instructions,
        "flops": profile.result.flops,
        "attributed_fraction": profile.rollup.attributed_fraction,
        "stall_cycles": profile.rollup.stall_cycle_totals,
    }
    if profile.gap is not None:
        metrics["gap_cycles"] = profile.gap.gap_cycles
        metrics["gap_fraction"] = profile.gap.gap_fraction
        metrics["bound_efficiency"] = profile.gap.bound_efficiency
        metrics["gap_terms"] = dict(profile.gap.gap_terms)
    record_run(
        "profile",
        f"profile:{workload}:{config_digest(config)}:{gpu_key}:{variant}",
        workload=workload,
        gpu=gpu_key,
        kernel_hash=kernel_hash(profile.kernel),
        config=config,
        metrics=metrics,
    )


def _build_config(workload_name: str, args: argparse.Namespace):
    """The workload's default config with any --m/--n/--k overrides applied."""
    config = get_workload(workload_name).default_config()
    overrides = {
        name: getattr(args, name)
        for name in ("m", "n", "k")
        if getattr(args, name) is not None and hasattr(config, name)
    }
    return replace(config, **overrides) if overrides else config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("workload", nargs="?", default="tile_sgemm",
                        help="registry workload name (default: tile_sgemm)")
    parser.add_argument("--list", action="store_true",
                        help="list profilable workloads and exit")
    parser.add_argument("--gpu", action="append", default=None,
                        help="GPU name (repeatable; default: gtx580 and gtx680)")
    parser.add_argument("--m", type=int, default=None, help="problem-size override")
    parser.add_argument("--n", type=int, default=None, help="problem-size override")
    parser.add_argument("--k", type=int, default=None, help="problem-size override")
    parser.add_argument("--naive", action="store_true",
                        help="profile the naive kernel instead of the opt pipeline's")
    parser.add_argument("--depth", type=int, default=None,
                        help="truncate provenance tags to this many path segments")
    parser.add_argument("--max-cycles", type=int, default=50_000_000,
                        help="simulation cycle cap per run")
    parser.add_argument("--json", type=str, default=None,
                        help="write the machine-readable profiles to this file")
    parser.add_argument("--trace", type=str, default=None,
                        help="write a Chrome trace-event JSON to this file")
    parser.add_argument("--check-attribution", type=float, default=None,
                        metavar="FRACTION",
                        help="fail unless every profile attributes at least this "
                             "fraction of simulated cycles (e.g. 0.95)")
    parser.add_argument("--ledger", action="store_true",
                        help="append one run-ledger record per profiled GPU")
    parser.add_argument("--ledger-root", type=str, default=DEFAULT_LEDGER_ROOT,
                        help=f"ledger directory (default: {DEFAULT_LEDGER_ROOT})")
    args = parser.parse_args(argv)

    if args.list:
        for name in workload_names():
            print(name)
        return 0

    gpus = args.gpu if args.gpu else list(DEFAULT_GPUS)
    config = _build_config(args.workload, args)

    profiles = []
    with tracing() as tracer:
        for gpu_name in gpus:
            profiles.append(
                profile_workload(
                    get_gpu_spec(gpu_name),
                    args.workload,
                    config,
                    optimized=not args.naive,
                    max_cycles=args.max_cycles,
                    depth=args.depth,
                )
            )
    if args.trace:
        tracer.dump(args.trace)

    if args.ledger:
        install_ledger(RunLedger(args.ledger_root))
        try:
            for profile in profiles:
                _ledger_profile(profile, args.workload, config, not args.naive)
        finally:
            install_ledger(None)
        print(f"ledger: appended {len(profiles)} profile record"
              f"{'s' if len(profiles) != 1 else ''} under {args.ledger_root}")

    for index, profile in enumerate(profiles):
        if index:
            print()
        print(format_profile(profile))

    if args.json:
        payload = {"workload": args.workload, "profiles": [p.as_dict() for p in profiles]}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)

    if args.check_attribution is not None:
        for profile in profiles:
            fraction = profile.rollup.attributed_fraction
            if fraction < args.check_attribution:
                print(
                    f"attribution check failed on {profile.gpu_name}: "
                    f"{fraction:.4f} < {args.check_attribution}",
                    file=sys.stderr,
                )
                return 1
        print(f"attribution >= {args.check_attribution:.0%} on "
              f"{len(profiles)} profile{'s' if len(profiles) != 1 else ''}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
