#!/usr/bin/env python
"""Aggregate every ``benchmarks/BENCH_*.json`` into ``BENCH_summary.json``.

Each benchmark suite records its own metrics file (``BENCH_opt.json``,
``BENCH_kernels.json``, ``BENCH_tile.json``, ...).  This script collects all
of them into one flat **cycle ladder** — every simulated-cycle figure keyed
by ``file:metric:path`` — so the per-PR performance trajectory is one
sorted, diffable document: a regression anywhere in any suite shows up as a
single-line change in ``BENCH_summary.json``.

Usage::

    python scripts/bench_trajectory.py           # (re)write BENCH_summary.json
    python scripts/bench_trajectory.py --check   # CI: fail on regression/staleness

The summary is deterministic over the committed BENCH files, so ``--check``
doubles as a staleness test in CI — and as a **perf regression gate**: any
``cycle_ladder`` entry whose freshly computed value exceeds the checked-in
one by more than ``REGRESSION_TOLERANCE`` fails the check with a per-entry
report, before the staleness diff is even considered.

Suites may record a per-reason ``stalls`` breakdown next to a cycle figure
(``benchmarks/bench_tile.py`` does, from the simulator's StallBreakdown);
those are collected into a parallel ``stall_ladder``, and a regressed cycle
entry's report names the sibling stall reason that grew the most — the
gate says not just *that* a kernel got slower but *why*.

Simulator wall-clock throughput figures (``benchmarks/bench_sim.py``) are
collected into a ``throughput_ladder`` and gated in the opposite direction:
a fresh record more than the tolerance *below* the baseline fails, flagging
a >2% simulator-throughput regression.

Cache-economics rates recorded from the metrics facade
(``benchmarks/bench_tile.py`` snapshots the schedule-memo and simulation
cache hit rates of its sweep via :mod:`repro.telemetry`;
``benchmarks/bench_kcache.py`` records the persistent kernel cache's
warm-hit speedup and warm-start simulation savings) are collected into
a ``rate_ladder`` — tracked for trajectory, not gated: a hit rate moves
whenever the sweep space changes shape, and a wall-clock speedup moves
with the machine, which is not by itself a regression.  Schema 4 added
the rate ladder; schema 5 widened it to ``*_speedup`` figures.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
SUMMARY_NAME = "BENCH_summary.json"

#: Leaf keys that denote a simulated-cycle figure in any suite's blob.
CYCLE_KEYS = frozenset({
    "cycles",
    "cycles_naive",
    "cycles_pipeline",
    "cycles_hand_allocated",
    "naive_schedule",
    "golden_schedule",
    "golden_schedule_opt",
    "double_buffer_opt",
    "hand_golden",
})

#: A ladder entry may grow by at most this fraction before --check fails.
REGRESSION_TOLERANCE = 0.02

#: Key under which suites record a per-reason stall breakdown dict.
STALL_KEY = "stalls"

#: Leaf keys that denote a simulator-throughput figure (higher is better).
#: These come from wall-clock measurements (``benchmarks/bench_sim.py``
#: records best-of-N), so unlike the cycle ladders they are only comparable
#: when re-recorded on comparable hardware; the --check gate flags a fresh
#: value more than ``REGRESSION_TOLERANCE`` *below* the baseline record.
THROUGHPUT_KEYS = frozenset({
    "candidates_per_s",
    "warp_instructions_per_s",
})

#: Leaf-key suffixes of cache-economics figures (``hit_rate``,
#: ``sim_cache_hit_rate``, ``warm_speedup``, ``simulations_saved_rate``,
#: ...) recorded from the metrics facade or the kernel-cache benchmark.
#: Collected into the rate ladder for trajectory but not regression-gated.
RATE_SUFFIXES = ("_rate", "speedup")


def _collect_cycles(blob: object, path: tuple[str, ...], ladder: dict[str, float],
                    stalls: dict[str, float],
                    throughput: dict[str, float],
                    rates: dict[str, float]) -> None:
    """Walk one metrics blob, recording cycle, stall, throughput and rate leaves."""
    if isinstance(blob, dict):
        for key in sorted(blob):
            value = blob[key]
            if key in CYCLE_KEYS and isinstance(value, (int, float)):
                ladder[":".join(path + (key,))] = float(value)
            elif key in THROUGHPUT_KEYS and isinstance(value, (int, float)):
                throughput[":".join(path + (key,))] = float(value)
            elif (isinstance(value, (int, float))
                  and any(key.endswith(suffix) for suffix in RATE_SUFFIXES)):
                rates[":".join(path + (key,))] = float(value)
            elif key == STALL_KEY and isinstance(value, dict):
                for reason in sorted(value):
                    if isinstance(value[reason], (int, float)):
                        stalls[":".join(path + (key, reason))] = float(value[reason])
            else:
                _collect_cycles(value, path + (key,), ladder, stalls,
                                throughput, rates)


def build_summary(bench_dir: Path = BENCH_DIR) -> dict[str, object]:
    """The aggregate of every BENCH_*.json currently on disk."""
    ladder: dict[str, float] = {}
    stalls: dict[str, float] = {}
    throughput: dict[str, float] = {}
    rates: dict[str, float] = {}
    sources: list[str] = []
    for bench_file in sorted(bench_dir.glob("BENCH_*.json")):
        if bench_file.name == SUMMARY_NAME:
            continue
        with open(bench_file, encoding="utf-8") as handle:
            data = json.load(handle)
        sources.append(bench_file.name)
        _collect_cycles(data.get("metrics", data), (bench_file.stem,),
                        ladder, stalls, throughput, rates)
    return {
        "schema": 5,
        "sources": sources,
        "cycle_ladder": dict(sorted(ladder.items())),
        "stall_ladder": dict(sorted(stalls.items())),
        "throughput_ladder": dict(sorted(throughput.items())),
        "rate_ladder": dict(sorted(rates.items())),
    }


def _blame_stall(key: str, baseline: dict[str, float],
                 fresh: dict[str, float]) -> tuple[str, float, float] | None:
    """The stall reason that grew the most next to a regressed cycle entry.

    Cycle entries and stall breakdowns are recorded as siblings
    (``...:fermi:golden_schedule_opt`` next to ``...:fermi:stalls:<reason>``),
    so the regressed key's prefix locates its breakdown in both summaries.
    """
    prefix = key.rsplit(":", 1)[0] + f":{STALL_KEY}:"
    growths = [
        (fresh[entry] - baseline[entry], entry[len(prefix):],
         baseline[entry], fresh[entry])
        for entry in fresh
        if entry.startswith(prefix) and entry in baseline
    ]
    growths = [g for g in growths if g[0] > 0]
    if not growths:
        return None
    _, reason, was, now = max(growths)
    return reason, was, now


def render(summary: dict[str, object]) -> str:
    return json.dumps(summary, indent=1, sort_keys=True) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed summary matches the BENCH files (CI)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="summary file to gate regressions against (e.g. the merge-base "
             "BENCH_summary.json in CI); defaults to the checked-in summary, "
             "which only catches regressions recorded but not yet regenerated",
    )
    args = parser.parse_args(argv)

    summary_path = BENCH_DIR / SUMMARY_NAME
    summary = build_summary(BENCH_DIR)
    text = render(summary)
    entries = len(summary["cycle_ladder"])
    if args.check:
        if not summary_path.exists():
            print(f"{summary_path} is missing; run scripts/bench_trajectory.py",
                  file=sys.stderr)
            return 1
        baseline_path = args.baseline if args.baseline is not None else summary_path
        if not baseline_path.exists():
            print(f"baseline {baseline_path} is missing", file=sys.stderr)
            return 1
        baseline_summary = json.loads(baseline_path.read_text(encoding="utf-8"))
        baseline = baseline_summary.get("cycle_ladder", {})
        baseline_stalls = baseline_summary.get("stall_ladder", {})
        baseline_throughput = baseline_summary.get("throughput_ladder", {})
        fresh = summary["cycle_ladder"]
        fresh_stalls = summary["stall_ladder"]
        fresh_throughput = summary["throughput_ladder"]
        regressions = [
            (key, baseline[key], fresh[key])
            for key in sorted(set(baseline) & set(fresh))
            if fresh[key] > baseline[key] * (1.0 + REGRESSION_TOLERANCE)
        ]
        # Throughput regresses downwards: a fresh record more than the
        # tolerance *below* the baseline fails (simulator got slower).
        throughput_regressions = [
            (key, baseline_throughput[key], fresh_throughput[key])
            for key in sorted(set(baseline_throughput) & set(fresh_throughput))
            if fresh_throughput[key]
            < baseline_throughput[key] * (1.0 - REGRESSION_TOLERANCE)
        ]
        if regressions:
            print(
                f"{len(regressions)} cycle-ladder entr"
                f"{'y' if len(regressions) == 1 else 'ies'} regressed more than "
                f"{REGRESSION_TOLERANCE:.0%} against {baseline_path.name}:",
                file=sys.stderr,
            )
            for key, was, now in regressions:
                line = (f"  {key}: {was:.0f} -> {now:.0f} "
                        f"({100 * (now / was - 1):+.1f}%)")
                blame = _blame_stall(key, baseline_stalls, fresh_stalls)
                if blame is not None:
                    reason, stall_was, stall_now = blame
                    line += (f" — stall:{reason} grew "
                             f"{stall_was:.0f} -> {stall_now:.0f}")
                print(line, file=sys.stderr)
            return 1
        if throughput_regressions:
            print(
                f"{len(throughput_regressions)} throughput-ladder entr"
                f"{'y' if len(throughput_regressions) == 1 else 'ies'} dropped "
                f"more than {REGRESSION_TOLERANCE:.0%} against "
                f"{baseline_path.name}:",
                file=sys.stderr,
            )
            for key, was, now in throughput_regressions:
                print(f"  {key}: {was:.1f} -> {now:.1f} "
                      f"({100 * (now / was - 1):+.1f}%)", file=sys.stderr)
            return 1
        if summary_path.read_text(encoding="utf-8") != text:
            print(f"{summary_path} is stale; run scripts/bench_trajectory.py",
                  file=sys.stderr)
            return 1
        print(f"{summary_path.name} is up to date ({entries} ladder entries, "
              f"no >{REGRESSION_TOLERANCE:.0%} regressions)")
        return 0
    summary_path.write_text(text, encoding="utf-8")
    print(f"wrote {summary_path} ({entries} ladder entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
