#!/usr/bin/env python
"""Inspect and diff the durable run ledger (``.repro/ledger/``).

The command-line front end of :mod:`repro.telemetry.ledger`:

* ``list`` — every record key with its record count and latest timestamp;
* ``show`` — the full JSON of a key's records (latest first);
* ``summary`` — one line per key: kind, workload, GPU, latest cycles/DRAM;
* ``diff`` — compare the latest two records of a key on the gated fields
  (cycles, DRAM bytes) and exit non-zero on a regression beyond the same
  >2% tolerance ``scripts/bench_trajectory.py --check`` enforces;
* ``inject`` — append a synthetic re-stamped copy of a key's latest record
  with scaled metrics (``--scale cycles=1.05``), the regression the CI
  ledger smoke expects ``diff`` to catch.

Usage::

    PYTHONPATH=src python scripts/ledger.py list
    PYTHONPATH=src python scripts/ledger.py diff "profile:tile_sgemm:..."
    PYTHONPATH=src python scripts/ledger.py inject KEY --scale cycles=1.05
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.telemetry.ledger import (
    DEFAULT_LEDGER_ROOT,
    GATED_FIELDS,
    REGRESSION_TOLERANCE,
    RunLedger,
    diff_records,
    scaled_copy,
)


def _cmd_list(ledger: RunLedger, args: argparse.Namespace) -> int:
    keys = ledger.keys()
    if not keys:
        print(f"no records under {ledger.root}")
        return 0
    for key in keys:
        records = ledger.records(key=key)
        newest = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(records[-1].timestamp)
        )
        print(f"{key}  ({len(records)} record{'s' if len(records) != 1 else ''}, "
              f"latest {newest})")
    return 0


def _cmd_show(ledger: RunLedger, args: argparse.Namespace) -> int:
    records = ledger.latest(args.key, count=args.count)
    if not records:
        print(f"no records for key {args.key!r}", file=sys.stderr)
        return 1
    for record in reversed(records):  # latest first
        print(json.dumps(record.as_dict(), indent=1, sort_keys=True))
    return 0


def _cmd_summary(ledger: RunLedger, args: argparse.Namespace) -> int:
    keys = ledger.keys()
    if not keys:
        print(f"no records under {ledger.root}")
        return 0
    for key in keys:
        record = ledger.latest(key)[-1]
        fields = []
        for name in ("cycles", "dram_bytes", "candidates", "gap_fraction"):
            value = record.metric(name)
            if value is not None:
                fields.append(f"{name}={value:g}")
        print(f"{record.kind:8s} {record.workload or '-':12s} "
              f"{record.gpu or '-':8s} {' '.join(fields)}  [{key}]")
    return 0


def _cmd_diff(ledger: RunLedger, args: argparse.Namespace) -> int:
    records = ledger.latest(args.key, count=2)
    if len(records) < 2:
        print(f"need two records of key {args.key!r} to diff "
              f"(have {len(records)})", file=sys.stderr)
        return 2
    baseline, current = records
    diff = diff_records(baseline, current, tolerance=args.tolerance)
    for delta in diff.deltas:
        marker = "REGRESSION" if delta.field in diff.regressions else "ok"
        print(f"{delta.field:16s} {delta.baseline:g} -> {delta.current:g} "
              f"({delta.relative:+.2%})  {marker}")
    if not diff.deltas:
        print(f"no gated fields ({', '.join(GATED_FIELDS)}) present in both records")
    if diff.ok:
        print(f"diff clean within {args.tolerance:.0%} on {args.key}")
        return 0
    print(f"regressions beyond {args.tolerance:.0%}: "
          f"{', '.join(diff.regressions)}", file=sys.stderr)
    return 1


def _parse_scale(spec: str) -> tuple[str, float]:
    name, _, factor = spec.partition("=")
    if not name or not factor:
        raise argparse.ArgumentTypeError(
            f"expected FIELD=FACTOR (e.g. cycles=1.05), got {spec!r}"
        )
    return name, float(factor)


def _cmd_inject(ledger: RunLedger, args: argparse.Namespace) -> int:
    records = ledger.latest(args.key)
    if not records:
        print(f"no records for key {args.key!r}", file=sys.stderr)
        return 1
    scales = dict(args.scale)
    record = ledger.append(scaled_copy(records[-1], scales))
    scaled = ", ".join(f"{n}×{f:g}" for n, f in scales.items())
    print(f"appended synthetic record ({scaled}) for {record.key}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", type=str, default=DEFAULT_LEDGER_ROOT,
                        help=f"ledger directory (default: {DEFAULT_LEDGER_ROOT})")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list record keys with counts")

    show = commands.add_parser("show", help="print a key's records as JSON")
    show.add_argument("key")
    show.add_argument("--count", type=int, default=1,
                      help="how many latest records to print (default: 1)")

    commands.add_parser("summary", help="one line per key: latest headline figures")

    diff = commands.add_parser(
        "diff", help="compare a key's latest two records; exit 1 on regression"
    )
    diff.add_argument("key")
    diff.add_argument("--tolerance", type=float, default=REGRESSION_TOLERANCE,
                      help=f"relative regression tolerance "
                           f"(default: {REGRESSION_TOLERANCE})")

    inject = commands.add_parser(
        "inject", help="append a scaled synthetic copy of a key's latest record"
    )
    inject.add_argument("key")
    inject.add_argument("--scale", type=_parse_scale, action="append", required=True,
                        metavar="FIELD=FACTOR",
                        help="metric scale, repeatable (e.g. --scale cycles=1.05)")

    args = parser.parse_args(argv)
    ledger = RunLedger(args.root)
    handler = {
        "list": _cmd_list,
        "show": _cmd_show,
        "summary": _cmd_summary,
        "diff": _cmd_diff,
        "inject": _cmd_inject,
    }[args.command]
    return handler(ledger, args)


if __name__ == "__main__":
    raise SystemExit(main())
