"""Table 1: architecture evolution GT200 → Fermi → Kepler."""

from __future__ import annotations

from repro.arch import architecture_evolution_table

from conftest import print_series

#: The theoretical peaks Table 1 reports, for the side-by-side comparison.
PAPER_PEAKS = {"GT200": 933.0, "GF110": 1581.0, "GK104": 3090.0}


def test_table1_architecture_evolution(benchmark):
    """Regenerate Table 1 and check the headline quantities against the paper."""
    rows = benchmark(architecture_evolution_table)

    lines = []
    for row in rows:
        lines.append(
            f"{row['gpu']:18s} core {row['core_clock_mhz']:6.0f} MHz  shader "
            f"{row['shader_clock_mhz']:6.0f} MHz  SPs/SM {row['sp_per_sm']:3d}  "
            f"regs/SM {row['registers_per_sm']:6d}  peak {row['theoretical_peak_gflops']:7.1f} GFLOPS "
            f"(paper {PAPER_PEAKS[row['chip']]:.0f})"
        )
    print_series("Table 1 — Architecture Evolution", lines)

    for row in rows:
        published = PAPER_PEAKS[row["chip"]]
        assert abs(row["theoretical_peak_gflops"] - published) / published < 0.01
