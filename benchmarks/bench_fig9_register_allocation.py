"""Figure 9: the bank-conflict-free register allocation for the 6x6 C tile."""

from __future__ import annotations

from repro.arch.register_file import RegisterBank
from repro.sgemm import allocate_conflict_free, allocate_naive

from conftest import print_series


def test_fig9_conflict_free_register_allocation(benchmark):
    """Regenerate the Figure 9 allocation and verify its structural properties."""
    allocation = benchmark(allocate_conflict_free, 6, 2)

    lines = ["A column: " + " ".join(f"{r.name}({r.bank.value})" for r in allocation.a_column)]
    lines.append("B row:    " + " ".join(f"{r.name}({r.bank.value})" for r in allocation.b_row))
    for i, row in enumerate(allocation.accumulators):
        lines.append(f"C row {i}:  " + " ".join(f"{r.name:3s}" for r in row))
    two_way, three_way = allocation.conflict_count()
    lines.append(f"conflicts: 2-way={two_way}, 3-way={three_way} (paper: 0 after optimisation)")
    naive_two, naive_three = allocate_naive(6, 2).conflict_count()
    lines.append(f"naive allocation for comparison: 2-way={naive_two}, 3-way={naive_three}")
    print_series("Figure 9 — register allocation", lines)

    # Structural checks from the figure: A on the even0/odd0 banks, B on
    # even1/odd1, 9 accumulators per bank, zero conflicts over the 36 FFMAs.
    assert {r.bank for r in allocation.a_column} <= {RegisterBank.EVEN0, RegisterBank.ODD0}
    assert {r.bank for r in allocation.b_row} <= {RegisterBank.EVEN1, RegisterBank.ODD1}
    per_bank = {}
    for row in allocation.accumulators:
        for register in row:
            per_bank[register.bank] = per_bank.get(register.bank, 0) + 1
    assert sorted(per_bank.values()) == [9, 9, 9, 9]
    assert allocation.is_conflict_free()
    assert naive_two + naive_three > 0
