"""Figure 4: FFMA:LDS.64 = 6:1 throughput vs active threads per SM."""

from __future__ import annotations

from repro.microbench import figure4_curves

from conftest import print_series

FERMI_THREADS = (64, 128, 256, 512, 1024)
KEPLER_THREADS = (128, 256, 512, 1024, 2048)


def _render(curves) -> list[str]:
    lines = ["threads   independent   dependent"]
    for independent, dependent in zip(curves["independent"], curves["dependent"]):
        lines.append(
            f"{int(independent.x):7d}   {independent.instructions_per_cycle:11.1f}"
            f"   {dependent.instructions_per_cycle:9.1f}"
        )
    return lines


def test_fig4_fermi_active_thread_sensitivity(benchmark, fermi):
    """Fermi: 512 active threads already sit close to the best throughput."""
    curves = benchmark.pedantic(
        lambda: figure4_curves(fermi, thread_counts=FERMI_THREADS, groups=24),
        rounds=1,
        iterations=1,
    )
    print_series("Figure 4 (GTX580) — 6:1 mix vs active threads", _render(curves))

    dependent = {int(p.x): p.instructions_per_cycle for p in curves["dependent"]}
    assert dependent[512] > 0.9 * dependent[1024]
    assert dependent[128] < dependent[512]


def test_fig4_kepler_active_thread_sensitivity(benchmark, kepler):
    """Kepler: the dependent mix keeps improving up to ~1024+ active threads."""
    curves = benchmark.pedantic(
        lambda: figure4_curves(kepler, thread_counts=KEPLER_THREADS, groups=24),
        rounds=1,
        iterations=1,
    )
    print_series("Figure 4 (GTX680) — 6:1 mix vs active threads", _render(curves))

    dependent = {int(p.x): p.instructions_per_cycle for p in curves["dependent"]}
    independent = {int(p.x): p.instructions_per_cycle for p in curves["independent"]}
    # Below ~1024 threads the dependent stream is well short of saturation...
    assert dependent[256] < 0.8 * dependent[2048]
    # ...and more sensitive to dependences than the independent stream.
    assert dependent[256] <= independent[256] + 1e-6
    assert dependent[1024] > dependent[256]
