"""Workload-registry sweep: naive vs pipeline cycles and bounds per kernel.

Not a paper figure — this benchmark tracks the multi-workload framework
(`repro.kernels`): for every registered workload it simulates the naive and
the pipeline-optimized kernel on both machine models, compares against the
generic memory-/compute-bound ceiling, and records everything into
BENCH_kernels.json (written by the conftest session hook) so each
workload's perf trajectory is visible across PRs.
"""

from __future__ import annotations

from repro.kernels import list_workloads, workload_cycles
from repro.model import analyse_workload_bound
from repro.sgemm import analyse_ffma_conflicts

from conftest import print_series, record_kernel_metric


def test_registry_sweep_naive_vs_pipeline(benchmark, fermi, kepler):
    """Every workload: pipeline output no slower than naive on both GPUs."""
    workloads = list_workloads()
    assert len(workloads) >= 4  # sgemm + sgemv + transpose + reduction

    def generate_all():
        generated = {}
        for workload in workloads:
            config = workload.default_config()
            naive = workload.generate_naive(config)
            generated[workload.name] = {
                "config": config,
                "naive": naive,
                "fermi": workload.generate_optimized(config, fermi)[0],
                "kepler": workload.generate_optimized(config, kepler)[0],
            }
        return generated

    generated = benchmark.pedantic(generate_all, rounds=1, iterations=1)

    lines: list[str] = []
    for workload in workloads:
        bundle = generated[workload.name]
        naive = bundle["naive"]
        before = analyse_ffma_conflicts(naive)
        resources = workload.resources(bundle["config"])
        metrics: dict[str, object] = {
            "kernel": naive.name,
            "ffma_count": before.ffma_count,
            "conflicts_before": {
                "two_way": before.two_way,
                "three_way": before.three_way,
            },
            "resources": {
                "flops": resources.flops,
                "dram_bytes": resources.dram_bytes,
                "shared_bytes": resources.shared_bytes,
            },
        }
        for gpu_name, gpu in (("fermi", fermi), ("kepler", kepler)):
            optimized = bundle[gpu_name]
            after = analyse_ffma_conflicts(optimized)
            naive_cycles = workload_cycles(gpu, naive)
            opt_cycles = workload_cycles(gpu, optimized)
            bound = analyse_workload_bound(resources, gpu)
            lines.append(
                f"{workload.name:10s} {gpu_name:7s} cycles: naive {naive_cycles:7.0f}  "
                f"pipeline {opt_cycles:7.0f}   conflicts after: "
                f"{after.two_way + after.three_way}   bound: {bound.limited_by}"
            )
            metrics[gpu_name] = {
                "cycles_naive": naive_cycles,
                "cycles_pipeline": opt_cycles,
                "conflicts_after": {
                    "two_way": after.two_way,
                    "three_way": after.three_way,
                },
                "bound_limited_by": bound.limited_by,
                "bound_potential_gflops": bound.potential_gflops,
                "bound_effective_bandwidth_gbs": bound.effective_bandwidth_gbs,
            }

            assert after.two_way == 0 and after.three_way == 0
            assert opt_cycles <= naive_cycles

        record_kernel_metric(workload.name, metrics)
    print_series("Workload registry — naive vs pipeline", lines)
