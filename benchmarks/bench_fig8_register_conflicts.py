"""Figure 8: FFMA register-bank-conflict percentages of SGEMM binaries."""

from __future__ import annotations

from repro.sgemm import SgemmKernelConfig, SgemmVariant, analyse_ffma_conflicts, generate_sgemm_kernel

from conftest import print_series

#: Paper-reported reference points for the figure (percent of FFMAs).
PAPER_POINTS = {
    "magma_nn": {"two_way": 30.0, "three_way": 1.0},
    "asm_nn_first": {"two_way": 68.8, "three_way": 10.6},
    "asm_nn_optimized": {"two_way": 1.2, "three_way": 0.0},
}


def test_fig8_ffma_register_bank_conflicts(benchmark):
    """Compare naive-allocation kernels against the Figure 9 allocation."""

    def compute():
        reports = {}
        for variant in (SgemmVariant.NN, SgemmVariant.NT, SgemmVariant.TN, SgemmVariant.TT):
            kernel = generate_sgemm_kernel(
                SgemmKernelConfig(
                    m=96, n=96, k=16, variant=variant, conflict_free_allocation=False
                )
            )
            reports[f"naive_{variant.value.lower()}"] = analyse_ffma_conflicts(kernel)
        optimized = generate_sgemm_kernel(
            SgemmKernelConfig(m=96, n=96, k=16, conflict_free_allocation=True)
        )
        reports["conflict_free_nn"] = analyse_ffma_conflicts(optimized)
        return reports

    reports = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = []
    for name, report in reports.items():
        pct = report.as_percentages()
        lines.append(
            f"{name:20s} none {pct['no_conflict']:5.1f}%   2-way {pct['two_way']:5.1f}%   "
            f"3-way {pct['three_way']:5.1f}%"
        )
    lines.append("paper: MAGMA ~30% 2-way / ~1% 3-way; first asm 68.8%/10.6%; optimised ~1.2%/0%")
    print_series("Figure 8 — FFMA register bank conflicts", lines)

    # Shape: every naive-allocation kernel has substantial conflicts; the
    # Figure 9 allocation removes them entirely.
    for name, report in reports.items():
        if name.startswith("naive"):
            assert report.two_way_fraction + report.three_way_fraction > 0.3
        else:
            assert report.two_way == 0
            assert report.three_way == 0
