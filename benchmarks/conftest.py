"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
modules use ``pytest-benchmark`` to time the regeneration and print the
reproduced rows/series next to the paper's published values, so running

    pytest benchmarks/ --benchmark-only -s

produces both the timing table and the experiment data.
"""

from __future__ import annotations

import pytest

from repro.arch import fermi_gtx580, kepler_gtx680
from repro.microbench import paper_database


@pytest.fixture(scope="session")
def fermi():
    """The GTX580 machine description."""
    return fermi_gtx580()


@pytest.fixture(scope="session")
def kepler():
    """The GTX680 machine description."""
    return kepler_gtx680()


@pytest.fixture(scope="session")
def paper_db():
    """The paper-reported throughput database."""
    return paper_database()


def print_series(title: str, rows: list[str]) -> None:
    """Print a titled block of result rows (visible with ``-s``)."""
    print(f"\n=== {title} ===")
    for row in rows:
        print(f"  {row}")
