"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
modules use ``pytest-benchmark`` to time the regeneration and print the
reproduced rows/series next to the paper's published values, so running

    pytest benchmarks/ --benchmark-only -s

produces both the timing table and the experiment data.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.arch import fermi_gtx580, kepler_gtx680
from repro.microbench import paper_database

#: Where the machine-readable optimization metrics land (next to this file).
BENCH_OPT_PATH = Path(__file__).parent / "BENCH_opt.json"

#: Metrics recorded by benchmarks via :func:`record_opt_metric` this session.
_OPT_METRICS: dict[str, object] = {}


def record_opt_metric(name: str, payload: dict[str, object]) -> None:
    """Record one named metric blob for the BENCH_opt.json report.

    Benchmarks call this with before/after conflict counts and simulated
    cycle counts; the session-finish hook writes everything to
    :data:`BENCH_OPT_PATH` so the perf trajectory is tracked across PRs.
    """
    _OPT_METRICS[name] = payload


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write BENCH_opt.json when any optimization metrics were recorded."""
    if not _OPT_METRICS:
        return
    document = {"schema": 1, "metrics": dict(sorted(_OPT_METRICS.items()))}
    BENCH_OPT_PATH.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def fermi():
    """The GTX580 machine description."""
    return fermi_gtx580()


@pytest.fixture(scope="session")
def kepler():
    """The GTX680 machine description."""
    return kepler_gtx680()


@pytest.fixture(scope="session")
def paper_db():
    """The paper-reported throughput database."""
    return paper_database()


def print_series(title: str, rows: list[str]) -> None:
    """Print a titled block of result rows (visible with ``-s``)."""
    print(f"\n=== {title} ===")
    for row in rows:
        print(f"  {row}")
