"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
modules use ``pytest-benchmark`` to time the regeneration and print the
reproduced rows/series next to the paper's published values, so running

    pytest benchmarks/ --benchmark-only -s

produces both the timing table and the experiment data.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.arch import fermi_gtx580, kepler_gtx680
from repro.microbench import paper_database

#: Where the machine-readable optimization metrics land (next to this file).
BENCH_OPT_PATH = Path(__file__).parent / "BENCH_opt.json"

#: Where the per-workload registry sweep metrics land (next to this file).
BENCH_KERNELS_PATH = Path(__file__).parent / "BENCH_kernels.json"

#: Where the tile-IR schedule comparison metrics land (next to this file).
BENCH_TILE_PATH = Path(__file__).parent / "BENCH_tile.json"

#: Where the simulator-throughput metrics land (next to this file).
BENCH_SIM_PATH = Path(__file__).parent / "BENCH_sim.json"

#: Where the kernel-cache economics metrics land (next to this file).
BENCH_KCACHE_PATH = Path(__file__).parent / "BENCH_kcache.json"

#: Metrics recorded this session, keyed by output path.
_REPORTS: dict[Path, dict[str, object]] = {}


def _record(path: Path, name: str, payload: dict[str, object]) -> None:
    _REPORTS.setdefault(path, {})[name] = payload


def record_opt_metric(name: str, payload: dict[str, object]) -> None:
    """Record one named metric blob for the BENCH_opt.json report.

    Benchmarks call this with before/after conflict counts and simulated
    cycle counts; the session-finish hook writes everything to
    :data:`BENCH_OPT_PATH` so the perf trajectory is tracked across PRs.
    """
    _record(BENCH_OPT_PATH, name, payload)


def record_kernel_metric(name: str, payload: dict[str, object]) -> None:
    """Record one per-workload metric blob for the BENCH_kernels.json report."""
    _record(BENCH_KERNELS_PATH, name, payload)


def record_tile_metric(name: str, payload: dict[str, object]) -> None:
    """Record one naive/scheduled/golden comparison blob for BENCH_tile.json."""
    _record(BENCH_TILE_PATH, name, payload)


def record_sim_metric(name: str, payload: dict[str, object]) -> None:
    """Record one simulator-throughput blob for BENCH_sim.json."""
    _record(BENCH_SIM_PATH, name, payload)


def record_kcache_metric(name: str, payload: dict[str, object]) -> None:
    """Record one kernel-cache economics blob for BENCH_kcache.json."""
    _record(BENCH_KCACHE_PATH, name, payload)


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write every metrics report that benchmarks recorded this session.

    Merges into the existing file rather than overwriting it: a filtered run
    (``pytest bench_tile.py -k double_buffer``, as the CI steps do) updates
    only the metrics it actually recorded and leaves the rest of the trend
    file intact, so partial sessions never clobber the committed ladder.
    """
    for path, metrics in _REPORTS.items():
        merged: dict[str, object] = {}
        if path.exists():
            try:
                merged = dict(json.loads(path.read_text()).get("metrics", {}))
            except (json.JSONDecodeError, OSError):
                merged = {}
        merged.update(metrics)
        document = {"schema": 1, "metrics": dict(sorted(merged.items()))}
        path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def fermi():
    """The GTX580 machine description."""
    return fermi_gtx580()


@pytest.fixture(scope="session")
def kepler():
    """The GTX680 machine description."""
    return kepler_gtx680()


@pytest.fixture(scope="session")
def paper_db():
    """The paper-reported throughput database."""
    return paper_database()


def print_series(title: str, rows: list[str]) -> None:
    """Print a titled block of result rows (visible with ``-s``)."""
    print(f"\n=== {title} ===")
    for row in rows:
        print(f"  {row}")
