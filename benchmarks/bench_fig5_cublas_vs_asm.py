"""Figure 5: SGEMM GFLOPS, CUBLAS vs the assembly kernels, 2400^2 and 4800^2."""

from __future__ import annotations

from repro.microbench import paper_database
from repro.model import UpperBoundModel
from repro.model.params import FERMI_PAPER_CONFIG, KEPLER_LDS128_CONFIG
from repro.sgemm import AsmPerformanceModel, cublas_model

from conftest import print_series

SIZES = (2400, 4800)


def _models(gpu, gpu_key, config):
    database = paper_database()
    bound = UpperBoundModel(gpu, database, gpu_key=gpu_key).analyse(config)
    return AsmPerformanceModel(gpu, bound), cublas_model(gpu)


def test_fig5_cublas_vs_assembly(benchmark, fermi, kepler):
    """Regenerate the eight bars of Figure 5 (2 GPUs × 2 sizes × 2 libraries)."""

    def compute():
        rows = {}
        for gpu, key, config in (
            (fermi, "gtx580", FERMI_PAPER_CONFIG),
            (kepler, "gtx680", KEPLER_LDS128_CONFIG),
        ):
            asm, cublas = _models(gpu, key, config)
            for size in SIZES:
                rows[(key, size)] = (
                    cublas.gflops(size, size, size, gpu),
                    asm.gflops(size, size, size),
                )
        return rows

    rows = benchmark(compute)

    lines = []
    for (gpu_key, size), (cublas_gflops, asm_gflops) in rows.items():
        lines.append(
            f"{gpu_key}  {size:4d}x{size:<4d}   CUBLAS {cublas_gflops:7.0f} GFLOPS   "
            f"ASM {asm_gflops:7.0f} GFLOPS   speedup {asm_gflops / cublas_gflops:5.2f}x"
        )
    print_series("Figure 5 — CUBLAS vs assembly SGEMM", lines)

    # Shape checks: the assembly kernels win on both GPUs and both sizes; the
    # Fermi win is modest (~5 %), the Kepler win is larger (paper: ~1300 vs
    # ~1150-1250 GFLOPS), and the absolute Fermi numbers sit in the figure's
    # 1100-1200 GFLOPS band.
    for (gpu_key, size), (cublas_gflops, asm_gflops) in rows.items():
        assert asm_gflops > cublas_gflops
    fermi_ratio = rows[("gtx580", 4800)][1] / rows[("gtx580", 4800)][0]
    assert 1.0 < fermi_ratio < 1.15
    assert 1050.0 < rows[("gtx580", 4800)][1] < 1250.0
    assert 1150.0 < rows[("gtx680", 4800)][1] < 1450.0
