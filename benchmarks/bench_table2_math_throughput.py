"""Table 2: Kepler math-instruction throughput vs operand register indices."""

from __future__ import annotations

from repro.microbench.instruction_table import PAPER_TABLE2_FFMA, table2_rows

from conftest import print_series


def test_table2_ffma_operand_register_throughput(benchmark, kepler):
    """Regenerate the FFMA rows of Table 2 on the simulated GTX680."""
    rows = benchmark.pedantic(
        lambda: table2_rows(kepler, active_threads=1024, instruction_count=256),
        rounds=1,
        iterations=1,
    )

    lines = []
    for row in rows:
        paper = PAPER_TABLE2_FFMA.get(row.instruction)
        lines.append(
            f"{row.instruction:28s} banks={row.conflict_degree}  "
            f"measured {row.measured_per_cycle:6.1f}/cycle   paper {paper:6.1f}/cycle"
        )
    print_series("Table 2 — FFMA throughput vs operand registers (GTX680)", lines)

    by_label = {row.instruction: row for row in rows}
    clean = by_label["FFMA R0, R1, R4, R5"].measured_per_cycle
    two_way = by_label["FFMA R0, R1, R3, R5"].measured_per_cycle
    three_way = by_label["FFMA R0, R1, R3, R9"].measured_per_cycle

    # Shape checks mirroring the paper: ~132 / ~66 / ~44 per cycle.
    assert 100.0 < clean < 140.0
    assert 0.4 < two_way / clean < 0.65
    assert 0.25 < three_way / clean < 0.45
