"""Ablation: LDS width choice at fixed blocking factor (DESIGN.md §5).

The paper's Section 4.2/4.5 argument: on Fermi, LDS.128's low instruction
throughput makes it a loss despite the higher FFMA share, while on Kepler
LDS.128 is the best choice.  This ablation recomputes the bound for all three
widths on both GPUs from the paper throughput database.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.model import UpperBoundModel
from repro.model.params import SgemmConfig

from conftest import print_series


def _bounds_for(gpu, gpu_key, database):
    results = {}
    for width, stride in ((32, 16), (64, 16), (128, 8)):
        config = SgemmConfig(
            register_blocking=6, lds_width_bits=width, threads_per_block=256, stride=stride
        )
        try:
            results[width] = UpperBoundModel(gpu, database, gpu_key=gpu_key).analyse(config)
        except ModelError:
            results[width] = None
    return results


def test_ablation_lds_width_choice(benchmark, fermi, kepler, paper_db):
    """Bound vs LDS width on both GPUs (who should use wide loads, and why)."""

    def compute():
        return {
            "gtx580": _bounds_for(fermi, "gtx580", paper_db),
            "gtx680": _bounds_for(kepler, "gtx680", paper_db),
        }

    results = benchmark(compute)

    lines = []
    for gpu_key, by_width in results.items():
        for width, breakdown in by_width.items():
            if breakdown is None:
                lines.append(f"{gpu_key}  LDS.{width:<4d} infeasible / not measured")
                continue
            lines.append(
                f"{gpu_key}  LDS.{width:<4d} bound {100 * breakdown.potential_fraction:5.1f}% "
                f"({breakdown.potential_gflops:6.0f} GFLOPS)"
            )
    print_series("Ablation — LDS width at B_R = 6", lines)

    fermi_bounds = results["gtx580"]
    kepler_bounds = results["gtx680"]
    # Fermi: LDS.64 is the right choice; LDS.128 is clearly worse (Section 4.2).
    assert fermi_bounds[64].potential_fraction > fermi_bounds[128].potential_fraction
    assert fermi_bounds[64].potential_fraction > fermi_bounds[32].potential_fraction
    # Kepler: LDS.128 edges out LDS.64 (57.6 % vs 54.6 %, Section 4.5).
    assert kepler_bounds[128].potential_fraction > kepler_bounds[64].potential_fraction
