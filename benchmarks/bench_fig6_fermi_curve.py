"""Figure 6: SGEMM NN GFLOPS vs matrix size on the GTX580."""

from __future__ import annotations

from repro.microbench import paper_database
from repro.model import UpperBoundModel
from repro.model.params import FERMI_PAPER_CONFIG
from repro.sgemm import AsmPerformanceModel, cublas_model, magma_model, performance_curve

from conftest import print_series

SIZES = [512, 960, 1440, 1920, 2400, 2880, 3360, 3840, 4320, 4800]


def test_fig6_sgemm_nn_performance_on_gtx580(benchmark, fermi):
    """Regenerate the three curves of Figure 6 (assembly, CUBLAS 4.1, MAGMA)."""

    def compute():
        bound = UpperBoundModel(fermi, paper_database(), gpu_key="gtx580").analyse(
            FERMI_PAPER_CONFIG
        )
        asm = AsmPerformanceModel(fermi, bound)
        return performance_curve(SIZES, asm, [cublas_model(fermi), magma_model(fermi)])

    curves = benchmark(compute)

    lines = ["size     assembly   cublas_4.1   magma"]
    for index, size in enumerate(SIZES):
        lines.append(
            f"{size:5d}   {curves['assembly'][index].gflops:8.0f}   "
            f"{curves['cublas_4.1'][index].gflops:10.0f}   "
            f"{curves['magma_sgemm_fermi'][index].gflops:5.0f}"
        )
    print_series("Figure 6 — SGEMM NN on GTX580 (GFLOPS)", lines)

    assembly = [point.gflops for point in curves["assembly"]]
    cublas = [point.gflops for point in curves["cublas_4.1"]]
    magma = [point.gflops for point in curves["magma_sgemm_fermi"]]

    # Shape checks from the figure: the assembly kernel leads CUBLAS by a few
    # percent across the size range, MAGMA trails CUBLAS, all three rise with
    # size, and the large-size assembly level is ~1150-1200 GFLOPS.
    for index in range(len(SIZES)):
        assert assembly[index] > cublas[index] > magma[index]
    assert assembly[-1] > assembly[0]
    assert 1.02 < assembly[-1] / cublas[-1] < 1.12
    assert 1050.0 < assembly[-1] < 1250.0
