"""Figure 7: SGEMM NN GFLOPS vs matrix size on the GTX680."""

from __future__ import annotations

from repro.microbench import paper_database
from repro.model import UpperBoundModel
from repro.model.params import KEPLER_LDS128_CONFIG
from repro.sgemm import AsmPerformanceModel, cublas_model, magma_model, performance_curve

from conftest import print_series

SIZES = [512, 960, 1440, 1920, 2400, 2880, 3360, 3840, 4320, 4800]


def test_fig7_sgemm_nn_performance_on_gtx680(benchmark, kepler):
    """Regenerate the three curves of Figure 7 (assembly, CUBLAS 4.2, MAGMA)."""

    def compute():
        bound = UpperBoundModel(kepler, paper_database(), gpu_key="gtx680").analyse(
            KEPLER_LDS128_CONFIG
        )
        asm = AsmPerformanceModel(kepler, bound)
        return performance_curve(SIZES, asm, [cublas_model(kepler), magma_model(kepler)])

    curves = benchmark(compute)

    lines = ["size     assembly   cublas_4.2   magma"]
    for index, size in enumerate(SIZES):
        lines.append(
            f"{size:5d}   {curves['assembly'][index].gflops:8.0f}   "
            f"{curves['cublas_4.2'][index].gflops:10.0f}   "
            f"{curves['magma_sgemm_fermi'][index].gflops:5.0f}"
        )
    print_series("Figure 7 — SGEMM NN on GTX680 (GFLOPS)", lines)

    assembly = [point.gflops for point in curves["assembly"]]
    cublas = [point.gflops for point in curves["cublas_4.2"]]
    magma = [point.gflops for point in curves["magma_sgemm_fermi"]]
    peak = kepler.theoretical_peak_gflops

    # Shape checks from the figure: the assembly kernel clearly leads both
    # libraries once the GPU is reasonably filled (sizes ≥ ~1500 — smaller
    # sizes show wave-quantisation crossovers because the two libraries use
    # different tile sizes), the large-size level is ~1300 GFLOPS (well under
    # half of the 3090-GFLOPS theoretical peak — the paper's central Kepler
    # observation), and the Fermi-tuned MAGMA kernel trails CUBLAS 4.2.
    for index, size in enumerate(SIZES):
        if size >= 2400:
            assert assembly[index] > cublas[index] > magma[index]
    assert 1150.0 < assembly[-1] < 1450.0
    assert assembly[-1] / peak < 0.5
    assert assembly[-1] / cublas[-1] > 1.05
