"""Tile-IR schedule ladder: naive schedule vs golden schedule vs hand kernel.

Not a paper figure — this benchmark tracks the loop-nest IR (`repro.tile`):
for every DSL workload it simulates, on both machine models,

* the *naive schedule* (thread/block bindings only — no staging, no
  software pipelining, narrow or minimal windowing),
* the *golden schedule* as lowered (program order, sequential registers),
* the golden schedule pushed through the `repro.opt` pipeline, and
* the corresponding *hand-written* golden kernel,

and records everything into BENCH_tile.json (written by the conftest session
hook).  The headline claim — the schedule ladder recovers the hand kernel's
performance — is asserted, not just printed: the optimized DSL SGEMM must
stay within 5% of the hand-optimized kernel on both architectures.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.kernels import get_workload, run_workload
from repro.opt.autotune import simulate_one_block
from repro.opt.pipeline import optimize_kernel
from repro.sgemm.config import SgemmKernelConfig
from repro.sgemm.generator import generate_sgemm_kernel
from repro.tile.workloads import TileSgemmConfig

from conftest import print_series, record_tile_metric


def _hand_golden(workload_name: str, gpu):
    """The hand-written kernel each DSL workload is pinned against."""
    if workload_name == "tile_sgemm":
        return generate_sgemm_kernel(
            SgemmKernelConfig(m=96, n=96, k=16, conflict_free_allocation=True)
        )
    if workload_name == "tile_transpose":
        from repro.kernels.transpose import (
            TransposeKernelConfig,
            generate_naive_transpose_kernel,
        )

        return generate_naive_transpose_kernel(
            TransposeKernelConfig(m=32, n=32, tile=16)
        )
    from repro.kernels.sgemv import SgemvKernelConfig, generate_naive_sgemv_kernel

    naive = generate_naive_sgemv_kernel(SgemvKernelConfig(m=64, k=64))
    return optimize_kernel(naive, gpu).kernel


def _naive_schedule_config(workload_name: str, config):
    """Strip the schedule down to bindings: the 'compiler-like' variant."""
    if workload_name == "tile_sgemm":
        return replace(config, stage=False, prefetch=False)
    if workload_name == "tile_transpose":
        return replace(config, pad=0)
    return replace(config, stage=True, prefetch=False, k_window=1)


#: The double-buffered SGEMM ladder point: same 96x96x16 problem, staged in
#: two alternating tiles over an L=8 main loop — ONE BAR.SYNC per iteration.
DOUBLE_BUFFER_CONFIG = TileSgemmConfig(stride=8, double_buffer=True)


def test_schedule_ladder_recovers_hand_performance(benchmark, fermi, kepler):
    """naive schedule → golden schedule → +opt pipeline → hand parity."""
    names = ("tile_sgemm", "tile_transpose", "tile_sgemv")

    def generate_all():
        generated = {}
        for name in names:
            workload = get_workload(name)
            config = workload.default_config()
            generated[name] = {
                "config": config,
                "naive_schedule": workload.generate_naive(
                    _naive_schedule_config(name, config)
                ),
                "golden_schedule": workload.generate_naive(config),
                "fermi_opt": workload.generate_optimized(config, fermi)[0],
                "kepler_opt": workload.generate_optimized(config, kepler)[0],
            }
            if name == "tile_sgemm":
                generated[name]["fermi_db"] = workload.generate_optimized(
                    DOUBLE_BUFFER_CONFIG, fermi
                )[0]
                generated[name]["kepler_db"] = workload.generate_optimized(
                    DOUBLE_BUFFER_CONFIG, kepler
                )[0]
        return generated

    generated = benchmark.pedantic(generate_all, rounds=1, iterations=1)

    lines: list[str] = []
    for name in names:
        bundle = generated[name]
        metrics: dict[str, object] = {
            "kernel": bundle["golden_schedule"].name,
            "instructions": bundle["golden_schedule"].instruction_count,
            "registers": bundle["golden_schedule"].register_count,
        }
        for gpu_name, gpu in (("fermi", fermi), ("kepler", kepler)):
            hand = _hand_golden(name, gpu)
            opt_result = simulate_one_block(gpu, bundle[f"{gpu_name}_opt"])
            cycles = {
                "naive_schedule": simulate_one_block(
                    gpu, bundle["naive_schedule"]
                ).cycles,
                "golden_schedule": simulate_one_block(
                    gpu, bundle["golden_schedule"]
                ).cycles,
                "golden_schedule_opt": opt_result.cycles,
                "hand_golden": simulate_one_block(gpu, hand).cycles,
            }
            if name == "tile_sgemm":
                cycles["double_buffer_opt"] = simulate_one_block(
                    gpu, bundle[f"{gpu_name}_db"]
                ).cycles
            ratio = cycles["golden_schedule_opt"] / cycles["hand_golden"]
            # The optimized kernel's stall breakdown rides along so the
            # trajectory gate can name the stall reason behind a cycle
            # regression (scripts/bench_trajectory.py --check).
            metrics[gpu_name] = {
                **cycles,
                "vs_hand": ratio,
                "stalls": opt_result.stalls.as_dict(),
            }
            line = (
                f"{name:15s} {gpu_name:7s} naive {cycles['naive_schedule']:7.0f}  "
                f"golden {cycles['golden_schedule']:7.0f}  +opt "
                f"{cycles['golden_schedule_opt']:7.0f}  hand "
                f"{cycles['hand_golden']:7.0f}  ({100 * (ratio - 1):+.1f}%)"
            )
            if "double_buffer_opt" in cycles:
                line += f"  db {cycles['double_buffer_opt']:7.0f}"
            lines.append(line)

            # The ladder must be a ladder: scheduling + the pass pipeline
            # never lose to the binding-only variant.
            assert cycles["golden_schedule_opt"] <= cycles["naive_schedule"]
            if name == "tile_sgemm":
                # The acceptance criterion, tracked per benchmark run.
                assert ratio <= 1.05
            if name == "tile_sgemm" and gpu_name == "fermi":
                # The double-buffered schedule (one BAR.SYNC per k-iteration)
                # strictly beats both the best single-buffered DSL schedule
                # and the hand-written golden kernel.
                assert cycles["double_buffer_opt"] < cycles["golden_schedule_opt"]
                assert cycles["double_buffer_opt"] < cycles["hand_golden"]

        record_tile_metric(name, metrics)
    print_series("Tile IR — schedule ladder vs hand kernels", lines)


def test_bound_pruned_sweep_economics(benchmark, fermi):
    """A tiny generative sweep, its one-line summary, and its cost figures.

    Tracks the sweep economics in BENCH_tile.json: how many candidates the
    analytic bound pruned without simulating, the host-side wall time of the
    pruning pass, and how many simulations the kernel-hash cache absorbed.
    The winner's cycles are recorded as ``best_cycles`` — deliberately not a
    cycle-ladder key, since the sweep space (not the kernels) defines it.

    The sweep runs under an installed metrics registry, so the schedule-memo
    and simulation cache hit rates come from the telemetry facade — the
    ``*hit_rate`` figures land in BENCH_summary.json's rate ladder.
    """
    from repro.opt.autotune import AutotuneCache, autotune_workloads
    from repro.telemetry.metrics import metrics_session
    from repro.tile.autotune import prune_by_bound, schedule_space, sweep_summary
    from repro.tile.workloads import clear_schedule_caches

    base = TileSgemmConfig(m=16, n=16, k=8, tile=8, register_blocking=2,
                           stride=2, b_window=2)
    space = [
        c for c in schedule_space(
            sgemm=base, tiles=(4, 8), register_blockings=(2, 4),
            strides=(2, 4), b_windows=(1, 2), tail_sizes=(),
        )
        if c.workload == "tile_sgemm"
    ]

    # Start the memos cold so the recorded hit rates measure this sweep's
    # own reuse, not whatever earlier benchmarks happened to populate.
    clear_schedule_caches()
    with metrics_session() as registry:
        report = benchmark.pedantic(
            lambda: prune_by_bound(fermi, space), rounds=1, iterations=1
        )
        assert report.kept and report.pruned
        assert report.elapsed_s > 0.0

        cache = AutotuneCache()
        outcomes = autotune_workloads(fermi, list(report.kept), workers=1,
                                      cache=cache)
        assert all(outcome.ok for outcome in outcomes)
        summary_line = sweep_summary(report, outcomes)
    cache_hits = sum(1 for o in outcomes if o.from_cache)
    best = outcomes[0]

    snapshot = registry.snapshot()
    memo_hits = snapshot.counter_total("tile.schedule_cache.hits")
    memo_misses = snapshot.counter_total("tile.schedule_cache.misses")
    memo_total = memo_hits + memo_misses

    record_tile_metric("tile_sgemm_bound_pruned_sweep", {
        "total_candidates": report.total,
        "pruned": len(report.pruned),
        "kept": len(report.kept),
        "prune_elapsed_s": round(report.elapsed_s, 3),
        "simulated": len(outcomes),
        "cache_hits": cache_hits,
        "sim_cache_hit_rate": round(cache_hits / len(outcomes), 4),
        "schedule_cache": {
            "hits": memo_hits,
            "misses": memo_misses,
            "evictions": snapshot.counter_total("tile.schedule_cache.evictions"),
            "hit_rate": round(memo_hits / memo_total, 4) if memo_total else 0.0,
        },
        "fermi": {"best_label": best.label, "best_cycles": best.cycles},
    })
    print_series("Tile IR — bound-pruned sweep economics", [summary_line])


def test_double_buffered_sgemm_is_bit_exact(benchmark, fermi, kepler):
    """The double-buffered ladder point validates bit-exactly on both machines."""
    workload = get_workload("tile_sgemm")
    config = DOUBLE_BUFFER_CONFIG

    def generate():
        return workload.generate_naive(config)

    kernel = benchmark.pedantic(generate, rounds=1, iterations=1)
    inputs = workload.prepare_inputs(config)
    oracle = workload.oracle(config, inputs)["C"]
    lines = [f"kernel {kernel.name}: {kernel.register_count} registers"]
    metrics: dict[str, object] = {"kernel": kernel.name,
                                  "registers": kernel.register_count}
    for gpu_name, gpu in (("fermi", fermi), ("kepler", kepler)):
        run = run_workload(gpu, workload, config, max_cycles=20_000_000)
        exact = bool(np.array_equal(run.output, oracle))
        assert exact, f"{gpu_name}: double-buffered SGEMM diverged from the oracle"
        metrics[gpu_name] = {"cycles": run.result.cycles, "bit_exact": exact}
        lines.append(f"{gpu_name:7s} cycles {run.result.cycles:9.0f}  bit-exact {exact}")
    record_tile_metric("tile_sgemm_double_buffer", metrics)
    print_series("Tile IR — double-buffered SGEMM (96x96x16, L=8)", lines)


def test_double_buffered_prime_size_is_bit_exact(benchmark, fermi, kepler):
    """193x161x97, double-buffered: clipped parity staging, end to end.

    The hardest composition the lowering supports — predicate-tail guards,
    clipped per-element-predicated cooperative loads, parity-alternating
    tiles, predicated epilogue stores — validated bit-exactly against the
    NumPy oracle on both machine models, still moving exactly the compulsory
    DRAM traffic.
    """
    workload = get_workload("tile_sgemm")
    config = TileSgemmConfig(m=193, n=161, k=97, stride=8, double_buffer=True)

    def generate():
        return workload.generate_naive(config)

    kernel = benchmark.pedantic(generate, rounds=1, iterations=1)
    inputs = workload.prepare_inputs(config)
    oracle = workload.oracle(config, inputs)["C"]
    compulsory = workload.resources(config).dram_bytes
    lines = [f"kernel {kernel.name}: {kernel.register_count} registers"]
    metrics: dict[str, object] = {
        "kernel": kernel.name,
        "registers": kernel.register_count,
        "compulsory_dram_bytes": compulsory,
    }
    for gpu_name, gpu in (("fermi", fermi), ("kepler", kepler)):
        run = run_workload(gpu, workload, config, max_cycles=50_000_000)
        exact = bool(np.array_equal(run.output, oracle))
        assert exact, f"{gpu_name}: double-buffered tail SGEMM diverged"
        assert run.dram_bytes == compulsory
        metrics[gpu_name] = {
            "cycles": run.result.cycles,
            "bit_exact": exact,
            "dram_bytes": run.dram_bytes,
        }
        lines.append(
            f"{gpu_name:7s} cycles {run.result.cycles:9.0f}  bit-exact {exact}  "
            f"dram {run.dram_bytes} (= compulsory)"
        )
    record_tile_metric("tile_sgemm_double_buffer_193x161x97", metrics)
    print_series("Tile IR — double-buffered 193x161x97", lines)


def test_arbitrary_problem_sizes_validate_bit_exactly(benchmark, fermi, kepler):
    """193x161x97 SGEMM — no dimension a multiple of tile or stride.

    The imperfect-size acceptance case: the predicate-tail schedule lowers
    at full geometry (96-wide tile, B_R = 6, 256 threads), simulates every
    block of the grid functionally on both machine models, and matches the
    NumPy-interpreter oracle bit for bit.
    """
    workload = get_workload("tile_sgemm")
    config = TileSgemmConfig(m=193, n=161, k=97)

    def generate():
        return workload.generate_naive(config)

    kernel = benchmark.pedantic(generate, rounds=1, iterations=1)
    inputs = workload.prepare_inputs(config)
    oracle = workload.oracle(config, inputs)["C"]
    compulsory = workload.resources(config).dram_bytes

    lines = [f"kernel {kernel.name}: {kernel.register_count} registers, "
             f"{kernel.instruction_count} instructions"]
    metrics: dict[str, object] = {
        "kernel": kernel.name,
        "registers": kernel.register_count,
        "instructions": kernel.instruction_count,
        "compulsory_dram_bytes": compulsory,
    }
    for gpu_name, gpu in (("fermi", fermi), ("kepler", kepler)):
        run = run_workload(gpu, workload, config, optimized=False,
                           max_cycles=50_000_000)
        exact = bool(np.array_equal(run.output, oracle))
        assert exact, f"{gpu_name}: tail SGEMM diverged from the oracle"
        # Clipped pipelined stages predicate their cooperative loads per
        # element, so the boundary tiles move no slack data: the simulated
        # DRAM traffic IS the compulsory traffic the bound model prices.
        assert run.dram_bytes == compulsory, (
            f"{gpu_name}: simulated DRAM traffic {run.dram_bytes} != "
            f"compulsory {compulsory}"
        )
        metrics[gpu_name] = {
            "cycles": run.result.cycles,
            "max_error": run.max_error,
            "bit_exact": exact,
            "dram_bytes": run.dram_bytes,
        }
        lines.append(
            f"{gpu_name:7s} cycles {run.result.cycles:9.0f}  "
            f"max|err| {run.max_error:.2e}  bit-exact {exact}  "
            f"dram {run.dram_bytes} (= compulsory)"
        )
    record_tile_metric("tile_sgemm_193x161x97", metrics)
    print_series("Tile IR — arbitrary problem sizes (193x161x97)", lines)
