"""End-to-end SGEMM simulation benchmark (Section 5 achieved performance).

Generates the Fermi SGEMM kernel, runs its resident set (two 256-thread
blocks) on the simulated GTX580 SM, checks numerical correctness, and projects
whole-GPU GFLOPS from the sustained per-SM rate.  The projection must land in
the same regime as the paper's achieved ~74 % of peak (≈ 90 % of the bound);
the simulator's in-order, single-issue-per-warp scheduling is a little more
conservative than the real SM, so the accepted band is wide.
"""

from __future__ import annotations

from repro.microbench import paper_database
from repro.model import UpperBoundModel
from repro.model.params import FERMI_PAPER_CONFIG
from repro.sgemm import SgemmKernelConfig
from repro.sgemm.runner import run_sgemm

from conftest import print_series


def test_sgemm_resident_set_simulation(benchmark, fermi):
    """Simulate the generated kernel's steady state and project GFLOPS."""

    def compute():
        return run_sgemm(
            fermi,
            SgemmKernelConfig(m=192, n=192, k=32),
            blocks=[(0, 0), (1, 0)],
            validate=True,
        )

    run = benchmark.pedantic(compute, rounds=1, iterations=1)

    bound = UpperBoundModel(fermi, paper_database(), gpu_key="gtx580").analyse(
        FERMI_PAPER_CONFIG
    )
    projected = run.result.gflops(fermi)
    lines = [
        f"kernel instructions      : {run.kernel.instruction_count}",
        f"registers per thread     : {run.kernel.register_count}",
        f"max |error| vs NumPy     : {run.max_error:.2e}",
        f"per-SM FFMA throughput   : {run.result.ffma_per_cycle:.1f} thread instr/cycle",
        f"projected whole-GPU rate : {projected:.0f} GFLOPS",
        f"analytic upper bound     : {bound.potential_gflops:.0f} GFLOPS",
        f"fraction of the bound    : {projected / bound.potential_gflops:.1%} "
        "(paper: ~90% on the GTX580)",
    ]
    print_series("SGEMM achieved performance on the simulated GTX580", lines)

    assert run.max_error < 1e-3
    assert run.kernel.register_count == 63
    # The simulated steady state must reach a substantial fraction of the
    # bound and stay below it.
    assert projected < bound.potential_gflops
    assert projected / bound.potential_gflops > 0.55
