"""Simulator throughput: the vectorized fast path vs the scalar-era baseline.

The functional simulator was rewritten around a NumPy-vectorized, warp-batched
engine (:mod:`repro.sim.vectorized`); the scalar per-lane path survives as
:mod:`repro.sim.reference`, the differential-testing oracle.  This benchmark
records what the rewrite bought on the workload the ISSUE gates on — the
**generative tile_sgemm schedule sweep** — into ``BENCH_sim.json``:

* ``sweep`` — the end-to-end sweep (bound pruning + simulating the
  survivors) via :func:`repro.tile.autotune.run_generative_sweep`;
  ``candidates_per_s`` is the headline throughput figure;
* ``functional`` — one functional tile_sgemm simulation;
  ``warp_instructions_per_s`` is the raw engine throughput;
* ``baseline`` — the same measurements taken on this machine at the
  pre-vectorization commit, pinned as constants so the recorded speedup has
  a stated denominator.

The throughput figures (``candidates_per_s``, ``warp_instructions_per_s``)
feed the ``throughput_ladder`` of ``scripts/bench_trajectory.py --check``,
which fails CI when a freshly recorded value drops more than 2% below the
merge-base record.  Unlike the cycle ladders these are **wall-clock**
figures: re-record them with this benchmark on comparable hardware (the
benchmark takes the best of three runs to shed scheduler noise).

The speedup assertion here is deliberately loose (2x, against a measured
9-10x) — it exists to catch a catastrophic regression (e.g. the sweep
silently falling back to the reference engine), not to re-litigate machine
noise on every run.  In-run, the benchmark also *attests the gate*: the
sweep numbers only count because the vectorized engine is bit-identical to
the oracle, so it differentially checks the swept workload before recording.
"""

from __future__ import annotations

import time

import numpy as np

from repro.kernels.registry import get_workload
from repro.sim import LaunchConfig, SmSimulator
from repro.tile.autotune import run_generative_sweep

from conftest import print_series, record_sim_metric

#: Pre-vectorization measurements (same machine, same sweep: 32 candidates,
#: 9 simulated, ``workers=1``), taken at the commit this rewrite branched
#: from.  Pinned so the recorded speedup has a stated denominator.
SCALAR_BASELINE = {
    "sweep_elapsed_s": 4.927,
    "functional_sim_elapsed_s": 0.496,
    "functional_warp_instructions": 6888,
}

#: Catastrophic-regression floor for the recorded speedup (see module doc).
MIN_SWEEP_SPEEDUP = 2.0

#: Best-of-N wall-clock measurements to shed scheduler noise.
MEASUREMENTS = 3


def _functional_once(fermi, workload, config, kernel, executor: str):
    """One functional tile_sgemm simulation; returns (elapsed_s, SimResult)."""
    inputs = workload.prepare_inputs(config, seed=0)
    launch = workload.build_launch(config, inputs)
    simulator = SmSimulator(
        fermi, kernel,
        global_memory=launch.memory, params=launch.params, executor=executor,
    )
    started = time.perf_counter()
    result = simulator.run(
        LaunchConfig(grid=launch.grid, functional=True, max_cycles=20_000_000),
        block_indices=launch.grid.block_indices(),
    )
    return time.perf_counter() - started, result, launch


def test_generative_sweep_throughput(fermi):
    """The ISSUE's acceptance metric: tile_sgemm sweep throughput."""
    workload = get_workload("tile_sgemm")
    config = workload.default_config()
    kernel, _ = workload.generate_optimized(config, fermi)

    # Attest the gate before recording any number: the vectorized engine
    # must be bit-identical to the scalar oracle on the swept workload.
    _, reference, ref_launch = _functional_once(
        fermi, workload, config, kernel, "reference")
    _, vectorized, vec_launch = _functional_once(
        fermi, workload, config, kernel, "vectorized")
    assert reference.cycles == vectorized.cycles
    assert reference.stalls.as_dict() == vectorized.stalls.as_dict()
    assert np.array_equal(ref_launch.memory.data, vec_launch.memory.data)

    sweeps = [
        run_generative_sweep(fermi, workload="tile_sgemm", include_tails=False)
        for _ in range(MEASUREMENTS)
    ]
    best = min(sweeps, key=lambda s: s.total_elapsed_s)
    assert all(len(s.outcomes) == len(best.outcomes) for s in sweeps)
    assert all(outcome.ok for outcome in best.outcomes)

    functional_runs = [
        _functional_once(fermi, workload, config, kernel, "vectorized")
        for _ in range(MEASUREMENTS)
    ]
    functional_elapsed = min(run[0] for run in functional_runs)
    warp_instructions = functional_runs[0][1].warp_instructions
    assert all(run[1].warp_instructions == warp_instructions
               for run in functional_runs)

    sweep_speedup = SCALAR_BASELINE["sweep_elapsed_s"] / best.total_elapsed_s
    functional_speedup = (
        SCALAR_BASELINE["functional_sim_elapsed_s"] / functional_elapsed)
    assert sweep_speedup >= MIN_SWEEP_SPEEDUP, (
        f"sweep took {best.total_elapsed_s:.2f}s vs scalar baseline "
        f"{SCALAR_BASELINE['sweep_elapsed_s']:.2f}s — the vectorized fast "
        f"path has regressed catastrophically"
    )

    record_sim_metric("sweep", {
        "candidates": best.prune.total,
        "pruned": len(best.prune.pruned),
        "simulated": len(best.outcomes),
        "prune_elapsed_s": round(best.prune.elapsed_s, 4),
        "sim_elapsed_s": round(best.sim_elapsed_s, 4),
        "total_elapsed_s": round(best.total_elapsed_s, 4),
        "candidates_per_s": round(best.candidates_per_s, 2),
        "speedup_vs_scalar_baseline": round(sweep_speedup, 2),
    })
    record_sim_metric("functional", {
        "executor": "vectorized",
        "warp_instructions": int(warp_instructions),
        "elapsed_s": round(functional_elapsed, 4),
        "warp_instructions_per_s": round(warp_instructions / functional_elapsed, 1),
        "speedup_vs_scalar_baseline": round(functional_speedup, 2),
        "differential_ok": True,
    })
    record_sim_metric("baseline", dict(SCALAR_BASELINE))
    print_series("tile_sgemm generative sweep (vectorized engine)", [
        f"sweep: {best.prune.total} candidates in {best.total_elapsed_s:.2f}s "
        f"({best.candidates_per_s:.1f}/s, {sweep_speedup:.1f}x vs scalar)",
        f"functional sim: {warp_instructions} warp instructions in "
        f"{functional_elapsed:.3f}s ({functional_speedup:.1f}x vs scalar)",
    ])
