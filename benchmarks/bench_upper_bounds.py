"""Section 4.5 headline results: the SGEMM performance upper bounds.

Two variants are regenerated:

* from the paper's published throughput measurements (exact reproduction of
  the 82.5 % / 54.6 % / 57.6 % numbers), and
* from throughputs measured on the simulator (the full methodology without
  any hardware numbers), which must land in the same regime.
"""

from __future__ import annotations

import pytest

from repro.microbench import MicrobenchRunner
from repro.microbench.paper_data import PAPER_UPPER_BOUNDS
from repro.model import UpperBoundModel
from repro.model.params import (
    FERMI_PAPER_CONFIG,
    KEPLER_LDS64_CONFIG,
    KEPLER_LDS128_CONFIG,
)

from conftest import print_series


def test_upper_bounds_from_paper_measurements(benchmark, fermi, kepler, paper_db):
    """Recompute Equations 6-9 from the paper's own measured throughputs."""

    def compute():
        fermi_model = UpperBoundModel(fermi, paper_db, gpu_key="gtx580")
        kepler_model = UpperBoundModel(kepler, paper_db, gpu_key="gtx680")
        return {
            ("gtx580", 64): fermi_model.analyse(FERMI_PAPER_CONFIG),
            ("gtx680", 64): kepler_model.analyse(KEPLER_LDS64_CONFIG),
            ("gtx680", 128): kepler_model.analyse(KEPLER_LDS128_CONFIG),
        }

    breakdowns = benchmark(compute)

    lines = []
    for key, breakdown in breakdowns.items():
        published = PAPER_UPPER_BOUNDS[key]
        lines.append(
            f"{breakdown.gpu_name:18s} LDS.{key[1]:<4d} bound "
            f"{100 * breakdown.potential_fraction:5.1f}% of peak "
            f"({breakdown.potential_gflops:6.0f} GFLOPS)   paper {100 * published:5.1f}%"
        )
    print_series("Section 4.5 — SGEMM upper bounds (paper measurements)", lines)

    for key, breakdown in breakdowns.items():
        assert breakdown.potential_fraction == pytest.approx(PAPER_UPPER_BOUNDS[key], abs=0.002)
        assert breakdown.limited_by == "sm_throughput"


def test_upper_bounds_from_simulator_measurements(benchmark, fermi, kepler):
    """The same bounds with F_T measured on the simulator instead of hardware."""

    def compute():
        results = {}
        for gpu, config, key in (
            (fermi, FERMI_PAPER_CONFIG, ("gtx580", 64)),
            (kepler, KEPLER_LDS64_CONFIG, ("gtx680", 64)),
        ):
            runner = MicrobenchRunner(gpu)
            database = runner.populate_database(ratios=(6,), widths=(64,), groups=48)
            model = UpperBoundModel(gpu, database, gpu_key=runner.gpu_key)
            results[key] = model.analyse(config)
        return results

    breakdowns = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = []
    for key, breakdown in breakdowns.items():
        published = PAPER_UPPER_BOUNDS[key]
        lines.append(
            f"{breakdown.gpu_name:18s} LDS.{key[1]:<4d} bound "
            f"{100 * breakdown.potential_fraction:5.1f}% of peak   paper {100 * published:5.1f}%"
        )
    print_series("Section 4.5 — SGEMM upper bounds (simulator measurements)", lines)

    # The Fermi bound reproduces closely; the simulator's Kepler mixed
    # throughput sits ~10 % under the hardware measurement (conservative
    # in-order issue model), so its bound is accepted within a wider band.
    assert breakdowns[("gtx580", 64)].potential_fraction == pytest.approx(
        PAPER_UPPER_BOUNDS[("gtx580", 64)], abs=0.06
    )
    assert breakdowns[("gtx680", 64)].potential_fraction == pytest.approx(
        PAPER_UPPER_BOUNDS[("gtx680", 64)], abs=0.10
    )
