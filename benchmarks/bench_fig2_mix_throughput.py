"""Figure 2: thread-instruction throughput mixing FFMA and LDS.X."""

from __future__ import annotations

from repro.microbench import figure2_curves
from repro.microbench.paper_data import PAPER_SECTION42_THROUGHPUTS

from conftest import print_series

#: A reduced ratio sweep keeps the benchmark fast while covering the figure's range.
RATIOS = (0, 2, 6, 12, 24)


def _render(curves, ratios) -> list[str]:
    lines = ["ratio   " + "".join(f"LDS.{width:<9d}" for width in sorted(curves))]
    for index, ratio in enumerate(ratios):
        row = f"{ratio:5d}   "
        for width in sorted(curves):
            row += f"{curves[width][index].instructions_per_cycle:8.1f}     "
        lines.append(row)
    return lines


def test_fig2_fermi_mix_throughput(benchmark, fermi):
    """Fermi half of Figure 2 (the paper's 6:1 / 12:1 operating points)."""
    curves = benchmark.pedantic(
        lambda: figure2_curves(fermi, ratios=RATIOS, groups=24), rounds=1, iterations=1
    )
    print_series("Figure 2 (GTX580) — throughput vs FFMA:LDS.X ratio", _render(curves, RATIOS))

    at_ratio6_lds64 = curves[64][RATIOS.index(6)].instructions_per_cycle
    at_ratio12_lds128 = curves[128][RATIOS.index(12)].instructions_per_cycle
    # Paper Section 4.2 measures 30.4 and 24.5 at these operating points.
    assert abs(at_ratio6_lds64 - PAPER_SECTION42_THROUGHPUTS[64]) < 2.5
    assert abs(at_ratio12_lds128 - PAPER_SECTION42_THROUGHPUTS[128]) < 3.0
    # The overall throughput approaches the 32/cycle issue limit as the FFMA
    # share grows, for LDS and LDS.64 alike.
    assert curves[64][-1].instructions_per_cycle > 29.0
    assert curves[32][-1].instructions_per_cycle > 29.0


def test_fig2_kepler_mix_throughput(benchmark, kepler):
    """Kepler half of Figure 2."""
    curves = benchmark.pedantic(
        lambda: figure2_curves(kepler, ratios=RATIOS, groups=24), rounds=1, iterations=1
    )
    print_series("Figure 2 (GTX680) — throughput vs FFMA:LDS.X ratio", _render(curves, RATIOS))

    at_ratio6_lds64 = curves[64][RATIOS.index(6)].instructions_per_cycle
    at_ratio12_lds128 = curves[128][RATIOS.index(12)].instructions_per_cycle
    # Paper Section 4.5 uses 122.4 (6:1, LDS.64) and 119.9 (12:1, LDS.128); the
    # simulator's conservative in-order issue sits ~10 % under the hardware,
    # so the accepted band is the same regime rather than the exact value.
    assert 100.0 < at_ratio6_lds64 < 140.0
    assert 95.0 < at_ratio12_lds128 < 140.0
    # Pure-LDS streams sit far below the mixed streams on Kepler as well.
    assert curves[64][0].instructions_per_cycle < at_ratio6_lds64
