"""Optimization-pass pipeline: conflicts removed and cycles saved.

Not a paper figure — this benchmark tracks the `repro.opt` subsystem itself:
it times the full pipeline over the naive-allocation SGEMM kernel and records
before/after FFMA bank-conflict counts and simulated cycle counts on both
machine models into BENCH_opt.json (written by the conftest session hook), so
the optimizer's perf trajectory is visible across PRs.
"""

from __future__ import annotations

from repro.opt import optimize_kernel, simulate_one_block
from repro.sgemm import (
    SgemmKernelConfig,
    analyse_ffma_conflicts,
    generate_naive_sgemm_kernel,
    generate_sgemm_kernel,
)

from conftest import print_series, record_opt_metric


def _cycles(gpu, kernel) -> float:
    return simulate_one_block(gpu, kernel, max_cycles=5_000_000).cycles


def test_opt_pipeline_conflicts_and_cycles(benchmark, fermi, kepler):
    """Pipeline output: zero FFMA conflicts, cycles no worse than naive."""
    config = SgemmKernelConfig(m=96, n=96, k=16)
    naive = generate_naive_sgemm_kernel(config)
    hand = generate_sgemm_kernel(config)

    def optimize_both():
        return {
            "fermi": optimize_kernel(naive, fermi),
            "kepler": optimize_kernel(naive, kepler),
        }

    results = benchmark.pedantic(optimize_both, rounds=1, iterations=1)

    before = analyse_ffma_conflicts(naive)
    lines = [
        f"naive: {before.two_way} two-way / {before.three_way} three-way conflicts "
        f"over {before.ffma_count} FFMAs"
    ]
    metrics: dict[str, object] = {
        "kernel": naive.name,
        "ffma_count": before.ffma_count,
        "conflicts_before": {"two_way": before.two_way, "three_way": before.three_way},
    }
    for gpu_name, gpu in (("fermi", fermi), ("kepler", kepler)):
        optimized = results[gpu_name].kernel
        after = analyse_ffma_conflicts(optimized)
        naive_cycles = _cycles(gpu, naive)
        hand_cycles = _cycles(gpu, hand)
        opt_cycles = _cycles(gpu, optimized)
        lines.append(
            f"{gpu_name:7s} cycles: naive {naive_cycles:7.0f}  hand {hand_cycles:7.0f}  "
            f"pipeline {opt_cycles:7.0f}   conflicts after: {after.two_way + after.three_way}"
        )
        metrics[gpu_name] = {
            "conflicts_after": {"two_way": after.two_way, "three_way": after.three_way},
            "cycles_naive": naive_cycles,
            "cycles_hand_allocated": hand_cycles,
            "cycles_pipeline": opt_cycles,
        }

        assert after.two_way == 0 and after.three_way == 0
        assert opt_cycles <= naive_cycles

    record_opt_metric("sgemm_b6_t256_l16", metrics)
    print_series("Optimization pipeline — conflicts and cycles", lines)
