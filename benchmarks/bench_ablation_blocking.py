"""Ablation: register blocking factor sweep under the 63-register limit.

Section 4.4's argument made executable: the bound rises with the blocking
factor, but Equation 4 caps the factor at 6 on Fermi/GK104 — the ISA's
63-register limit, not the SM resources, is what stops SGEMM short of peak.
"""

from __future__ import annotations

from repro.errors import ModelError, ResourceLimitError
from repro.microbench import PerfDatabase
from repro.model import UpperBoundModel, register_requirement
from repro.model.params import SgemmConfig

from conftest import print_series


def _database_for_all_ratios(gpu_key: str, ipc: float) -> PerfDatabase:
    """A flat database so the sweep isolates the blocking-factor effect."""
    database = PerfDatabase("flat")
    for blocking in range(1, 11):
        ratio = blocking / 2.0  # FFMA:LDS.64 ratio for this blocking factor
        for threads in (256, 512, 1024):
            database.add_measurement(gpu_key, 64, ratio, threads, ipc, ipc * ratio / (ratio + 1))
    return database


def test_ablation_register_blocking_sweep(benchmark, fermi):
    """Bound and register cost for blocking factors 2-8 on the GTX580."""
    database = _database_for_all_ratios("gtx580", 30.8)

    def compute():
        rows = {}
        model = UpperBoundModel(fermi, database, gpu_key="gtx580")
        for blocking in range(2, 9):
            config = SgemmConfig(
                register_blocking=blocking,
                lds_width_bits=64,
                threads_per_block=256,
                stride=16,
            )
            registers = register_requirement(config)
            try:
                breakdown = model.analyse(config)
                rows[blocking] = (registers, breakdown.potential_fraction)
            except (ModelError, ResourceLimitError) as error:
                rows[blocking] = (registers, None)
        return rows

    rows = benchmark(compute)

    lines = []
    for blocking, (registers, fraction) in rows.items():
        outcome = f"{100 * fraction:5.1f}% of peak" if fraction is not None else "infeasible (>63 regs)"
        lines.append(f"B_R={blocking}   registers/thread {registers:3d}   {outcome}")
    print_series("Ablation — blocking factor under the 63-register limit", lines)

    feasible = {b: f for b, (_, f) in rows.items() if f is not None}
    # The bound improves monotonically with the blocking factor...
    ordered = [feasible[b] for b in sorted(feasible)]
    assert ordered == sorted(ordered)
    # ...and 6 is the largest feasible factor (7 and 8 blow the register budget).
    assert max(feasible) == 6
    assert rows[7][1] is None and rows[8][1] is None
