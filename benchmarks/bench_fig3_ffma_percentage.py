"""Figure 3: FFMA instruction percentage vs register blocking factor."""

from __future__ import annotations

from repro.model.blocking import figure3_series

from conftest import print_series

#: The three reference points the paper annotates on the figure (B_R = 6).
PAPER_POINTS = {32: 75.0, 64: 85.7, 128: 92.3}


def test_fig3_ffma_percentage_vs_blocking(benchmark):
    """Regenerate the three Figure 3 curves for blocking factors 1-15."""
    series = benchmark(figure3_series, 15)

    lines = ["B_R : " + "  ".join(f"{b:5d}" for b in range(1, 16))]
    for width in (32, 64, 128):
        values = "  ".join(f"{series[width][b]:5.1f}" for b in range(1, 16))
        lines.append(f"LDS.{width:<4d} {values}")
    print_series("Figure 3 — FFMA percentage in the SGEMM main loop", lines)

    for width, expected in PAPER_POINTS.items():
        assert abs(series[width][6] - expected) < 0.1
    # The curves are monotone in the blocking factor and ordered by LDS width.
    for width in (32, 64, 128):
        values = [series[width][b] for b in range(1, 16)]
        assert values == sorted(values)
    for blocking in range(1, 16):
        assert series[32][blocking] < series[64][blocking] < series[128][blocking]
