"""Kernel-cache economics: cold generative sweep vs warm O(lookup) hit.

The persistent kernel cache (:mod:`repro.kcache`) exists so that only the
*first* requester of a routine ever pays for scheduling, lowering,
optimization and the simulated tuning sweep; everyone after that — in this
process or any later one — gets the committed artifacts back in O(lookup).
This benchmark prices that trade on the ISSUE's acceptance routine, the
clipped **tile_sgemm 193x161x97 on Fermi**, and records into
``BENCH_kcache.json``:

* ``tile_sgemm_193x161x97_fermi`` — the cold tuned build (full warm-start-
  disabled sweep: prune + simulate + publish) against the best-of-N warm
  lookup of the same key from a cleared-memo process-equivalent;
  ``warm_speedup`` is the headline figure, asserted >= 100x;
* ``warm_start_192x160x96_fermi`` — the warm-start policy's economics: the
  neighbouring 192x160x96 sweep cold vs seeded from the tuned 193x161x97
  record (never-worse winner, strictly fewer simulations).

``cycles`` figures feed the trajectory cycle ladder (regression-gated at
2%); the wall-clock ``*_speedup`` rates land in the ungated rate ladder —
like the cache hit rates they sit next to, they move with machine noise,
so they are tracked, not gated.  The >=100x assertion here is the loose
catastrophic floor (measured ~3 orders of magnitude): it catches the hit
path silently re-entering the build chain, not scheduler jitter.
"""

from __future__ import annotations

from repro.kcache import KernelStore, get_kernel
from repro.tile.autotune import run_generative_sweep
from repro.tile.workloads import TileSgemmConfig, clear_schedule_caches

from conftest import print_series, record_kcache_metric

#: The paper's arbitrary-size acceptance shape (clipped staging + tails).
SHAPE = TileSgemmConfig(m=193, n=161, k=97)

#: The neighbouring shape the warm-start policy seeds from SHAPE's record.
NEIGHBOUR = TileSgemmConfig(m=192, n=160, k=96)

#: Catastrophic-regression floor for the warm-hit speedup (see module doc).
MIN_WARM_SPEEDUP = 100.0

#: Best-of-N warm lookups to shed filesystem-cache noise.
LOOKUPS = 3


def test_cold_sweep_vs_warm_lookup(tmp_path, fermi):
    """The acceptance metric: a warm hit beats the cold sweep by >= 100x."""
    store = KernelStore(tmp_path / "kcache")
    clear_schedule_caches()
    cold = get_kernel(
        "tile_sgemm", SHAPE, fermi, store=store, tune=True, warm_start=False,
    )
    assert cold.source == "built"
    assert cold.cycles is not None and cold.cycles > 0

    clear_schedule_caches()  # a warm hit must not lean on in-process memos
    warm_replies = [
        get_kernel("tile_sgemm", SHAPE, fermi, store=store, tune=True)
        for _ in range(LOOKUPS)
    ]
    assert all(reply.source == "hit" for reply in warm_replies)
    assert all(reply.cycles == cold.cycles for reply in warm_replies)
    warm_lookup_s = min(reply.lookup_s for reply in warm_replies)
    speedup = cold.build_s / warm_lookup_s
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm lookup took {warm_lookup_s:.4f}s vs the {cold.build_s:.2f}s "
        f"cold sweep ({speedup:.0f}x) — the hit path is doing build work"
    )

    meta = cold.entry.meta
    record_kcache_metric("tile_sgemm_193x161x97_fermi", {
        "cycles": cold.cycles,
        "winner_label": meta["winner_label"],
        "cold_build_s": round(cold.build_s, 4),
        "warm_lookup_s": round(warm_lookup_s, 6),
        "warm_speedup": round(speedup, 1),
        "payload_bytes": store.entry_bytes(cold.key),
        "sweep": {
            "candidates": meta["metrics"]["sweep_candidates"],
            "pruned": meta["metrics"]["sweep_pruned"],
            "simulated": meta["metrics"]["sweep_simulated"],
        },
    })
    print_series("kcache: tile_sgemm 193x161x97 on Fermi", [
        f"cold tuned build: {cold.build_s:.2f}s -> {cold.cycles:.0f} cycles "
        f"({meta['winner_label']})",
        f"warm lookup: {warm_lookup_s * 1e3:.2f}ms ({speedup:.0f}x)",
    ])

    # --- warm-start economics on the neighbouring shape -------------------
    clear_schedule_caches()
    cold_sweep = run_generative_sweep(
        fermi, workload="tile_sgemm", sgemm=NEIGHBOUR, tail_sizes=(),
        warm_start=False,
    )
    warm_sweep = run_generative_sweep(
        fermi, workload="tile_sgemm", sgemm=NEIGHBOUR, tail_sizes=(),
        warm_start=True, store=store,
    )
    cold_best = next(o for o in cold_sweep.outcomes if o.ok)
    warm_best = next(o for o in warm_sweep.outcomes if o.ok)
    assert warm_best.cycles <= cold_best.cycles
    assert len(warm_sweep.outcomes) < len(cold_sweep.outcomes)

    record_kcache_metric("warm_start_192x160x96_fermi", {
        "cold": {
            "cycles": cold_best.cycles,
            "simulated": len(cold_sweep.outcomes),
        },
        "warm": {
            "cycles": warm_best.cycles,
            "simulated": len(warm_sweep.outcomes),
            "seeds": len(warm_sweep.seed_candidates),
            "warm_pruned": warm_sweep.warm_pruned,
        },
        "simulations_saved_rate": round(
            1.0 - len(warm_sweep.outcomes) / len(cold_sweep.outcomes), 4
        ),
    })
    print_series("kcache: warm-start 192x160x96 from the 193x161x97 record", [
        f"cold sweep: {len(cold_sweep.outcomes)} simulated -> "
        f"{cold_best.cycles:.0f} cycles",
        f"warm sweep: {len(warm_sweep.outcomes)} simulated "
        f"({warm_sweep.warm_pruned} floor-pruned) -> {warm_best.cycles:.0f} cycles",
    ])
