"""Liveness and def-use analysis over assembled kernels.

The optimization passes need to know, per instruction, which registers and
predicates are defined and used, and — across the whole kernel — where values
are live.  The analysis works on the resolved instruction stream of a
:class:`~repro.isa.assembler.Kernel`:

* :func:`def_use` classifies one instruction's register/predicate defs and
  uses (wide loads and stores expand to their register pairs/quads, memory
  bases count as uses, guard predicates count as predicate uses);
* :func:`analyse_liveness` runs the classic backward dataflow over the
  control-flow graph implied by the branch-target map and returns per-index
  live-in/live-out sets plus derived statistics (register pressure, live
  ranges) that the reallocation pass and the pipeline report consume.

Predicated instructions deserve one note: a write under a guard predicate may
not happen, so it does **not** kill the previous value — the analysis treats
predicated defs as non-killing, which keeps the live ranges conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import Kernel
from repro.isa.instructions import Instruction, Opcode


@dataclass(frozen=True)
class DefUse:
    """Register and predicate defs/uses of one instruction.

    Attributes
    ----------
    reg_defs:
        Indices of general-purpose registers written (RZ excluded, wide loads
        expanded to all written registers).
    reg_uses:
        Indices of general-purpose registers read (memory bases and wide
        stores included).
    pred_defs:
        Indices of predicate registers written (ISETP destinations).
    pred_uses:
        Indices of predicate registers read (guard predicates; PT excluded).
    killing:
        Whether the register defs unconditionally overwrite their targets
        (false for predicated instructions).
    """

    reg_defs: tuple[int, ...]
    reg_uses: tuple[int, ...]
    pred_defs: tuple[int, ...]
    pred_uses: tuple[int, ...]
    killing: bool


def def_use(instruction: Instruction) -> DefUse:
    """Classify the register/predicate defs and uses of ``instruction``.

    The classification is a pure function of the (immutable) instruction, so
    it is memoized on the instance — the fixed-point passes below re-derive
    it for the same instruction stream many times per kernel.
    """
    cached = instruction.__dict__.get("_def_use")
    if cached is not None:
        return cached
    reg_defs = tuple(r.index for r in instruction.registers_written)
    reg_uses = tuple(r.index for r in instruction.registers_read)
    pred_defs: tuple[int, ...] = ()
    if instruction.dest_predicate is not None and not instruction.dest_predicate.is_true:
        pred_defs = (instruction.dest_predicate.index,)
    pred_uses: tuple[int, ...] = ()
    if not instruction.predicate.is_true:
        pred_uses = (instruction.predicate.index,)
    result = DefUse(
        reg_defs=reg_defs,
        reg_uses=reg_uses,
        pred_defs=pred_defs,
        pred_uses=pred_uses,
        killing=instruction.predicate.is_true,
    )
    instruction.__dict__["_def_use"] = result
    return result


def successors(kernel: Kernel, index: int) -> tuple[int, ...]:
    """Control-flow successors of the instruction at ``index``.

    EXIT has no successors; an unconditional BRA only its target; a
    predicated BRA both the fall-through and the target.  The index one past
    the last instruction is a legal successor (kernel end).
    """
    instruction = kernel.instructions[index]
    if instruction.opcode is Opcode.EXIT:
        return ()
    if instruction.opcode is Opcode.BRA:
        target = kernel.branch_targets.get(index)
        if target is None:  # pragma: no cover - assembler guarantees resolution
            return (index + 1,)
        if instruction.predicate.is_true and not instruction.predicate_negated:
            return (target,)
        return (index + 1, target)
    return (index + 1,)


@dataclass(frozen=True)
class LivenessInfo:
    """Result of the backward liveness dataflow over one kernel.

    Attributes
    ----------
    live_in / live_out:
        Per-instruction-index sets of live general-purpose register indices.
    def_points / use_points:
        For every register index, the instruction indices that define/use it.
    """

    live_in: tuple[frozenset[int], ...]
    live_out: tuple[frozenset[int], ...]
    def_points: dict[int, tuple[int, ...]]
    use_points: dict[int, tuple[int, ...]]

    @property
    def max_pressure(self) -> int:
        """Maximum number of simultaneously live registers."""
        if not self.live_in:
            return 0
        return max(len(live) for live in self.live_in)

    def pressure_at(self, index: int) -> int:
        """Number of registers live into instruction ``index``."""
        return len(self.live_in[index])

    def live_range(self, register: int) -> tuple[int, int] | None:
        """(first, last) instruction index at which ``register`` is live-in."""
        live_at = [i for i, live in enumerate(self.live_in) if register in live]
        if not live_at:
            return None
        return live_at[0], live_at[-1]

    def registers_used(self) -> tuple[int, ...]:
        """All register indices defined or used anywhere in the kernel."""
        return tuple(sorted(set(self.def_points) | set(self.use_points)))


def analyse_liveness(kernel: Kernel) -> LivenessInfo:
    """Backward liveness dataflow over ``kernel``'s control-flow graph."""
    instructions = kernel.instructions
    count = len(instructions)
    info = [def_use(instruction) for instruction in instructions]

    def_points: dict[int, list[int]] = {}
    use_points: dict[int, list[int]] = {}
    for index, du in enumerate(info):
        for register in du.reg_defs:
            def_points.setdefault(register, []).append(index)
        for register in du.reg_uses:
            use_points.setdefault(register, []).append(index)

    # Hoisted loop invariants: the CFG and per-instruction def/use sets do
    # not change across fixed-point passes.  For a predicated (non-killing)
    # def the kill set is empty and ``defs & out`` is a subset of ``out``,
    # so new_in reduces to ``uses | out`` — the destination of a predicated
    # def stays allocated because it flows through untouched.  Register
    # indices are bounded (6-bit encoding), so the sets fit in machine-int
    # bitsets and the fixed point runs on bitwise ops instead of set algebra.
    succs = [
        tuple(s for s in successors(kernel, index) if s < count)
        for index in range(count)
    ]
    uses = [0] * count
    masks = [0] * count  # complement of the kill set (all-ones if non-killing)
    for index, du in enumerate(info):
        use_bits = 0
        for register in du.reg_uses:
            use_bits |= 1 << register
        uses[index] = use_bits
        kill_bits = 0
        if du.killing:
            for register in du.reg_defs:
                kill_bits |= 1 << register
        masks[index] = ~kill_bits

    live_in = [0] * count
    live_out = [0] * count
    changed = True
    while changed:
        changed = False
        for index in range(count - 1, -1, -1):
            out = 0
            for successor in succs[index]:
                out |= live_in[successor]
            new_in = uses[index] | (out & masks[index])
            if out != live_out[index] or new_in != live_in[index]:
                live_out[index] = out
                live_in[index] = new_in
                changed = True

    # Live sets change slowly along straight-line code, so the same bitset
    # value recurs at many indices — convert each distinct value only once.
    conversions: dict[int, frozenset[int]] = {}

    def _bits_to_set(bits: int) -> frozenset[int]:
        cached = conversions.get(bits)
        if cached is not None:
            return cached
        remaining = bits
        result = []
        while remaining:
            low = remaining & -remaining
            result.append(low.bit_length() - 1)
            remaining ^= low
        converted = frozenset(result)
        conversions[bits] = converted
        return converted

    return LivenessInfo(
        live_in=tuple(_bits_to_set(bits) for bits in live_in),
        live_out=tuple(_bits_to_set(bits) for bits in live_out),
        def_points={r: tuple(points) for r, points in def_points.items()},
        use_points={r: tuple(points) for r, points in use_points.items()},
    )
