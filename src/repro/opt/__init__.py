"""SASS optimization-pass pipeline (paper Sections 3.2-3.3, 5.4-5.5).

The :mod:`repro.opt` subsystem turns the hand-crafted optimizations of the
paper's SGEMM kernels — bank-conflict-free register allocation, careful
LDS/FFMA interleaving, Kepler control notations — into reusable passes over
any assembled :class:`~repro.isa.assembler.Kernel`:

* :mod:`repro.opt.liveness` — def-use and liveness analysis;
* :mod:`repro.opt.reallocation` — register recoloring that eliminates FFMA
  operand bank conflicts (generalises Figure 9);
* :mod:`repro.opt.scheduling` — latency-aware list scheduling of
  straight-line regions;
* :mod:`repro.opt.control_hints` — per-instruction Kepler control-notation
  assignment;
* :mod:`repro.opt.pipeline` — the pass pipeline with invariant checking;
* :mod:`repro.opt.autotune` — a parallel sweep of pass configurations ×
  SGEMM variants with kernel-hash-keyed result caching.
"""

from repro.opt.autotune import (
    AutotuneCache,
    TuneCandidate,
    TuneOutcome,
    WorkloadCandidate,
    autotune,
    autotune_workloads,
    default_candidates,
    evaluate_candidate,
    evaluate_workload_candidate,
    format_leaderboard,
    schedule_sweep_candidates,
    simulate_one_block,
    workload_candidates,
)
from repro.opt.control_hints import assign_control_hints
from repro.opt.liveness import DefUse, LivenessInfo, analyse_liveness, def_use
from repro.opt.pipeline import (
    ControlHintPass,
    LatencyAwareSchedulingPass,
    LivenessReportPass,
    PassContext,
    PassPipeline,
    PassStats,
    PipelineResult,
    RegisterReallocationPass,
    default_pipeline,
    optimize_kernel,
)
from repro.opt.reallocation import ReallocationResult, reallocate_registers
from repro.opt.rewrite import kernel_hash, replace_instructions
from repro.opt.scheduling import ScheduleStats, derive_ffma_lds_ratio, schedule_kernel

__all__ = [
    "AutotuneCache",
    "ControlHintPass",
    "DefUse",
    "LatencyAwareSchedulingPass",
    "LivenessInfo",
    "LivenessReportPass",
    "PassContext",
    "PassPipeline",
    "PassStats",
    "PipelineResult",
    "ReallocationResult",
    "RegisterReallocationPass",
    "ScheduleStats",
    "TuneCandidate",
    "TuneOutcome",
    "WorkloadCandidate",
    "analyse_liveness",
    "assign_control_hints",
    "autotune",
    "autotune_workloads",
    "schedule_sweep_candidates",
    "default_candidates",
    "default_pipeline",
    "def_use",
    "derive_ffma_lds_ratio",
    "evaluate_candidate",
    "evaluate_workload_candidate",
    "format_leaderboard",
    "kernel_hash",
    "optimize_kernel",
    "reallocate_registers",
    "replace_instructions",
    "schedule_kernel",
    "simulate_one_block",
    "workload_candidates",
]
