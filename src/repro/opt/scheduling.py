"""Latency-aware list scheduling of straight-line regions.

The paper's hand-written kernels carefully order the main loop so that
shared-memory loads issue early enough to hide their latency behind the FFMA
stream, keeping the FFMA:LDS interleave near the analytic ratio.  This pass
reproduces that discipline mechanically:

* the kernel is split into **regions** at control-flow boundaries — branch
  targets, BRA/BAR/EXIT instructions — which never move;
* inside each region a dependence DAG is built (register RAW/WAR/WAW,
  predicate dependences, and per-memory-space load/store ordering);
* a list scheduler emits the region in a new order: at each step it picks,
  among the dependence-ready instructions, the one heading the longest
  latency-weighted path to the region exit (critical path first), optionally
  steering the FFMA:LDS interleave toward a target ratio.

Any topological order of the region DAG preserves the kernel's semantics
(cross-region order is untouched and all same-register and same-memory-space
orderings are kept), so the pass is safe by construction; the pipeline
additionally re-validates structural invariants after it runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GpuSpec
from repro.isa.assembler import Kernel
from repro.isa.instructions import Instruction, MemSpace
from repro.opt.liveness import def_use
from repro.opt.rewrite import replace_instructions
from repro.sim.pipelines import LatencyTable, latency_table_for


@dataclass(frozen=True)
class ScheduleStats:
    """What the scheduler did to one kernel.

    Attributes
    ----------
    regions:
        Number of schedulable regions found.
    instructions_moved:
        Instructions whose position changed relative to program order.
    estimated_stall_cycles_before / after:
        Sum over instructions of the single-thread issue stalls a sequential
        in-order reading of the stream would incur (a cheap proxy for how
        well latency is hidden; the simulator gives the real number).
    """

    regions: int
    instructions_moved: int
    estimated_stall_cycles_before: float
    estimated_stall_cycles_after: float


#: Dependence kinds; RAW carries the producer latency, the rest only ordering.
_RAW, _ORDER = 0, 1


def _region_boundaries(kernel: Kernel) -> list[tuple[int, int]]:
    """Half-open [start, stop) index ranges of schedulable regions."""
    count = len(kernel.instructions)
    cuts = set(kernel.branch_targets.values())
    regions: list[tuple[int, int]] = []
    start = 0
    for index, instruction in enumerate(kernel.instructions):
        if index in cuts and index > start:
            regions.append((start, index))
            start = index
        if instruction.is_control:
            if index > start:
                regions.append((start, index))
            start = index + 1
    if count > start:
        regions.append((start, count))
    return regions


def _build_dag(
    instructions: list[Instruction],
) -> tuple[list[list[tuple[int, int]]], list[list[int]]]:
    """Dependence DAG of one region.

    Returns ``(preds, succs)`` where ``preds[i]`` holds ``(j, kind)`` edges
    meaning instruction ``i`` depends on ``j`` (kind RAW or ORDER).
    """
    preds: list[list[tuple[int, int]]] = [[] for _ in instructions]
    succs: list[list[int]] = [[] for _ in instructions]

    last_write: dict[str, int] = {}
    reads_since_write: dict[str, list[int]] = {}
    last_store: dict[MemSpace, int] = {}
    loads_since_store: dict[MemSpace, list[int]] = {}

    def add_edge(producer: int, consumer: int, kind: int) -> None:
        if producer == consumer:
            return
        preds[consumer].append((producer, kind))
        succs[producer].append(consumer)

    for index, instruction in enumerate(instructions):
        du = def_use(instruction)
        uses = [f"r{r}" for r in du.reg_uses] + [f"p{p}" for p in du.pred_uses]
        defs = [f"r{r}" for r in du.reg_defs] + [f"p{p}" for p in du.pred_defs]

        for name in uses:
            if name in last_write:
                add_edge(last_write[name], index, _RAW)
            reads_since_write.setdefault(name, []).append(index)
        for name in defs:
            if name in last_write:
                add_edge(last_write[name], index, _ORDER)  # WAW
            for reader in reads_since_write.get(name, ()):
                add_edge(reader, index, _ORDER)  # WAR
            last_write[name] = index
            reads_since_write[name] = []

        space = instruction.memory_space
        if space is not None:
            is_store = instruction.is_shared_store or instruction.is_global_store
            if is_store:
                if space in last_store:
                    add_edge(last_store[space], index, _ORDER)
                for load in loads_since_store.get(space, ()):
                    add_edge(load, index, _ORDER)
                last_store[space] = index
                loads_since_store[space] = []
            else:
                if space in last_store:
                    add_edge(last_store[space], index, _RAW)
                loads_since_store.setdefault(space, []).append(index)
    return preds, succs


def _critical_path(
    instructions: list[Instruction],
    succs: list[list[int]],
    latencies: LatencyTable,
) -> list[float]:
    """Longest latency-weighted path from each instruction to the region exit."""
    count = len(instructions)
    path = [0.0] * count
    for index in range(count - 1, -1, -1):
        tail = max((path[s] for s in succs[index]), default=0.0)
        path[index] = latencies.latency_for(instructions[index]) + tail
    return path


def _estimate_stalls(instructions: list[Instruction], latencies: LatencyTable) -> float:
    """Issue stalls of an in-order single-warp reading of the stream."""
    ready_at: dict[int, float] = {}
    cycle = 0.0
    stalls = 0.0
    for instruction in instructions:
        du = def_use(instruction)
        operands_ready = max((ready_at.get(r, 0.0) for r in du.reg_uses), default=0.0)
        if operands_ready > cycle:
            stalls += operands_ready - cycle
            cycle = operands_ready
        finish = cycle + latencies.latency_for(instruction)
        for register in du.reg_defs:
            ready_at[register] = finish
        cycle += 1.0
    return stalls


def _schedule_region(
    instructions: list[Instruction],
    latencies: LatencyTable,
    ffma_per_lds: float | None,
) -> list[int]:
    """List-schedule one region; returns the new order as original indices.

    Selection is pure critical-path-first: among dependence-ready
    instructions, the one heading the longest latency-weighted chain issues
    next.  On a latency-hiding machine this is the right objective — a warp
    that stalls on a just-issued load costs nothing while other warps fill
    the bubble, but *delaying* a long-latency load delays everything behind
    it in every warp.  (A readiness-horizon scheduler that avoids own-thread
    stalls — optimal for an in-order CPU — measurably regresses the
    simulated SGEMM by pushing the prologue's global loads behind cheap
    accumulator initialisation.)

    When ``ffma_per_lds`` is set, a secondary steer nudges the FFMA:LDS
    interleave toward that ratio whenever both kinds are ready.
    """
    count = len(instructions)
    if count <= 1:
        return list(range(count))
    preds, succs = _build_dag(instructions)
    priority = _critical_path(instructions, succs, latencies)

    unscheduled_preds = [len(p) for p in preds]
    ready: list[int] = [i for i in range(count) if unscheduled_preds[i] == 0]
    order: list[int] = []
    ffma_run = 0.0

    while ready:

        def sort_key(index: int) -> tuple:
            instruction = instructions[index]
            steer = 0.0
            if ffma_per_lds is not None:
                # Positive steer deprioritizes; once `ffma_per_lds` FFMAs have
                # issued since the last shared load, prefer an LDS next.
                if instruction.is_ffma and ffma_run >= ffma_per_lds:
                    steer = 1.0
                elif instruction.is_shared_load and ffma_run < ffma_per_lds:
                    steer = 0.5
            return (steer, -priority[index], index)

        chosen = min(ready, key=sort_key)
        ready.remove(chosen)
        order.append(chosen)
        if ffma_per_lds is not None:
            if instructions[chosen].is_ffma:
                ffma_run += 1.0
            elif instructions[chosen].is_shared_load:
                ffma_run = max(0.0, ffma_run - ffma_per_lds)
        for successor in succs[chosen]:
            unscheduled_preds[successor] -= 1
            if unscheduled_preds[successor] == 0:
                ready.append(successor)

    if len(order) != count:  # pragma: no cover - DAG is acyclic by construction
        raise AssertionError("list scheduler failed to schedule every instruction")
    return order


def derive_ffma_lds_ratio(kernel: Kernel) -> float | None:
    """Static FFMA:LDS ratio of the kernel (None when it has no shared loads)."""
    ffma = sum(1 for i in kernel.instructions if i.is_ffma)
    lds = sum(1 for i in kernel.instructions if i.is_shared_load)
    if ffma == 0 or lds == 0:
        return None
    return ffma / lds


def schedule_kernel(
    kernel: Kernel,
    *,
    gpu: GpuSpec | None = None,
    latencies: LatencyTable | None = None,
    ffma_per_lds: float | None | str = None,
) -> tuple[Kernel, ScheduleStats]:
    """Reorder independent instructions to hide latency.

    Parameters
    ----------
    kernel:
        Any assembled kernel.
    gpu:
        Machine description whose latency table drives the priorities
        (defaults to the Fermi regime when neither ``gpu`` nor ``latencies``
        is given).
    latencies:
        Explicit latency table (overrides ``gpu``).
    ffma_per_lds:
        Target FFMA:LDS interleave ratio; ``"auto"`` derives it from the
        kernel's static mix (the paper's 6:1 for the B_R=6/LDS.64 kernel),
        ``None`` (the default) disables steering — critical-path priority
        already produces a near-target interleave, so the steer is a tuning
        knob for the autotuner rather than a default.
    """
    if latencies is None:
        from repro.arch.specs import fermi_gtx580

        latencies = latency_table_for(gpu if gpu is not None else fermi_gtx580())
    ratio: float | None
    if ffma_per_lds == "auto":
        ratio = derive_ffma_lds_ratio(kernel)
    else:
        ratio = ffma_per_lds  # type: ignore[assignment]

    instructions = list(kernel.instructions)
    permutation: list[int] = []  # original index of each new position
    moved = 0
    regions = 0
    cursor = 0
    for start, stop in _region_boundaries(kernel):
        while cursor < start:  # control instructions between regions stay put
            permutation.append(cursor)
            cursor += 1
        regions += 1
        order = _schedule_region(instructions[start:stop], latencies, ratio)
        moved += sum(1 for position, original in enumerate(order) if position != original)
        permutation.extend(start + original for original in order)
        cursor = stop
    while cursor < len(instructions):
        permutation.append(cursor)
        cursor += 1
    new_order = [instructions[original] for original in permutation]

    # Per-instruction control hints must follow their instructions: permute
    # the hint bytes and re-pack them into per-group notations.  (Without
    # this, a stall hint meant for a load would land on whatever instruction
    # was moved into the load's old slot.)
    notations = kernel.control_notations
    if notations:
        from repro.isa.control_notation import GROUP_SIZE
        from repro.opt.control_hints import build_notations

        old_hints = [
            kernel.control_notation_for(index).hint_for(index % GROUP_SIZE)
            for index in range(len(instructions))
        ]
        notations = build_notations([old_hints[original] for original in permutation])

    stats = ScheduleStats(
        regions=regions,
        instructions_moved=moved,
        estimated_stall_cycles_before=_estimate_stalls(instructions, latencies),
        estimated_stall_cycles_after=_estimate_stalls(new_order, latencies),
    )
    scheduled = replace_instructions(
        kernel,
        tuple(new_order),
        control_notations=notations if kernel.control_notations else None,
        metadata_updates={"opt.scheduled": True},
    )
    return scheduled, stats
