"""The SASS optimization-pass pipeline.

Chains the analyses and transforms of :mod:`repro.opt` into a configurable
pipeline that takes any assembled :class:`~repro.isa.assembler.Kernel` and
returns an optimized one plus a per-pass report:

1. liveness report (analysis only — records register pressure),
2. register reallocation (bank-conflict elimination, Fig. 8/9),
3. latency-aware list scheduling (LDS/global-load hiding, FFMA:LDS mix),
4. Kepler control-notation assignment (when targeting a GPU that reads it).

Every pass must preserve the kernel's structure: the pipeline verifies after
each pass that the instruction-mnemonic histogram is unchanged, the register
footprint still fits the 6-bit encoding, and the branch-target map survived.
A violation raises — a broken optimizer must never silently produce a broken
kernel.

The canonical entry points are :func:`default_pipeline` (build the pipeline
for a GPU) and :func:`optimize_kernel` (one-call convenience).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.arch.specs import GpuSpec
from repro.errors import AssemblyError
from repro.isa.assembler import Kernel
from repro.opt.control_hints import assign_control_hints
from repro.opt.liveness import analyse_liveness
from repro.opt.reallocation import reallocate_registers
from repro.opt.scheduling import schedule_kernel
from repro.prof.trace import trace_span
from repro.sgemm.conflict_analysis import analyse_ffma_conflicts
from repro.telemetry.metrics import counter_inc, current_metrics, observe, time_block


@dataclass
class PassContext:
    """Shared state the passes read and annotate.

    Attributes
    ----------
    gpu:
        Target machine description (None → architecture-neutral defaults).
    options:
        Free-form per-pass options (see :func:`default_pipeline`).
    notes:
        Pass-written annotations, accumulated across passes (namespaced by
        pass name, e.g. ``liveness.max_pressure``) and surfaced per-pass in
        the pipeline report.
    """

    gpu: GpuSpec | None = None
    options: dict[str, object] = field(default_factory=dict)
    notes: dict[str, object] = field(default_factory=dict)


class KernelPass(Protocol):
    """One transform (or analysis) over an assembled kernel."""

    name: str

    def run(self, kernel: Kernel, context: PassContext) -> Kernel:
        """Return the transformed kernel (or the input for analyses)."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class PassStats:
    """Before/after metrics of one pass application."""

    name: str
    ffma_conflicts_before: int
    ffma_conflicts_after: int
    register_count_before: int
    register_count_after: int
    notes: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of running a pipeline over one kernel."""

    kernel: Kernel
    stats: tuple[PassStats, ...]

    @property
    def ffma_conflicts(self) -> int:
        """Remaining FFMA bank conflicts (2-way + 3-way) after all passes."""
        report = analyse_ffma_conflicts(self.kernel)
        return report.two_way + report.three_way


class LivenessReportPass:
    """Analysis-only pass: records register pressure in the context notes."""

    name = "liveness"

    def run(self, kernel: Kernel, context: PassContext) -> Kernel:
        info = analyse_liveness(kernel)
        context.notes["liveness.max_pressure"] = info.max_pressure
        context.notes["liveness.registers_used"] = len(info.registers_used())
        return kernel


class RegisterReallocationPass:
    """Bank-conflict-eliminating register recoloring (see ``reallocation``)."""

    name = "reallocate"

    def run(self, kernel: Kernel, context: PassContext) -> Kernel:
        result = reallocate_registers(
            kernel,
            max_moves=int(context.options.get("reallocate.max_moves", 256)),
        )
        context.notes["reallocate.applied"] = result.applied
        context.notes["reallocate.conflicts_removed"] = result.conflicts_removed
        return result.kernel


class LatencyAwareSchedulingPass:
    """Critical-path list scheduling of straight-line regions."""

    name = "schedule"

    def run(self, kernel: Kernel, context: PassContext) -> Kernel:
        scheduled, stats = schedule_kernel(
            kernel,
            gpu=context.gpu,
            ffma_per_lds=context.options.get("schedule.ffma_per_lds"),
        )
        context.notes["schedule.instructions_moved"] = stats.instructions_moved
        context.notes["schedule.regions"] = stats.regions
        return scheduled


class ControlHintPass:
    """Kepler control-notation assignment (skipped on GPUs that ignore it)."""

    name = "control_hints"

    def run(self, kernel: Kernel, context: PassContext) -> Kernel:
        gpu = context.gpu
        if gpu is not None and not gpu.register_file.has_operand_bank_conflicts:
            # The notation words are a Kepler feature; Fermi/GT200 binaries
            # carry none, so emitting them would only inflate the binary.
            context.notes["control_hints.skipped"] = True
            return kernel
        scheme = str(context.options.get("control_hints.scheme", "minimal"))
        return assign_control_hints(kernel, scheme=scheme)


class PassPipeline:
    """An ordered list of passes applied with invariant checking."""

    def __init__(self, passes: list[KernelPass], *, gpu: GpuSpec | None = None,
                 options: dict[str, object] | None = None) -> None:
        self._passes = list(passes)
        self._gpu = gpu
        self._options = dict(options or {})

    @property
    def pass_names(self) -> tuple[str, ...]:
        """Names of the passes in application order."""
        return tuple(p.name for p in self._passes)

    def run(self, kernel: Kernel) -> PipelineResult:
        """Apply every pass in order and return the result with stats."""
        context = PassContext(gpu=self._gpu, options=dict(self._options))
        stats: list[PassStats] = []
        current = kernel
        for pipeline_pass in self._passes:
            before_conflicts = analyse_ffma_conflicts(current)
            before_registers = current.register_count
            with trace_span(
                f"opt.{pipeline_pass.name}", category="opt", kernel=kernel.name
            ), time_block("opt.pass_seconds", (("pass", pipeline_pass.name),)):
                transformed = pipeline_pass.run(current, context)
            _verify_invariants(pipeline_pass.name, current, transformed)
            after_conflicts = analyse_ffma_conflicts(transformed)
            if current_metrics() is not None:
                pass_labels = (("pass", pipeline_pass.name),)
                counter_inc("opt.passes_run", 1, pass_labels)
                # The structural invariant pins the delta at zero; recording
                # it makes any future pass that grows/shrinks code visible
                # in the same ledgered series instead of only as a raise.
                observe(
                    "opt.pass.instruction_delta",
                    transformed.instruction_count - current.instruction_count,
                    pass_labels,
                )
                observe(
                    "opt.pass.register_delta",
                    transformed.register_count - before_registers,
                    pass_labels,
                )
                observe(
                    "opt.pass.conflict_delta",
                    (after_conflicts.two_way + after_conflicts.three_way)
                    - (before_conflicts.two_way + before_conflicts.three_way),
                    pass_labels,
                )
            # Notes accumulate in the context (later passes may read earlier
            # passes' annotations); each pass's stats carry its own namespace.
            own_notes = {
                key: value
                for key, value in context.notes.items()
                if key.startswith(f"{pipeline_pass.name}.")
            }
            stats.append(
                PassStats(
                    name=pipeline_pass.name,
                    ffma_conflicts_before=before_conflicts.two_way + before_conflicts.three_way,
                    ffma_conflicts_after=after_conflicts.two_way + after_conflicts.three_way,
                    register_count_before=before_registers,
                    register_count_after=transformed.register_count,
                    notes=own_notes,
                )
            )
            current = transformed
        return PipelineResult(kernel=current, stats=tuple(stats))


def _verify_invariants(pass_name: str, before: Kernel, after: Kernel) -> None:
    """Structural invariants every pass must preserve."""
    if after.instruction_mix() != before.instruction_mix():
        raise AssemblyError(f"pass '{pass_name}' changed the instruction mix")
    if after.register_count > 63:
        raise AssemblyError(
            f"pass '{pass_name}' produced a kernel using {after.register_count} registers"
        )
    if after.branch_targets != before.branch_targets:
        raise AssemblyError(f"pass '{pass_name}' moved a branch target")
    if (
        after.shared_memory_bytes != before.shared_memory_bytes
        or after.threads_per_block != before.threads_per_block
    ):
        raise AssemblyError(f"pass '{pass_name}' changed the kernel's launch resources")


def default_pipeline(
    gpu: GpuSpec | None = None,
    *,
    reallocate: bool = True,
    schedule: bool = True,
    control_hints: bool = True,
    options: dict[str, object] | None = None,
) -> PassPipeline:
    """The standard pipeline: liveness → reallocate → schedule → hints.

    Parameters
    ----------
    gpu:
        Target machine; drives the scheduler's latency table and whether the
        control-hint pass emits notations.
    reallocate / schedule / control_hints:
        Toggles for the individual transforms (the liveness report always
        runs — it is free and feeds the stats).
    options:
        Per-pass options, e.g. ``{"schedule.ffma_per_lds": 6.0,
        "control_hints.scheme": "minimal"}``.
    """
    passes: list[KernelPass] = [LivenessReportPass()]
    if reallocate:
        passes.append(RegisterReallocationPass())
    if schedule:
        passes.append(LatencyAwareSchedulingPass())
    if control_hints:
        passes.append(ControlHintPass())
    return PassPipeline(passes, gpu=gpu, options=options)


def optimize_kernel(
    kernel: Kernel,
    gpu: GpuSpec | None = None,
    **pipeline_kwargs: object,
) -> PipelineResult:
    """Run the default pipeline over ``kernel`` for ``gpu``."""
    pipeline = default_pipeline(gpu, **pipeline_kwargs)  # type: ignore[arg-type]
    return pipeline.run(kernel)
