"""Parallel autotuner: sweep pass configurations × kernel configurations.

Section 5.5 of the paper argues the upper-bound analysis tells an auto-tuner
*where* to look; this module supplies the *how*: every candidate is one
(kernel configuration, pass-pipeline configuration) pair, evaluated by
generating the kernel, running the optimization pipeline, simulating one
block on :class:`~repro.sim.sm_sim.SmSimulator` (timing mode) and comparing
against the analytic bound of :class:`~repro.model.bounds.UpperBoundModel`.

Two candidate kinds share the harness: :class:`TuneCandidate` sweeps the
SGEMM-specific space (transpose variants × pass toggles × interleave
steers), and :class:`WorkloadCandidate` sweeps any workload registered in
:mod:`repro.kernels` — the per-workload configuration space crossed with
{naive, pipeline}, bounded by :func:`repro.model.analyse_workload_bound`.

Evaluations are independent, so the sweep fans out over a
``multiprocessing`` pool (``workers=1`` runs serially in-process, which the
tests use).  Simulation results are cached keyed by the **kernel content
hash** (see :func:`repro.opt.rewrite.kernel_hash`): two candidates that
generate byte-identical kernels — or the same candidate re-evaluated in a
later sweep against a persisted cache file — share one simulation.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import asdict, dataclass, field, replace

from repro.arch.specs import GpuSpec, get_gpu_spec
from repro.errors import ModelError, ReproError
from repro.model.params import SgemmConfig
from repro.opt.pipeline import default_pipeline
from repro.opt.rewrite import kernel_hash
from repro.prof.trace import trace_instant, trace_span
from repro.sgemm.config import SgemmKernelConfig, SgemmVariant
from repro.sgemm.conflict_analysis import analyse_ffma_conflicts
from repro.sgemm.generator import generate_naive_sgemm_kernel, generate_sgemm_kernel
from repro.sim.launch import BlockGrid, LaunchConfig
from repro.sim.sm_sim import SmSimulator
from repro.telemetry.metrics import counter_inc, current_metrics


@dataclass(frozen=True)
class TuneCandidate:
    """One point of the sweep: a kernel config plus a pipeline config.

    Attributes
    ----------
    config:
        The SGEMM kernel configuration to generate.
    optimize:
        Whether to run the pass pipeline over the generated kernel.
    reallocate / schedule / control_hints:
        Pipeline toggles (ignored when ``optimize`` is false).
    ffma_per_lds:
        Scheduler interleave steer (None → pure critical-path priority).
    label:
        Human-readable name used in reports.
    """

    config: SgemmKernelConfig
    optimize: bool = True
    reallocate: bool = True
    schedule: bool = True
    control_hints: bool = True
    ffma_per_lds: float | None = None
    label: str = ""

    @property
    def display_label(self) -> str:
        if self.label:
            return self.label
        suffix = "opt" if self.optimize else "asis"
        return f"{self.config.kernel_name}:{suffix}"


@dataclass(frozen=True)
class TuneOutcome:
    """Evaluation result of one candidate on one GPU."""

    label: str
    kernel_name: str
    kernel_hash: str
    gpu_key: str
    cycles: float
    gflops: float
    efficiency: float
    ffma_conflicts: int
    register_count: int
    bound_gflops: float | None
    from_cache: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the candidate evaluated successfully."""
        return self.error is None

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view."""
        return asdict(self)


@dataclass
class AutotuneCache:
    """Simulation results keyed by kernel hash (optionally persisted).

    The key includes the GPU and the cycle cap, so one cache can hold sweeps
    over several machines.  Persistence is backed by the sharded, write-once
    :class:`repro.kcache.simstore.SimRecordStore` rooted at ``path`` —
    concurrent sweeps append records atomically instead of racing to rewrite
    one JSON file, and ``save`` only touches disk for *new* results.  A
    legacy monolithic cache file at ``path`` is read and migrated in place.
    """

    path: str | None = None
    entries: dict[str, dict[str, float]] = field(default_factory=dict)

    @staticmethod
    def key_for(kernel_digest: str, gpu_key: str, max_cycles: int) -> str:
        return f"{kernel_digest}:{gpu_key}:{max_cycles}"

    @classmethod
    def load(cls, path: str) -> "AutotuneCache":
        """Load the records under ``path`` (empty when nothing is there yet)."""
        from repro.kcache.simstore import SimRecordStore

        return cls(path=path, entries=SimRecordStore(path).load_all())

    def save(self) -> None:
        """Persist new records when a path was configured."""
        if self.path is None:
            return
        from repro.kcache.simstore import SimRecordStore

        SimRecordStore(self.path).save(self.entries)


def _gpu_key(gpu: GpuSpec) -> str:
    return gpu.name.lower().replace("geforce ", "").replace(" ", "")


def _analytic_bound(gpu: GpuSpec, config: SgemmKernelConfig) -> float | None:
    """Potential-peak GFLOPS of the configuration, None when unavailable."""
    from repro.microbench import paper_database
    from repro.model.bounds import UpperBoundModel

    try:
        model_config = SgemmConfig(
            register_blocking=config.register_blocking,
            lds_width_bits=config.lds_width_bits,
            threads_per_block=config.threads_per_block,
            stride=config.stride,
        )
        breakdown = UpperBoundModel(gpu, paper_database(), gpu_key=_gpu_key(gpu)).analyse(
            model_config
        )
    except (ModelError, ReproError, KeyError):
        return None
    return breakdown.potential_gflops


def simulate_one_block(
    gpu: GpuSpec,
    kernel,
    *,
    max_cycles: int = 2_000_000,
    functional: bool = False,
    collect_profile: bool = False,
):
    """Timing-mode simulation of one block of ``kernel`` on one SM.

    The shared evaluation primitive behind the autotuner, the opt benchmark
    and the examples: one `threads_per_block`-wide block, no functional
    execution unless requested.  ``collect_profile`` fills the result's
    per-instruction counters (see :mod:`repro.prof`).
    """
    simulator = SmSimulator(gpu, kernel)
    launch = LaunchConfig(
        grid=BlockGrid(grid_x=1, grid_y=1, block_x=kernel.threads_per_block or 256),
        functional=functional,
        max_cycles=max_cycles,
    )
    return simulator.run(launch, block_indices=[(0, 0)], collect_profile=collect_profile)


def evaluate_candidate(
    gpu: GpuSpec | str,
    candidate: TuneCandidate,
    *,
    max_cycles: int = 2_000_000,
    cache_entries: dict[str, dict[str, float]] | None = None,
) -> TuneOutcome:
    """Generate, optimize and simulate one candidate (picklable worker fn).

    ``gpu`` may be a machine description (preserving any caller
    customisation) or a name resolved via :func:`get_gpu_spec`.
    ``cache_entries`` is a read-only snapshot; on a hash hit the simulation
    is skipped and the cached cycle count reused.
    """
    label = candidate.display_label
    try:
        spec = get_gpu_spec(gpu) if isinstance(gpu, str) else gpu
        gpu_key = _gpu_key(spec)
    except ReproError as exc:
        return _error_outcome(label, candidate.config.kernel_name, str(gpu), exc)
    try:
        if candidate.optimize:
            kernel = generate_naive_sgemm_kernel(candidate.config)
            pipeline = default_pipeline(
                spec,
                reallocate=candidate.reallocate,
                schedule=candidate.schedule,
                control_hints=candidate.control_hints,
                options={"schedule.ffma_per_lds": candidate.ffma_per_lds},
            )
            kernel = pipeline.run(kernel).kernel
        else:
            kernel = generate_sgemm_kernel(candidate.config)
        return _measure_kernel(
            spec,
            gpu_key,
            label,
            kernel,
            _analytic_bound(spec, candidate.config),
            max_cycles=max_cycles,
            cache_entries=cache_entries,
        )
    except ReproError as exc:
        return _error_outcome(label, candidate.config.kernel_name, gpu_key, exc)


def _measure_kernel(
    spec: GpuSpec,
    gpu_key: str,
    label: str,
    kernel,
    bound_gflops: float | None,
    *,
    max_cycles: int,
    cache_entries: dict[str, dict[str, float]] | None,
) -> TuneOutcome:
    """Hash, cache-check and (if needed) simulate one generated kernel."""
    digest = kernel_hash(kernel)
    conflicts = analyse_ffma_conflicts(kernel)
    cache_key = AutotuneCache.key_for(digest, gpu_key, max_cycles)
    cached = (cache_entries or {}).get(cache_key)
    if cached is not None:
        cycles = float(cached["cycles"])
        gflops = float(cached["gflops"])
        efficiency = float(cached["efficiency"])
        from_cache = True
    else:
        result = simulate_one_block(spec, kernel, max_cycles=max_cycles)
        cycles = result.cycles
        gflops = result.gflops(spec)
        efficiency = result.efficiency(spec)
        from_cache = False
    return TuneOutcome(
        label=label,
        kernel_name=kernel.name,
        kernel_hash=digest,
        gpu_key=gpu_key,
        cycles=cycles,
        gflops=gflops,
        efficiency=efficiency,
        ffma_conflicts=conflicts.two_way + conflicts.three_way,
        register_count=kernel.register_count,
        bound_gflops=bound_gflops,
        from_cache=from_cache,
    )


def _error_outcome(label: str, kernel_name: str, gpu_key: str, exc: Exception) -> TuneOutcome:
    """The failed-candidate placeholder outcome."""
    return TuneOutcome(
        label=label,
        kernel_name=kernel_name,
        kernel_hash="",
        gpu_key=gpu_key,
        cycles=float("inf"),
        gflops=0.0,
        efficiency=0.0,
        ffma_conflicts=-1,
        register_count=-1,
        bound_gflops=None,
        error=f"{type(exc).__name__}: {exc}",
    )


@dataclass(frozen=True)
class WorkloadCandidate:
    """One registry-workload sweep point.

    Attributes
    ----------
    workload:
        Registry name (see :func:`repro.kernels.workload_names`).
    config:
        Workload configuration; ``None`` uses the workload's default.
    optimize:
        Whether to run the naive kernel through the pass pipeline.
    label:
        Human-readable name used in reports.
    """

    workload: str
    config: object | None = None
    optimize: bool = True
    label: str = ""

    @property
    def display_label(self) -> str:
        if self.label:
            return self.label
        suffix = "pipeline" if self.optimize else "naive"
        return f"{self.workload}:{suffix}"


def evaluate_workload_candidate(
    gpu: GpuSpec | str,
    candidate: WorkloadCandidate,
    *,
    max_cycles: int = 2_000_000,
    cache_entries: dict[str, dict[str, float]] | None = None,
) -> TuneOutcome:
    """Generate, (optionally) optimize and simulate one registry workload.

    Picklable worker function: the workload is resolved by name inside the
    call so candidates can cross process boundaries.
    """
    label = candidate.display_label
    try:
        spec = get_gpu_spec(gpu) if isinstance(gpu, str) else gpu
        gpu_key = _gpu_key(spec)
    except ReproError as exc:
        return _error_outcome(label, candidate.workload, str(gpu), exc)
    try:
        from repro.kernels.registry import get_workload

        workload = get_workload(candidate.workload)
        config = candidate.config if candidate.config is not None else workload.default_config()
        if candidate.optimize:
            kernel, _ = workload.generate_optimized(config, spec)
        else:
            kernel = workload.generate_naive(config)
        try:
            bound = workload.bound(config, spec).potential_gflops
        except ReproError:
            bound = None
        return _measure_kernel(
            spec,
            gpu_key,
            label,
            kernel,
            bound,
            max_cycles=max_cycles,
            cache_entries=cache_entries,
        )
    except ReproError as exc:
        return _error_outcome(label, candidate.workload, gpu_key, exc)


def workload_candidates(
    names: tuple[str, ...] | None = None,
    *,
    include_naive: bool = True,
) -> list[WorkloadCandidate]:
    """The registry sweep: every workload's config space × {naive, pipeline}."""
    from repro.kernels.registry import get_workload, workload_names

    candidates: list[WorkloadCandidate] = []
    for name in names if names is not None else workload_names():
        workload = get_workload(name)
        space = workload.config_space()
        for index, config in enumerate(space):
            tag = f"{name}#{index}" if len(space) > 1 else name
            if include_naive:
                candidates.append(
                    WorkloadCandidate(
                        workload=name, config=config, optimize=False, label=f"{tag}:naive"
                    )
                )
            candidates.append(
                WorkloadCandidate(
                    workload=name, config=config, optimize=True, label=f"{tag}:pipeline"
                )
            )
    return candidates


def schedule_sweep_candidates(**kwargs) -> list[WorkloadCandidate]:
    """Tile-IR schedule sweep: every DSL workload's schedule space.

    Delegates to :func:`repro.tile.autotune.schedule_candidates` (imported
    lazily — the tile layer sits above the optimizer); the returned
    candidates run through :func:`autotune_workloads` like any others, so
    tuning *schedules* and tuning generator knobs share one harness.
    """
    from repro.tile.autotune import schedule_candidates

    return schedule_candidates(**kwargs)


def default_candidates(
    *,
    variants: tuple[SgemmVariant, ...] = tuple(SgemmVariant),
    k: int = 16,
    include_unoptimized: bool = True,
    include_golden: bool = True,
) -> list[TuneCandidate]:
    """The standard sweep: every variant × {naive, pipeline, hand allocation}.

    All candidates use the paper's Fermi-point geometry (B_R=6, 256 threads,
    L=16, LDS.64) on a single-tile problem so one simulated block covers the
    whole grid.
    """
    candidates: list[TuneCandidate] = []
    for variant in variants:
        base = SgemmKernelConfig(
            m=96, n=96, k=k, variant=variant, conflict_free_allocation=False
        )
        if include_unoptimized:
            candidates.append(
                TuneCandidate(
                    config=base, optimize=False, label=f"{variant.value.lower()}:naive"
                )
            )
        candidates.append(
            TuneCandidate(config=base, optimize=True, label=f"{variant.value.lower()}:pipeline")
        )
        if include_golden:
            golden = replace(base, conflict_free_allocation=True)
            candidates.append(
                TuneCandidate(
                    config=golden, optimize=False, label=f"{variant.value.lower()}:hand"
                )
            )
    return candidates


def _evaluate_star(packed: tuple) -> TuneOutcome:
    gpu, candidate, max_cycles, cache_entries = packed
    evaluate = (
        evaluate_workload_candidate
        if isinstance(candidate, WorkloadCandidate)
        else evaluate_candidate
    )
    return evaluate(gpu, candidate, max_cycles=max_cycles, cache_entries=cache_entries)


def _sweep(
    spec: GpuSpec,
    candidates: list,
    *,
    workers: int | None,
    cache: AutotuneCache,
    max_cycles: int,
) -> list[TuneOutcome]:
    """Evaluate ``candidates`` (of either kind) with pooling and caching."""
    if workers is None:
        workers = min(len(candidates), os.cpu_count() or 1)
    workers = max(1, min(workers, len(candidates)))

    snapshot = dict(cache.entries)
    # The whole sweep is one trace span; per-candidate results are recorded
    # as instants *after* the pool returns, so traces work identically for
    # serial and multiprocessing sweeps (worker processes never see the
    # parent's tracer).
    with trace_span(
        "autotune.sweep", category="autotune", candidates=len(candidates), workers=workers
    ) as span:
        if workers == 1:
            outcomes = [
                _evaluate_star((spec, candidate, max_cycles, snapshot))
                for candidate in candidates
            ]
        else:
            jobs = [(spec, candidate, max_cycles, snapshot) for candidate in candidates]
            with multiprocessing.Pool(processes=workers) as pool:
                outcomes = pool.map(_evaluate_star, jobs)
        span["cache_hits"] = sum(1 for o in outcomes if o.ok and o.from_cache)
    if current_metrics() is not None:
        hits = sum(1 for o in outcomes if o.ok and o.from_cache)
        errors = sum(1 for o in outcomes if not o.ok)
        counter_inc("autotune.candidates_evaluated", len(outcomes))
        counter_inc("autotune.sim_cache.hits", hits)
        counter_inc("autotune.sim_cache.misses", len(outcomes) - hits - errors)
        counter_inc("autotune.candidate_errors", errors)
    for outcome in outcomes:
        trace_instant(
            f"candidate.{outcome.label}",
            category="autotune",
            # Failed candidates carry cycles=inf, which strict JSON cannot
            # represent; record the error string instead.
            cycles=outcome.cycles if outcome.ok else None,
            from_cache=outcome.from_cache,
            ok=outcome.ok,
        )

    for outcome in outcomes:
        if outcome.ok and not outcome.from_cache:
            cache.entries[AutotuneCache.key_for(outcome.kernel_hash, outcome.gpu_key, max_cycles)] = {
                "cycles": outcome.cycles,
                "gflops": outcome.gflops,
                "efficiency": outcome.efficiency,
            }
    cache.save()
    return sorted(outcomes, key=lambda o: (not o.ok, o.cycles, o.label))


def autotune(
    gpu: GpuSpec | str,
    candidates: list[TuneCandidate] | None = None,
    *,
    workers: int | None = None,
    cache: AutotuneCache | None = None,
    max_cycles: int = 2_000_000,
) -> list[TuneOutcome]:
    """Evaluate ``candidates`` on ``gpu``, best (fewest cycles) first.

    Parameters
    ----------
    gpu:
        Machine description or its name (``"gtx580"``, ``"gtx680"``, …).
    candidates:
        Sweep points; defaults to :func:`default_candidates`.
    workers:
        Process count for the multiprocessing pool; ``None`` uses the CPU
        count (capped by the candidate count), ``1`` runs serially
        in-process.
    cache:
        Simulation cache; hits skip the simulator entirely.  New results are
        added and, when the cache has a path, persisted.
    max_cycles:
        Per-simulation cycle cap.
    """
    spec = get_gpu_spec(gpu) if isinstance(gpu, str) else gpu
    if candidates is None:
        candidates = default_candidates()
    if cache is None:
        cache = AutotuneCache()
    return _sweep(spec, candidates, workers=workers, cache=cache, max_cycles=max_cycles)


def autotune_workloads(
    gpu: GpuSpec | str,
    candidates: list[WorkloadCandidate] | None = None,
    *,
    workers: int | None = None,
    cache: AutotuneCache | None = None,
    max_cycles: int = 2_000_000,
) -> list[TuneOutcome]:
    """Evaluate registry workloads on ``gpu``, best (fewest cycles) first.

    The registry analogue of :func:`autotune`: candidates default to
    :func:`workload_candidates` (every registered workload's configuration
    space × {naive, pipeline}) and share the same kernel-hash cache, pool
    fan-out and leaderboard ordering.
    """
    spec = get_gpu_spec(gpu) if isinstance(gpu, str) else gpu
    if candidates is None:
        candidates = workload_candidates()
    if cache is None:
        cache = AutotuneCache()
    return _sweep(spec, candidates, workers=workers, cache=cache, max_cycles=max_cycles)


def format_leaderboard(outcomes: list[TuneOutcome]) -> str:
    """Render autotune outcomes as an aligned text table."""
    header = (
        f"{'candidate':28s} {'cycles':>10s} {'GFLOPS':>8s} {'eff %':>7s} "
        f"{'conf':>5s} {'regs':>5s} {'bound':>8s} {'cached':>6s}"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        if not outcome.ok:
            lines.append(f"{outcome.label:28s} failed: {outcome.error}")
            continue
        bound = f"{outcome.bound_gflops:8.1f}" if outcome.bound_gflops else f"{'-':>8s}"
        lines.append(
            f"{outcome.label:28s} {outcome.cycles:10.0f} {outcome.gflops:8.1f} "
            f"{100.0 * outcome.efficiency:7.2f} {outcome.ffma_conflicts:5d} "
            f"{outcome.register_count:5d} {bound} {str(outcome.from_cache):>6s}"
        )
    return "\n".join(lines)
