"""Kernel editing and identity utilities shared by the optimization passes.

Passes transform an assembled :class:`~repro.isa.assembler.Kernel` without
going back through the parser: they produce a new instruction tuple (same
length, possibly renamed registers or a new order) and this module rebuilds a
consistent kernel around it — re-encoding every instruction so the 63-register
limit stays enforced, carrying the branch-target map over, and recording the
pass in the kernel metadata.

:func:`kernel_hash` gives kernels a stable content hash (encoded instruction
bytes, control words and launch resources), which the autotuner uses as a
cache key: two configurations that generate byte-identical kernels share one
simulation.
"""

from __future__ import annotations

import hashlib

from repro.errors import AssemblyError
from repro.isa.assembler import Kernel
from repro.isa.control_notation import ControlNotation, encode_control_word
from repro.isa.encoding import encode_instruction
from repro.isa.instructions import Instruction


def replace_instructions(
    kernel: Kernel,
    instructions: tuple[Instruction, ...],
    *,
    control_notations: tuple[ControlNotation, ...] | None = None,
    metadata_updates: dict[str, object] | None = None,
) -> Kernel:
    """A copy of ``kernel`` with a new instruction stream.

    The replacement must preserve the control-flow skeleton: passes reorder or
    rewrite instructions *between* branch targets and control instructions, so
    every branch-target index of the original kernel must still be valid.

    Raises
    ------
    AssemblyError
        If the instruction count changes (which would invalidate the
        branch-target indices).
    """
    if len(instructions) != len(kernel.instructions):
        raise AssemblyError(
            f"pass changed the instruction count ({len(kernel.instructions)} -> "
            f"{len(instructions)}); branch targets would be invalidated"
        )
    encoded = tuple(encode_instruction(instruction) for instruction in instructions)
    metadata = dict(kernel.metadata)
    if metadata_updates:
        metadata.update(metadata_updates)
    return Kernel(
        name=kernel.name,
        instructions=instructions,
        branch_targets=dict(kernel.branch_targets),
        encoded=encoded,
        control_notations=(
            kernel.control_notations if control_notations is None else control_notations
        ),
        shared_memory_bytes=kernel.shared_memory_bytes,
        threads_per_block=kernel.threads_per_block,
        metadata=metadata,
    )


def kernel_hash(kernel: Kernel) -> str:
    """Stable content hash of a kernel (hex digest).

    Covers the encoded instruction stream, the branch targets, the control
    notations and the launch resources — everything that affects simulation —
    but not the kernel name or free-form metadata, so renamed-but-identical
    kernels hash equal.
    """
    digest = hashlib.sha256()
    for encoded in kernel.encoded:
        digest.update(encoded.to_bytes())
    for index in sorted(kernel.branch_targets):
        digest.update(index.to_bytes(4, "little"))
        digest.update(kernel.branch_targets[index].to_bytes(4, "little"))
    for notation in kernel.control_notations:
        digest.update(encode_control_word(notation).to_bytes(8, "little"))
    digest.update(kernel.shared_memory_bytes.to_bytes(8, "little"))
    digest.update(kernel.threads_per_block.to_bytes(4, "little"))
    return digest.hexdigest()
