"""Kepler control-notation assignment (per-7-instruction scheduling words).

Section 3.2 of the paper describes how the Kepler toolchain embeds one 64-bit
scheduling word per group of seven instructions, and reports that a *bad*
notation costs a large fraction of peak while a per-instruction-type notation
recovers it.  The seed library modelled only the uniform fallback
(:func:`repro.isa.control_notation.notation_schedule_for` with one hint for
every slot, default ``0x25`` — 2.5 stall cycles per instruction on the
simulator).  This pass assigns **per-instruction** hints instead:

* ``minimal`` — zero stall bits everywhere; the yield flag is set after
  long-latency instructions (shared/global loads and barriers) so a real
  scheduler would switch warps behind them.  On the simulator (which derives
  dependence stalls from its scoreboard and reads only the stall bits) this
  is the fastest legal notation — the "good notation" of the paper's story.
* ``latency`` — stall bits encode the producer→consumer distance shortfall:
  when the next instruction RAW-depends on the previous one, the hint
  requests ``min(7, ceil(latency gap))`` stall cycles.  This mimics what
  hardware without a scoreboard would need and is deliberately pessimistic
  on the simulator; it exists so the autotuner can demonstrate the cost of
  conservative notations (the paper's "first Kepler attempt").
* ``uniform`` — the seed behaviour (one hint everywhere), kept for
  comparison.
"""

from __future__ import annotations

from repro.isa.assembler import Kernel
from repro.isa.control_notation import (
    DEFAULT_HINT,
    GROUP_SIZE,
    ControlNotation,
)
from repro.opt.liveness import def_use
from repro.opt.rewrite import replace_instructions
from repro.sim.pipelines import LatencyTable

#: Yield-to-another-warp flag (bit 3 of the hint byte).
YIELD_FLAG = 0x08

SCHEMES = ("minimal", "latency", "uniform")


def _minimal_hints(kernel: Kernel) -> list[int]:
    hints: list[int] = []
    for instruction in kernel.instructions:
        hint = 0
        if instruction.is_memory or instruction.is_barrier:
            hint |= YIELD_FLAG
        hints.append(hint)
    return hints


def _latency_hints(kernel: Kernel, latencies: LatencyTable) -> list[int]:
    """Stall bits covering back-to-back RAW dependences.

    For each instruction, look ahead up to the producer's latency and request
    enough stall cycles that the *next* dependent instruction would not read
    a stale register on a scoreboard-less machine.
    """
    instructions = kernel.instructions
    hints = [0] * len(instructions)
    for index, instruction in enumerate(instructions):
        if index + 1 >= len(instructions):
            break
        produced = set(def_use(instruction).reg_defs)
        if not produced:
            continue
        consumer = def_use(instructions[index + 1])
        if produced & set(consumer.reg_uses):
            gap = latencies.latency_for(instruction) - 1.0
            hints[index] = min(7, max(0, int(gap)))
    for index, instruction in enumerate(instructions):
        if instruction.is_memory or instruction.is_barrier:
            hints[index] |= YIELD_FLAG
    return hints


def build_notations(hints: list[int]) -> tuple[ControlNotation, ...]:
    """Pack per-instruction hint bytes into per-group control notations."""
    notations: list[ControlNotation] = []
    for start in range(0, len(hints), GROUP_SIZE):
        notations.append(ControlNotation(hints=tuple(hints[start : start + GROUP_SIZE])))
    return tuple(notations)


def assign_control_hints(
    kernel: Kernel,
    *,
    scheme: str = "minimal",
    latencies: LatencyTable | None = None,
    uniform_hint: int = DEFAULT_HINT,
) -> Kernel:
    """Attach per-instruction Kepler control notations to ``kernel``.

    Parameters
    ----------
    kernel:
        Any assembled kernel.
    scheme:
        One of :data:`SCHEMES` (see module docstring).
    latencies:
        Latency table for the ``latency`` scheme (defaults to the Kepler
        regime).
    uniform_hint:
        The hint byte used by the ``uniform`` scheme.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown control-hint scheme '{scheme}'; expected one of {SCHEMES}")
    if scheme == "minimal":
        hints = _minimal_hints(kernel)
    elif scheme == "latency":
        if latencies is None:
            from repro.arch.specs import kepler_gtx680
            from repro.sim.pipelines import latency_table_for

            latencies = latency_table_for(kepler_gtx680())
        hints = _latency_hints(kernel, latencies)
    else:
        hints = [uniform_hint] * len(kernel.instructions)
    return replace_instructions(
        kernel,
        kernel.instructions,
        control_notations=build_notations(hints),
        metadata_updates={"opt.control_hints": scheme},
    )
