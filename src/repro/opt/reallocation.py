"""Register reallocation: recolor registers to kill FFMA bank conflicts.

Generalizes the hand-crafted allocation of
:func:`repro.sgemm.register_allocation.allocate_conflict_free` (paper Fig. 9)
into a pass that works on *any* assembled kernel: it computes a global
renaming of the general-purpose registers (a bijection, RZ fixed) that
minimizes the operand register-bank conflicts of FFMA-class instructions
(FFMA/FADD/FMUL/IMAD — the opcodes the Kepler operand collector penalizes,
see :meth:`repro.sim.pipelines.CostModel.operand_bank_multiplier`).

Because the renaming is a bijection applied uniformly to every operand, the
kernel's dataflow — and therefore its semantics — is preserved exactly.  Two
structural constraints shape the search space:

* **wide-access runs**: ``LDS.64/128`` and ``LD.64/128`` write register
  pairs/quads and wide stores read them, so those registers must stay
  consecutive and in order.  Overlapping runs are merged into maximal runs
  that move as one unit.
* the 6-bit register fields cap physical indices at R62.

The solver works in two phases, mirroring how the paper reasons about the
problem (banks first, indices second):

1. **bank assignment** — each unit (run or singleton) gets a bank signature;
   a deterministic local search moves one unit at a time to the signature
   that most reduces the weighted conflict count, subject to per-bank
   capacity (16 registers per bank below R63, 15 on odd1 which loses RZ);
2. **index assignment** — units are placed into concrete free indices
   honoring their signatures, most-constrained first (runs, then registers
   with the highest conflict weight), with a lowest-index preference so the
   register footprint stays compact.

The pass validates itself: the reallocated kernel is re-analysed with
:func:`repro.sgemm.conflict_analysis.analyse_ffma_conflicts` and the result
is rejected (original kernel returned) if the renaming somehow increased the
FFMA conflict count — the pipeline therefore never regresses a kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.arch.register_file import (
    _BANK_CODE_BY_RESIDUE,
    RegisterBank,
    register_bank,
)
from repro.errors import RegisterAllocationError
from repro.isa.assembler import Kernel
from repro.isa.instructions import Instruction, MemRef, Opcode, Register
from repro.isa.registers import MAX_GPR_INDEX
from repro.opt.rewrite import replace_instructions
from repro.sgemm.conflict_analysis import ConflictReport, analyse_ffma_conflicts

#: Opcodes whose source operands suffer register-bank conflicts on Kepler.
BANK_SENSITIVE_OPCODES = (Opcode.FFMA, Opcode.FADD, Opcode.FMUL, Opcode.IMAD)


@dataclass(frozen=True)
class ReallocationResult:
    """Outcome of one register-reallocation run.

    Attributes
    ----------
    kernel:
        The reallocated kernel (the input kernel if reallocation could not
        improve it).
    mapping:
        Old register index → new register index for every renamed register.
    before / after:
        FFMA conflict reports of the input and output kernels.
    applied:
        Whether the renaming was applied (False when it would not improve).
    """

    kernel: Kernel
    mapping: dict[int, int]
    before: ConflictReport
    after: ConflictReport

    applied: bool = True

    @property
    def conflicts_removed(self) -> int:
        """Number of conflicted FFMAs fixed by the renaming."""
        return (self.before.two_way + self.before.three_way) - (
            self.after.two_way + self.after.three_way
        )


# --------------------------------------------------------------------- #
# Kernel scanning: units, triples.                                      #
# --------------------------------------------------------------------- #


def _wide_accesses(instructions: tuple[Instruction, ...]) -> list[tuple[int, int]]:
    """(base register, word count) of every wide load/store in the stream."""
    accesses: list[tuple[int, int]] = []
    for instruction in instructions:
        words = instruction.width // 32
        if words <= 1:
            continue
        if instruction.opcode in (Opcode.LDS, Opcode.LD):
            if instruction.dest is not None and not instruction.dest.is_zero:
                accesses.append((instruction.dest.index, words))
        elif instruction.opcode in (Opcode.STS, Opcode.ST):
            for operand in instruction.sources:
                if isinstance(operand, Register) and not operand.is_zero:
                    accesses.append((operand.index, words))
    return accesses


def _wide_runs(instructions: tuple[Instruction, ...]) -> list[tuple[int, ...]]:
    """Maximal runs of registers that wide accesses force to stay consecutive."""
    intervals = [(base, base + words - 1) for base, words in _wide_accesses(instructions)]
    if not intervals:
        return []
    # Merge *overlapping* intervals (adjacent ones stay independent units).
    intervals.sort()
    merged: list[list[int]] = [list(intervals[0])]
    for lo, hi in intervals[1:]:
        if lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return [tuple(range(lo, hi + 1)) for lo, hi in merged]


def _allowed_residues(run: tuple[int, ...], accesses: list[tuple[int, int]]) -> tuple[int, ...]:
    """Start residues (mod 8) keeping every wide access in ``run`` aligned.

    Hardware requires an LDS.64/128 base register aligned to the access
    width (see :func:`repro.isa.validation.validate_kernel`), so a run may
    only start at indices where each access base lands on a multiple of its
    word count.  An unsatisfiable constraint set (overlapping accesses with
    incompatible phases — necessarily unaligned in the input kernel too)
    falls back to unconstrained.
    """
    residues = []
    for residue in range(8):
        ok = True
        for base, words in accesses:
            if base in run:
                position = run.index(base)
                if (residue + position) % words != 0:
                    ok = False
                    break
        if ok:
            residues.append(residue)
    return tuple(residues) if residues else tuple(range(8))


def _used_registers(instructions: tuple[Instruction, ...]) -> set[int]:
    """Every general-purpose register index the kernel touches."""
    used: set[int] = set()
    for instruction in instructions:
        for register in instruction.registers_written + instruction.registers_read:
            if not register.is_zero:
                used.add(register.index)
    return used


def _conflict_tuples(
    instructions: tuple[Instruction, ...],
) -> dict[tuple[int, ...], int]:
    """Distinct-source register tuples of bank-sensitive instructions → weight."""
    tuples: dict[tuple[int, ...], int] = {}
    for instruction in instructions:
        if instruction.opcode not in BANK_SENSITIVE_OPCODES:
            continue
        distinct = tuple(sorted(set(instruction.source_register_indices)))
        if len(distinct) < 2:
            continue
        tuples[distinct] = tuples.get(distinct, 0) + 1
    return tuples


# --------------------------------------------------------------------- #
# Phase 1: bank-signature assignment.                                   #
# --------------------------------------------------------------------- #

_ALL_BANKS = tuple(RegisterBank)


def _bank_capacities(max_register: int) -> dict[RegisterBank, int]:
    """Number of physical indices available per bank in [0, max_register]."""
    capacities = {bank: 0 for bank in _ALL_BANKS}
    for index in range(max_register + 1):
        capacities[register_bank(index)] += 1
    return capacities


@dataclass
class _Unit:
    """One relocatable unit: a singleton register or a consecutive run."""

    registers: tuple[int, ...]
    #: Signature: offset mod 8 of the unit's first register, which fixes the
    #: bank of every member.  Singletons use their bank's canonical offset.
    offset: int
    weight: int = 0
    #: Start residues (mod 8) the unit may be placed at; runs carrying wide
    #: accesses restrict these to alignment-preserving residues.
    allowed_offsets: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7)

    @property
    def is_run(self) -> bool:
        return len(self.registers) > 1

    def __post_init__(self) -> None:
        self._position = {reg: i for i, reg in enumerate(self.registers)}

    def bank_of(self, register: int, offset: int | None = None) -> RegisterBank:
        """Bank of ``register`` when the unit sits at ``offset`` (mod 8)."""
        base = self.offset if offset is None else offset
        return register_bank((base + self._position[register]) % 8)


def _tuple_penalty(banks: list[RegisterBank]) -> int:
    """Conflict penalty of one instruction's distinct sources: degree - 1.

    The solver inlines this computation in its hot loops; this helper states
    the rule and serves the cold paths.
    """
    counts: dict[RegisterBank, int] = {}
    for bank in banks:
        counts[bank] = counts.get(bank, 0) + 1
    return max(counts.values()) - 1 if counts else 0


class _BankSolver:
    """Deterministic local search over unit bank signatures."""

    def __init__(
        self,
        units: list[_Unit],
        tuples: dict[tuple[int, ...], int],
        capacities: dict[RegisterBank, int],
    ) -> None:
        self._units = units
        self._tuples = tuples
        self._capacities = capacities
        self._unit_of: dict[int, _Unit] = {}
        for unit in units:
            for register in unit.registers:
                self._unit_of[register] = unit
        self._tuples_of: dict[int, list[tuple[int, ...]]] = {}
        for regs in tuples:
            for register in regs:
                self._tuples_of.setdefault(register, []).append(regs)
        # Static per-tuple membership: (unit, position-in-unit) per register,
        # and the de-duplicated tuple list around each unit.  The penalty
        # loops below run ~100k times during the local search; resolving
        # unit/position once keeps them to integer arithmetic.
        self._members: dict[tuple[int, ...], list[tuple[_Unit, int]]] = {
            regs: [(self._unit_of[r], self._unit_of[r]._position[r]) for r in regs]
            for regs in tuples
        }
        self._around: dict[int, list[tuple[tuple[int, ...], int, list[tuple[_Unit, int]]]]] = {}
        for unit in units:
            seen: set[tuple[int, ...]] = set()
            entries = []
            for register in unit.registers:
                for regs in self._tuples_of.get(register, ()):
                    if regs in seen:
                        continue
                    seen.add(regs)
                    entries.append((regs, tuples[regs], self._members[regs]))
            self._around[id(unit)] = entries

    def _penalty_around(self, unit: _Unit, offset: int | None = None) -> int:
        """Weighted penalty of all tuples touching ``unit`` (at ``offset``)."""
        base = unit.offset if offset is None else offset
        codes = _BANK_CODE_BY_RESIDUE
        total = 0
        for _, weight, members in self._around[id(unit)]:
            counts = [0, 0, 0, 0]
            for member, position in members:
                member_base = base if member is unit else member.offset
                counts[codes[(member_base + position) % 8]] += 1
            worst = max(counts)
            if worst > 1:
                total += (worst - 1) * weight
        return total

    def total_penalty(self) -> int:
        codes = _BANK_CODE_BY_RESIDUE
        total = 0
        for regs, weight in self._tuples.items():
            counts = [0, 0, 0, 0]
            for member, position in self._members[regs]:
                counts[codes[(member.offset + position) % 8]] += 1
            worst = max(counts)
            if worst > 1:
                total += (worst - 1) * weight
        return total

    def _demand(self) -> dict[RegisterBank, int]:
        """Per-bank demand of the *constrained* units only.

        Weight-0 singletons (bookkeeping registers that never feed a
        bank-sensitive instruction) are flexible: phase 2 places them in
        whatever slots remain, so they do not consume capacity here.  Runs
        always count — their contiguity pins them to concrete banks.
        """
        demand = {bank: 0 for bank in _ALL_BANKS}
        for unit in self._units:
            if not unit.is_run and unit.weight == 0:
                continue
            for register in unit.registers:
                demand[unit.bank_of(register)] += 1
        return demand

    def _fits(self, unit: _Unit, offset: int) -> bool:
        """Whether moving ``unit`` to ``offset`` keeps every bank in capacity."""
        demand = self._demand()
        for register in unit.registers:
            demand[unit.bank_of(register)] -= 1
        for position in range(len(unit.registers)):
            demand[register_bank((offset + position) % 8)] += 1
        return all(demand[bank] <= self._capacities[bank] for bank in _ALL_BANKS)

    def _swap_fits(self, first: _Unit, second: _Unit) -> bool:
        """Capacity check for a signature swap (matters when one side is
        flexible — a weight-0 singleton — and thus absent from demand)."""
        first.offset, second.offset = second.offset, first.offset
        demand = self._demand()
        fits = all(demand[bank] <= self._capacities[bank] for bank in _ALL_BANKS)
        first.offset, second.offset = second.offset, first.offset
        return fits

    def _swap_gain(self, first: _Unit, second: _Unit) -> int:
        """Penalty reduction from exchanging the signatures of two units."""
        before = self._penalty_around(first) + self._penalty_around_excluding(second, first)
        first.offset, second.offset = second.offset, first.offset
        after = self._penalty_around(first) + self._penalty_around_excluding(second, first)
        first.offset, second.offset = second.offset, first.offset
        return before - after

    def _penalty_around_excluding(self, unit: _Unit, excluded: _Unit) -> int:
        """Like :meth:`_penalty_around` but skipping tuples already counted."""
        excluded_tuples: set[tuple[int, ...]] = set()
        for register in excluded.registers:
            excluded_tuples.update(self._tuples_of.get(register, ()))
        codes = _BANK_CODE_BY_RESIDUE
        total = 0
        for regs, weight, members in self._around[id(unit)]:
            if regs in excluded_tuples:
                continue
            counts = [0, 0, 0, 0]
            for member, position in members:
                counts[codes[(member.offset + position) % 8]] += 1
            worst = max(counts)
            if worst > 1:
                total += (worst - 1) * weight
        return total

    def _partners_of(self, unit: _Unit) -> list[_Unit]:
        """Singleton units sharing a conflict tuple with ``unit`` (weight-desc)."""
        partners: dict[int, _Unit] = {}
        for register in unit.registers:
            for regs in self._tuples_of.get(register, ()):
                for other_register in regs:
                    other = self._unit_of[other_register]
                    if other is not unit and not other.is_run:
                        partners[id(other)] = other
        return sorted(partners.values(), key=lambda u: (-u.weight, u.registers))

    def _composite_gain(self, unit: _Unit, offset: int) -> tuple[int, list[tuple[_Unit, int]]]:
        """Gain from moving ``unit`` to ``offset`` with partner adaptation.

        Moving a run often trades one conflict for another *unless* the
        singletons it shares tuples with (e.g. FFMA accumulators) re-pick
        their banks too.  This evaluates the run move together with a greedy
        re-pick of every singleton partner, which escapes the plateaus a
        one-unit-at-a-time search cannot cross.
        """
        before = self.total_penalty()
        saved = [(unit, unit.offset)] + [(p, p.offset) for p in self._partners_of(unit)]
        plan: list[tuple[_Unit, int]] = []
        if not self._fits(unit, offset):
            return 0, []
        unit.offset = offset
        plan.append((unit, offset))
        for partner in self._partners_of(unit):
            best_offset = partner.offset
            best_penalty = self._penalty_around(partner)
            for candidate in (0, 1, 4, 5):
                if candidate == partner.offset:
                    continue
                penalty = self._penalty_around(partner, candidate)
                if penalty < best_penalty and self._fits(partner, candidate):
                    best_penalty = penalty
                    best_offset = candidate
            if best_offset != partner.offset:
                partner.offset = best_offset
                plan.append((partner, best_offset))
        gain = before - self.total_penalty()
        for moved, original in saved:
            moved.offset = original
        return gain, plan

    def solve(self, max_moves: int = 256) -> None:
        """Greedy best-improvement moves until a fixed point (or move cap).

        Three move kinds, tried in order of cost: re-signing one unit
        (subject to bank capacity); swapping the signatures of two
        equal-length units (demand-invariant, escapes capacity binds); and a
        composite run move with greedy partner re-picks (escapes plateaus
        where a run move alone only trades conflicts).  Every applied move
        strictly reduces the weighted conflict penalty, so the search
        terminates.
        """
        movable = [unit for unit in self._units if any(r in self._tuples_of for r in unit.registers)]
        swappable = [unit for unit in self._units]
        for _ in range(max_moves):
            best_gain = 0
            best_move: tuple[_Unit, int] | None = None
            for unit in movable:
                current = self._penalty_around(unit)
                if current == 0:
                    continue
                # Runs sweep their alignment-legal signatures; singletons only
                # need one canonical offset per bank (0/1/4/5).
                offsets = unit.allowed_offsets if unit.is_run else (0, 1, 4, 5)
                for offset in offsets:
                    if offset == unit.offset:
                        continue
                    gain = current - self._penalty_around(unit, offset)
                    if gain > best_gain and self._fits(unit, offset):
                        best_gain = gain
                        best_move = (unit, offset)
            if best_move is not None:
                unit, offset = best_move
                unit.offset = offset
                continue

            best_swap: tuple[_Unit, _Unit] | None = None
            for unit in movable:
                if self._penalty_around(unit) == 0:
                    continue
                for other in swappable:
                    if other is unit or len(other.registers) != len(unit.registers):
                        continue
                    if other.offset == unit.offset:
                        continue
                    if other.offset not in unit.allowed_offsets:
                        continue
                    if unit.offset not in other.allowed_offsets:
                        continue
                    gain = self._swap_gain(unit, other)
                    if gain > best_gain and self._swap_fits(unit, other):
                        best_gain = gain
                        best_swap = (unit, other)
            if best_swap is not None:
                first, second = best_swap
                first.offset, second.offset = second.offset, first.offset
                continue

            best_plan: list[tuple[_Unit, int]] | None = None
            for unit in movable:
                if not unit.is_run or self._penalty_around(unit) == 0:
                    continue
                for offset in unit.allowed_offsets:
                    if offset == unit.offset:
                        continue
                    gain, plan = self._composite_gain(unit, offset)
                    if gain > best_gain:
                        best_gain = gain
                        best_plan = plan
            if best_plan is None:
                return
            for unit, offset in best_plan:
                unit.offset = offset


# --------------------------------------------------------------------- #
# Phase 2: concrete index assignment.                                   #
# --------------------------------------------------------------------- #


def _assign_indices(
    units: list[_Unit],
    max_register: int,
) -> dict[int, int]:
    """Place every unit at concrete indices honoring its bank signature."""
    free = set(range(max_register + 1))
    mapping: dict[int, int] = {}

    def place_run(unit: _Unit) -> None:
        length = len(unit.registers)
        # Prefer starts matching the chosen signature, then any other
        # alignment-legal residue.  Alignment-violating starts are never
        # used: emitting a misaligned wide access would trade a soft
        # performance property for a hardware-invalid kernel, so running out
        # of legal windows aborts the reallocation instead (the caller then
        # keeps the original kernel).
        all_starts = list(range(max_register - length + 2))
        starts = [s for s in all_starts if s % 8 == unit.offset % 8]
        starts += [
            s
            for s in all_starts
            if s % 8 != unit.offset % 8 and s % 8 in unit.allowed_offsets
        ]
        for start in starts:
            window = range(start, start + length)
            if all(index in free for index in window):
                for register, index in zip(unit.registers, window):
                    mapping[register] = index
                    free.discard(index)
                return
        raise RegisterAllocationError(
            f"no alignment-preserving window of {length} free registers for a wide-access run"
        )

    def place_singleton(unit: _Unit) -> None:
        register = unit.registers[0]
        wanted = register_bank(unit.offset % 8)
        candidates = [i for i in sorted(free) if register_bank(i) == wanted]
        if not candidates:
            candidates = sorted(free)
        if not candidates:
            raise RegisterAllocationError("register file exhausted during reallocation")
        mapping[register] = candidates[0]
        free.discard(candidates[0])

    runs = sorted((u for u in units if u.is_run), key=lambda u: (-len(u.registers), u.registers))
    singles = sorted(
        (u for u in units if not u.is_run), key=lambda u: (-u.weight, u.registers)
    )
    for unit in runs:
        place_run(unit)
    for unit in singles:
        place_singleton(unit)
    return mapping


# --------------------------------------------------------------------- #
# Instruction rewriting.                                                #
# --------------------------------------------------------------------- #


def _rename_register(register: Register, mapping: dict[int, int]) -> Register:
    if register.is_zero:
        return register
    new_index = mapping.get(register.index, register.index)
    if new_index == register.index:
        return register
    return Register(new_index)


def rename_registers(instruction: Instruction, mapping: dict[int, int]) -> Instruction:
    """``instruction`` with every register operand renamed through ``mapping``.

    Returns ``instruction`` itself when no operand actually changes — the
    identity mapping is common and ``dataclasses.replace`` is not free.
    """
    changed = False
    new_sources = []
    for operand in instruction.sources:
        if isinstance(operand, Register):
            renamed = _rename_register(operand, mapping)
            changed = changed or renamed is not operand
            new_sources.append(renamed)
        elif isinstance(operand, MemRef):
            base = _rename_register(operand.base, mapping)
            if base is operand.base:
                new_sources.append(operand)
            else:
                changed = True
                new_sources.append(MemRef(base=base, offset=operand.offset))
        else:
            new_sources.append(operand)
    dest = instruction.dest
    if dest is not None:
        dest = _rename_register(dest, mapping)
        changed = changed or dest is not instruction.dest
    if not changed:
        return instruction
    return dc_replace(instruction, dest=dest, sources=tuple(new_sources))


# --------------------------------------------------------------------- #
# The pass.                                                             #
# --------------------------------------------------------------------- #


def reallocate_registers(
    kernel: Kernel,
    *,
    max_register: int = MAX_GPR_INDEX,
    max_moves: int = 256,
) -> ReallocationResult:
    """Compute and apply a bank-conflict-minimizing register renaming.

    Parameters
    ----------
    kernel:
        Any assembled kernel.
    max_register:
        Highest physical index the renaming may use (R62 by default — the
        6-bit encoding limit).
    max_moves:
        Cap on local-search moves in the bank-assignment phase.

    Returns
    -------
    ReallocationResult
        The (possibly unchanged) kernel plus before/after conflict reports.
        The renaming is only applied when it does not increase the FFMA
        conflict count, so the pass never regresses a kernel.
    """
    before = analyse_ffma_conflicts(kernel)
    used = _used_registers(kernel.instructions)
    if not used:
        return ReallocationResult(kernel=kernel, mapping={}, before=before, after=before, applied=False)
    if max(used) > max_register:
        raise RegisterAllocationError(
            f"kernel uses R{max(used)}, beyond the requested max register R{max_register}"
        )

    runs = _wide_runs(kernel.instructions)
    accesses = _wide_accesses(kernel.instructions)
    in_run = {register for run in runs for register in run}
    tuples = _conflict_tuples(kernel.instructions)

    weight_of: dict[int, int] = {}
    for regs, weight in tuples.items():
        for register in regs:
            weight_of[register] = weight_of.get(register, 0) + weight

    units = [
        _Unit(
            registers=run,
            offset=run[0] % 8,
            weight=sum(weight_of.get(r, 0) for r in run),
            allowed_offsets=_allowed_residues(run, accesses),
        )
        for run in runs
    ]
    units += [
        _Unit(registers=(register,), offset=register % 8, weight=weight_of.get(register, 0))
        for register in sorted(used - in_run)
    ]

    solver = _BankSolver(units, tuples, _bank_capacities(max_register))
    solver.solve(max_moves=max_moves)
    try:
        mapping = _assign_indices(units, max_register)
    except RegisterAllocationError:
        # No legal placement (e.g. alignment constraints exhausted the free
        # windows): keep the original kernel rather than emit a worse one.
        return ReallocationResult(kernel=kernel, mapping={}, before=before, after=before, applied=False)

    renamed = tuple(rename_registers(instruction, mapping) for instruction in kernel.instructions)
    candidate = replace_instructions(
        kernel,
        renamed,
        metadata_updates={"opt.reallocated": True},
    )
    after = analyse_ffma_conflicts(candidate)
    if after.two_way + after.three_way > before.two_way + before.three_way:
        return ReallocationResult(kernel=kernel, mapping={}, before=before, after=before, applied=False)
    return ReallocationResult(kernel=candidate, mapping=mapping, before=before, after=after)
