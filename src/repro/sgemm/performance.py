"""Performance model for the generated assembly kernels (Figures 5-7).

The achieved performance of the paper's assembly kernels is, for large
matrices, a roughly constant fraction of the analytic upper bound (≈ 90 % on
the GTX580, ≈ 77.3 % on the GTX680).  For the per-size curves of Figures 6
and 7 two further effects matter:

* wave quantisation — a grid that does not fill an integral number of waves
  leaves SMs idle on the last wave;
* main-loop overhead — barriers, tile staging and the epilogue are amortised
  over K/L loop iterations, so small K (and the small square sizes at the left
  of the figures) lose efficiency.

:class:`AsmPerformanceModel` combines the upper bound from
:class:`repro.model.UpperBoundModel` with those two effects and an
"achieved fraction of bound" that can come either from the paper's reported
numbers or from a simulator measurement of the generated kernel's main loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.specs import GpuGeneration, GpuSpec
from repro.errors import ModelError
from repro.microbench.paper_data import PAPER_ACHIEVED
from repro.model.bounds import BoundBreakdown
from repro.sgemm.baselines import BaselinePerformanceModel


#: Default achieved-fraction-of-upper-bound per generation (paper Section 5).
DEFAULT_ACHIEVED_FRACTION = {
    GpuGeneration.FERMI: PAPER_ACHIEVED["gtx580"]["fraction_of_upper_bound"],
    GpuGeneration.KEPLER: PAPER_ACHIEVED["gtx680"]["fraction_of_upper_bound"],
    GpuGeneration.GT200: 0.85,
}


@dataclass(frozen=True)
class PerformancePoint:
    """One point of a GFLOPS-vs-size curve."""

    matrix_size: int
    gflops: float
    fraction_of_peak: float


class AsmPerformanceModel:
    """Per-size performance model of the generated assembly SGEMM kernels."""

    def __init__(
        self,
        gpu: GpuSpec,
        bound: BoundBreakdown,
        *,
        achieved_fraction_of_bound: float | None = None,
        loop_overhead_k: float = 64.0,
    ) -> None:
        if achieved_fraction_of_bound is None:
            achieved_fraction_of_bound = DEFAULT_ACHIEVED_FRACTION.get(gpu.generation, 0.85)
        if not 0.0 < achieved_fraction_of_bound <= 1.0:
            raise ModelError("achieved fraction of the bound must be in (0, 1]")
        self._gpu = gpu
        self._bound = bound
        self._achieved_fraction = achieved_fraction_of_bound
        self._loop_overhead_k = loop_overhead_k

    @property
    def gpu(self) -> GpuSpec:
        """Machine description the model targets."""
        return self._gpu

    @property
    def bound(self) -> BoundBreakdown:
        """Upper-bound breakdown the model scales from."""
        return self._bound

    @property
    def achieved_fraction_of_bound(self) -> float:
        """Large-matrix achieved performance as a fraction of the upper bound."""
        return self._achieved_fraction

    @property
    def asymptotic_gflops(self) -> float:
        """Large-matrix achieved GFLOPS."""
        return self._bound.potential_gflops * self._achieved_fraction

    def utilisation(self, m: int, n: int) -> float:
        """SM utilisation from wave quantisation for an m × n output."""
        tile = self._bound.config.block_tile
        blocks = math.ceil(m / tile) * math.ceil(n / tile)
        per_wave = self._bound.active_blocks * self._gpu.sm_count
        waves = math.ceil(blocks / per_wave)
        return blocks / (waves * per_wave)

    def overhead_factor(self, k: int) -> float:
        """Fraction of time in useful main-loop work for a K extent."""
        return k / (k + self._loop_overhead_k)

    def gflops(self, m: int, n: int, k: int) -> float:
        """Predicted achieved GFLOPS for an m × n × k SGEMM."""
        if min(m, n, k) <= 0:
            raise ModelError("matrix dimensions must be positive")
        return self.asymptotic_gflops * self.utilisation(m, n) * self.overhead_factor(k)

    def curve(self, sizes: list[int]) -> list[PerformancePoint]:
        """GFLOPS-vs-size curve for square matrices (Figures 6/7 x-axis)."""
        peak = self._gpu.theoretical_peak_gflops
        points = []
        for size in sizes:
            value = self.gflops(size, size, size)
            points.append(
                PerformancePoint(
                    matrix_size=size, gflops=value, fraction_of_peak=value / peak
                )
            )
        return points


def performance_curve(
    sizes: list[int],
    asm_model: AsmPerformanceModel,
    baselines: list[BaselinePerformanceModel],
) -> dict[str, list[PerformancePoint]]:
    """Per-size curves for the assembly kernel and a list of baselines.

    Returns ``{"assembly": [...], baseline.name: [...], ...}`` — the data
    behind Figures 6 and 7.
    """
    gpu = asm_model.gpu
    peak = gpu.theoretical_peak_gflops
    curves: dict[str, list[PerformancePoint]] = {"assembly": asm_model.curve(sizes)}
    for baseline in baselines:
        points = []
        for size in sizes:
            value = baseline.gflops(size, size, size, gpu)
            points.append(
                PerformancePoint(matrix_size=size, gflops=value, fraction_of_peak=value / peak)
            )
        curves[baseline.name] = points
    return curves
