"""NumPy reference SGEMM and validation helpers."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.sgemm.config import SgemmKernelConfig, SgemmVariant


def reference_sgemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    c: np.ndarray | None = None,
    transpose_a: bool = False,
    transpose_b: bool = False,
) -> np.ndarray:
    """Reference GEMM: ``alpha · op(A) · op(B) + beta · C`` in float32.

    Mirrors the BLAS definition the paper quotes.  ``a`` and ``b`` are the
    stored matrices; the transpose flags select op().
    """
    op_a = a.T if transpose_a else a
    op_b = b.T if transpose_b else b
    if op_a.shape[1] != op_b.shape[0]:
        raise ReproError(
            f"inner dimensions do not agree: op(A) is {op_a.shape}, op(B) is {op_b.shape}"
        )
    product = np.asarray(op_a, dtype=np.float32) @ np.asarray(op_b, dtype=np.float32)
    result = np.float32(alpha) * product
    if beta != 0.0:
        if c is None:
            raise ReproError("beta != 0 requires an input C matrix")
        result = result + np.float32(beta) * np.asarray(c, dtype=np.float32)
    return result.astype(np.float32)


def random_matrices(
    config: SgemmKernelConfig, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random float32 matrices stored in the layout the kernel variant expects.

    Returns ``(A_stored, B_stored)`` where the stored shapes already account
    for the transpose flags: op(A) is m × k, so ``A_stored`` is k × m when the
    variant transposes A, and similarly for B.
    """
    rng = np.random.default_rng(seed)
    if config.variant.transpose_a:
        a_shape = (config.k, config.m)
    else:
        a_shape = (config.m, config.k)
    if config.variant.transpose_b:
        b_shape = (config.n, config.k)
    else:
        b_shape = (config.k, config.n)
    a = rng.uniform(-1.0, 1.0, size=a_shape).astype(np.float32)
    b = rng.uniform(-1.0, 1.0, size=b_shape).astype(np.float32)
    return a, b


def expected_result(config: SgemmKernelConfig, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The reference result for stored matrices under ``config``'s variant/alpha."""
    return reference_sgemm(
        a,
        b,
        alpha=config.alpha,
        transpose_a=config.variant.transpose_a,
        transpose_b=config.variant.transpose_b,
    )


def validate_result(
    computed: np.ndarray,
    expected: np.ndarray,
    *,
    rtol: float = 1e-4,
    atol: float = 1e-3,
) -> float:
    """Check a simulated C matrix against the reference.

    Returns the maximum absolute error.  Raises :class:`ReproError` when the
    tolerance is exceeded so test failures carry the offending magnitude.
    """
    if computed.shape != expected.shape:
        raise ReproError(
            f"result shape {computed.shape} does not match the reference {expected.shape}"
        )
    error = np.max(np.abs(computed.astype(np.float64) - expected.astype(np.float64)))
    if not np.allclose(computed, expected, rtol=rtol, atol=atol):
        raise ReproError(f"SGEMM result differs from the reference (max |error| = {error:.3e})")
    return float(error)


def variant_from_flags(transpose_a: bool, transpose_b: bool) -> SgemmVariant:
    """Map transpose flags to the corresponding :class:`SgemmVariant`."""
    name = ("T" if transpose_a else "N") + ("T" if transpose_b else "N")
    return SgemmVariant(name)
