"""Register allocation for the SGEMM main loop (paper Section 5.4, Figure 9).

On Kepler GK104, FFMA throughput drops by 2× (3×) when two (three) of its
distinct source registers live on the same register bank.  In the SGEMM main
loop every FFMA has the form ``FFMA C_ij, A_i, B_j, C_ij``, so the three
distinct sources are one A-column register, one B-row register and one
accumulator.  The paper's allocation:

* A-column registers come from the even-0 / odd-0 banks,
* B-row registers come from the even-1 / odd-1 banks (so A and B never clash),
* the 36 accumulators are placed so each C_ij avoids the banks of its A_i and
  B_j, with exactly 9 accumulators per bank.

:func:`allocate_conflict_free` reproduces that scheme for any blocking factor
that fits the register file; :func:`allocate_naive` reproduces the sequential
(compiler-like) assignment whose conflicts Figure 8 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.register_file import RegisterBank, register_bank
from repro.errors import RegisterAllocationError
from repro.isa.registers import Register


@dataclass(frozen=True)
class RegisterAllocation:
    """Physical registers chosen for the main-loop operands.

    Attributes
    ----------
    accumulators:
        ``accumulators[i][j]`` holds C(i, j) of the per-thread tile.
    a_column:
        ``a_column[i]`` holds element i of the current A column.
    b_row:
        ``b_row[j]`` holds element j of the current B row window (two
        registers when LDS.64 fetches B in pairs).
    """

    accumulators: tuple[tuple[Register, ...], ...]
    a_column: tuple[Register, ...]
    b_row: tuple[Register, ...]

    @property
    def blocking(self) -> int:
        """The register blocking factor B_R."""
        return len(self.a_column)

    def all_registers(self) -> list[Register]:
        """All allocated registers (accumulators, A column, B row)."""
        output = [r for row in self.accumulators for r in row]
        output.extend(self.a_column)
        output.extend(self.b_row)
        return output

    def conflict_count(self) -> tuple[int, int]:
        """(two_way, three_way) operand bank conflicts over the full B_R×B_R tile.

        Every (i, j) pair is evaluated as the FFMA ``C_ij = A_i · B_j + C_ij``
        with the B-row register cycling through the available B registers.
        """
        two_way = 0
        three_way = 0
        for i in range(self.blocking):
            for j in range(self.blocking):
                b_register = self.b_row[j % len(self.b_row)]
                banks = [
                    self.a_column[i].bank,
                    b_register.bank,
                    self.accumulators[i][j].bank,
                ]
                distinct = {self.a_column[i].index, b_register.index, self.accumulators[i][j].index}
                if len(distinct) < 3:
                    continue
                counts: dict[RegisterBank, int] = {}
                for bank in banks:
                    counts[bank] = counts.get(bank, 0) + 1
                worst = max(counts.values())
                if worst == 2:
                    two_way += 1
                elif worst >= 3:
                    three_way += 1
        return two_way, three_way

    def is_conflict_free(self) -> bool:
        """Whether no FFMA of the tile has an operand bank conflict."""
        two_way, three_way = self.conflict_count()
        return two_way == 0 and three_way == 0


def _registers_on_bank(bank: RegisterBank, start: int, stop: int) -> list[int]:
    """Register indices in [start, stop) residing on ``bank``."""
    return [index for index in range(start, stop) if register_bank(index) == bank]


def allocate_naive(
    blocking: int,
    b_operands: int = 2,
    *,
    first_register: int = 6,
) -> RegisterAllocation:
    """Sequential, bank-oblivious allocation (what a compiler typically emits).

    A-column registers first, then B-row registers, then the accumulators in
    row-major order — the layout that produces the conflict rates Figure 8
    reports for the MAGMA binaries.
    """
    if blocking <= 0:
        raise RegisterAllocationError("blocking factor must be positive")
    last_index = first_register + blocking + b_operands + blocking * blocking - 1
    if last_index > 62:
        raise RegisterAllocationError(
            f"naive allocation needs registers up to R{last_index}, beyond the R62 limit"
        )
    cursor = first_register
    a_column = tuple(Register(cursor + i) for i in range(blocking))
    cursor += blocking
    b_row = tuple(Register(cursor + j) for j in range(b_operands))
    cursor += b_operands
    accumulators = tuple(
        tuple(Register(cursor + i * blocking + j) for j in range(blocking))
        for i in range(blocking)
    )
    return RegisterAllocation(accumulators=accumulators, a_column=a_column, b_row=b_row)


def allocate_conflict_free(
    blocking: int,
    b_operands: int = 2,
    *,
    accumulator_start: int = 26,
    a_column_start: int = 6,
    b_row_start: int = 18,
) -> RegisterAllocation:
    """The paper's bank-conflict-free allocation (Figure 9).

    A-column registers are drawn from the even-0/odd-0 banks, B-row registers
    from the even-1/odd-1 banks, and each accumulator C(i, j) is placed on a
    bank different from both its A and B sources while keeping the per-bank
    accumulator counts balanced.

    Parameters
    ----------
    blocking:
        Register blocking factor B_R.
    b_operands:
        Number of live B-row registers (2 for the LDS.64 operand scheme).
    accumulator_start / a_column_start / b_row_start:
        First register indices of each pool, defaulting to the paper's layout
        (accumulators R26…R61, A column from R6, B row from R18).

    Raises
    ------
    RegisterAllocationError
        If the pools run out of registers or a conflict-free placement is
        impossible (cannot happen for the supported blocking factors, but the
        check is kept as a guard).
    """
    if blocking <= 0:
        raise RegisterAllocationError("blocking factor must be positive")
    # A single live B register cannot avoid bank conflicts structurally (every
    # FFMA would read the same B bank while half the A column shares it), so
    # the allocator always provisions at least two B registers and the kernel
    # generator alternates between them.
    b_operands = max(2, b_operands)
    if blocking * blocking + blocking + b_operands > 57:
        raise RegisterAllocationError(
            f"blocking factor {blocking} cannot fit the register file"
        )

    # A column: alternate between the two "0" banks (even0, odd0).
    zero_banks = [RegisterBank.EVEN0, RegisterBank.ODD0]
    a_pool = {
        bank: [i for i in _registers_on_bank(bank, a_column_start, 63) if i < accumulator_start]
        for bank in zero_banks
    }
    a_column: list[Register] = []
    for i in range(blocking):
        bank = zero_banks[i % 2]
        if not a_pool[bank]:
            raise RegisterAllocationError("ran out of registers for the A column")
        a_column.append(Register(a_pool[bank].pop(0)))

    # B row: alternate between the two "1" banks (even1, odd1).
    one_banks = [RegisterBank.EVEN1, RegisterBank.ODD1]
    b_pool = {
        bank: [i for i in _registers_on_bank(bank, b_row_start, 63) if i < accumulator_start]
        for bank in one_banks
    }
    used = {r.index for r in a_column}
    b_row: list[Register] = []
    for j in range(b_operands):
        bank = one_banks[j % 2]
        candidates = [i for i in b_pool[bank] if i not in used]
        if not candidates:
            raise RegisterAllocationError("ran out of registers for the B row")
        chosen = candidates[0]
        b_pool[bank].remove(chosen)
        used.add(chosen)
        b_row.append(Register(chosen))

    # Accumulators: for each (i, j), pick a bank different from A_i's and
    # B_j's banks.  The deterministic rule below is the paper's Figure 9
    # assignment: the four (A-bank, B-bank) cell types map to the four banks
    # one-to-one, which also balances the accumulators 9-per-bank for the
    # 6 × 6 tile.  If the preferred bank's pool is exhausted (possible for
    # non-paper blocking factors) the other admissible bank is used instead.
    pool = {
        bank: [
            i
            for i in _registers_on_bank(bank, accumulator_start, 63)
            if i not in used
        ]
        for bank in RegisterBank
    }
    preferred_by_type = {
        (RegisterBank.EVEN0, RegisterBank.EVEN1): RegisterBank.ODD0,
        (RegisterBank.EVEN0, RegisterBank.ODD1): RegisterBank.EVEN1,
        (RegisterBank.ODD0, RegisterBank.EVEN1): RegisterBank.ODD1,
        (RegisterBank.ODD0, RegisterBank.ODD1): RegisterBank.EVEN0,
    }
    accumulators: list[list[Register]] = []
    for i in range(blocking):
        row: list[Register] = []
        for j in range(blocking):
            a_bank = a_column[i].bank
            b_bank = b_row[j % b_operands].bank
            preferred = preferred_by_type[(a_bank, b_bank)]
            admissible = [preferred] + [
                bank for bank in RegisterBank if bank not in (a_bank, b_bank, preferred)
            ]
            chosen_bank = next((bank for bank in admissible if pool[bank]), None)
            if chosen_bank is None:
                raise RegisterAllocationError(
                    "no conflict-free register available for accumulator "
                    f"C({i},{j}); pools exhausted"
                )
            index = pool[chosen_bank].pop(0)
            used.add(index)
            row.append(Register(index))
        accumulators.append(row)

    allocation = RegisterAllocation(
        accumulators=tuple(tuple(row) for row in accumulators),
        a_column=tuple(a_column),
        b_row=tuple(b_row),
    )
    if not allocation.is_conflict_free():
        raise RegisterAllocationError("allocation unexpectedly contains bank conflicts")
    return allocation
