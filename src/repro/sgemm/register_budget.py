"""Register budget accounting (paper Section 5.2).

The paper lists, item by item, how its Fermi kernel spends exactly 63
registers per thread with zero spills.  :class:`RegisterBudget` reproduces the
same accounting for arbitrary configurations so the generator, the analytic
model and the tests all agree on the per-thread register footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.model.blocking import prefetch_registers
from repro.model.params import SgemmConfig


@dataclass(frozen=True)
class RegisterBudget:
    """Per-thread register footprint broken down by purpose.

    Attributes mirror the items of the paper's Section 5.2 list.
    """

    accumulators: int
    prefetch: int
    a_operands: int
    b_operands: int
    global_trackers: int
    loop_bound: int
    shared_store_trackers: int
    shared_load_trackers: int

    @property
    def total(self) -> int:
        """Total registers per thread."""
        return (
            self.accumulators
            + self.prefetch
            + self.a_operands
            + self.b_operands
            + self.global_trackers
            + self.loop_bound
            + self.shared_store_trackers
            + self.shared_load_trackers
        )

    def fits(self, max_registers_per_thread: int) -> bool:
        """Whether the budget fits the ISA register limit (i.e. no spills)."""
        return self.total <= max_registers_per_thread

    def as_dict(self) -> dict[str, int]:
        """Dictionary view used by reports and tests."""
        return {
            "accumulators": self.accumulators,
            "prefetch": self.prefetch,
            "a_operands": self.a_operands,
            "b_operands": self.b_operands,
            "global_trackers": self.global_trackers,
            "loop_bound": self.loop_bound,
            "shared_store_trackers": self.shared_store_trackers,
            "shared_load_trackers": self.shared_load_trackers,
            "total": self.total,
        }


def budget_for(config: SgemmConfig) -> RegisterBudget:
    """Register budget for an :class:`repro.model.params.SgemmConfig`.

    Follows the paper's accounting: B_R² accumulators, the Equation 4 prefetch
    registers, B_R registers for the A column, ``lds_width/32`` registers for
    the B operands, 2 global-pointer trackers, 1 loop bound, 2 shared-store
    trackers and 2 shared-load trackers.
    """
    b_r = config.register_blocking
    prefetch = prefetch_registers(b_r, config.threads_per_block, config.stride)
    return RegisterBudget(
        accumulators=b_r * b_r,
        prefetch=prefetch,
        a_operands=b_r,
        b_operands=config.lds_width_bits // 32,
        global_trackers=2,
        loop_bound=1,
        shared_store_trackers=2,
        shared_load_trackers=2,
    )


def fermi_register_budget() -> RegisterBudget:
    """The exact budget of the paper's Fermi kernel (63 registers, no spills)."""
    budget = budget_for(
        SgemmConfig(register_blocking=6, lds_width_bits=64, threads_per_block=256, stride=16)
    )
    if budget.total != 63:
        raise ModelError(
            f"internal inconsistency: the Fermi budget should total 63 registers, got {budget.total}"
        )
    return budget
