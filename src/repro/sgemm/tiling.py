"""Tile geometry of the blocked SGEMM (paper Figure 1).

A block of ``T_B`` threads (arranged as a sqrt(T_B) × sqrt(T_B) grid) computes
a ``tile × tile`` sub-matrix of C with ``tile = sqrt(T_B) · B_R``; each thread
owns a ``B_R × B_R`` register tile.  Along K the computation proceeds in steps
of the stride ``L``: a ``tile × L`` slice of A and an ``L × tile`` slice of B
are staged in shared memory per step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class TileGeometry:
    """Resolved tile geometry for one kernel configuration.

    Attributes
    ----------
    threads_per_block:
        T_B, the block size.
    thread_grid:
        Edge of the square thread grid (sqrt(T_B)).
    register_blocking:
        B_R, the per-thread tile edge.
    block_tile:
        Edge of the per-block C tile.
    stride:
        L, the K-extent staged in shared memory per main-loop iteration.
    """

    threads_per_block: int
    thread_grid: int
    register_blocking: int
    block_tile: int
    stride: int

    @property
    def shared_tile_elements(self) -> int:
        """Float32 elements in one staged A or B tile (block_tile × stride)."""
        return self.block_tile * self.stride

    @property
    def shared_bytes_per_block(self) -> int:
        """Shared-memory bytes for both staged tiles."""
        return 2 * self.shared_tile_elements * 4

    @property
    def elements_per_thread_per_tile(self) -> int:
        """Global elements each thread loads per staged tile (Eq. 3 fairness)."""
        return self.shared_tile_elements // self.threads_per_block

    def grid_for(self, m: int, n: int) -> tuple[int, int]:
        """Grid dimensions (blocks_x, blocks_y) covering an m × n C matrix.

        The generated kernels require the matrix to be an exact multiple of
        the block tile (boundary handling is a documented simplification), so
        this raises when it is not.
        """
        if m <= 0 or n <= 0:
            raise ModelError("matrix dimensions must be positive")
        if m % self.block_tile or n % self.block_tile:
            raise ModelError(
                f"matrix {m}x{n} is not a multiple of the {self.block_tile}-wide block tile"
            )
        return (n // self.block_tile, m // self.block_tile)

    def k_iterations(self, k: int) -> int:
        """Number of main-loop iterations for a K extent."""
        if k <= 0 or k % self.stride:
            raise ModelError(f"K={k} must be a positive multiple of the stride {self.stride}")
        return k // self.stride


def tile_geometry(
    threads_per_block: int = 256, register_blocking: int = 6, stride: int = 16
) -> TileGeometry:
    """Build a :class:`TileGeometry`, validating the square-grid requirement."""
    if threads_per_block <= 0:
        raise ModelError("threads_per_block must be positive")
    root = math.isqrt(threads_per_block)
    if root * root != threads_per_block:
        raise ModelError("threads_per_block must be a perfect square")
    if register_blocking <= 0:
        raise ModelError("register_blocking must be positive")
    if stride <= 0:
        raise ModelError("stride must be positive")
    if (root * register_blocking * stride) % threads_per_block != 0:
        raise ModelError(
            "stride violates the equal-load condition (Eq. 3): "
            f"sqrt(T_B)*B_R*L = {root * register_blocking * stride} is not a multiple of T_B"
        )
    return TileGeometry(
        threads_per_block=threads_per_block,
        thread_grid=root,
        register_blocking=register_blocking,
        block_tile=root * register_blocking,
        stride=stride,
    )
