"""Baseline SGEMM performance models (CUBLAS- and MAGMA-like).

Figures 5-7 of the paper compare the hand-written assembly kernels against
CUBLAS (CUDA 4.1/4.2) and the MAGMA Fermi SGEMM.  Those binaries are
proprietary and tied to 2012-era drivers, so the comparison is reproduced with
*calibrated performance models*: each baseline is characterised by the
large-matrix efficiency the paper documents (≈ 70 % of peak for CUBLAS on the
GTX580, ≈ 42 % on the GTX680, MAGMA a little below CUBLAS on Fermi and a
little above on Kepler before the authors' fix), the tile size it launches,
and a small-matrix ramp derived from how many thread blocks it can spread over
the GPU.  DESIGN.md records this substitution.

The per-size curve shape follows the same mechanics as the assembly model in
:mod:`repro.sgemm.performance`: a wave-quantisation term (partial last waves
leave SMs idle) and a K-dependent loop-overhead term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.specs import GpuGeneration, GpuSpec
from repro.errors import ModelError


@dataclass(frozen=True)
class BaselinePerformanceModel:
    """A calibrated baseline library model.

    Attributes
    ----------
    name:
        Display name (e.g. ``"cublas_4.1"``).
    asymptotic_fraction_of_peak:
        Efficiency reached on large matrices, as a fraction of the GPU's
        theoretical peak.
    block_tile:
        Edge of the C tile computed per thread block.
    blocks_per_sm:
        Resident blocks per SM (controls the wave-quantisation granularity).
    loop_overhead_k:
        K value at which main-loop overheads cost ~50 % (controls the ramp for
        small/skinny matrices).
    """

    name: str
    asymptotic_fraction_of_peak: float
    block_tile: int
    blocks_per_sm: int
    loop_overhead_k: float

    def __post_init__(self) -> None:
        if not 0.0 < self.asymptotic_fraction_of_peak <= 1.0:
            raise ModelError("asymptotic efficiency must be in (0, 1]")
        if self.block_tile <= 0 or self.blocks_per_sm <= 0:
            raise ModelError("tile and residency must be positive")

    def utilisation(self, m: int, n: int, gpu: GpuSpec) -> float:
        """SM utilisation from wave quantisation for an m × n output."""
        blocks = math.ceil(m / self.block_tile) * math.ceil(n / self.block_tile)
        per_wave = self.blocks_per_sm * gpu.sm_count
        waves = math.ceil(blocks / per_wave)
        return blocks / (waves * per_wave)

    def overhead_factor(self, k: int) -> float:
        """Fraction of time spent in useful main-loop work for a K extent."""
        return k / (k + self.loop_overhead_k)

    def gflops(self, m: int, n: int, k: int, gpu: GpuSpec) -> float:
        """Predicted GFLOPS for an m × n × k SGEMM."""
        if min(m, n, k) <= 0:
            raise ModelError("matrix dimensions must be positive")
        peak = gpu.theoretical_peak_gflops
        return (
            peak
            * self.asymptotic_fraction_of_peak
            * self.utilisation(m, n, gpu)
            * self.overhead_factor(k)
        )


def cublas_model(gpu: GpuSpec) -> BaselinePerformanceModel:
    """CUBLAS model for a GPU (CUDA 4.1 on Fermi, 4.2 on Kepler, per the paper)."""
    if gpu.generation is GpuGeneration.FERMI:
        # Plateau chosen so the modelled 2400-4800 sizes land at the ~70 % of
        # peak the paper reports for CUBLAS 4.1 on the GTX580.
        return BaselinePerformanceModel(
            name="cublas_4.1",
            asymptotic_fraction_of_peak=0.72,
            block_tile=96,
            blocks_per_sm=2,
            loop_overhead_k=96.0,
        )
    if gpu.generation is GpuGeneration.KEPLER:
        # Plateau chosen so large sizes land at the ~40-42 % of peak the paper
        # reports for CUBLAS 4.2 on the GTX680 (Figure 7 shows ~1150-1250
        # GFLOPS at the right edge).
        return BaselinePerformanceModel(
            name="cublas_4.2",
            asymptotic_fraction_of_peak=0.42,
            block_tile=128,
            blocks_per_sm=4,
            loop_overhead_k=96.0,
        )
    return BaselinePerformanceModel(
        name="cublas",
        asymptotic_fraction_of_peak=0.55,
        block_tile=64,
        blocks_per_sm=2,
        loop_overhead_k=96.0,
    )


def magma_model(gpu: GpuSpec) -> BaselinePerformanceModel:
    """MAGMA Fermi-kernel model (run unchanged on Kepler, as in Figure 7).

    On Fermi MAGMA sits slightly below CUBLAS 4.1 for large sizes; on Kepler
    the nvcc-compiled MAGMA kernel spills registers and hits operand-bank
    conflicts (Section 5.5), landing well below half of CUBLAS's Fermi
    efficiency level.
    """
    if gpu.generation is GpuGeneration.FERMI:
        return BaselinePerformanceModel(
            name="magma_sgemm_fermi",
            asymptotic_fraction_of_peak=0.67,
            block_tile=96,
            blocks_per_sm=2,
            loop_overhead_k=110.0,
        )
    if gpu.generation is GpuGeneration.KEPLER:
        return BaselinePerformanceModel(
            name="magma_sgemm_fermi",
            asymptotic_fraction_of_peak=0.39,
            block_tile=96,
            blocks_per_sm=4,
            loop_overhead_k=110.0,
        )
    return BaselinePerformanceModel(
        name="magma",
        asymptotic_fraction_of_peak=0.50,
        block_tile=96,
        blocks_per_sm=2,
        loop_overhead_k=110.0,
    )
