"""End-to-end execution of generated SGEMM kernels on the simulator.

Bundles the launch plumbing the examples and tests need: allocate the
matrices in simulated global memory, build the kernel-parameter block the
generator's constant-bank convention expects, launch the kernel (one block or
a full small grid), and read back C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.specs import GpuSpec
from repro.isa.assembler import Kernel
from repro.sgemm.config import SgemmKernelConfig
from repro.sgemm.generator import (
    PARAM_A_OFFSET,
    PARAM_C_OFFSET,
    generate_sgemm_kernel,
)
from repro.sgemm.reference import expected_result, random_matrices, validate_result
from repro.sim.launch import BlockGrid
from repro.sim.memory import GlobalMemory, KernelParams
from repro.sim.results import SimResult


@dataclass
class SgemmRun:
    """Outcome of simulating an SGEMM launch.

    Attributes
    ----------
    config:
        The kernel configuration that ran.
    kernel:
        The generated kernel.
    result:
        Timing/issue statistics of the simulated blocks.
    c:
        The computed C matrix read back from simulated global memory.
    max_error:
        Maximum absolute deviation from the NumPy reference.
    """

    config: SgemmKernelConfig
    kernel: Kernel
    result: SimResult
    c: np.ndarray
    max_error: float


def build_launch(
    config: SgemmKernelConfig,
    a: np.ndarray,
    b: np.ndarray,
) -> tuple[GlobalMemory, KernelParams, BlockGrid]:
    """Allocate A/B/C in simulated memory and build the parameter block and grid."""
    memory = GlobalMemory()
    a_base = memory.allocate_array("A", np.ascontiguousarray(a, dtype=np.float32))
    b_base = memory.allocate_array("B", np.ascontiguousarray(b, dtype=np.float32))
    c_base = memory.allocate("C", config.m * config.n * 4)

    params = KernelParams()
    params.add_pointer("A", a_base)
    params.add_pointer("B", b_base)
    params.add_pointer("C", c_base)
    if params.offset_of("A") != PARAM_A_OFFSET or params.offset_of("C") != PARAM_C_OFFSET:
        # The generator hard-codes the constant-bank offsets; keep them in sync.
        raise AssertionError("kernel parameter layout drifted from the generator's convention")

    blocks_x, blocks_y = config.geometry.grid_for(config.m, config.n)
    grid = BlockGrid(
        grid_x=blocks_x, grid_y=blocks_y, block_x=config.threads_per_block, block_y=1
    )
    return memory, params, grid


def run_sgemm(
    gpu: GpuSpec,
    config: SgemmKernelConfig,
    *,
    seed: int = 0,
    blocks: list[tuple[int, int]] | None = None,
    validate: bool = True,
    max_cycles: int = 20_000_000,
) -> SgemmRun:
    """Generate, simulate and (optionally) validate an SGEMM kernel.

    Parameters
    ----------
    gpu:
        Machine description to simulate on.
    config:
        Kernel configuration (must tile the matrices exactly).
    seed:
        Seed for the random input matrices.
    blocks:
        Which blocks of the grid to simulate; ``None`` simulates all of them
        (keep the matrices small!).  When a subset is simulated, validation
        only checks the C tiles those blocks own.
    validate:
        Whether to compare against the NumPy reference.
    """
    kernel = generate_sgemm_kernel(config)
    a, b = random_matrices(config, seed=seed)
    memory, params, grid = build_launch(config, a, b)

    if blocks is None:
        blocks = grid.block_indices()
    from repro.sim.launch import LaunchConfig
    from repro.sim.sm_sim import SmSimulator

    sm = SmSimulator(gpu, kernel, global_memory=memory, params=params)
    launch = LaunchConfig(grid=grid, functional=True, max_cycles=max_cycles)
    result = sm.run(launch, block_indices=blocks)

    c = memory.read_array("C", np.float32, (config.m, config.n))
    max_error = 0.0
    if validate:
        expected = expected_result(config, a, b)
        tile = config.geometry.block_tile
        for bx, by in blocks:
            rows = slice(by * tile, (by + 1) * tile)
            cols = slice(bx * tile, (bx + 1) * tile)
            max_error = max(
                max_error, validate_result(c[rows, cols], expected[rows, cols])
            )
    return SgemmRun(config=config, kernel=kernel, result=result, c=c, max_error=max_error)
