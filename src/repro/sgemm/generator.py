"""SASS-level SGEMM kernel generator (paper Section 5).

The generator emits the kernel structure the paper describes:

* a prologue that computes all global and shared-memory addresses once and
  zero-initialises the accumulator tile;
* a software-pipelined main loop over K in steps of the stride L: the
  registers prefetched from global memory are stored to shared memory behind
  a barrier, the next tiles are prefetched (predicated off for the final
  iteration), and the fully unrolled inner loop performs, per k-step, the
  A-column and B-row shared loads (LDS.64 by default) and the B_R × B_R FFMA
  outer product — giving exactly the FFMA:LDS ratio the analysis predicts;
* an epilogue that scales by alpha and stores the C tile.

Register usage follows the Section 5.2 budget (63 registers, zero spills for
the 6-register-blocking configuration) and the main-loop operands use either
the bank-conflict-free allocation of Figure 9 or a naive sequential
allocation, so the Figure 8 comparison can be regenerated.

Kernels are specialised for concrete (M, N, K, alpha): leading dimensions are
folded into immediate offsets, which keeps the address arithmetic identical in
shape to the hand-written kernels while avoiding integer-division code.  This
*hand* generator still requires M and N to be multiples of the block tile and
K a multiple of the stride (matching the paper's evaluation sizes); for
arbitrary problem sizes use the schedule-derived ``tile_sgemm`` workload,
whose ``predicate_tail`` guards lower boundary tiles to clipped staging and
predicated epilogue stores (see :mod:`repro.tile`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelGenerationError
from repro.isa.assembler import Kernel
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import MemRef
from repro.isa.registers import Register, SpecialRegister, predicate
from repro.sgemm.config import SgemmKernelConfig
from repro.sgemm.register_allocation import (
    RegisterAllocation,
    allocate_conflict_free,
    allocate_naive,
)

#: Constant-bank offsets at which the kernel expects its pointer parameters.
PARAM_A_OFFSET = 0x20
PARAM_B_OFFSET = 0x24
PARAM_C_OFFSET = 0x28


@dataclass(frozen=True)
class _RegisterPlan:
    """Physical register assignment for everything outside the FFMA operands."""

    allocation: RegisterAllocation
    prefetch_a: tuple[Register, ...]
    prefetch_b: tuple[Register, ...]
    global_a: Register
    global_b: Register
    shared_store_a: Register
    shared_store_b: Register
    shared_read_a: Register
    shared_read_b: Register
    loop_counter: Register

    def register_count(self) -> int:
        """1 + highest register index used by the plan."""
        highest = max(r.index for r in self.all_registers())
        return highest + 1

    def all_registers(self) -> list[Register]:
        """Every register the plan assigns."""
        registers = list(self.allocation.all_registers())
        registers.extend(self.prefetch_a)
        registers.extend(self.prefetch_b)
        registers.extend(
            [
                self.global_a,
                self.global_b,
                self.shared_store_a,
                self.shared_store_b,
                self.shared_read_a,
                self.shared_read_b,
                self.loop_counter,
            ]
        )
        return registers


class SgemmKernelGenerator:
    """Generates one specialised SGEMM kernel from a :class:`SgemmKernelConfig`."""

    def __init__(self, config: SgemmKernelConfig) -> None:
        self._config = config
        self._geometry = config.geometry
        if self._geometry.thread_grid * self._geometry.thread_grid != config.threads_per_block:
            raise KernelGenerationError("threads_per_block must be a perfect square")
        grid = self._geometry.thread_grid
        if grid & (grid - 1):
            raise KernelGenerationError(
                "the generator decomposes the thread index with shift/mask, so the thread "
                f"grid edge must be a power of two (got {grid})"
            )
        if config.register_blocking < 3:
            raise KernelGenerationError(
                "register blocking factors below 3 leave too few accumulator registers "
                "for the prologue scratch values; use the analytic model for such points"
            )

    @property
    def config(self) -> SgemmKernelConfig:
        """The configuration being generated."""
        return self._config

    # ------------------------------------------------------------------ #
    # Register planning.                                                   #
    # ------------------------------------------------------------------ #

    def plan_registers(self) -> _RegisterPlan:
        """Assign physical registers to every value the kernel keeps live."""
        config = self._config
        b_operands = max(1, config.lds_width_bits // 32)
        if config.conflict_free_allocation:
            allocation = allocate_conflict_free(config.register_blocking, b_operands)
        else:
            allocation = allocate_naive(config.register_blocking, b_operands)

        used = {r.index for r in allocation.all_registers()}
        free = [index for index in range(0, 63) if index not in used]
        elements = self._geometry.elements_per_thread_per_tile
        needed = 2 * elements + 7
        if len(free) < needed:
            raise KernelGenerationError(
                f"register file exhausted: need {needed} bookkeeping registers, "
                f"only {len(free)} remain after the operand allocation"
            )
        cursor = 0

        def take(count: int) -> tuple[Register, ...]:
            nonlocal cursor
            taken = tuple(Register(index) for index in free[cursor : cursor + count])
            cursor += count
            return taken

        prefetch_a = take(elements)
        prefetch_b = take(elements)
        (global_a,) = take(1)
        (global_b,) = take(1)
        (shared_store_a,) = take(1)
        (shared_store_b,) = take(1)
        (shared_read_a,) = take(1)
        (shared_read_b,) = take(1)
        (loop_counter,) = take(1)
        return _RegisterPlan(
            allocation=allocation,
            prefetch_a=prefetch_a,
            prefetch_b=prefetch_b,
            global_a=global_a,
            global_b=global_b,
            shared_store_a=shared_store_a,
            shared_store_b=shared_store_b,
            shared_read_a=shared_read_a,
            shared_read_b=shared_read_b,
            loop_counter=loop_counter,
        )

    # ------------------------------------------------------------------ #
    # Address arithmetic helpers.                                          #
    # ------------------------------------------------------------------ #

    def _global_a_strides(self) -> tuple[int, int, int, int]:
        """(row-term, k-term, per-element stride, per-iteration step) for op(A).

        The thread's first A element sits at
        ``A + (row_term · (by·tile + ty·B_R) + k_term · tx) · 4`` and its
        ``elements_per_thread`` loads are ``per-element stride`` bytes apart;
        every main-loop iteration advances the pointer by ``step`` bytes.
        """
        config = self._config
        if config.variant.transpose_a:
            # op(A)[i][k] = A[k][i], A stored K × M row-major.
            row_term = 4                      # moving down op(A) rows moves along A's columns
            k_term = config.m * 4             # moving along k jumps A rows
            element_stride = 4
            step = self._geometry.stride * config.m * 4
        else:
            row_term = config.k * 4
            k_term = 4
            element_stride = config.k * 4
            step = self._geometry.stride * 4
        return row_term, k_term, element_stride, step

    def _global_b_strides(self) -> tuple[int, int, int, int]:
        """(col-term, k-term, per-element stride, per-iteration step) for op(B)."""
        config = self._config
        if config.variant.transpose_b:
            # op(B)[k][j] = B[j][k], B stored N × K row-major.
            col_term = config.k * 4
            k_term = 4
            element_stride = config.k * 4
            step = self._geometry.stride * 4
        else:
            col_term = 4
            k_term = config.n * 4
            element_stride = 4
            step = self._geometry.stride * config.n * 4
        return col_term, k_term, element_stride, step

    # ------------------------------------------------------------------ #
    # Kernel generation.                                                   #
    # ------------------------------------------------------------------ #

    def generate(self) -> Kernel:
        """Generate and assemble the kernel."""
        config = self._config
        geometry = self._geometry
        plan = self.plan_registers()
        tile = geometry.block_tile
        b_r = config.register_blocking
        stride = geometry.stride
        shared_b_base = tile * stride * 4

        builder = KernelBuilder(
            name=config.kernel_name,
            shared_memory_bytes=2 * tile * stride * 4,
            threads_per_block=config.threads_per_block,
            metadata={
                "variant": config.variant.value,
                "register_blocking": b_r,
                "lds_width_bits": config.lds_width_bits,
                "m": config.m,
                "n": config.n,
                "k": config.k,
                "conflict_free_allocation": config.conflict_free_allocation,
            },
        )

        # Prologue scratch registers: accumulators are not live yet, so the
        # first few accumulator registers hold tid/tx/ty/bx/by temporarily.
        acc = plan.allocation.accumulators
        flat_acc = [register for row in acc for register in row]
        tid, tx, ty, bx, by = flat_acc[:5]

        builder.s2r(tid, SpecialRegister.TID_X)
        builder.s2r(bx, SpecialRegister.CTAID_X)
        builder.s2r(by, SpecialRegister.CTAID_Y)
        builder.lop_and(tx, tid, geometry.thread_grid - 1)
        builder.shr(ty, tid, geometry.thread_grid.bit_length() - 1)

        # Global pointer for op(A): A + (row_term·(by·tile + tx·B_R) + k_term·ty).
        # The staging assignment intentionally uses tx for the row group and ty
        # for the k column: the resulting shared-memory store addresses are 24
        # bytes apart across a warp's lanes, which avoids the 16-way bank
        # conflict a ty-major assignment would cause (paper §5.1: "proper
        # padding needs to be applied" — our layout achieves the same effect
        # by choosing the staging order instead of padding).
        a_row_term, a_k_term, a_elem_stride, a_step = self._global_a_strides()
        builder.mov(plan.global_a, self._const(PARAM_A_OFFSET))
        builder.imad(plan.global_a, by, tile * a_row_term, plan.global_a)
        builder.imad(plan.global_a, tx, b_r * a_row_term, plan.global_a)
        builder.imad(plan.global_a, ty, a_k_term, plan.global_a)

        # Global pointer for op(B): B + (col_term·(bx·tile + tx·B_R) + k_term·ty).
        b_col_term, b_k_term, b_elem_stride, b_step = self._global_b_strides()
        builder.mov(plan.global_b, self._const(PARAM_B_OFFSET))
        builder.imad(plan.global_b, bx, tile * b_col_term, plan.global_b)
        builder.imad(plan.global_b, tx, b_r * b_col_term, plan.global_b)
        builder.imad(plan.global_b, ty, b_k_term, plan.global_b)

        # Shared-memory store addresses: As[k=ty][i=tx·B_R + j], Bs[k=ty][c=tx·B_R + j].
        builder.imul(plan.shared_store_a, ty, tile * 4)
        builder.imad(plan.shared_store_a, tx, b_r * 4, plan.shared_store_a)
        builder.imul(plan.shared_store_b, ty, tile * 4)
        builder.imad(plan.shared_store_b, tx, b_r * 4, plan.shared_store_b)
        builder.iadd(plan.shared_store_b, plan.shared_store_b, shared_b_base)

        # Shared-memory read addresses: A column at rows ty·B_R…, B row at cols tx·B_R….
        builder.imul(plan.shared_read_a, ty, b_r * 4)
        builder.imul(plan.shared_read_b, tx, b_r * 4)
        builder.iadd(plan.shared_read_b, plan.shared_read_b, shared_b_base)

        # Loop counter.
        iterations = geometry.k_iterations(config.k)
        builder.mov32i(plan.loop_counter, iterations)

        # First global prefetch (unconditional).
        self._emit_global_prefetch(builder, plan, a_elem_stride, b_elem_stride, guarded=False)

        # Zero the accumulators (this also ends the scratch lifetime of tid/tx/ty/bx/by —
        # every address they fed is already materialised above).
        for row in acc:
            for register in row:
                builder.mov32i(register, 0.0)

        loop_label = builder.label("MAIN_LOOP")

        # Stage the prefetched tiles into shared memory.
        builder.bar(0)
        for j, register in enumerate(plan.prefetch_a):
            builder.sts(MemRef(base=plan.shared_store_a, offset=4 * j), register)
        for j, register in enumerate(plan.prefetch_b):
            builder.sts(MemRef(base=plan.shared_store_b, offset=4 * j), register)
        builder.bar(0)

        # Advance the global pointers and prefetch the next tiles (guarded so the
        # final iteration does not read past the matrices).
        builder.iadd(plan.global_a, plan.global_a, a_step)
        builder.iadd(plan.global_b, plan.global_b, b_step)
        builder.iadd(plan.loop_counter, plan.loop_counter, -1)
        p_more = predicate(1)
        builder.isetp(p_more, "GT", plan.loop_counter, 0)
        self._emit_global_prefetch(
            builder, plan, a_elem_stride, b_elem_stride, guarded=True, guard=p_more
        )

        # The fully unrolled compute loop over the staged K-slice.
        self._emit_inner_loop(builder, plan, tile)

        p_loop = predicate(0)
        builder.isetp(p_loop, "GT", plan.loop_counter, 0)
        builder.bra(loop_label, predicate=p_loop)

        # Epilogue: compute the C addresses (reusing prefetch registers as scratch)
        # and store the accumulator tile.
        self._emit_epilogue(builder, plan)
        builder.exit()

        kernel = builder.build()
        if kernel.register_count > 63:
            raise KernelGenerationError(
                f"generated kernel uses {kernel.register_count} registers, beyond the 63-register limit"
            )
        return kernel

    # ------------------------------------------------------------------ #
    # Internal emission helpers.                                           #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _const(offset: int):
        from repro.isa.instructions import ConstRef

        return ConstRef(bank=0, offset=offset)

    def _emit_global_prefetch(
        self,
        builder: KernelBuilder,
        plan: _RegisterPlan,
        a_elem_stride: int,
        b_elem_stride: int,
        *,
        guarded: bool,
        guard=None,
    ) -> None:
        """Emit the global-memory loads filling the prefetch registers."""
        def emit() -> None:
            for j, register in enumerate(plan.prefetch_a):
                builder.ld(register, MemRef(base=plan.global_a, offset=j * a_elem_stride))
            for j, register in enumerate(plan.prefetch_b):
                builder.ld(register, MemRef(base=plan.global_b, offset=j * b_elem_stride))

        if guarded:
            with builder.guarded(guard):
                emit()
        else:
            emit()

    def _emit_inner_loop(self, builder: KernelBuilder, plan: _RegisterPlan, tile: int) -> None:
        """Emit the unrolled k-loop: A-column/B-row loads and the FFMA outer product."""
        config = self._config
        b_r = config.register_blocking
        allocation = plan.allocation
        lds_width = config.lds_width_bits
        words = lds_width // 32
        for kk in range(self._geometry.stride):
            row_offset = kk * tile * 4
            # Load the A column for this k-step.  With LDS.64 the column is
            # fetched in register pairs (the allocator guarantees consecutive
            # pair registers); an odd final element falls back to a 32-bit LDS.
            if words == 2:
                element = 0
                while element < b_r:
                    if element + 1 < b_r:
                        builder.lds(
                            allocation.a_column[element],
                            MemRef(base=plan.shared_read_a, offset=row_offset + element * 4),
                            width=64,
                        )
                        element += 2
                    else:
                        builder.lds(
                            allocation.a_column[element],
                            MemRef(base=plan.shared_read_a, offset=row_offset + element * 4),
                            width=32,
                        )
                        element += 1
            else:
                for i in range(b_r):
                    builder.lds(
                        allocation.a_column[i],
                        MemRef(base=plan.shared_read_a, offset=row_offset + i * 4),
                        width=32,
                    )
            # Walk the B row in windows of `words` elements, multiplying each
            # window against the whole A column (the paper's 2-register B scheme).
            # With 32-bit loads the destination alternates between the two B
            # registers so consecutive FFMAs keep conflict-free operand banks.
            for window_index, window in enumerate(range(0, b_r, words)):
                window_width = lds_width
                if words == 2 and window + 1 < b_r:
                    window_registers = allocation.b_row
                else:
                    # Single-element window (32-bit LDS or the odd tail of an
                    # odd blocking factor): alternate the destination register.
                    window_registers = (allocation.b_row[window_index % len(allocation.b_row)],)
                    window_width = 32
                builder.lds(
                    window_registers[0],
                    MemRef(base=plan.shared_read_b, offset=row_offset + window * 4),
                    width=window_width,
                )
                for q in range(words):
                    column = window + q
                    if column >= b_r:
                        break
                    b_register = window_registers[q]
                    for i in range(b_r):
                        accumulator = allocation.accumulators[i][column]
                        builder.ffma(accumulator, allocation.a_column[i], b_register, accumulator)

    def _emit_epilogue(self, builder: KernelBuilder, plan: _RegisterPlan) -> None:
        """Emit the alpha scaling and the C-tile stores."""
        config = self._config
        geometry = self._geometry
        b_r = config.register_blocking
        tile = geometry.block_tile
        allocation = plan.allocation

        # Recompute tx/ty/bx/by into bookkeeping registers whose main-loop role is over.
        scratch = list(plan.prefetch_a) + list(plan.prefetch_b) + [
            plan.shared_store_a,
            plan.shared_store_b,
            plan.shared_read_a,
            plan.shared_read_b,
        ]
        tid, tx, ty, bx, by = scratch[:5]
        c_pointer = plan.global_a  # the A tracker is dead after the main loop
        builder.s2r(tid, SpecialRegister.TID_X)
        builder.s2r(bx, SpecialRegister.CTAID_X)
        builder.s2r(by, SpecialRegister.CTAID_Y)
        builder.lop_and(tx, tid, geometry.thread_grid - 1)
        builder.shr(ty, tid, geometry.thread_grid.bit_length() - 1)

        # C + ((by·tile + ty·B_R)·N + bx·tile + tx·B_R) · 4
        builder.mov(c_pointer, self._const(PARAM_C_OFFSET))
        builder.imad(c_pointer, by, tile * config.n * 4, c_pointer)
        builder.imad(c_pointer, ty, b_r * config.n * 4, c_pointer)
        builder.imad(c_pointer, bx, tile * 4, c_pointer)
        builder.imad(c_pointer, tx, b_r * 4, c_pointer)

        apply_alpha = abs(config.alpha - 1.0) > 1e-12
        for i in range(b_r):
            for j in range(b_r):
                accumulator = allocation.accumulators[i][j]
                if apply_alpha:
                    builder.fmul(accumulator, accumulator, float(config.alpha))
                builder.st(
                    MemRef(base=c_pointer, offset=(i * config.n + j) * 4),
                    accumulator,
                )


def generate_sgemm_kernel(config: SgemmKernelConfig) -> Kernel:
    """Generate one specialised SGEMM kernel.

    With ``config.conflict_free_allocation`` set this emits the hand-crafted
    Figure 9 allocation directly — the *golden reference* the optimization
    pipeline is validated against.  The production path for optimized kernels
    is :func:`generate_optimized_sgemm_kernel`, which starts from the naive
    allocation and lets :mod:`repro.opt` recolor and reschedule it.
    """
    return SgemmKernelGenerator(config).generate()


def generate_naive_sgemm_kernel(config: SgemmKernelConfig) -> Kernel:
    """Generate the bank-oblivious (compiler-like) kernel for ``config``.

    This is the pipeline's input: the same code structure as the optimized
    kernel but with the sequential register allocation whose conflicts
    Figure 8 quantifies, and no scheduling effort beyond program order.
    """
    from dataclasses import replace

    return SgemmKernelGenerator(
        replace(config, conflict_free_allocation=False)
    ).generate()


def generate_optimized_sgemm_kernel(
    config: SgemmKernelConfig,
    gpu=None,
    **pipeline_kwargs,
):
    """Generate a naive kernel and optimize it through :mod:`repro.opt`.

    Emits the naive-allocation kernel for ``config`` and runs the default
    optimization pipeline (register reallocation, latency-aware scheduling
    and — on Kepler — control-notation assignment) over it.

    Parameters
    ----------
    config:
        Kernel configuration; ``conflict_free_allocation`` is ignored (the
        pipeline always starts from the naive allocation).
    gpu:
        Optional :class:`~repro.arch.specs.GpuSpec` the pipeline targets.
    pipeline_kwargs:
        Forwarded to :func:`repro.opt.pipeline.default_pipeline`
        (``reallocate=``, ``schedule=``, ``control_hints=``, ``options=``).

    Returns
    -------
    tuple[Kernel, "repro.opt.pipeline.PipelineResult"]
        The optimized kernel and the per-pass report.
    """
    # Imported lazily: repro.opt.autotune imports this module, and the
    # generator must stay importable without pulling the whole opt package.
    from repro.opt.pipeline import optimize_kernel

    naive = generate_naive_sgemm_kernel(config)
    result = optimize_kernel(naive, gpu, **pipeline_kwargs)
    return result.kernel, result
