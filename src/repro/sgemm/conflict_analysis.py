"""Static FFMA register-bank-conflict analysis (paper Figure 8).

Figure 8 compares, for several SGEMM binaries, the fraction of FFMA
instructions whose distinct source registers collide on a register bank
(2-way or 3-way).  The analyser below walks an assembled kernel, classifies
every FFMA, and produces the same three-way breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.register_file import _BANK_CODE_BY_RESIDUE
from repro.isa.assembler import Kernel


@dataclass(frozen=True)
class ConflictReport:
    """Breakdown of FFMA operand-bank conflicts for one kernel.

    Attributes
    ----------
    kernel_name:
        Name of the analysed kernel.
    ffma_count:
        Number of FFMA instructions analysed.
    no_conflict:
        FFMAs whose distinct sources sit on distinct banks.
    two_way:
        FFMAs with a 2-way bank conflict.
    three_way:
        FFMAs with a 3-way (or worse) bank conflict.
    """

    kernel_name: str
    ffma_count: int
    no_conflict: int
    two_way: int
    three_way: int

    @property
    def no_conflict_fraction(self) -> float:
        """Fraction of FFMAs without a conflict (0 when there are no FFMAs)."""
        return self.no_conflict / self.ffma_count if self.ffma_count else 0.0

    @property
    def two_way_fraction(self) -> float:
        """Fraction of FFMAs with a 2-way conflict."""
        return self.two_way / self.ffma_count if self.ffma_count else 0.0

    @property
    def three_way_fraction(self) -> float:
        """Fraction of FFMAs with a 3-way conflict."""
        return self.three_way / self.ffma_count if self.ffma_count else 0.0

    def as_percentages(self) -> dict[str, float]:
        """Figure-8 style percentage breakdown."""
        return {
            "no_conflict": 100.0 * self.no_conflict_fraction,
            "two_way": 100.0 * self.two_way_fraction,
            "three_way": 100.0 * self.three_way_fraction,
        }


def analyse_ffma_conflicts(kernel: Kernel) -> ConflictReport:
    """Classify every FFMA of ``kernel`` by operand register-bank conflict degree.

    Memoized per kernel instance: the optimization pipeline and the autotuner
    both analyse the same (immutable) kernel several times.
    """
    cached = kernel.__dict__.get("_ffma_conflict_report")
    if cached is not None:
        return cached
    ffma_count = 0
    no_conflict = 0
    two_way = 0
    three_way = 0
    codes = _BANK_CODE_BY_RESIDUE
    for instruction in kernel.instructions:
        if not instruction.is_ffma:
            continue
        ffma_count += 1
        # Duplicate sources never conflict with themselves, hence the set;
        # the counting loop inlines ``bank_conflict_degree`` for speed.
        counts = [0, 0, 0, 0]
        for reg in set(instruction.source_register_indices):
            if reg >= 0:
                counts[codes[reg % 8]] += 1
        degree = max(counts)
        if degree <= 1:
            no_conflict += 1
        elif degree == 2:
            two_way += 1
        else:
            three_way += 1
    report = ConflictReport(
        kernel_name=kernel.name,
        ffma_count=ffma_count,
        no_conflict=no_conflict,
        two_way=two_way,
        three_way=three_way,
    )
    kernel.__dict__["_ffma_conflict_report"] = report
    return report


def format_conflict_table(reports: list[ConflictReport]) -> str:
    """Render several conflict reports as an aligned text table (Figure 8)."""
    header = f"{'kernel':44s} {'FFMAs':>7s} {'none %':>8s} {'2-way %':>8s} {'3-way %':>8s}"
    lines = [header, "-" * len(header)]
    for report in reports:
        pct = report.as_percentages()
        lines.append(
            f"{report.kernel_name:44s} {report.ffma_count:7d} "
            f"{pct['no_conflict']:8.1f} {pct['two_way']:8.1f} {pct['three_way']:8.1f}"
        )
    return "\n".join(lines)
