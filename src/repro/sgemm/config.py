"""Kernel-level configuration of the generated SGEMM kernels."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import KernelGenerationError
from repro.sgemm.tiling import TileGeometry, tile_geometry


class SgemmVariant(str, Enum):
    """The four GEMM transpose variants (op(A) · op(B))."""

    NN = "NN"
    NT = "NT"
    TN = "TN"
    TT = "TT"

    @property
    def transpose_a(self) -> bool:
        """Whether op(A) = A^T."""
        return self.value[0] == "T"

    @property
    def transpose_b(self) -> bool:
        """Whether op(B) = B^T."""
        return self.value[1] == "T"


@dataclass(frozen=True)
class SgemmKernelConfig:
    """Everything the kernel generator needs for one specialisation.

    The generator specialises kernels for concrete matrix dimensions (M, N, K
    and alpha are baked into the address arithmetic and the epilogue), which
    keeps the generated SASS close to the structure the paper describes while
    avoiding integer-division address code.  The matrices must tile exactly:
    M and N multiples of the block tile, K a multiple of the stride.

    Attributes
    ----------
    m, n, k:
        GEMM dimensions: C (m × n) += alpha · op(A) (m × k) · op(B) (k × n).
    variant:
        Transpose variant (NN, NT, TN, TT).
    register_blocking:
        B_R — per-thread tile edge.
    threads_per_block:
        T_B — must be a perfect square.
    stride:
        L — K-extent staged per main-loop iteration.
    lds_width_bits:
        Width of the shared-memory operand loads in the main loop.
    alpha:
        Scalar multiplier applied in the epilogue.
    conflict_free_allocation:
        Whether to use the bank-conflict-free register allocation of Fig 9
        (True) or the naive sequential allocation (False, MAGMA-like).
    """

    m: int
    n: int
    k: int
    variant: SgemmVariant = SgemmVariant.NN
    register_blocking: int = 6
    threads_per_block: int = 256
    stride: int = 16
    lds_width_bits: int = 64
    alpha: float = 1.0
    conflict_free_allocation: bool = True

    def __post_init__(self) -> None:
        if self.lds_width_bits not in (32, 64):
            raise KernelGenerationError(
                "the kernel generator supports LDS and LDS.64 operand fetch "
                f"(got {self.lds_width_bits}-bit)"
            )
        geometry = self.geometry  # validates blocking/threads/stride consistency
        if self.m % geometry.block_tile or self.n % geometry.block_tile:
            raise KernelGenerationError(
                f"M={self.m}, N={self.n} must be multiples of the block tile "
                f"{geometry.block_tile}"
            )
        if self.k % self.stride:
            raise KernelGenerationError(
                f"K={self.k} must be a multiple of the stride {self.stride}"
            )

    @property
    def geometry(self) -> TileGeometry:
        """The resolved tile geometry."""
        return tile_geometry(
            threads_per_block=self.threads_per_block,
            register_blocking=self.register_blocking,
            stride=self.stride,
        )

    @property
    def useful_flops(self) -> int:
        """The GEMM's useful floating-point work, 2·m·n·k."""
        return 2 * self.m * self.n * self.k

    @property
    def kernel_name(self) -> str:
        """Descriptive kernel name embedding the key parameters."""
        allocation = "cf" if self.conflict_free_allocation else "naive"
        return (
            f"sgemm_{self.variant.value.lower()}_b{self.register_blocking}"
            f"_t{self.threads_per_block}_l{self.stride}_{allocation}"
            f"_{self.m}x{self.n}x{self.k}"
        )
