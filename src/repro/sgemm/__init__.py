"""SGEMM kernels, register allocation and baselines.

This package is the executable counterpart of the paper's Section 5: a
parametric SASS-level SGEMM kernel generator (register blocking, shared-memory
tiling, global-memory prefetching, LDS.64 operand fetch), the register budget
accounting of Section 5.2, the bank-conflict-free register allocation of
Section 5.4 / Figure 9, the static conflict analyzer behind Figure 8, and the
CUBLAS/MAGMA-like baselines used for Figures 5-7.

SGEMM is also the first entry of the workload registry
(:mod:`repro.kernels`); :func:`workload` returns that registration, and the
functions exported here remain the thin, SGEMM-named wrappers around the
same machinery.
"""

from repro.sgemm.tiling import TileGeometry, tile_geometry
from repro.sgemm.config import SgemmKernelConfig, SgemmVariant
from repro.sgemm.register_budget import RegisterBudget, fermi_register_budget
from repro.sgemm.register_allocation import (
    RegisterAllocation,
    allocate_conflict_free,
    allocate_naive,
)
from repro.sgemm.conflict_analysis import ConflictReport, analyse_ffma_conflicts
from repro.sgemm.generator import (
    SgemmKernelGenerator,
    generate_naive_sgemm_kernel,
    generate_optimized_sgemm_kernel,
    generate_sgemm_kernel,
)
from repro.sgemm.reference import reference_sgemm, random_matrices, validate_result
from repro.sgemm.baselines import BaselinePerformanceModel, cublas_model, magma_model
from repro.sgemm.performance import (
    AsmPerformanceModel,
    PerformancePoint,
    performance_curve,
)


def workload():
    """SGEMM's :class:`~repro.kernels.base.Workload` registration.

    Imported lazily — :mod:`repro.kernels` depends on this package, so the
    registry cannot be imported at module load time.
    """
    from repro.kernels.registry import get_workload

    return get_workload("sgemm")

__all__ = [
    "TileGeometry",
    "tile_geometry",
    "SgemmKernelConfig",
    "SgemmVariant",
    "RegisterBudget",
    "fermi_register_budget",
    "RegisterAllocation",
    "allocate_conflict_free",
    "allocate_naive",
    "ConflictReport",
    "analyse_ffma_conflicts",
    "SgemmKernelGenerator",
    "generate_naive_sgemm_kernel",
    "generate_optimized_sgemm_kernel",
    "generate_sgemm_kernel",
    "reference_sgemm",
    "random_matrices",
    "validate_result",
    "BaselinePerformanceModel",
    "cublas_model",
    "magma_model",
    "AsmPerformanceModel",
    "PerformancePoint",
    "performance_curve",
    "workload",
]
