"""Kernel launch descriptors (grid/block geometry)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

WARP_SIZE = 32


@dataclass(frozen=True)
class BlockGrid:
    """A 2D grid of 2D blocks (the shapes SGEMM and the micro-benchmarks use).

    Attributes
    ----------
    grid_x, grid_y:
        Number of blocks along each grid dimension.
    block_x, block_y:
        Number of threads along each block dimension.
    """

    grid_x: int
    grid_y: int = 1
    block_x: int = 1
    block_y: int = 1

    def __post_init__(self) -> None:
        for name in ("grid_x", "grid_y", "block_x", "block_y"):
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be positive")

    @property
    def threads_per_block(self) -> int:
        """Number of threads in one block."""
        return self.block_x * self.block_y

    @property
    def warps_per_block(self) -> int:
        """Number of warps in one block (rounded up)."""
        return -(-self.threads_per_block // WARP_SIZE)

    @property
    def block_count(self) -> int:
        """Total number of blocks in the grid."""
        return self.grid_x * self.grid_y

    @property
    def total_threads(self) -> int:
        """Total number of threads in the launch."""
        return self.block_count * self.threads_per_block

    def block_indices(self) -> list[tuple[int, int]]:
        """All (blockIdx.x, blockIdx.y) pairs in launch order."""
        return [(bx, by) for by in range(self.grid_y) for bx in range(self.grid_x)]


@dataclass(frozen=True)
class LaunchConfig:
    """Everything needed to launch a kernel on the simulator.

    Attributes
    ----------
    grid:
        Grid/block geometry.
    shared_memory_bytes:
        Dynamic shared memory per block (added to the kernel's static amount).
    max_cycles:
        Safety limit on simulated cycles per SM.
    functional:
        Whether to execute instructions functionally (needed for numerical
        validation; can be disabled for pure timing runs).
    """

    grid: BlockGrid
    shared_memory_bytes: int = 0
    max_cycles: int = 5_000_000
    functional: bool = True
