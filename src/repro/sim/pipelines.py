"""Timing parameters and pipeline occupancy model.

The timing model is deliberately simple and throughput-oriented, because the
paper's analysis is about *sustained* throughput of mixed instruction streams:

* each SM has an **issue** budget of ``issue_per_cycle`` thread instructions
  per shader cycle (32 on Fermi, ~132 effective on Kepler);
* the **SP pipe** accepts FFMA/ALU warp instructions at a rate given by the
  SP count (one warp instruction costs ``32 / sp_count`` pipe-cycles);
* the **LD/ST pipe** accepts shared/global memory warp instructions at a
  width-dependent rate measured in Section 4.1 of the paper (an LDS.X warp
  instruction costs ``32 / lds_throughput(width)`` pipe-cycles, multiplied by
  any shared-memory bank-conflict replay factor);
* destination registers become ready ``latency`` cycles after issue, which is
  what makes the throughput sensitive to the number of active warps (Fig 4);
* on Kepler, an FFMA whose distinct source registers collide on a register
  bank consumes proportionally more issue bandwidth (Section 3.3 / Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.register_file import bank_conflict_degree
from repro.arch.specs import GpuGeneration, GpuSpec
from repro.isa.instructions import Instruction, Opcode


@dataclass(frozen=True)
class LatencyTable:
    """Result latencies (in shader cycles) per instruction class."""

    math: float
    shared_load: float
    global_load: float
    global_store: float = 4.0
    shared_store: float = 4.0
    control: float = 1.0

    def latency_for(self, instruction: Instruction) -> float:
        """Latency before the destination of ``instruction`` becomes readable."""
        if instruction.is_shared_load:
            return self.shared_load
        if instruction.is_global_load:
            return self.global_load
        if instruction.is_shared_store:
            return self.shared_store
        if instruction.is_global_store:
            return self.global_store
        if instruction.is_control:
            return self.control
        return self.math


def latency_table_for(gpu: GpuSpec) -> LatencyTable:
    """Default latencies for a GPU generation.

    The absolute values follow published micro-benchmarking studies of the two
    architectures (math latency ≈ 18–22 cycles on Fermi, ≈ 9–11 on Kepler;
    shared loads in the 30-cycle range; global loads several hundred cycles).
    The model only needs them to be in the right regime: they control how many
    active warps are required to reach peak throughput (paper Fig 4).
    """
    if gpu.generation is GpuGeneration.KEPLER:
        return LatencyTable(math=9.0, shared_load=33.0, global_load=300.0)
    if gpu.generation is GpuGeneration.FERMI:
        return LatencyTable(math=18.0, shared_load=36.0, global_load=450.0)
    return LatencyTable(math=24.0, shared_load=38.0, global_load=500.0)


@dataclass
class PipelineState:
    """Occupancy trackers for one SM's execution pipes."""

    sp_free_at: float = 0.0
    ldst_free_at: float = 0.0

    def sp_available(self, cycle: float, lookahead: float = 1.0) -> bool:
        """Whether the SP pipe can accept work issued at ``cycle``."""
        return self.sp_free_at < cycle + lookahead

    def ldst_available(self, cycle: float, lookahead: float = 1.0) -> bool:
        """Whether the LD/ST pipe can accept work issued at ``cycle``."""
        return self.ldst_free_at < cycle + lookahead

    def occupy_sp(self, cycle: float, cost: float) -> None:
        """Consume ``cost`` pipe-cycles of the SP pipe starting at ``cycle``."""
        self.sp_free_at = max(self.sp_free_at, cycle) + cost

    def occupy_ldst(self, cycle: float, cost: float) -> None:
        """Consume ``cost`` pipe-cycles of the LD/ST pipe starting at ``cycle``."""
        self.ldst_free_at = max(self.ldst_free_at, cycle) + cost


class CostModel:
    """Converts instructions into issue/pipe costs for a particular GPU."""

    def __init__(self, gpu: GpuSpec) -> None:
        self._gpu = gpu
        self._latencies = latency_table_for(gpu)

    @property
    def gpu(self) -> GpuSpec:
        """The machine description this cost model is bound to."""
        return self._gpu

    @property
    def latencies(self) -> LatencyTable:
        """The latency table in use."""
        return self._latencies

    @property
    def issue_capacity_per_cycle(self) -> float:
        """Thread instructions the SM can issue per shader cycle."""
        return self._gpu.issue.issue_per_cycle

    def operand_bank_multiplier(self, instruction: Instruction) -> float:
        """Issue-cost multiplier caused by operand register-bank conflicts.

        On Kepler, an FFMA whose three distinct source registers include two
        (three) registers on the same bank runs at 1/2 (1/3) throughput, which
        the model charges as a 2× (3×) issue cost.  Fermi and GT200 do not
        show the effect in the paper's measurements.
        """
        if not self._gpu.register_file.has_operand_bank_conflicts:
            return 1.0
        if instruction.opcode not in (Opcode.FFMA, Opcode.FADD, Opcode.FMUL, Opcode.IMAD):
            return 1.0
        degree = bank_conflict_degree(list(instruction.source_register_indices))
        return float(degree)

    def issue_cost_threads(self, instruction: Instruction, smem_replays: int = 1) -> float:
        """Issue-bandwidth cost of one warp instruction, in thread instructions.

        Shared-memory bank-conflict replays are charged to the LD/ST pipe (see
        :meth:`ldst_cost_cycles`), not to issue bandwidth — replayed accesses
        occupy the memory pipeline, they do not consume scheduler slots again.
        """
        del smem_replays  # replays are charged to the LD/ST pipe
        return 32.0 * self.operand_bank_multiplier(instruction)

    def sp_cost_cycles(self, instruction: Instruction) -> float:
        """SP-pipe occupancy of one warp instruction, in pipe-cycles."""
        if not instruction.is_math:
            return 0.0
        return 32.0 / float(self._gpu.sm.sp_count)

    def ldst_cost_cycles(self, instruction: Instruction, smem_replays: int = 1) -> float:
        """LD/ST-pipe occupancy of one warp instruction, in pipe-cycles.

        Shared-memory instructions use the measured width-dependent LDS
        throughput; global-memory instructions use the LD/ST unit count.  Bank
        conflicts multiply the occupancy by the replay count.
        """
        if not instruction.is_memory:
            return 0.0
        if instruction.memory_space is not None and instruction.is_shared_load:
            throughput = self._gpu.issue.lds_throughput(instruction.width)
        elif instruction.is_shared_store:
            throughput = self._gpu.issue.lds_throughput(instruction.width)
        else:
            throughput = float(self._gpu.sm.ldst_units)
        return (32.0 / throughput) * max(1, smem_replays)

    def result_latency(self, instruction: Instruction) -> float:
        """Cycles until the destination registers of ``instruction`` are readable."""
        return self._latencies.latency_for(instruction)

    def global_memory_bytes(self, instruction: Instruction) -> int:
        """Bytes moved by a global-memory warp instruction (0 otherwise)."""
        if instruction.is_global_load or instruction.is_global_store:
            return 32 * instruction.width // 8
        return 0
