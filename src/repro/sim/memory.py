"""Global memory and kernel-parameter storage for the simulator.

Global memory is a flat byte-addressable array backed by NumPy.  Host code
allocates named buffers (matrices A, B, C for SGEMM), obtains their base
addresses, passes them to the kernel through the constant bank
(:class:`KernelParams`), and reads results back after simulation.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import SimulationError


class GlobalMemory:
    """Flat simulated device memory.

    Parameters
    ----------
    size_bytes:
        Capacity of the simulated device memory.  Allocations are carved out
        of this space with 256-byte alignment (matching CUDA's allocation
        granularity closely enough for coalescing analysis).
    """

    ALIGNMENT = 256

    def __init__(self, size_bytes: int = 256 * 1024 * 1024) -> None:
        if size_bytes <= 0:
            raise SimulationError("global memory size must be positive")
        self._data = np.zeros(size_bytes, dtype=np.uint8)
        self._next_free = self.ALIGNMENT  # keep address 0 unused (null)
        self._allocations: dict[str, tuple[int, int]] = {}
        self._load_bytes = 0
        self._store_bytes = 0

    @property
    def load_bytes(self) -> int:
        """Bytes loaded by active lanes since construction (simulated DRAM reads)."""
        return self._load_bytes

    @property
    def store_bytes(self) -> int:
        """Bytes stored by active lanes since construction (simulated DRAM writes)."""
        return self._store_bytes

    @property
    def traffic_bytes(self) -> int:
        """Total simulated DRAM traffic: loads plus stores, active lanes only.

        Predicated-off lanes move no data, so a kernel whose boundary loads
        and stores are properly predicated reports exactly its compulsory
        traffic here — the figure the upper-bound model prices.
        """
        return self._load_bytes + self._store_bytes

    @property
    def size_bytes(self) -> int:
        """Capacity of the simulated memory."""
        return int(self._data.size)

    @property
    def data(self) -> np.ndarray:
        """Raw byte array (read-only view for inspection)."""
        return self._data

    def allocate(self, name: str, size_bytes: int) -> int:
        """Allocate ``size_bytes`` under ``name`` and return the base address."""
        if size_bytes <= 0:
            raise SimulationError("allocation size must be positive")
        if name in self._allocations:
            raise SimulationError(f"buffer '{name}' already allocated")
        base = self._next_free
        end = base + size_bytes
        if end > self.size_bytes:
            raise SimulationError(
                f"out of simulated device memory allocating '{name}' ({size_bytes} bytes)"
            )
        aligned_end = -(-end // self.ALIGNMENT) * self.ALIGNMENT
        self._next_free = aligned_end
        self._allocations[name] = (base, size_bytes)
        return base

    def allocate_array(self, name: str, array: np.ndarray) -> int:
        """Allocate a buffer sized/initialised from ``array`` (float32/int32/uint8)."""
        flat = np.ascontiguousarray(array)
        base = self.allocate(name, flat.nbytes)
        self._data[base : base + flat.nbytes] = flat.view(np.uint8).reshape(-1)
        return base

    def address_of(self, name: str) -> int:
        """Base address of a named allocation."""
        if name not in self._allocations:
            raise SimulationError(f"unknown buffer '{name}'")
        return self._allocations[name][0]

    def read_array(self, name: str, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        """Read a named allocation back as a typed array."""
        if name not in self._allocations:
            raise SimulationError(f"unknown buffer '{name}'")
        base, size = self._allocations[name]
        wanted = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if wanted > size:
            raise SimulationError(
                f"requested {wanted} bytes from buffer '{name}' of size {size}"
            )
        raw = self._data[base : base + wanted]
        return raw.view(dtype).reshape(shape).copy()

    # ------------------------------------------------------------------ #
    # Word-level accessors used by the functional executor.               #
    # ------------------------------------------------------------------ #

    def load_words(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Gather one 32-bit word per lane from ``addresses`` (masked lanes read 0)."""
        result = np.zeros(addresses.shape, dtype=np.uint32)
        active = np.flatnonzero(mask)
        self._load_bytes += 4 * len(active)
        for lane in active:
            address = int(addresses[lane])
            if address < 0 or address + 4 > self.size_bytes:
                raise SimulationError(f"global load out of bounds at {address:#x}")
            result[lane] = self._data[address : address + 4].view(np.uint32)[0]
        return result

    def store_words(self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray) -> None:
        """Scatter one 32-bit word per lane to ``addresses`` (masked lanes skipped)."""
        active = np.flatnonzero(mask)
        self._store_bytes += 4 * len(active)
        for lane in active:
            address = int(addresses[lane])
            if address < 0 or address + 4 > self.size_bytes:
                raise SimulationError(f"global store out of bounds at {address:#x}")
            self._data[address : address + 4] = (
                np.array([values[lane]], dtype=np.uint32).view(np.uint8)
            )


class KernelParams:
    """Kernel parameter block exposed to kernels as constant bank 0.

    Parameters are appended in order with :meth:`add_pointer`, :meth:`add_int`
    and :meth:`add_float`; each returns the byte offset at which the kernel
    will find the value (``c[0x0][offset]``).  The paper's kernels pass the
    matrix base addresses, the leading dimensions and the matrix sizes this
    way, mirroring the CUDA ABI's parameter space.
    """

    BASE_OFFSET = 0x20  # mimic the CUDA ABI: launch bookkeeping occupies the first words

    def __init__(self) -> None:
        self._blob = bytearray(self.BASE_OFFSET)
        self._offsets: dict[str, int] = {}

    def _append(self, name: str, packed: bytes) -> int:
        offset = len(self._blob)
        self._blob.extend(packed)
        self._offsets[name] = offset
        return offset

    def add_pointer(self, name: str, address: int) -> int:
        """Append a 32-bit device pointer parameter (the paper uses 32-bit addressing)."""
        if address < 0 or address >= 2**32:
            raise SimulationError("pointer parameters must fit in 32 bits")
        return self._append(name, struct.pack("<I", address))

    def add_int(self, name: str, value: int) -> int:
        """Append a signed 32-bit integer parameter."""
        return self._append(name, struct.pack("<i", int(value)))

    def add_float(self, name: str, value: float) -> int:
        """Append a 32-bit float parameter."""
        return self._append(name, struct.pack("<f", float(value)))

    def offset_of(self, name: str) -> int:
        """Byte offset of a named parameter within constant bank 0."""
        if name not in self._offsets:
            raise SimulationError(f"unknown kernel parameter '{name}'")
        return self._offsets[name]

    def read_word(self, offset: int) -> int:
        """Read the 32-bit word at ``offset`` (used by the functional executor)."""
        if offset < 0 or offset + 4 > len(self._blob):
            raise SimulationError(f"constant-bank read out of bounds at offset {offset:#x}")
        return struct.unpack_from("<I", self._blob, offset)[0]

    def __len__(self) -> int:
        return len(self._blob)
