"""Simulated memories: global memory, shared memory and kernel parameters.

Global memory is a flat byte-addressable array backed by NumPy.  Host code
allocates named buffers (matrices A, B, C for SGEMM), obtains their base
addresses, passes them to the kernel through the constant bank
(:class:`KernelParams`), and reads results back after simulation.
:class:`SharedMemoryArray` is the per-block scratchpad the same kernels stage
tiles through.

Both memories expose two word-level access paths with identical semantics:

* ``load_words`` / ``store_words`` — vectorised masked gather/scatter over
  NumPy index arrays (any shape: one warp's 32 lanes, or a whole block's
  ``(warps, 32)`` lane matrix).  This is the fast path used by
  :mod:`repro.sim.vectorized`.
* ``load_words_reference`` / ``store_words_reference`` — the original
  per-lane Python loops, kept verbatim as the oracle for the differential
  test harness (:mod:`repro.sim.reference`).

Semantics the two paths share (and the differential tests pin): masked-off
lanes touch nothing and read zero; bounds are checked per 32-bit word and the
*first* offending lane (flat C order) raises with its address; duplicate store
addresses resolve last-lane-wins; DRAM byte counters count active lanes and
are incremented before the bounds check, so a partially out-of-bounds access
leaves the same books either way.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import SimulationError

#: Byte offsets of one little-endian 32-bit word, used to split unaligned
#: word accesses into byte gathers/scatters.
_WORD_BYTES = np.arange(4, dtype=np.int64)


def _gather_words(
    data: np.ndarray, limit: int, addresses: np.ndarray, mask: np.ndarray, what: str
) -> np.ndarray:
    """Masked vectorised gather of one 32-bit word per lane.

    ``data`` is the uint8 backing store (padded to a multiple of 4 bytes so a
    uint32 view exists); ``limit`` is the logical size bounds are checked
    against.  ``addresses`` and ``mask`` may be any matching shape.
    """
    result = np.zeros(addresses.shape, dtype=np.uint32)
    flat_addresses = np.ascontiguousarray(addresses, dtype=np.int64).reshape(-1)
    flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
    active = flat_addresses[flat_mask]
    if active.size == 0:
        return result
    bad = (active < 0) | (active + 4 > limit)
    if bad.any():
        address = int(active[int(np.argmax(bad))])
        raise SimulationError(f"{what} out of bounds at {address:#x}")
    if not (active & 3).any():
        values = data.view(np.uint32)[active >> 2]
    else:
        values = data[active[:, None] + _WORD_BYTES].view(np.uint32).reshape(-1)
    result.reshape(-1)[flat_mask] = values
    return result


def _scatter_words(
    data: np.ndarray,
    limit: int,
    addresses: np.ndarray,
    values: np.ndarray,
    mask: np.ndarray,
    what: str,
) -> None:
    """Masked vectorised scatter of one 32-bit word per lane.

    Duplicate addresses resolve in flat C order (last lane wins), matching the
    reference path's ascending-lane store loop.
    """
    flat_addresses = np.ascontiguousarray(addresses, dtype=np.int64).reshape(-1)
    flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
    active = flat_addresses[flat_mask]
    if active.size == 0:
        return
    bad = (active < 0) | (active + 4 > limit)
    if bad.any():
        address = int(active[int(np.argmax(bad))])
        raise SimulationError(f"{what} out of bounds at {address:#x}")
    active_values = np.ascontiguousarray(values, dtype=np.uint32).reshape(-1)[flat_mask]
    if not (active & 3).any():
        data.view(np.uint32)[active >> 2] = active_values
    else:
        data[active[:, None] + _WORD_BYTES] = active_values.view(np.uint8).reshape(-1, 4)


class SharedMemoryArray:
    """Shared-memory backing store for one block."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes < 0:
            raise SimulationError("shared memory size must be non-negative")
        self._size = size_bytes
        # Bounds are checked against the logical limit; the backing store is
        # padded to a multiple of 4 bytes so an aligned uint32 view exists.
        self._limit = max(size_bytes, 4)
        self._data = np.zeros(-(-self._limit // 4) * 4, dtype=np.uint8)

    @property
    def size_bytes(self) -> int:
        """Configured shared-memory size for the block."""
        return self._size

    @property
    def data(self) -> np.ndarray:
        """Raw byte array (view for inspection and differential comparison)."""
        return self._data[: self._limit]

    def load_words(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Gather one 32-bit word per lane (masked lanes read zero)."""
        return _gather_words(self._data, self._limit, addresses, mask, "shared-memory load")

    def store_words(self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray) -> None:
        """Scatter one 32-bit word per lane (masked lanes skipped)."""
        _scatter_words(self._data, self._limit, addresses, values, mask, "shared-memory store")

    def load_words_reference(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Per-lane scalar gather: the differential-testing oracle."""
        result = np.zeros(addresses.shape, dtype=np.uint32)
        for lane in np.flatnonzero(mask):
            address = int(addresses[lane])
            if address < 0 or address + 4 > self._limit:
                raise SimulationError(f"shared-memory load out of bounds at {address:#x}")
            result[lane] = self._data[address : address + 4].view(np.uint32)[0]
        return result

    def store_words_reference(
        self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        """Per-lane scalar scatter: the differential-testing oracle."""
        for lane in np.flatnonzero(mask):
            address = int(addresses[lane])
            if address < 0 or address + 4 > self._limit:
                raise SimulationError(f"shared-memory store out of bounds at {address:#x}")
            self._data[address : address + 4] = (
                np.array([values[lane]], dtype=np.uint32).view(np.uint8)
            )


class GlobalMemory:
    """Flat simulated device memory.

    Parameters
    ----------
    size_bytes:
        Capacity of the simulated device memory.  Allocations are carved out
        of this space with 256-byte alignment (matching CUDA's allocation
        granularity closely enough for coalescing analysis).
    """

    ALIGNMENT = 256

    def __init__(self, size_bytes: int = 256 * 1024 * 1024) -> None:
        if size_bytes <= 0:
            raise SimulationError("global memory size must be positive")
        self._size = int(size_bytes)
        # Padded to a multiple of 4 bytes so an aligned uint32 view exists;
        # bounds are checked against the logical size.
        self._data = np.zeros(-(-self._size // 4) * 4, dtype=np.uint8)
        self._next_free = self.ALIGNMENT  # keep address 0 unused (null)
        self._allocations: dict[str, tuple[int, int]] = {}
        self._load_bytes = 0
        self._store_bytes = 0

    @property
    def load_bytes(self) -> int:
        """Bytes loaded by active lanes since construction (simulated DRAM reads)."""
        return self._load_bytes

    @property
    def store_bytes(self) -> int:
        """Bytes stored by active lanes since construction (simulated DRAM writes)."""
        return self._store_bytes

    @property
    def traffic_bytes(self) -> int:
        """Total simulated DRAM traffic: loads plus stores, active lanes only.

        Predicated-off lanes move no data, so a kernel whose boundary loads
        and stores are properly predicated reports exactly its compulsory
        traffic here — the figure the upper-bound model prices.
        """
        return self._load_bytes + self._store_bytes

    @property
    def size_bytes(self) -> int:
        """Capacity of the simulated memory."""
        return self._size

    @property
    def data(self) -> np.ndarray:
        """Raw byte array (read-only view for inspection)."""
        return self._data[: self._size]

    def allocate(self, name: str, size_bytes: int) -> int:
        """Allocate ``size_bytes`` under ``name`` and return the base address."""
        if size_bytes <= 0:
            raise SimulationError("allocation size must be positive")
        if name in self._allocations:
            raise SimulationError(f"buffer '{name}' already allocated")
        base = self._next_free
        end = base + size_bytes
        if end > self.size_bytes:
            raise SimulationError(
                f"out of simulated device memory allocating '{name}' ({size_bytes} bytes)"
            )
        aligned_end = -(-end // self.ALIGNMENT) * self.ALIGNMENT
        self._next_free = aligned_end
        self._allocations[name] = (base, size_bytes)
        return base

    def allocate_array(self, name: str, array: np.ndarray) -> int:
        """Allocate a buffer sized/initialised from ``array`` (float32/int32/uint8)."""
        flat = np.ascontiguousarray(array)
        base = self.allocate(name, flat.nbytes)
        self._data[base : base + flat.nbytes] = flat.view(np.uint8).reshape(-1)
        return base

    def address_of(self, name: str) -> int:
        """Base address of a named allocation."""
        if name not in self._allocations:
            raise SimulationError(f"unknown buffer '{name}'")
        return self._allocations[name][0]

    def read_array(self, name: str, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        """Read a named allocation back as a typed array."""
        if name not in self._allocations:
            raise SimulationError(f"unknown buffer '{name}'")
        base, size = self._allocations[name]
        wanted = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if wanted > size:
            raise SimulationError(
                f"requested {wanted} bytes from buffer '{name}' of size {size}"
            )
        raw = self._data[base : base + wanted]
        return raw.view(dtype).reshape(shape).copy()

    # ------------------------------------------------------------------ #
    # Word-level accessors used by the functional executor.               #
    # ------------------------------------------------------------------ #

    def load_words(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Gather one 32-bit word per lane from ``addresses`` (masked lanes read 0)."""
        self._load_bytes += 4 * int(np.count_nonzero(mask))
        return _gather_words(self._data, self._size, addresses, mask, "global load")

    def store_words(self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray) -> None:
        """Scatter one 32-bit word per lane to ``addresses`` (masked lanes skipped)."""
        self._store_bytes += 4 * int(np.count_nonzero(mask))
        _scatter_words(self._data, self._size, addresses, values, mask, "global store")

    def load_words_reference(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Per-lane scalar gather: the differential-testing oracle."""
        result = np.zeros(addresses.shape, dtype=np.uint32)
        active = np.flatnonzero(mask)
        self._load_bytes += 4 * len(active)
        for lane in active:
            address = int(addresses[lane])
            if address < 0 or address + 4 > self.size_bytes:
                raise SimulationError(f"global load out of bounds at {address:#x}")
            result[lane] = self._data[address : address + 4].view(np.uint32)[0]
        return result

    def store_words_reference(
        self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        """Per-lane scalar scatter: the differential-testing oracle."""
        active = np.flatnonzero(mask)
        self._store_bytes += 4 * len(active)
        for lane in active:
            address = int(addresses[lane])
            if address < 0 or address + 4 > self.size_bytes:
                raise SimulationError(f"global store out of bounds at {address:#x}")
            self._data[address : address + 4] = (
                np.array([values[lane]], dtype=np.uint32).view(np.uint8)
            )


class KernelParams:
    """Kernel parameter block exposed to kernels as constant bank 0.

    Parameters are appended in order with :meth:`add_pointer`, :meth:`add_int`
    and :meth:`add_float`; each returns the byte offset at which the kernel
    will find the value (``c[0x0][offset]``).  The paper's kernels pass the
    matrix base addresses, the leading dimensions and the matrix sizes this
    way, mirroring the CUDA ABI's parameter space.
    """

    BASE_OFFSET = 0x20  # mimic the CUDA ABI: launch bookkeeping occupies the first words

    def __init__(self) -> None:
        self._blob = bytearray(self.BASE_OFFSET)
        self._offsets: dict[str, int] = {}

    def _append(self, name: str, packed: bytes) -> int:
        offset = len(self._blob)
        self._blob.extend(packed)
        self._offsets[name] = offset
        return offset

    def add_pointer(self, name: str, address: int) -> int:
        """Append a 32-bit device pointer parameter (the paper uses 32-bit addressing)."""
        if address < 0 or address >= 2**32:
            raise SimulationError("pointer parameters must fit in 32 bits")
        return self._append(name, struct.pack("<I", address))

    def add_int(self, name: str, value: int) -> int:
        """Append a signed 32-bit integer parameter."""
        return self._append(name, struct.pack("<i", int(value)))

    def add_float(self, name: str, value: float) -> int:
        """Append a 32-bit float parameter."""
        return self._append(name, struct.pack("<f", float(value)))

    def offset_of(self, name: str) -> int:
        """Byte offset of a named parameter within constant bank 0."""
        if name not in self._offsets:
            raise SimulationError(f"unknown kernel parameter '{name}'")
        return self._offsets[name]

    def read_word(self, offset: int) -> int:
        """Read the 32-bit word at ``offset`` (used by the functional executor)."""
        if offset < 0 or offset + 4 > len(self._blob):
            raise SimulationError(f"constant-bank read out of bounds at offset {offset:#x}")
        return struct.unpack_from("<I", self._blob, offset)[0]

    def __len__(self) -> int:
        return len(self._blob)
