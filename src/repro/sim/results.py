"""Simulation result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.specs import GpuSpec


@dataclass
class StallBreakdown:
    """Counts of cycles in which a warp wanted to issue but could not.

    Attributes are warp-cycle counts (one warp stalled for one cycle adds one),
    so they measure pressure rather than wall-clock loss.
    """

    scoreboard: int = 0
    issue_bandwidth: int = 0
    sp_pipe: int = 0
    ldst_pipe: int = 0
    barrier: int = 0
    memory: int = 0
    control_notation: int = 0

    def total(self) -> int:
        """Sum of all stall reasons."""
        return (
            self.scoreboard
            + self.issue_bandwidth
            + self.sp_pipe
            + self.ldst_pipe
            + self.barrier
            + self.memory
            + self.control_notation
        )

    def as_dict(self) -> dict[str, int]:
        """Dictionary view used by reports and benchmarks."""
        return {
            "scoreboard": self.scoreboard,
            "issue_bandwidth": self.issue_bandwidth,
            "sp_pipe": self.sp_pipe,
            "ldst_pipe": self.ldst_pipe,
            "barrier": self.barrier,
            "memory": self.memory,
            "control_notation": self.control_notation,
        }


@dataclass
class SimResult:
    """Outcome of simulating a kernel launch (or a slice of one) on one SM.

    Attributes
    ----------
    cycles:
        Shader cycles elapsed on the simulated SM.
    thread_instructions:
        Thread instructions issued (warp instructions × 32).
    warp_instructions:
        Warp instructions issued.
    ffma_thread_instructions:
        Thread instructions that were FFMA.
    flops:
        Floating-point operations performed (FFMA counts as 2 per thread).
    instruction_histogram:
        Issued warp-instruction counts per mnemonic.
    stalls:
        Stall pressure breakdown.
    warps_simulated:
        Number of warps that ran on the SM.
    blocks_simulated:
        Number of blocks that ran on the SM.
    """

    cycles: float
    thread_instructions: int
    warp_instructions: int
    ffma_thread_instructions: int
    flops: int
    instruction_histogram: dict[str, int] = field(default_factory=dict)
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    warps_simulated: int = 0
    blocks_simulated: int = 0

    @property
    def instructions_per_cycle(self) -> float:
        """Thread instructions issued per shader cycle on this SM."""
        if self.cycles <= 0:
            return 0.0
        return self.thread_instructions / self.cycles

    @property
    def ffma_per_cycle(self) -> float:
        """FFMA thread instructions issued per shader cycle on this SM."""
        if self.cycles <= 0:
            return 0.0
        return self.ffma_thread_instructions / self.cycles

    @property
    def ffma_fraction(self) -> float:
        """Dynamic fraction of issued thread instructions that were FFMA."""
        if self.thread_instructions == 0:
            return 0.0
        return self.ffma_thread_instructions / self.thread_instructions

    def gflops(self, gpu: GpuSpec, sm_count: int | None = None) -> float:
        """GFLOPS implied by this SM's sustained rate, scaled to ``sm_count`` SMs.

        Parameters
        ----------
        gpu:
            Machine description providing the shader clock.
        sm_count:
            Number of SMs to scale to; defaults to the whole GPU.
        """
        if self.cycles <= 0:
            return 0.0
        sms = gpu.sm_count if sm_count is None else sm_count
        flops_per_cycle_per_sm = self.flops / self.cycles
        return flops_per_cycle_per_sm * sms * gpu.clocks.shader_mhz / 1000.0

    def efficiency(self, gpu: GpuSpec) -> float:
        """Achieved fraction of the GPU's theoretical single-precision peak."""
        peak = gpu.theoretical_peak_gflops
        if peak <= 0:
            return 0.0
        return self.gflops(gpu) / peak
