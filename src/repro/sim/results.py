"""Simulation result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.specs import GpuSpec

#: Stall reasons tracked by the simulator, in reporting order.  Shared by
#: :class:`StallBreakdown` (pressure counters) and
#: :class:`InstructionCounters` (per-instruction attribution).
STALL_REASONS = (
    "scoreboard",
    "issue_bandwidth",
    "sp_pipe",
    "ldst_pipe",
    "barrier",
    "memory",
    "control_notation",
)


@dataclass
class StallBreakdown:
    """Counts of cycles in which a warp wanted to issue but could not.

    Attributes are warp-cycle counts (one warp stalled for one cycle adds one),
    so they measure pressure rather than wall-clock loss.
    """

    scoreboard: int = 0
    issue_bandwidth: int = 0
    sp_pipe: int = 0
    ldst_pipe: int = 0
    barrier: int = 0
    memory: int = 0
    control_notation: int = 0

    def total(self) -> int:
        """Sum of all stall reasons."""
        return (
            self.scoreboard
            + self.issue_bandwidth
            + self.sp_pipe
            + self.ldst_pipe
            + self.barrier
            + self.memory
            + self.control_notation
        )

    def as_dict(self) -> dict[str, int]:
        """Dictionary view used by reports and benchmarks."""
        return {
            "scoreboard": self.scoreboard,
            "issue_bandwidth": self.issue_bandwidth,
            "sp_pipe": self.sp_pipe,
            "ldst_pipe": self.ldst_pipe,
            "barrier": self.barrier,
            "memory": self.memory,
            "control_notation": self.control_notation,
        }


@dataclass
class InstructionCounters:
    """Per-instruction (program-counter-indexed) simulator counters.

    Every array has one slot per kernel instruction.  Wall-clock attribution
    is exhaustive by construction: each simulated cycle is split among the
    instructions that issued in it (``issue_cycles``), and cycles in which no
    warp could issue — including fast-forwarded idle spans — are charged to
    the instructions the stalled warps were blocked on, per stall reason
    (``stall_cycles``).  ``attributed_cycles`` therefore reconstructs the
    total simulated cycle count.
    """

    issues: np.ndarray                      # warp-instruction issue count
    issue_cycles: np.ndarray                # wall cycles attributed at issue
    stall_events: dict[str, np.ndarray]     # stall-pressure events per reason
    stall_cycles: dict[str, np.ndarray]     # idle wall cycles per reason
    smem_replays: np.ndarray                # extra bank-conflict replays
    dram_bytes: np.ndarray                  # global-memory bytes moved

    @classmethod
    def zeros(cls, instruction_count: int) -> "InstructionCounters":
        """Fresh counters for a kernel of ``instruction_count`` instructions."""
        return cls(
            issues=np.zeros(instruction_count, dtype=np.int64),
            issue_cycles=np.zeros(instruction_count, dtype=np.float64),
            stall_events={
                reason: np.zeros(instruction_count, dtype=np.int64)
                for reason in STALL_REASONS
            },
            stall_cycles={
                reason: np.zeros(instruction_count, dtype=np.float64)
                for reason in STALL_REASONS
            },
            smem_replays=np.zeros(instruction_count, dtype=np.int64),
            dram_bytes=np.zeros(instruction_count, dtype=np.int64),
        )

    @property
    def instruction_count(self) -> int:
        """Number of instruction slots tracked."""
        return int(self.issues.shape[0])

    @property
    def attributed_cycles(self) -> float:
        """Total wall-clock cycles attributed across all instructions."""
        total = float(self.issue_cycles.sum())
        for array in self.stall_cycles.values():
            total += float(array.sum())
        return total

    @property
    def total_dram_bytes(self) -> int:
        """DRAM bytes across all instructions (loads plus stores)."""
        return int(self.dram_bytes.sum())

    def merge(self, other: "InstructionCounters") -> None:
        """Accumulate ``other`` (same kernel, e.g. another SM run) in place."""
        if other.instruction_count != self.instruction_count:
            raise ValueError(
                "cannot merge counters of kernels with different instruction counts"
            )
        self.issues += other.issues
        self.issue_cycles += other.issue_cycles
        for reason in STALL_REASONS:
            self.stall_events[reason] += other.stall_events[reason]
            self.stall_cycles[reason] += other.stall_cycles[reason]
        self.smem_replays += other.smem_replays
        self.dram_bytes += other.dram_bytes


@dataclass
class SimResult:
    """Outcome of simulating a kernel launch (or a slice of one) on one SM.

    Attributes
    ----------
    cycles:
        Shader cycles elapsed on the simulated SM.
    thread_instructions:
        Thread instructions issued (warp instructions × 32).
    warp_instructions:
        Warp instructions issued.
    ffma_thread_instructions:
        Thread instructions that were FFMA.
    flops:
        Floating-point operations performed (FFMA counts as 2 per thread).
    instruction_histogram:
        Issued warp-instruction counts per mnemonic.
    stalls:
        Stall pressure breakdown.
    warps_simulated:
        Number of warps that ran on the SM.
    blocks_simulated:
        Number of blocks that ran on the SM.
    counters:
        Per-instruction counters (populated when the run was profiled).
    executor:
        Functional engine that produced the architectural state
        (``"vectorized"`` or ``"reference"``; empty for timing-only runs,
        which execute nothing).  Recorded so benchmark artifacts and the
        differential harness can attest which engine a number came from.
    """

    cycles: float
    thread_instructions: int
    warp_instructions: int
    ffma_thread_instructions: int
    flops: int
    instruction_histogram: dict[str, int] = field(default_factory=dict)
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    warps_simulated: int = 0
    blocks_simulated: int = 0
    counters: InstructionCounters | None = None
    executor: str = ""

    @property
    def instructions_per_cycle(self) -> float:
        """Thread instructions issued per shader cycle on this SM."""
        if self.cycles <= 0:
            return 0.0
        return self.thread_instructions / self.cycles

    @property
    def ffma_per_cycle(self) -> float:
        """FFMA thread instructions issued per shader cycle on this SM."""
        if self.cycles <= 0:
            return 0.0
        return self.ffma_thread_instructions / self.cycles

    @property
    def ffma_fraction(self) -> float:
        """Dynamic fraction of issued thread instructions that were FFMA."""
        if self.thread_instructions == 0:
            return 0.0
        return self.ffma_thread_instructions / self.thread_instructions

    def gflops(self, gpu: GpuSpec, sm_count: int | None = None) -> float:
        """GFLOPS implied by this SM's sustained rate, scaled to ``sm_count`` SMs.

        Parameters
        ----------
        gpu:
            Machine description providing the shader clock.
        sm_count:
            Number of SMs to scale to; defaults to the whole GPU.
        """
        if self.cycles <= 0:
            return 0.0
        sms = gpu.sm_count if sm_count is None else sm_count
        flops_per_cycle_per_sm = self.flops / self.cycles
        return flops_per_cycle_per_sm * sms * gpu.clocks.shader_mhz / 1000.0

    def efficiency(self, gpu: GpuSpec) -> float:
        """Achieved fraction of the GPU's theoretical single-precision peak."""
        peak = gpu.theoretical_peak_gflops
        if peak <= 0:
            return 0.0
        return self.gflops(gpu) / peak
