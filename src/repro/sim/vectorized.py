"""Vectorized functional execution: whole-block lock-step, one op per instruction.

The reference executor (:mod:`repro.sim.reference`) steps one warp, one
instruction, one lane at a time.  This engine executes a *block* ahead of the
timing loop: warps at the same pc are grouped and advanced lock-step through
straight-line regions (everything up to the next BRA/BAR/EXIT), so each
instruction becomes one NumPy operation over a ``(warps, 32)`` lane matrix.
Guard predicates and active masks are 2-D lane masks; memory accesses become
the masked gather/scatters of :mod:`repro.sim.memory`.  Per-instruction
operand decoding (`isinstance` dispatch on every step in the reference
executor) happens once: each pc is compiled to a closure over pre-resolved
register indices, immediates and constant-bank values, cached per engine.

Lock-step batching is only defined for race-free programs — different warps
may not write the same shared/global location between two barriers (ordinary
correct CUDA kernels; the differential fuzz harness generates only such
programs).  For race-free programs every warp interleaving produces the same
architectural state, so executing a block ahead of the cycle-level schedule
is sound.  The timing loop still needs the *functional decisions* at the
cycles it issues instructions, so the engine records a :class:`WarpTrace` per
warp — branch outcomes, EXIT lane-mask results, shared-memory bank-conflict
replay degrees and DRAM active-lane counts in dynamic program order — which
:class:`repro.sim.sm_sim.SmSimulator` then replays.  Because per-warp
register and predicate trajectories are interleaving-independent, the
recorded values equal what live execution would have produced and the cycle,
stall and profile accounting is bit-identical to the reference executor (the
differential harness asserts exactly that).
"""

from __future__ import annotations

import numpy as np

from repro.arch.shared_memory import SharedMemorySpec
from repro.errors import ArchitectureError, SimulationError
from repro.isa.assembler import Kernel
from repro.isa.instructions import ConstRef, Immediate, Instruction, Opcode
from repro.isa.registers import Register, SpecialRegister
from repro.sim.memory import GlobalMemory, KernelParams, SharedMemoryArray
from repro.sim.warp import PREDICATE_COUNT, REGISTER_COUNT, WARP_SIZE, WarpState

#: Opcodes that terminate a straight-line region.
_REGION_ENDERS = frozenset({Opcode.BRA, Opcode.BAR, Opcode.EXIT})

_LANES = np.arange(WARP_SIZE, dtype=np.int64)

_ISETP_OPS = {
    "LT": np.less,
    "LE": np.less_equal,
    "EQ": np.equal,
    "NE": np.not_equal,
    "GE": np.greater_equal,
    "GT": np.greater,
}


class WarpTrace:
    """Functional decisions of one warp, in dynamic program order.

    The timing loop replays these instead of executing functionally: branch
    outcomes at BRA, ``mask.any()`` at EXIT, bank-conflict replay degrees at
    shared-memory accesses, and active-lane counts at global accesses.  Each
    queue has its own cursor; running past the end means the timing loop and
    the functional pre-pass disagreed about the dynamic instruction stream,
    which is a simulator bug and raises loudly.
    """

    __slots__ = ("branches", "exits", "replays", "dram_lanes", "_cursors")

    def __init__(self) -> None:
        self.branches: list[bool] = []
        self.exits: list[bool] = []
        self.replays: list[int] = []
        self.dram_lanes: list[int] = []
        self._cursors = [0, 0, 0, 0]

    def _next(self, queue: list, slot: int, what: str):
        cursor = self._cursors[slot]
        if cursor >= len(queue):
            raise SimulationError(
                f"vectorized trace desynchronised: timing loop requested more "
                f"{what} decisions than the functional pre-pass recorded"
            )
        self._cursors[slot] = cursor + 1
        return queue[cursor]

    def next_branch(self) -> bool:
        """Outcome of the next BRA."""
        return self._next(self.branches, 0, "branch")

    def next_exit(self) -> bool:
        """``mask.any()`` of the next EXIT."""
        return self._next(self.exits, 1, "exit")

    def next_replay(self) -> int:
        """Bank-conflict replay degree of the next shared-memory access."""
        return self._next(self.replays, 2, "replay")

    def next_dram_lanes(self) -> int:
        """Active predicated lanes of the next global-memory access."""
        return self._next(self.dram_lanes, 3, "DRAM-lane")


class _BlockState:
    """Stacked architectural state of one block: ``(warps, ...)`` arrays."""

    __slots__ = ("regs", "preds", "active", "tid_x", "tid_y", "block_idx", "warp_ids")

    def __init__(self, warps: list[WarpState]) -> None:
        self.regs = np.stack([w.registers for w in warps])  # (W, 64, 32) uint32
        self.preds = np.stack([w.predicates for w in warps])  # (W, 8, 32) bool
        self.active = np.stack([w.active_mask for w in warps])  # (W, 32) bool
        self.tid_x = np.stack([w.lane_tid_x for w in warps])  # (W, 32) int64
        self.tid_y = np.stack([w.lane_tid_y for w in warps])
        self.block_idx = warps[0].block_idx
        self.warp_ids = np.array([w.warp_id for w in warps], dtype=np.int64)

    def read_u32(self, g: np.ndarray, index: int) -> np.ndarray:
        if index == REGISTER_COUNT - 1:
            return np.zeros((g.size, WARP_SIZE), dtype=np.uint32)
        return self.regs[g, index]

    def read_s32(self, g: np.ndarray, index: int) -> np.ndarray:
        # Same cast chain as WarpState.read_s32 (wrap to int32, sign-extend).
        return self.read_u32(g, index).astype(np.int64).astype(np.int32).astype(np.int64)

    def read_f32(self, g: np.ndarray, index: int) -> np.ndarray:
        return self.read_u32(g, index).view(np.float32)

    def write_u32(self, g: np.ndarray, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        if index == REGISTER_COUNT - 1:
            return
        values = np.asarray(values, dtype=np.uint32)
        self.regs[g, index] = np.where(mask, values, self.regs[g, index])

    def write_f32(self, g: np.ndarray, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        self.write_u32(g, index, np.ascontiguousarray(values, dtype=np.float32).view(np.uint32), mask)

    def read_pred(self, g: np.ndarray, index: int, negated: bool) -> np.ndarray:
        values = self.preds[g, index]
        return ~values if negated else values

    def write_pred(self, g: np.ndarray, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        if index == PREDICATE_COUNT - 1:
            return
        self.preds[g, index] = np.where(mask, values, self.preds[g, index])

    def writeback(self, warps: list[WarpState]) -> None:
        """Copy final registers/predicates back into the warp objects."""
        for row, warp in enumerate(warps):
            warp.registers[:] = self.regs[row]
            warp.predicates[:] = self.preds[row]


def _conflict_degrees(
    spec: SharedMemorySpec, addresses: np.ndarray, active: np.ndarray, access_bytes: int
) -> list[int]:
    """Per-warp bank-conflict replay degrees, matching ``conflict_degree``.

    ``addresses``/``active`` are ``(warps, 32)``; inactive lanes do not
    participate.  Negative active addresses raise like ``bank_of`` does.
    """
    bank_width = spec.bank_width_bytes
    bank_count = spec.bank_count
    words_per_thread = max(1, access_bytes // bank_width)
    degrees: list[int] = []
    for row in range(addresses.shape[0]):
        lane_addresses = addresses[row][active[row]]
        if lane_addresses.size == 0:
            degrees.append(1)
            continue
        if (lane_addresses < 0).any():
            raise ArchitectureError("shared memory address must be non-negative")
        worst = 1
        for phase in range(words_per_thread):
            words = (lane_addresses + phase * bank_width) // bank_width
            unique_words = np.unique(words)
            per_bank = np.bincount(unique_words % bank_count)
            worst = max(worst, int(per_bank.max()))
        degrees.append(worst)
    return degrees


class VectorizedEngine:
    """Compiles one kernel's instructions and executes blocks lock-step."""

    def __init__(
        self,
        kernel: Kernel,
        *,
        shared_spec: SharedMemorySpec | None = None,
        global_memory: GlobalMemory | None = None,
        params: KernelParams | None = None,
        grid_dim: tuple[int, int] = (1, 1),
    ) -> None:
        self._kernel = kernel
        self._shared_spec = shared_spec
        self._global_memory = global_memory
        self._params = params
        self._grid_dim = grid_dim
        count = kernel.instruction_count
        self._plans: list = [None] * count  # lazily compiled executors per pc
        self._compiled = [False] * count
        self._region_end: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Block execution.                                                    #
    # ------------------------------------------------------------------ #

    def run_block(
        self,
        warps: list[WarpState],
        shared_memory: SharedMemoryArray,
        *,
        max_instructions: int = 1_000_000,
    ) -> dict[int, WarpTrace]:
        """Functionally execute one block to completion, lock-step.

        Returns the per-warp decision traces keyed by ``warp_id``.  Mutates
        ``shared_memory``, the engine's global memory, and the warps' final
        registers/predicates; the warps' scheduling state (pc, finished,
        barrier) is left untouched for the timing loop.
        """
        if self._kernel.instruction_count == 0:
            raise SimulationError("cannot execute an empty kernel")
        instructions = self._kernel.instructions
        count = len(instructions)
        state = _BlockState(warps)
        traces = [WarpTrace() for _ in warps]
        pc = [w.pc for w in warps]
        finished = [w.finished for w in warps]
        at_barrier = [False] * len(warps)
        executed = [0] * len(warps)

        while True:
            runnable = [i for i in range(len(warps)) if not finished[i] and not at_barrier[i]]
            if not runnable:
                if all(finished):
                    break
                for i in range(len(warps)):
                    at_barrier[i] = False
                continue
            for start in sorted({pc[i] for i in runnable}):
                group = [i for i in runnable if pc[i] == start]
                if start >= count:
                    for i in group:
                        finished[i] = True
                    continue
                end = self._region_span(start)
                g = np.array(group, dtype=np.intp)
                for index in range(start, end):
                    plan = self._plan(index)
                    if plan is not None:
                        plan(state, g, shared_memory, traces)
                for i in group:
                    executed[i] += end - start + 1
                    if executed[i] > max_instructions:
                        raise SimulationError(
                            f"functional execution exceeded {max_instructions} "
                            f"instructions for warp {warps[i].warp_id}; the kernel "
                            f"may not terminate"
                        )
                if end >= count:
                    for i in group:
                        pc[i] = end
                        finished[i] = True
                    continue
                self._handle_control(
                    instructions[end], end, state, group, g, pc, finished, at_barrier, traces
                )

        state.writeback(warps)
        return {warps[i].warp_id: traces[i] for i in range(len(warps))}

    def _region_span(self, start: int) -> int:
        """First control-instruction index at or after ``start`` (cached)."""
        end = self._region_end.get(start)
        if end is None:
            instructions = self._kernel.instructions
            end = start
            while end < len(instructions) and instructions[end].opcode not in _REGION_ENDERS:
                end += 1
            self._region_end[start] = end
        return end

    def _handle_control(
        self,
        instruction: Instruction,
        index: int,
        state: _BlockState,
        group: list[int],
        g: np.ndarray,
        pc: list[int],
        finished: list[bool],
        at_barrier: list[bool],
        traces: list[WarpTrace],
    ) -> None:
        opcode = instruction.opcode
        if opcode is Opcode.BAR:
            # BAR parks the warp regardless of its guard (matching the timing
            # loop, which never evaluates BAR predicates).
            for i in group:
                at_barrier[i] = True
                pc[i] = index + 1
            return
        if opcode is Opcode.EXIT:
            mask = state.active[g] & state.read_pred(
                g, instruction.predicate.index, instruction.predicate_negated
            )
            any_exit = mask.any(axis=1)
            for row, i in enumerate(group):
                taken = bool(any_exit[row])
                traces[i].exits.append(taken)
                if taken:
                    finished[i] = True
                else:
                    pc[i] = index + 1
            return
        # BRA: warp-uniform (possibly guarded) branch; divergence raises.
        if instruction.predicate.is_true and not instruction.predicate_negated:
            target = self._kernel.branch_targets[index]
            for i in group:
                traces[i].branches.append(True)
                pc[i] = target
            return
        values = state.read_pred(g, instruction.predicate.index, instruction.predicate_negated)
        active = state.active[g]
        for row, i in enumerate(group):
            active_values = values[row][active[row]]
            if active_values.size == 0:
                taken = False
            elif active_values.all():
                taken = True
            elif not active_values.any():
                taken = False
            else:
                raise SimulationError(
                    "divergent branch encountered; the simulator only supports "
                    "warp-uniform branches"
                )
            traces[i].branches.append(taken)
            pc[i] = self._kernel.branch_targets[index] if taken else index + 1

    # ------------------------------------------------------------------ #
    # Instruction compilation (operand plans).                            #
    # ------------------------------------------------------------------ #

    def _plan(self, index: int):
        if not self._compiled[index]:
            self._plans[index] = self._compile(self._kernel.instructions[index])
            self._compiled[index] = True
        return self._plans[index]

    def _read_constant(self, ref: ConstRef) -> int:
        if self._params is None:
            raise SimulationError("kernel reads constants but no parameters were provided")
        if ref.bank != 0:
            raise SimulationError(f"only constant bank 0 is modelled, got bank {ref.bank}")
        return self._params.read_word(ref.offset)

    def _f32_reader(self, operand):
        if isinstance(operand, Register):
            index = operand.index
            return lambda st, g: st.read_f32(g, index)
        if isinstance(operand, Immediate):
            value = np.float32(operand.as_float())
            return lambda st, g: np.full((g.size, WARP_SIZE), value, dtype=np.float32)
        if isinstance(operand, ConstRef):
            value = np.array([self._read_constant(operand)], dtype=np.uint32).view(np.float32)[0]
            return lambda st, g: np.full((g.size, WARP_SIZE), value, dtype=np.float32)
        raise SimulationError(f"operand {operand!r} cannot be read as float")

    def _s32_reader(self, operand):
        if isinstance(operand, Register):
            index = operand.index
            return lambda st, g: st.read_s32(g, index)
        if isinstance(operand, Immediate):
            value = int(operand.as_int())
            return lambda st, g: np.full((g.size, WARP_SIZE), value, dtype=np.int64)
        if isinstance(operand, ConstRef):
            raw = self._read_constant(operand)
            signed = raw - 2**32 if raw >= 2**31 else raw
            return lambda st, g: np.full((g.size, WARP_SIZE), signed, dtype=np.int64)
        raise SimulationError(f"operand {operand!r} cannot be read as integer")

    def _u32_reader(self, operand):
        if isinstance(operand, Register):
            index = operand.index
            return lambda st, g: st.read_u32(g, index)
        if isinstance(operand, Immediate):
            value = operand.as_int() & 0xFFFFFFFF
            return lambda st, g: np.full((g.size, WARP_SIZE), value, dtype=np.uint32)
        if isinstance(operand, ConstRef):
            value = self._read_constant(operand)
            return lambda st, g: np.full((g.size, WARP_SIZE), value, dtype=np.uint32)
        raise SimulationError(f"operand {operand!r} cannot be read as unsigned integer")

    def _guard(self, instruction: Instruction):
        predicate_index = instruction.predicate.index
        negated = instruction.predicate_negated
        return lambda st, g: st.active[g] & st.read_pred(g, predicate_index, negated)

    def _compile(self, instruction: Instruction):
        """Compile one instruction to ``fn(state, g, shared_memory, traces)``."""
        opcode = instruction.opcode
        guard = self._guard(instruction)

        if opcode in (Opcode.BRA, Opcode.BAR, Opcode.EXIT, Opcode.NOP):
            return None

        if opcode in (Opcode.FFMA, Opcode.FADD, Opcode.FMUL):
            readers = [self._f32_reader(op) for op in instruction.sources]
            dest = instruction.dest.index
            if opcode is Opcode.FFMA:
                a, b, c = readers

                def fn(st, g, shared, traces):
                    st.write_f32(g, dest, a(st, g) * b(st, g) + c(st, g), guard(st, g))
            elif opcode is Opcode.FADD:
                a, b = readers

                def fn(st, g, shared, traces):
                    st.write_f32(g, dest, a(st, g) + b(st, g), guard(st, g))
            else:
                a, b = readers

                def fn(st, g, shared, traces):
                    st.write_f32(g, dest, a(st, g) * b(st, g), guard(st, g))
            return fn

        if opcode in (Opcode.IADD, Opcode.IMUL, Opcode.IMAD,
                      Opcode.LOP_AND, Opcode.LOP_OR, Opcode.LOP_XOR):
            readers = [self._s32_reader(op) for op in instruction.sources]
            dest = instruction.dest.index
            if opcode is Opcode.IMAD:
                a, b, c = readers

                def fn(st, g, shared, traces):
                    st.write_u32(
                        g, dest, (a(st, g) * b(st, g) + c(st, g)).astype(np.uint32), guard(st, g)
                    )
                return fn
            a, b = readers
            operation = {
                Opcode.IADD: np.add,
                Opcode.IMUL: np.multiply,
                Opcode.LOP_AND: np.bitwise_and,
                Opcode.LOP_OR: np.bitwise_or,
                Opcode.LOP_XOR: np.bitwise_xor,
            }[opcode]

            def fn(st, g, shared, traces):
                st.write_u32(
                    g, dest, operation(a(st, g), b(st, g)).astype(np.uint32), guard(st, g)
                )
            return fn

        if opcode is Opcode.ISCADD:
            a_op, b_op, shift = instruction.sources
            a = self._s32_reader(a_op)
            b = self._s32_reader(b_op)
            amount = int(shift.as_int()) if isinstance(shift, Immediate) else 0
            dest = instruction.dest.index

            def fn(st, g, shared, traces):
                st.write_u32(
                    g, dest,
                    ((a(st, g) << amount) + b(st, g)).astype(np.uint32), guard(st, g),
                )
            return fn

        if opcode in (Opcode.SHL, Opcode.SHR):
            a = self._u32_reader(instruction.sources[0])
            amount = self._u32_reader(instruction.sources[1])
            dest = instruction.dest.index
            left = opcode is Opcode.SHL

            def fn(st, g, shared, traces):
                value = a(st, g).astype(np.uint64)
                # Shift amounts are unsigned and clamp at 32 (=> result 0),
                # identically for register / immediate / constant sources.
                count = np.minimum(amount(st, g).astype(np.uint64), 32)
                result = (value << count) if left else (value >> count)
                st.write_u32(g, dest, result.astype(np.uint32), guard(st, g))
            return fn

        if opcode in (Opcode.MOV, Opcode.MOV32I):
            source = instruction.sources[0]
            dest = instruction.dest.index
            if isinstance(source, Register):
                index = source.index

                def fn(st, g, shared, traces):
                    st.write_u32(g, dest, st.read_u32(g, index), guard(st, g))
                return fn
            if isinstance(source, Immediate) and isinstance(source.value, float):
                value = np.float32(source.value)

                def fn(st, g, shared, traces):
                    st.write_f32(
                        g, dest,
                        np.full((g.size, WARP_SIZE), value, dtype=np.float32), guard(st, g),
                    )
                return fn
            if isinstance(source, Immediate):
                value = source.as_int() & 0xFFFFFFFF
            elif isinstance(source, ConstRef):
                value = self._read_constant(source)
            else:
                raise SimulationError(f"MOV source {source!r} not supported")

            def fn(st, g, shared, traces):
                st.write_u32(
                    g, dest, np.full((g.size, WARP_SIZE), value, dtype=np.uint32), guard(st, g)
                )
            return fn

        if opcode is Opcode.S2R:
            dest = instruction.dest.index
            special = instruction.special
            reader = self._special_reader(special)

            def fn(st, g, shared, traces):
                st.write_u32(g, dest, reader(st, g), guard(st, g))
            return fn

        if opcode is Opcode.ISETP:
            a = self._s32_reader(instruction.sources[0])
            b = self._s32_reader(instruction.sources[1])
            compare = _ISETP_OPS[instruction.compare_op]
            dest = instruction.dest_predicate.index

            def fn(st, g, shared, traces):
                st.write_pred(g, dest, compare(a(st, g), b(st, g)), guard(st, g))
            return fn

        if opcode in (Opcode.LDS, Opcode.LD, Opcode.STS, Opcode.ST):
            return self._compile_memory(instruction, guard)

        raise SimulationError(f"functional semantics for {opcode.value} are not implemented")

    def _special_reader(self, special: SpecialRegister):
        if special is SpecialRegister.TID_X:
            return lambda st, g: st.tid_x[g].astype(np.uint32)
        if special is SpecialRegister.TID_Y:
            return lambda st, g: st.tid_y[g].astype(np.uint32)
        if special in (SpecialRegister.TID_Z, SpecialRegister.CTAID_Z):
            return lambda st, g: np.zeros((g.size, WARP_SIZE), dtype=np.uint32)
        if special is SpecialRegister.CTAID_X:
            return lambda st, g: np.full(
                (g.size, WARP_SIZE), st.block_idx[0], dtype=np.int64
            ).astype(np.uint32)
        if special is SpecialRegister.CTAID_Y:
            return lambda st, g: np.full(
                (g.size, WARP_SIZE), st.block_idx[1], dtype=np.int64
            ).astype(np.uint32)
        if special is SpecialRegister.LANEID:
            return lambda st, g: np.tile(_LANES.astype(np.uint32), (g.size, 1))
        if special is SpecialRegister.WARPID:
            return lambda st, g: np.broadcast_to(
                st.warp_ids[g].astype(np.uint32)[:, None], (g.size, WARP_SIZE)
            ).copy()
        raise SimulationError(f"special register {special!r} not modelled")

    def _compile_memory(self, instruction: Instruction, guard):
        operand = instruction.memory_operand
        if operand is None:
            raise SimulationError(f"{instruction.mnemonic} has no memory operand")
        base_index = operand.base.index
        offset = operand.offset
        words = instruction.width // 32
        opcode = instruction.opcode
        is_shared = opcode in (Opcode.LDS, Opcode.STS)
        is_load = opcode in (Opcode.LDS, Opcode.LD)
        spec = self._shared_spec if is_shared else None
        access_bytes = instruction.width // 8
        global_memory = self._global_memory
        mnemonic = instruction.mnemonic

        if is_load:
            dest = instruction.dest.index
            data_index = None
        else:
            data_registers = [op for op in instruction.sources if isinstance(op, Register)]
            data_registers = [r for r in data_registers if r is not operand.base]
            if not data_registers:
                raise SimulationError(f"{mnemonic} has no data register")
            dest = None
            data_index = data_registers[-1].index

        def fn(st, g, shared, traces):
            addresses = st.read_u32(g, base_index).astype(np.int64) + offset
            if spec is not None:
                # Replay degrees use the raw active mask (not the guard),
                # exactly like SmSimulator._shared_memory_replays.
                degrees = _conflict_degrees(spec, addresses, st.active[g], access_bytes)
                for row, i in enumerate(g):
                    traces[i].replays.append(degrees[row])
            mask = guard(st, g)
            if not is_shared:
                if global_memory is None:
                    verb = "loads" if is_load else "stores"
                    raise SimulationError(
                        f"kernel {verb} global memory but none was provided"
                    )
                lanes = mask.sum(axis=1)
                for row, i in enumerate(g):
                    traces[i].dram_lanes.append(int(lanes[row]))
            target = shared if is_shared else global_memory
            for word in range(words):
                word_addresses = addresses + 4 * word
                if is_load:
                    values = target.load_words(word_addresses, mask)
                    st.write_u32(g, dest + word, values, mask)
                else:
                    values = st.read_u32(g, data_index + word)
                    target.store_words(word_addresses, values, mask)

        return fn
