"""Warp-level functional and timing simulator for Fermi/Kepler-style SMs.

The paper measures instruction throughput on real GTX580/GTX680 boards; this
package provides the stand-in: a simulator detailed enough to expose the
mechanisms the paper's analysis depends on —

* scheduler issue throughput (thread instructions per shader cycle per SM),
* SP and LD/ST pipeline throughput, including the width-dependent LDS rates,
* Kepler operand register-bank conflicts,
* shared-memory bank conflicts,
* scoreboard (dependence) stalls and latency hiding as a function of the
  number of active warps,
* block-wide barriers,
* a bandwidth-limited global-memory model,

— while also executing kernels *functionally* (NumPy-vectorised across the 32
lanes of a warp) so that generated SGEMM kernels can be validated numerically.
"""

from repro.sim.launch import BlockGrid, LaunchConfig
from repro.sim.memory import GlobalMemory, KernelParams, SharedMemoryArray
from repro.sim.reference import ReferenceExecutor, run_block_reference
from repro.sim.results import SimResult, StallBreakdown
from repro.sim.sm_sim import EXECUTORS, SmSimulator
from repro.sim.vectorized import VectorizedEngine, WarpTrace
from repro.sim.gpu_sim import GpuSimulator, simulate_kernel

__all__ = [
    "BlockGrid",
    "LaunchConfig",
    "GlobalMemory",
    "KernelParams",
    "SharedMemoryArray",
    "ReferenceExecutor",
    "run_block_reference",
    "SimResult",
    "StallBreakdown",
    "EXECUTORS",
    "SmSimulator",
    "VectorizedEngine",
    "WarpTrace",
    "GpuSimulator",
    "simulate_kernel",
]
