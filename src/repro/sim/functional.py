"""Functional (architectural) execution of instructions for one warp.

Execution is vectorised across the 32 lanes of a warp with NumPy.  Guard
predicates mask lanes; RZ reads as zero and discards writes; wide loads and
stores move register pairs/quads.  Control flow (BRA/EXIT/BAR) is resolved by
the SM simulator, not here — this module only computes register, shared-memory
and global-memory effects.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.isa.instructions import ConstRef, Immediate, Instruction, MemRef, Opcode
from repro.isa.registers import Register, SpecialRegister
from repro.sim.memory import GlobalMemory, KernelParams
from repro.sim.warp import WARP_SIZE, WarpState


class SharedMemoryArray:
    """Shared-memory backing store for one block."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes < 0:
            raise SimulationError("shared memory size must be non-negative")
        self._data = np.zeros(max(size_bytes, 4), dtype=np.uint8)
        self._size = size_bytes

    @property
    def size_bytes(self) -> int:
        """Configured shared-memory size for the block."""
        return self._size

    def load_words(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Gather one 32-bit word per lane (masked lanes read zero)."""
        result = np.zeros(addresses.shape, dtype=np.uint32)
        for lane in np.flatnonzero(mask):
            address = int(addresses[lane])
            if address < 0 or address + 4 > self._data.size:
                raise SimulationError(f"shared-memory load out of bounds at {address:#x}")
            result[lane] = self._data[address : address + 4].view(np.uint32)[0]
        return result

    def store_words(self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray) -> None:
        """Scatter one 32-bit word per lane (masked lanes skipped)."""
        for lane in np.flatnonzero(mask):
            address = int(addresses[lane])
            if address < 0 or address + 4 > self._data.size:
                raise SimulationError(f"shared-memory store out of bounds at {address:#x}")
            self._data[address : address + 4] = (
                np.array([values[lane]], dtype=np.uint32).view(np.uint8)
            )


class FunctionalExecutor:
    """Executes instruction semantics for warps of one kernel launch."""

    def __init__(
        self,
        global_memory: GlobalMemory | None,
        params: KernelParams | None,
        block_dim: tuple[int, int],
        grid_dim: tuple[int, int] = (1, 1),
    ) -> None:
        self._global_memory = global_memory
        self._params = params
        self._block_dim = block_dim
        self._grid_dim = grid_dim

    # ------------------------------------------------------------------ #
    # Operand evaluation.                                                 #
    # ------------------------------------------------------------------ #

    def _read_f32(self, warp: WarpState, operand: object) -> np.ndarray:
        if isinstance(operand, Register):
            return warp.read_f32(operand.index)
        if isinstance(operand, Immediate):
            return np.full(WARP_SIZE, np.float32(operand.as_float()), dtype=np.float32)
        if isinstance(operand, ConstRef):
            return np.full(
                WARP_SIZE,
                np.array([self._read_constant(operand)], dtype=np.uint32).view(np.float32)[0],
                dtype=np.float32,
            )
        raise SimulationError(f"operand {operand!r} cannot be read as float")

    def _read_s32(self, warp: WarpState, operand: object) -> np.ndarray:
        if isinstance(operand, Register):
            return warp.read_s32(operand.index)
        if isinstance(operand, Immediate):
            return np.full(WARP_SIZE, int(operand.as_int()), dtype=np.int64)
        if isinstance(operand, ConstRef):
            raw = self._read_constant(operand)
            signed = raw - 2**32 if raw >= 2**31 else raw
            return np.full(WARP_SIZE, signed, dtype=np.int64)
        raise SimulationError(f"operand {operand!r} cannot be read as integer")

    def _read_constant(self, ref: ConstRef) -> int:
        if self._params is None:
            raise SimulationError("kernel reads constants but no parameters were provided")
        if ref.bank != 0:
            raise SimulationError(f"only constant bank 0 is modelled, got bank {ref.bank}")
        return self._params.read_word(ref.offset)

    def _memory_addresses(self, warp: WarpState, operand: MemRef) -> np.ndarray:
        base = warp.read_u32(operand.base.index).astype(np.int64)
        return base + operand.offset

    # ------------------------------------------------------------------ #
    # Instruction execution.                                              #
    # ------------------------------------------------------------------ #

    def execute(
        self,
        warp: WarpState,
        instruction: Instruction,
        shared_memory: SharedMemoryArray,
    ) -> None:
        """Apply ``instruction``'s architectural effects to ``warp``.

        Control-flow opcodes are no-ops here (handled by the scheduler).
        """
        mask = warp.active_mask & warp.read_predicate(
            instruction.predicate.index, instruction.predicate_negated
        )
        opcode = instruction.opcode

        if opcode in (Opcode.BRA, Opcode.BAR, Opcode.EXIT, Opcode.NOP):
            return

        if opcode is Opcode.FFMA:
            a, b, c = (self._read_f32(warp, op) for op in instruction.sources)
            result = np.float32(a) * np.float32(b) + np.float32(c)
            warp.write_f32(instruction.dest.index, result, mask)
            return
        if opcode is Opcode.FADD:
            a, b = (self._read_f32(warp, op) for op in instruction.sources)
            warp.write_f32(instruction.dest.index, np.float32(a) + np.float32(b), mask)
            return
        if opcode is Opcode.FMUL:
            a, b = (self._read_f32(warp, op) for op in instruction.sources)
            warp.write_f32(instruction.dest.index, np.float32(a) * np.float32(b), mask)
            return

        if opcode is Opcode.IADD:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a + b).astype(np.uint32), mask)
            return
        if opcode is Opcode.IMUL:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a * b).astype(np.uint32), mask)
            return
        if opcode is Opcode.IMAD:
            a, b, c = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a * b + c).astype(np.uint32), mask)
            return
        if opcode is Opcode.ISCADD:
            a, b, shift = instruction.sources
            base = self._read_s32(warp, a)
            addend = self._read_s32(warp, b)
            amount = int(shift.as_int()) if isinstance(shift, Immediate) else 0
            warp.write_u32(instruction.dest.index, ((base << amount) + addend).astype(np.uint32), mask)
            return
        if opcode is Opcode.SHL:
            a, amount = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a << amount).astype(np.uint32), mask)
            return
        if opcode is Opcode.SHR:
            a, amount = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(
                instruction.dest.index,
                (warp.read_u32(instruction.sources[0].index) >> amount.astype(np.uint32)).astype(np.uint32)
                if isinstance(instruction.sources[0], Register)
                else (a >> amount).astype(np.uint32),
                mask,
            )
            return
        if opcode is Opcode.LOP_AND:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a & b).astype(np.uint32), mask)
            return
        if opcode is Opcode.LOP_OR:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a | b).astype(np.uint32), mask)
            return
        if opcode is Opcode.LOP_XOR:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a ^ b).astype(np.uint32), mask)
            return

        if opcode in (Opcode.MOV, Opcode.MOV32I):
            source = instruction.sources[0]
            if isinstance(source, Register):
                warp.write_u32(instruction.dest.index, warp.read_u32(source.index), mask)
            elif isinstance(source, Immediate) and isinstance(source.value, float):
                warp.write_f32(
                    instruction.dest.index,
                    np.full(WARP_SIZE, np.float32(source.value), dtype=np.float32),
                    mask,
                )
            elif isinstance(source, Immediate):
                warp.write_u32(
                    instruction.dest.index,
                    np.full(WARP_SIZE, source.as_int() & 0xFFFFFFFF, dtype=np.uint32),
                    mask,
                )
            elif isinstance(source, ConstRef):
                warp.write_u32(
                    instruction.dest.index,
                    np.full(WARP_SIZE, self._read_constant(source), dtype=np.uint32),
                    mask,
                )
            else:
                raise SimulationError(f"MOV source {source!r} not supported")
            return

        if opcode is Opcode.S2R:
            warp.write_u32(
                instruction.dest.index, self._special_value(warp, instruction.special), mask
            )
            return

        if opcode is Opcode.ISETP:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            comparisons = {
                "LT": a < b,
                "LE": a <= b,
                "EQ": a == b,
                "NE": a != b,
                "GE": a >= b,
                "GT": a > b,
            }
            warp.write_predicate(instruction.dest_predicate.index, comparisons[instruction.compare_op], mask)
            return

        if opcode in (Opcode.LDS, Opcode.LD):
            self._execute_load(warp, instruction, shared_memory, mask)
            return
        if opcode in (Opcode.STS, Opcode.ST):
            self._execute_store(warp, instruction, shared_memory, mask)
            return

        raise SimulationError(f"functional semantics for {opcode.value} are not implemented")

    def _special_value(self, warp: WarpState, special: SpecialRegister) -> np.ndarray:
        values = {
            SpecialRegister.TID_X: warp.lane_tid_x,
            SpecialRegister.TID_Y: warp.lane_tid_y,
            SpecialRegister.TID_Z: np.zeros(WARP_SIZE, dtype=np.int64),
            SpecialRegister.CTAID_X: np.full(WARP_SIZE, warp.block_idx[0], dtype=np.int64),
            SpecialRegister.CTAID_Y: np.full(WARP_SIZE, warp.block_idx[1], dtype=np.int64),
            SpecialRegister.CTAID_Z: np.zeros(WARP_SIZE, dtype=np.int64),
            SpecialRegister.LANEID: np.arange(WARP_SIZE, dtype=np.int64),
            SpecialRegister.WARPID: np.full(WARP_SIZE, warp.warp_id, dtype=np.int64),
        }
        return values[special].astype(np.uint32)

    def _execute_load(
        self,
        warp: WarpState,
        instruction: Instruction,
        shared_memory: SharedMemoryArray,
        mask: np.ndarray,
    ) -> None:
        operand = instruction.memory_operand
        if operand is None:
            raise SimulationError(f"{instruction.mnemonic} has no memory operand")
        addresses = self._memory_addresses(warp, operand)
        words = instruction.width // 32
        for word in range(words):
            word_addresses = addresses + 4 * word
            if instruction.opcode is Opcode.LDS:
                values = shared_memory.load_words(word_addresses, mask)
            else:
                if self._global_memory is None:
                    raise SimulationError("kernel loads global memory but none was provided")
                values = self._global_memory.load_words(word_addresses, mask)
            warp.write_u32(instruction.dest.index + word, values, mask)

    def _execute_store(
        self,
        warp: WarpState,
        instruction: Instruction,
        shared_memory: SharedMemoryArray,
        mask: np.ndarray,
    ) -> None:
        operand = instruction.memory_operand
        if operand is None:
            raise SimulationError(f"{instruction.mnemonic} has no memory operand")
        data_registers = [op for op in instruction.sources if isinstance(op, Register)]
        data_registers = [r for r in data_registers if r is not operand.base]
        if not data_registers:
            raise SimulationError(f"{instruction.mnemonic} has no data register")
        source = data_registers[-1]
        addresses = self._memory_addresses(warp, operand)
        words = instruction.width // 32
        for word in range(words):
            values = warp.read_u32(source.index + word)
            word_addresses = addresses + 4 * word
            if instruction.opcode is Opcode.STS:
                shared_memory.store_words(word_addresses, values, mask)
            else:
                if self._global_memory is None:
                    raise SimulationError("kernel stores global memory but none was provided")
                self._global_memory.store_words(word_addresses, values, mask)
