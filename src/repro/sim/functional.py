"""Backwards-compatible aliases for the functional-execution split.

The per-warp functional executor and the shared-memory array used to live in
this module.  The scalar executor is now the differential-testing oracle in
:mod:`repro.sim.reference` (the production fast path is
:mod:`repro.sim.vectorized`), and :class:`~repro.sim.memory.SharedMemoryArray`
lives with the other memory models in :mod:`repro.sim.memory`.  Import from
those modules in new code.
"""

from repro.sim.memory import SharedMemoryArray
from repro.sim.reference import ReferenceExecutor as FunctionalExecutor

__all__ = ["FunctionalExecutor", "SharedMemoryArray"]
