"""Cycle-level simulation of one streaming multiprocessor.

The SM simulator holds the warps of the blocks resident on one SM and advances
a shader-cycle loop.  Every cycle it walks the warps in a rotating (loose
round-robin) order and issues at most one instruction per warp, subject to:

* the per-cycle issue budget (thread instructions per cycle),
* a cap on warp instructions issued per cycle (number of warp schedulers),
* SP / LD-ST pipe availability,
* scoreboard readiness of the source and destination registers,
* barrier state,
* Kepler control-notation stall hints.

Functional execution happens at issue time (dependences are already honoured
by the scoreboard), so the simulator doubles as an architectural emulator for
validating SGEMM numerics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.specs import GpuGeneration, GpuSpec
from repro.errors import SimulationError
from repro.isa.assembler import Kernel
from repro.isa.instructions import Instruction, Opcode
from repro.sim.functional import FunctionalExecutor, SharedMemoryArray
from repro.sim.launch import LaunchConfig
from repro.sim.memory import GlobalMemory, KernelParams
from repro.sim.pipelines import CostModel, PipelineState
from repro.sim.results import InstructionCounters, SimResult, StallBreakdown
from repro.sim.warp import WarpState, build_warps_for_block

#: Issue-efficiency derating applied to the ideal throughput model.  Real SMs
#: lose a few percent of issue slots to instruction-fetch bubbles, dual-issue
#: restrictions and operand-collector arbitration; the paper's measured mixed
#: throughputs (e.g. 30.4 of 32 on Fermi at FFMA:LDS.64 = 6:1, 122.4 of 132 on
#: Kepler) sit a few percent under the analytic limits.  A single scalar per
#: generation captures that gap.
ISSUE_EFFICIENCY = {
    GpuGeneration.GT200: 0.97,
    GpuGeneration.FERMI: 0.965,
    GpuGeneration.KEPLER: 0.93,
}


@dataclass
class _BlockContext:
    """Per-block bookkeeping: shared memory and barrier state."""

    block_id: int
    shared_memory: SharedMemoryArray
    warps: list[WarpState] = field(default_factory=list)

    def barrier_complete(self) -> bool:
        """Whether every unfinished warp of the block has reached the barrier."""
        waiting = [w for w in self.warps if not w.finished]
        return all(w.at_barrier for w in waiting) and bool(waiting)

    def release_barrier(self) -> None:
        """Release all warps parked at the barrier."""
        for warp in self.warps:
            warp.at_barrier = False


class SmSimulator:
    """Simulates the warps resident on a single SM executing one kernel."""

    def __init__(
        self,
        gpu: GpuSpec,
        kernel: Kernel,
        *,
        global_memory: GlobalMemory | None = None,
        params: KernelParams | None = None,
    ) -> None:
        self._gpu = gpu
        self._kernel = kernel
        self._global_memory = global_memory
        self._params = params
        self._cost_model = CostModel(gpu)
        self._issue_efficiency = ISSUE_EFFICIENCY.get(gpu.generation, 0.96)

    @property
    def gpu(self) -> GpuSpec:
        """Machine description used by this simulator."""
        return self._gpu

    @property
    def kernel(self) -> Kernel:
        """Kernel being simulated."""
        return self._kernel

    @property
    def cost_model(self) -> CostModel:
        """Cost model used for timing."""
        return self._cost_model

    # ------------------------------------------------------------------ #
    # Launch preparation.                                                  #
    # ------------------------------------------------------------------ #

    def _build_blocks(self, config: LaunchConfig, block_indices: list[tuple[int, int]]) -> list[_BlockContext]:
        shared_bytes = self._kernel.shared_memory_bytes + config.shared_memory_bytes
        blocks: list[_BlockContext] = []
        warp_id = 0
        for block_id, block_idx in enumerate(block_indices):
            context = _BlockContext(
                block_id=block_id,
                shared_memory=SharedMemoryArray(shared_bytes),
            )
            context.warps = build_warps_for_block(
                block_id=block_id,
                block_idx=block_idx,
                block_dim=(config.grid.block_x, config.grid.block_y),
                first_warp_id=warp_id,
            )
            warp_id += len(context.warps)
            blocks.append(context)
        return blocks

    def _shared_memory_replays(
        self, warp: WarpState, instruction: Instruction, block: _BlockContext
    ) -> int:
        """Bank-conflict replay count for a shared-memory access (1 = conflict-free)."""
        operand = instruction.memory_operand
        if operand is None:
            return 1
        base = warp.read_u32(operand.base.index).astype(np.int64) + operand.offset
        mask = warp.active_mask
        addresses = [int(a) for a in base[mask]]
        if not addresses:
            return 1
        return self._gpu.shared_memory.conflict_degree(addresses, access_bytes=instruction.width // 8)

    # ------------------------------------------------------------------ #
    # Main loop.                                                           #
    # ------------------------------------------------------------------ #

    def run(
        self,
        config: LaunchConfig,
        block_indices: list[tuple[int, int]] | None = None,
        *,
        collect_profile: bool = False,
    ) -> SimResult:
        """Simulate the given blocks (default: all blocks of the grid) on this SM.

        Parameters
        ----------
        config:
            Launch configuration (grid geometry, functional flag, cycle cap).
        block_indices:
            The (blockIdx.x, blockIdx.y) pairs resident on this SM.  Pass a
            subset to model one SM's share of a larger grid.
        collect_profile:
            Attribute issue slots, wall-clock cycles, stall events, shared
            bank-conflict replays and DRAM bytes to individual instructions;
            the result's ``counters`` field then holds the per-instruction
            arrays (see :class:`repro.sim.results.InstructionCounters`).

        Returns
        -------
        SimResult
            Cycle count, instruction counts and stall pressure for this SM.
        """
        if block_indices is None:
            block_indices = config.grid.block_indices()
        if not block_indices:
            raise SimulationError("no blocks to simulate")

        blocks = self._build_blocks(config, block_indices)
        executor = FunctionalExecutor(
            self._global_memory,
            self._params,
            block_dim=(config.grid.block_x, config.grid.block_y),
            grid_dim=(config.grid.grid_x, config.grid.grid_y),
        )
        instructions = self._kernel.instructions
        instruction_count = len(instructions)
        if instruction_count == 0:
            raise SimulationError("cannot simulate an empty kernel")

        all_warps: list[WarpState] = [warp for block in blocks for warp in block.warps]
        block_of_warp: dict[int, _BlockContext] = {}
        for block in blocks:
            for warp in block.warps:
                block_of_warp[warp.warp_id] = block

        pipes = PipelineState()
        stalls = StallBreakdown()
        counters = InstructionCounters.zeros(instruction_count) if collect_profile else None
        histogram: dict[str, int] = {}
        warp_instructions = 0
        thread_instructions = 0
        ffma_thread_instructions = 0
        flops = 0
        memory_bytes_in_flight = 0.0

        issue_capacity = self._cost_model.issue_capacity_per_cycle * self._issue_efficiency
        max_warp_issues_per_cycle = max(1, self._gpu.sm.warp_schedulers)
        if self._gpu.generation is GpuGeneration.KEPLER:
            # Each Kepler scheduler has two dispatch units; allow dual issue.
            max_warp_issues_per_cycle = self._gpu.sm.dispatch_units
        # Token-bucket issue model: fractional per-cycle budget carries over so
        # that capacities slightly below a warp-instruction cost (e.g. 30.9
        # thread instructions per cycle on Fermi) still sustain the right
        # long-run rate instead of deadlocking.
        issue_tokens = 0.0
        issue_token_cap = max(issue_capacity * 2.0, 64.0)

        # Per-SM share of global memory bandwidth, in bytes per shader cycle.
        bandwidth_bytes_per_cycle = (
            self._gpu.global_memory_bandwidth_gbs
            * 1e9
            / (self._gpu.clocks.shader_mhz * 1e6)
            / self._gpu.sm_count
        )

        cycle = 0.0
        rotation = 0
        unfinished = len(all_warps)
        while unfinished > 0:
            if cycle > config.max_cycles:
                states = ", ".join(
                    f"w{w.warp_id}@pc={w.pc}"
                    f"{'/fin' if w.finished else ''}{'/bar' if w.at_barrier else ''}"
                    f"/rdy={w.ready_cycle:.0f}"
                    for w in all_warps
                )
                raise SimulationError(
                    f"simulation exceeded {config.max_cycles} cycles; the kernel may not "
                    f"terminate (issued {warp_instructions} warp instructions; "
                    f"stalls={stalls.as_dict()}; warps: {states})"
                )
            issue_tokens = min(issue_tokens + issue_capacity, issue_token_cap)
            warp_issues = 0
            progress = False
            issued_pcs: list[int] = []
            stalled: list[tuple[int, str]] = []

            order = range(len(all_warps))
            for offset in order:
                if issue_tokens < 32.0 or warp_issues >= max_warp_issues_per_cycle:
                    break
                warp = all_warps[(offset + rotation) % len(all_warps)]
                if warp.finished:
                    continue
                if warp.at_barrier:
                    stalls.barrier += 1
                    if counters is not None:
                        # The warp's pc already advanced past the BAR it waits at.
                        bar_pc = max(warp.pc - 1, 0)
                        counters.stall_events["barrier"][bar_pc] += 1
                        stalled.append((bar_pc, "barrier"))
                    continue
                if not warp.can_issue(cycle):
                    stalls.control_notation += 1
                    if counters is not None:
                        counters.stall_events["control_notation"][warp.pc] += 1
                        stalled.append((warp.pc, "control_notation"))
                    continue
                if warp.pc >= instruction_count:
                    warp.finished = True
                    unfinished -= 1
                    continue
                instruction = instructions[warp.pc]

                # Scoreboard: sources and (for wide loads) destination pairs must be ready.
                source_indices = tuple(r.index for r in instruction.registers_read)
                dest_indices = tuple(r.index for r in instruction.registers_written)
                if not warp.registers_ready(source_indices + dest_indices, cycle):
                    stalls.scoreboard += 1
                    if counters is not None:
                        counters.stall_events["scoreboard"][warp.pc] += 1
                        stalled.append((warp.pc, "scoreboard"))
                    continue

                # Pipe availability.
                if instruction.is_math and not pipes.sp_available(cycle):
                    stalls.sp_pipe += 1
                    if counters is not None:
                        counters.stall_events["sp_pipe"][warp.pc] += 1
                        stalled.append((warp.pc, "sp_pipe"))
                    continue
                if instruction.is_memory and not pipes.ldst_available(cycle):
                    stalls.ldst_pipe += 1
                    if counters is not None:
                        counters.stall_events["ldst_pipe"][warp.pc] += 1
                        stalled.append((warp.pc, "ldst_pipe"))
                    continue

                smem_replays = 1
                if instruction.is_memory and instruction.memory_space is not None:
                    if instruction.is_shared_load or instruction.is_shared_store:
                        if config.functional:
                            block = block_of_warp[warp.warp_id]
                            smem_replays = self._shared_memory_replays(warp, instruction, block)

                issue_cost = self._cost_model.issue_cost_threads(instruction, smem_replays)
                if issue_cost > issue_tokens:
                    stalls.issue_bandwidth += 1
                    if counters is not None:
                        counters.stall_events["issue_bandwidth"][warp.pc] += 1
                        stalled.append((warp.pc, "issue_bandwidth"))
                    continue

                # --- The instruction issues. ---
                block = block_of_warp[warp.warp_id]
                if config.functional:
                    executor.execute(warp, instruction, block.shared_memory)

                issue_tokens -= issue_cost
                warp_issues += 1
                progress = True
                warp_instructions += 1
                thread_instructions += 32
                histogram[instruction.mnemonic] = histogram.get(instruction.mnemonic, 0) + 1
                if instruction.is_ffma:
                    ffma_thread_instructions += 32
                flops += instruction.flop_count * 32
                if counters is not None:
                    issued_pcs.append(warp.pc)
                    counters.issues[warp.pc] += 1
                    if smem_replays > 1:
                        counters.smem_replays[warp.pc] += smem_replays - 1

                latency = self._cost_model.result_latency(instruction)
                if instruction.is_math:
                    pipes.occupy_sp(cycle, self._cost_model.sp_cost_cycles(instruction))
                if instruction.is_memory:
                    pipes.occupy_ldst(cycle, self._cost_model.ldst_cost_cycles(instruction, smem_replays))
                    bytes_moved = self._cost_model.global_memory_bytes(instruction)
                    if bytes_moved:
                        if counters is not None:
                            if config.functional:
                                # Count what actually moves: active lanes under
                                # the instruction's predicate, matching the
                                # GlobalMemory byte counters exactly.
                                lanes = warp.active_mask & warp.read_predicate(
                                    instruction.predicate.index,
                                    instruction.predicate_negated,
                                )
                                counters.dram_bytes[warp.pc] += int(lanes.sum()) * (
                                    instruction.width // 8
                                )
                            else:
                                counters.dram_bytes[warp.pc] += bytes_moved
                        memory_bytes_in_flight += bytes_moved
                        # Bandwidth queueing delay added to the load latency.
                        queue_delay = memory_bytes_in_flight / max(bandwidth_bytes_per_cycle, 1e-9)
                        latency += min(queue_delay, 2000.0)
                        memory_bytes_in_flight *= 0.95  # drain the queue model geometrically

                warp.mark_written(dest_indices, cycle + latency)

                # Control notation / static stall hints (Kepler).  Hints are
                # charged at half weight, rounded up to keep wake cycles
                # integral — a fractional ready_cycle used to leak into the
                # scheduler's cycle arithmetic (the integral wake is identical
                # to what the old fractional value resolved to, since warps
                # only re-check eligibility on whole cycles).
                notation = self._kernel.control_notation_for(warp.pc)
                if notation is not None:
                    slot = warp.pc % 7
                    warp.ready_cycle = cycle + 1 + (notation.stall_cycles(slot) + 1) // 2
                else:
                    warp.ready_cycle = cycle + 1

                # Control flow.
                if instruction.opcode is Opcode.EXIT:
                    mask = warp.active_mask & warp.read_predicate(
                        instruction.predicate.index, instruction.predicate_negated
                    )
                    if mask.any() or not config.functional:
                        warp.finished = True
                        unfinished -= 1
                    else:
                        warp.pc += 1
                    continue
                if instruction.opcode is Opcode.BAR:
                    warp.at_barrier = True
                    warp.pc += 1
                    if block.barrier_complete():
                        block.release_barrier()
                    continue
                if instruction.opcode is Opcode.BRA:
                    taken = self._branch_taken(warp, instruction, config.functional)
                    if taken:
                        target = self._kernel.branch_targets[warp.pc]
                        warp.pc = target
                    else:
                        warp.pc += 1
                    continue
                warp.pc += 1

            # Release barriers whose blocks completed this cycle (e.g. when the
            # last warp parked itself above after the check).
            for block in blocks:
                if any(w.at_barrier for w in block.warps) and block.barrier_complete():
                    block.release_barrier()

            rotation += 1
            cycle_before = cycle
            cycle += 1.0
            if not progress:
                # Jump ahead to the next interesting event instead of burning cycles.
                next_ready = min(
                    (
                        max(w.ready_cycle, float(np.min(w.register_ready[w.register_ready > cycle])) if (w.register_ready > cycle).any() else w.ready_cycle)
                        for w in all_warps
                        if not w.finished and not w.at_barrier
                    ),
                    default=cycle,
                )
                if next_ready > cycle:
                    cycle = float(np.ceil(next_ready))

            if counters is not None:
                # Wall-clock attribution: split the elapsed span (one cycle,
                # or the whole fast-forwarded idle jump) among this cycle's
                # issuers, else among the instructions warps stalled on.
                elapsed = cycle - cycle_before
                if issued_pcs:
                    share = elapsed / len(issued_pcs)
                    for pc in issued_pcs:
                        counters.issue_cycles[pc] += share
                elif stalled:
                    share = elapsed / len(stalled)
                    for pc, reason in stalled:
                        counters.stall_cycles[reason][pc] += share
                else:
                    # Token starvation / scheduler cap before any warp was
                    # examined: charge the first runnable warp's instruction.
                    for w in all_warps:
                        if w.finished:
                            continue
                        if w.at_barrier:
                            counters.stall_cycles["barrier"][max(w.pc - 1, 0)] += elapsed
                        else:
                            pc = min(w.pc, instruction_count - 1)
                            counters.stall_cycles["issue_bandwidth"][pc] += elapsed
                        break

        return SimResult(
            cycles=cycle,
            thread_instructions=thread_instructions,
            warp_instructions=warp_instructions,
            ffma_thread_instructions=ffma_thread_instructions,
            flops=flops,
            instruction_histogram=histogram,
            stalls=stalls,
            warps_simulated=len(all_warps),
            blocks_simulated=len(blocks),
            counters=counters,
        )

    def _branch_taken(self, warp: WarpState, instruction: Instruction, functional: bool) -> bool:
        """Resolve a (possibly guarded) branch.

        Divergent branches are not modelled — SGEMM's loop branches are uniform
        across a warp; a divergent branch raises so mistakes are loud.
        """
        if not functional:
            # Timing-only runs cannot evaluate predicates; treat backwards
            # branches as not-taken to guarantee termination.
            return False
        if instruction.predicate.is_true and not instruction.predicate_negated:
            return True
        mask = warp.active_mask
        values = warp.read_predicate(instruction.predicate.index, instruction.predicate_negated)
        active_values = values[mask]
        if active_values.size == 0:
            return False
        if active_values.all():
            return True
        if not active_values.any():
            return False
        raise SimulationError(
            "divergent branch encountered; the simulator only supports warp-uniform branches"
        )
