"""Cycle-level simulation of one streaming multiprocessor.

The SM simulator holds the warps of the blocks resident on one SM and advances
a shader-cycle loop.  Every cycle it walks the warps in a rotating (loose
round-robin) order and issues at most one instruction per warp, subject to:

* the per-cycle issue budget (thread instructions per cycle),
* a cap on warp instructions issued per cycle (number of warp schedulers),
* SP / LD-ST pipe availability,
* scoreboard readiness of the source and destination registers,
* barrier state,
* Kepler control-notation stall hints.

Functional execution comes in two interchangeable flavours selected by the
``executor`` argument:

* ``"vectorized"`` (default): each block is executed ahead of the timing loop
  by :class:`repro.sim.vectorized.VectorizedEngine` — lock-step across warps,
  one NumPy op per instruction — which records per-warp traces of the
  functional decisions (branches, EXIT masks, bank-conflict replay degrees,
  DRAM lane counts).  The timing loop then replays those traces; for the
  race-free programs the simulator supports this is cycle-identical to
  executing at issue time, at a fraction of the cost.
* ``"reference"``: the scalar oracle (:mod:`repro.sim.reference`) executes
  every instruction at issue time, exactly as dependences resolve.  This is
  the behavioural baseline the differential test harness compares against.

Static per-instruction timing facts (issue cost, pipe occupancies, latencies,
scoreboard register sets, control-notation stalls) are precompiled into
``_InstrPlan`` records so the hot per-cycle loop does no operand decoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.specs import GpuGeneration, GpuSpec
from repro.errors import SimulationError
from repro.isa.assembler import Kernel
from repro.isa.instructions import Instruction, Opcode
from repro.sim.launch import LaunchConfig
from repro.sim.memory import GlobalMemory, KernelParams, SharedMemoryArray
from repro.sim.pipelines import CostModel, PipelineState
from repro.sim.reference import ReferenceExecutor
from repro.sim.results import InstructionCounters, SimResult, StallBreakdown
from repro.sim.vectorized import VectorizedEngine, WarpTrace
from repro.sim.warp import REGISTER_COUNT, WarpState, build_warps_for_block

#: Issue-efficiency derating applied to the ideal throughput model.  Real SMs
#: lose a few percent of issue slots to instruction-fetch bubbles, dual-issue
#: restrictions and operand-collector arbitration; the paper's measured mixed
#: throughputs (e.g. 30.4 of 32 on Fermi at FFMA:LDS.64 = 6:1, 122.4 of 132 on
#: Kepler) sit a few percent under the analytic limits.  A single scalar per
#: generation captures that gap.
ISSUE_EFFICIENCY = {
    GpuGeneration.GT200: 0.97,
    GpuGeneration.FERMI: 0.965,
    GpuGeneration.KEPLER: 0.93,
}

#: Valid values for the ``executor`` argument of :class:`SmSimulator`.
EXECUTORS = ("vectorized", "reference")


class _InstrPlan:
    """Precompiled per-instruction timing facts (static, kernel-lifetime)."""

    __slots__ = (
        "instruction",
        "opcode",
        "mnemonic",
        "is_math",
        "is_memory",
        "is_shared",
        "is_ffma",
        "flops32",
        "wait_indices",
        "dest_indices",
        "issue_cost",
        "sp_cost",
        "ldst_cost_base",
        "latency",
        "bytes_moved",
        "width_bytes",
        "ready_delta",
    )

    def __init__(self, kernel: Kernel, pc: int, cost_model: CostModel) -> None:
        instruction = kernel.instructions[pc]
        self.instruction = instruction
        self.opcode = instruction.opcode
        self.mnemonic = instruction.mnemonic
        self.is_math = instruction.is_math
        self.is_memory = instruction.is_memory
        self.is_shared = instruction.is_shared_load or instruction.is_shared_store
        self.is_ffma = instruction.is_ffma
        self.flops32 = instruction.flop_count * 32
        # RZ (the last register index) is always ready and never tracked, so
        # it is dropped at plan-build time; the issue loop can then test the
        # scoreboard without per-index guards.  Duplicates wait identically.
        source_indices = tuple(r.index for r in instruction.registers_read)
        dest_indices = tuple(r.index for r in instruction.registers_written)
        self.dest_indices = tuple(
            i for i in dest_indices if i < REGISTER_COUNT - 1
        )
        wait: list[int] = []
        for index in source_indices + dest_indices:
            if index < REGISTER_COUNT - 1 and index not in wait:
                wait.append(index)
        self.wait_indices = tuple(wait)
        self.issue_cost = cost_model.issue_cost_threads(instruction)
        self.sp_cost = cost_model.sp_cost_cycles(instruction)
        self.ldst_cost_base = cost_model.ldst_cost_cycles(instruction, 1)
        self.latency = cost_model.result_latency(instruction)
        self.bytes_moved = cost_model.global_memory_bytes(instruction)
        self.width_bytes = instruction.width // 8
        notation = kernel.control_notation_for(pc)
        if notation is not None:
            # Hints are charged at half weight, rounded up to keep wake cycles
            # integral — a fractional ready_cycle used to leak into the
            # scheduler's cycle arithmetic.
            self.ready_delta = float(1 + (notation.stall_cycles(pc % 7) + 1) // 2)
        else:
            self.ready_delta = 1.0


@dataclass
class _BlockContext:
    """Per-block bookkeeping: shared memory and barrier state."""

    block_id: int
    shared_memory: SharedMemoryArray
    warps: list[WarpState] = field(default_factory=list)

    def barrier_complete(self) -> bool:
        """Whether every unfinished warp of the block has reached the barrier."""
        waiting = [w for w in self.warps if not w.finished]
        return all(w.at_barrier for w in waiting) and bool(waiting)

    def release_barrier(self) -> None:
        """Release all warps parked at the barrier."""
        for warp in self.warps:
            warp.at_barrier = False


class SmSimulator:
    """Simulates the warps resident on a single SM executing one kernel."""

    def __init__(
        self,
        gpu: GpuSpec,
        kernel: Kernel,
        *,
        global_memory: GlobalMemory | None = None,
        params: KernelParams | None = None,
        executor: str = "vectorized",
    ) -> None:
        if executor not in EXECUTORS:
            raise SimulationError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self._gpu = gpu
        self._kernel = kernel
        self._global_memory = global_memory
        self._params = params
        self._executor = executor
        self._cost_model = CostModel(gpu)
        self._issue_efficiency = ISSUE_EFFICIENCY.get(gpu.generation, 0.96)
        self._plans: list[_InstrPlan] | None = None

    @property
    def gpu(self) -> GpuSpec:
        """Machine description used by this simulator."""
        return self._gpu

    @property
    def kernel(self) -> Kernel:
        """Kernel being simulated."""
        return self._kernel

    @property
    def cost_model(self) -> CostModel:
        """Cost model used for timing."""
        return self._cost_model

    @property
    def executor(self) -> str:
        """Functional-execution engine: ``"vectorized"`` or ``"reference"``."""
        return self._executor

    # ------------------------------------------------------------------ #
    # Launch preparation.                                                  #
    # ------------------------------------------------------------------ #

    def _build_blocks(self, config: LaunchConfig, block_indices: list[tuple[int, int]]) -> list[_BlockContext]:
        shared_bytes = self._kernel.shared_memory_bytes + config.shared_memory_bytes
        blocks: list[_BlockContext] = []
        warp_id = 0
        for block_id, block_idx in enumerate(block_indices):
            context = _BlockContext(
                block_id=block_id,
                shared_memory=SharedMemoryArray(shared_bytes),
            )
            context.warps = build_warps_for_block(
                block_id=block_id,
                block_idx=block_idx,
                block_dim=(config.grid.block_x, config.grid.block_y),
                first_warp_id=warp_id,
            )
            warp_id += len(context.warps)
            blocks.append(context)
        return blocks

    def _build_plans(self) -> list[_InstrPlan]:
        if self._plans is None:
            self._plans = [
                _InstrPlan(self._kernel, pc, self._cost_model)
                for pc in range(self._kernel.instruction_count)
            ]
        return self._plans

    def _shared_memory_replays(
        self, warp: WarpState, instruction: Instruction, block: _BlockContext
    ) -> int:
        """Bank-conflict replay count for a shared-memory access (1 = conflict-free)."""
        operand = instruction.memory_operand
        if operand is None:
            return 1
        base = warp.read_u32(operand.base.index).astype(np.int64) + operand.offset
        mask = warp.active_mask
        addresses = [int(a) for a in base[mask]]
        if not addresses:
            return 1
        return self._gpu.shared_memory.conflict_degree(addresses, access_bytes=instruction.width // 8)

    # ------------------------------------------------------------------ #
    # Main loop.                                                           #
    # ------------------------------------------------------------------ #

    def run(
        self,
        config: LaunchConfig,
        block_indices: list[tuple[int, int]] | None = None,
        *,
        collect_profile: bool = False,
    ) -> SimResult:
        """Simulate the given blocks (default: all blocks of the grid) on this SM.

        Parameters
        ----------
        config:
            Launch configuration (grid geometry, functional flag, cycle cap).
        block_indices:
            The (blockIdx.x, blockIdx.y) pairs resident on this SM.  Pass a
            subset to model one SM's share of a larger grid.
        collect_profile:
            Attribute issue slots, wall-clock cycles, stall events, shared
            bank-conflict replays and DRAM bytes to individual instructions;
            the result's ``counters`` field then holds the per-instruction
            arrays (see :class:`repro.sim.results.InstructionCounters`).

        Returns
        -------
        SimResult
            Cycle count, instruction counts and stall pressure for this SM.
        """
        if block_indices is None:
            block_indices = config.grid.block_indices()
        if not block_indices:
            raise SimulationError("no blocks to simulate")

        instruction_count = self._kernel.instruction_count
        if instruction_count == 0:
            raise SimulationError("cannot simulate an empty kernel")
        plans = self._build_plans()

        blocks = self._build_blocks(config, block_indices)
        all_warps: list[WarpState] = [warp for block in blocks for warp in block.warps]
        block_of_warp: dict[int, _BlockContext] = {}
        for block in blocks:
            for warp in block.warps:
                block_of_warp[warp.warp_id] = block

        functional = config.functional
        vectorized = functional and self._executor == "vectorized"
        executor: ReferenceExecutor | None = None
        traces: dict[int, WarpTrace] = {}
        if vectorized:
            # Functional pre-pass: execute every block lock-step ahead of the
            # timing loop, recording the per-warp decision traces the loop
            # replays below.  A warp issues at most one instruction per cycle,
            # so the cycle cap bounds the dynamic instruction count too.
            engine = VectorizedEngine(
                self._kernel,
                shared_spec=self._gpu.shared_memory,
                global_memory=self._global_memory,
                params=self._params,
                grid_dim=(config.grid.grid_x, config.grid.grid_y),
            )
            limit = min(1_000_000, int(config.max_cycles) + 1)
            for block in blocks:
                traces.update(
                    engine.run_block(
                        block.warps, block.shared_memory, max_instructions=limit
                    )
                )
        elif functional:
            executor = ReferenceExecutor(
                self._global_memory,
                self._params,
                block_dim=(config.grid.block_x, config.grid.block_y),
                grid_dim=(config.grid.grid_x, config.grid.grid_y),
            )

        pipes = PipelineState()
        stalls = StallBreakdown()
        # Per-reason stall tallies as locals; folded into ``stalls`` after the
        # loop (and on the runaway error path) — attribute increments are
        # measurably slower than local-int increments in the issue loop.
        stall_scoreboard = 0
        stall_issue_bandwidth = 0
        stall_sp_pipe = 0
        stall_ldst_pipe = 0
        stall_barrier = 0
        stall_control_notation = 0
        counters = InstructionCounters.zeros(instruction_count) if collect_profile else None
        # Per-pc issue tally; the histogram and instruction totals are folded
        # from it after the loop so the hot path is one list increment.
        issue_counts = [0] * instruction_count
        memory_bytes_in_flight = 0.0

        issue_capacity = self._cost_model.issue_capacity_per_cycle * self._issue_efficiency
        max_warp_issues_per_cycle = max(1, self._gpu.sm.warp_schedulers)
        if self._gpu.generation is GpuGeneration.KEPLER:
            # Each Kepler scheduler has two dispatch units; allow dual issue.
            max_warp_issues_per_cycle = self._gpu.sm.dispatch_units
        # Token-bucket issue model: fractional per-cycle budget carries over so
        # that capacities slightly below a warp-instruction cost (e.g. 30.9
        # thread instructions per cycle on Fermi) still sustain the right
        # long-run rate instead of deadlocking.
        issue_tokens = 0.0
        issue_token_cap = max(issue_capacity * 2.0, 64.0)

        # Per-SM share of global memory bandwidth, in bytes per shader cycle.
        bandwidth_bytes_per_cycle = (
            self._gpu.global_memory_bandwidth_gbs
            * 1e9
            / (self._gpu.clocks.shader_mhz * 1e6)
            / self._gpu.sm_count
        )

        # Scoreboard matrix: row ``i`` aliases warp ``i``'s register_ready
        # array, so per-warp mark_written updates are visible to the matrix
        # and the no-progress fast-forward below is a single reduction.
        warp_count = len(all_warps)
        register_ready_matrix = np.zeros((warp_count, REGISTER_COUNT), dtype=np.float64)
        for row, warp in enumerate(all_warps):
            register_ready_matrix[row] = warp.register_ready
            warp.register_ready = register_ready_matrix[row]
        # Python-list mirror of the scoreboard rows: the per-instruction wait
        # checks dominate the issue loop and NumPy scalar indexing is several
        # times slower than a list read.  Writes go to both views.
        matrix_rows = list(register_ready_matrix)
        ready_lists = [[float(v) for v in row] for row in register_ready_matrix]
        ready_cycles = np.array([w.ready_cycle for w in all_warps], dtype=np.float64)
        # Round-robin visit orders, one per rotation residue, precomputed so
        # the issue loop avoids a modulo per warp per cycle.
        issue_orders = [
            [(offset + rotation) % warp_count for offset in range(warp_count)]
            for rotation in range(warp_count)
        ]

        cycle = 0.0
        rotation_residue = 0
        unfinished = warp_count
        while unfinished > 0:
            if cycle > config.max_cycles:
                states = ", ".join(
                    f"w{w.warp_id}@pc={w.pc}"
                    f"{'/fin' if w.finished else ''}{'/bar' if w.at_barrier else ''}"
                    f"/rdy={w.ready_cycle:.0f}"
                    for w in all_warps
                )
                stalls.scoreboard = stall_scoreboard
                stalls.issue_bandwidth = stall_issue_bandwidth
                stalls.sp_pipe = stall_sp_pipe
                stalls.ldst_pipe = stall_ldst_pipe
                stalls.barrier = stall_barrier
                stalls.control_notation = stall_control_notation
                raise SimulationError(
                    f"simulation exceeded {config.max_cycles} cycles; the kernel may not "
                    f"terminate (issued {sum(issue_counts)} warp instructions; "
                    f"stalls={stalls.as_dict()}; warps: {states})"
                )
            issue_tokens = min(issue_tokens + issue_capacity, issue_token_cap)
            warp_issues = 0
            progress = False
            barrier_state_changed = False
            cycle_horizon = cycle + 1.0
            if counters is not None:
                issued_pcs: list[int] = []
                stalled: list[tuple[int, str]] = []

            for index in issue_orders[rotation_residue]:
                if issue_tokens < 32.0 or warp_issues >= max_warp_issues_per_cycle:
                    break
                warp = all_warps[index]
                if warp.finished:
                    continue
                if warp.at_barrier:
                    stall_barrier += 1
                    if counters is not None:
                        # The warp's pc already advanced past the BAR it waits at.
                        bar_pc = max(warp.pc - 1, 0)
                        counters.stall_events["barrier"][bar_pc] += 1
                        stalled.append((bar_pc, "barrier"))
                    continue
                if warp.ready_cycle > cycle:
                    stall_control_notation += 1
                    if counters is not None:
                        counters.stall_events["control_notation"][warp.pc] += 1
                        stalled.append((warp.pc, "control_notation"))
                    continue
                if warp.pc >= instruction_count:
                    warp.finished = True
                    unfinished -= 1
                    barrier_state_changed = True
                    continue
                pc = warp.pc
                plan = plans[pc]

                # Scoreboard: sources and (for wide loads) destination pairs
                # must be ready (inlined WarpState.registers_ready; the plan's
                # wait_indices are pre-filtered of RZ).
                register_ready = ready_lists[index]
                ready = True
                for wait_index in plan.wait_indices:
                    if register_ready[wait_index] > cycle:
                        ready = False
                        break
                if not ready:
                    stall_scoreboard += 1
                    if counters is not None:
                        counters.stall_events["scoreboard"][pc] += 1
                        stalled.append((pc, "scoreboard"))
                    continue

                # Pipe availability.
                if plan.is_math and not pipes.sp_free_at < cycle_horizon:
                    stall_sp_pipe += 1
                    if counters is not None:
                        counters.stall_events["sp_pipe"][pc] += 1
                        stalled.append((pc, "sp_pipe"))
                    continue
                if plan.is_memory and not pipes.ldst_free_at < cycle_horizon:
                    stall_ldst_pipe += 1
                    if counters is not None:
                        counters.stall_events["ldst_pipe"][pc] += 1
                        stalled.append((pc, "ldst_pipe"))
                    continue

                smem_replays = 1
                if plan.is_shared and functional and not vectorized:
                    block = block_of_warp[warp.warp_id]
                    smem_replays = self._shared_memory_replays(warp, plan.instruction, block)

                if plan.issue_cost > issue_tokens:
                    stall_issue_bandwidth += 1
                    if counters is not None:
                        counters.stall_events["issue_bandwidth"][pc] += 1
                        stalled.append((pc, "issue_bandwidth"))
                    continue

                # --- The instruction issues. ---
                if vectorized:
                    if plan.is_shared:
                        smem_replays = traces[warp.warp_id].next_replay()
                elif functional:
                    executor.execute(
                        warp, plan.instruction,
                        block_of_warp[warp.warp_id].shared_memory,
                    )

                issue_tokens -= plan.issue_cost
                warp_issues += 1
                progress = True
                issue_counts[pc] += 1
                if counters is not None:
                    issued_pcs.append(pc)
                    if smem_replays > 1:
                        counters.smem_replays[pc] += smem_replays - 1

                latency = plan.latency
                if plan.is_math:
                    # Inlined PipelineState.occupy_sp.
                    free_at = pipes.sp_free_at
                    pipes.sp_free_at = (
                        free_at if free_at > cycle else cycle
                    ) + plan.sp_cost
                if plan.is_memory:
                    # Inlined PipelineState.occupy_ldst.
                    free_at = pipes.ldst_free_at
                    pipes.ldst_free_at = (
                        free_at if free_at > cycle else cycle
                    ) + plan.ldst_cost_base * max(1, smem_replays)
                    bytes_moved = plan.bytes_moved
                    if bytes_moved:
                        if counters is not None:
                            if vectorized:
                                # Lanes recorded by the functional pre-pass:
                                # active lanes under the instruction's
                                # predicate, matching GlobalMemory counters.
                                lanes = traces[warp.warp_id].next_dram_lanes()
                                counters.dram_bytes[pc] += lanes * plan.width_bytes
                            elif functional:
                                # Count what actually moves: active lanes under
                                # the instruction's predicate, matching the
                                # GlobalMemory byte counters exactly.
                                mask = warp.active_mask & warp.read_predicate(
                                    plan.instruction.predicate.index,
                                    plan.instruction.predicate_negated,
                                )
                                counters.dram_bytes[pc] += int(mask.sum()) * plan.width_bytes
                            else:
                                counters.dram_bytes[pc] += bytes_moved
                        memory_bytes_in_flight += bytes_moved
                        # Bandwidth queueing delay added to the load latency.
                        queue_delay = memory_bytes_in_flight / max(bandwidth_bytes_per_cycle, 1e-9)
                        latency += min(queue_delay, 2000.0)
                        memory_bytes_in_flight *= 0.95  # drain the queue model geometrically

                # Inlined WarpState.mark_written (dest_indices exclude RZ).
                # Updates land in both the list mirror and the NumPy row the
                # fast-forward reduction (and warp.register_ready) aliases.
                ready_at = cycle + latency
                matrix_row = matrix_rows[index]
                for dest_index in plan.dest_indices:
                    if register_ready[dest_index] < ready_at:
                        register_ready[dest_index] = ready_at
                        matrix_row[dest_index] = ready_at

                # Control notation / static stall hints (Kepler), precompiled
                # into the plan's ready_delta (1.0 when no notation applies).
                warp.ready_cycle = cycle + plan.ready_delta
                ready_cycles[index] = warp.ready_cycle

                # Control flow.
                opcode = plan.opcode
                if opcode is Opcode.EXIT:
                    if vectorized:
                        finished = traces[warp.warp_id].next_exit()
                    elif functional:
                        mask = warp.active_mask & warp.read_predicate(
                            plan.instruction.predicate.index,
                            plan.instruction.predicate_negated,
                        )
                        finished = bool(mask.any())
                    else:
                        finished = True
                    if finished:
                        warp.finished = True
                        unfinished -= 1
                        barrier_state_changed = True
                    else:
                        warp.pc += 1
                    continue
                if opcode is Opcode.BAR:
                    warp.at_barrier = True
                    warp.pc += 1
                    barrier_state_changed = True
                    block = block_of_warp[warp.warp_id]
                    if block.barrier_complete():
                        block.release_barrier()
                    continue
                if opcode is Opcode.BRA:
                    if vectorized:
                        taken = traces[warp.warp_id].next_branch()
                    else:
                        taken = self._branch_taken(warp, plan.instruction, functional)
                    if taken:
                        warp.pc = self._kernel.branch_targets[pc]
                    else:
                        warp.pc += 1
                    continue
                warp.pc += 1

            # Release barriers whose blocks completed this cycle (e.g. when the
            # last warp parked itself above after the check).  Barrier
            # completion only changes when a warp parks or finishes.
            if barrier_state_changed:
                for block in blocks:
                    if any(w.at_barrier for w in block.warps) and block.barrier_complete():
                        block.release_barrier()

            rotation_residue += 1
            if rotation_residue == warp_count:
                rotation_residue = 0
            cycle_before = cycle
            cycle += 1.0
            if not progress:
                # Jump ahead to the next interesting event instead of burning
                # cycles.  Per warp the wake cycle is the later of ready_cycle
                # and the earliest still-pending scoreboard release; one
                # reduction over the aliased scoreboard matrix covers all warps.
                rows = [
                    row
                    for row, w in enumerate(all_warps)
                    if not w.finished and not w.at_barrier
                ]
                if rows:
                    pending = np.where(
                        register_ready_matrix > cycle, register_ready_matrix, np.inf
                    ).min(axis=1)
                    candidates = np.maximum(
                        ready_cycles, np.where(np.isinf(pending), ready_cycles, pending)
                    )
                    next_ready = float(candidates[rows].min())
                    if next_ready > cycle:
                        cycle = float(np.ceil(next_ready))

            if counters is not None:
                # Wall-clock attribution: split the elapsed span (one cycle,
                # or the whole fast-forwarded idle jump) among this cycle's
                # issuers, else among the instructions warps stalled on.
                elapsed = cycle - cycle_before
                if issued_pcs:
                    share = elapsed / len(issued_pcs)
                    for pc in issued_pcs:
                        counters.issue_cycles[pc] += share
                elif stalled:
                    share = elapsed / len(stalled)
                    for pc, reason in stalled:
                        counters.stall_cycles[reason][pc] += share
                else:
                    # Token starvation / scheduler cap before any warp was
                    # examined: charge the first runnable warp's instruction.
                    for w in all_warps:
                        if w.finished:
                            continue
                        if w.at_barrier:
                            counters.stall_cycles["barrier"][max(w.pc - 1, 0)] += elapsed
                        else:
                            pc = min(w.pc, instruction_count - 1)
                            counters.stall_cycles["issue_bandwidth"][pc] += elapsed
                        break

        stalls.scoreboard = stall_scoreboard
        stalls.issue_bandwidth = stall_issue_bandwidth
        stalls.sp_pipe = stall_sp_pipe
        stalls.ldst_pipe = stall_ldst_pipe
        stalls.barrier = stall_barrier
        stalls.control_notation = stall_control_notation

        histogram: dict[str, int] = {}
        warp_instructions = 0
        ffma_thread_instructions = 0
        flops = 0
        for pc, count in enumerate(issue_counts):
            if not count:
                continue
            plan = plans[pc]
            warp_instructions += count
            histogram[plan.mnemonic] = histogram.get(plan.mnemonic, 0) + count
            if plan.is_ffma:
                ffma_thread_instructions += count * 32
            flops += plan.flops32 * count
        if counters is not None:
            counters.issues[:] = issue_counts

        return SimResult(
            cycles=cycle,
            thread_instructions=warp_instructions * 32,
            warp_instructions=warp_instructions,
            ffma_thread_instructions=ffma_thread_instructions,
            flops=flops,
            instruction_histogram=histogram,
            stalls=stalls,
            warps_simulated=len(all_warps),
            blocks_simulated=len(blocks),
            counters=counters,
            executor=self._executor if functional else "",
        )

    def _branch_taken(self, warp: WarpState, instruction: Instruction, functional: bool) -> bool:
        """Resolve a (possibly guarded) branch.

        Divergent branches are not modelled — SGEMM's loop branches are uniform
        across a warp; a divergent branch raises so mistakes are loud.
        """
        if not functional:
            # Timing-only runs cannot evaluate predicates; treat backwards
            # branches as not-taken to guarantee termination.
            return False
        if instruction.predicate.is_true and not instruction.predicate_negated:
            return True
        mask = warp.active_mask
        values = warp.read_predicate(instruction.predicate.index, instruction.predicate_negated)
        active_values = values[mask]
        if active_values.size == 0:
            return False
        if active_values.all():
            return True
        if not active_values.any():
            return False
        raise SimulationError(
            "divergent branch encountered; the simulator only supports warp-uniform branches"
        )
