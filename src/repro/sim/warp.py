"""Per-warp architectural state."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

WARP_SIZE = 32
REGISTER_COUNT = 64  # R0..R62 plus RZ at index 63
PREDICATE_COUNT = 8  # P0..P6 plus PT at index 7


@dataclass
class WarpState:
    """Architectural and scheduling state of one warp.

    Attributes
    ----------
    warp_id:
        Warp index within the simulated SM.
    block_id:
        Index of the block (within the SM) this warp belongs to.
    block_idx:
        The CUDA (blockIdx.x, blockIdx.y) of the warp's block.
    lane_tid_x / lane_tid_y:
        Per-lane thread coordinates within the block.
    pc:
        Index of the next instruction to issue.
    registers:
        ``(64, 32)`` uint32 array; row 63 is RZ and always reads as zero.
    predicates:
        ``(8, 32)`` bool array; row 7 is PT and always reads as True.
    active_mask:
        Which lanes hold real threads (trailing warps of odd-sized blocks
        have inactive lanes).
    finished:
        The warp has executed EXIT.
    at_barrier:
        The warp is parked at a BAR.SYNC waiting for its block.
    ready_cycle:
        Earliest cycle at which the warp may issue again (set by latency,
        scoreboard release or control-notation stalls).
    """

    warp_id: int
    block_id: int
    block_idx: tuple[int, int] = (0, 0)
    lane_tid_x: np.ndarray = field(default_factory=lambda: np.zeros(WARP_SIZE, dtype=np.int64))
    lane_tid_y: np.ndarray = field(default_factory=lambda: np.zeros(WARP_SIZE, dtype=np.int64))
    pc: int = 0
    registers: np.ndarray = field(
        default_factory=lambda: np.zeros((REGISTER_COUNT, WARP_SIZE), dtype=np.uint32)
    )
    predicates: np.ndarray = field(
        default_factory=lambda: np.zeros((PREDICATE_COUNT, WARP_SIZE), dtype=bool)
    )
    active_mask: np.ndarray = field(default_factory=lambda: np.ones(WARP_SIZE, dtype=bool))
    finished: bool = False
    at_barrier: bool = False
    ready_cycle: float = 0.0
    register_ready: np.ndarray = field(
        default_factory=lambda: np.zeros(REGISTER_COUNT, dtype=np.float64)
    )

    def __post_init__(self) -> None:
        self.predicates[PREDICATE_COUNT - 1, :] = True  # PT

    # ------------------------------------------------------------------ #
    # Register access helpers (functional side).                          #
    # ------------------------------------------------------------------ #

    def read_u32(self, index: int) -> np.ndarray:
        """Read a register as 32 unsigned integers (RZ reads as zero)."""
        if index == REGISTER_COUNT - 1:
            return np.zeros(WARP_SIZE, dtype=np.uint32)
        return self.registers[index]

    def read_s32(self, index: int) -> np.ndarray:
        """Read a register as 32 signed integers."""
        return self.read_u32(index).astype(np.int64).astype(np.int32).astype(np.int64)

    def read_f32(self, index: int) -> np.ndarray:
        """Read a register as 32 float32 values."""
        return self.read_u32(index).view(np.float32)

    def write_u32(self, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        """Write 32-bit values into a register under ``mask`` (RZ writes ignored)."""
        if index == REGISTER_COUNT - 1:
            return
        lane_values = np.asarray(values, dtype=np.uint32)
        self.registers[index, mask] = lane_values[mask]

    def write_f32(self, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        """Write float32 values into a register under ``mask``."""
        self.write_u32(index, np.asarray(values, dtype=np.float32).view(np.uint32), mask)

    def read_predicate(self, index: int, negated: bool) -> np.ndarray:
        """Evaluate a (possibly negated) guard predicate per lane."""
        values = self.predicates[index]
        return ~values if negated else values

    def write_predicate(self, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        """Write a predicate register under ``mask`` (PT writes ignored)."""
        if index == PREDICATE_COUNT - 1:
            return
        self.predicates[index, mask] = values[mask]

    # ------------------------------------------------------------------ #
    # Scheduling helpers (timing side).                                   #
    # ------------------------------------------------------------------ #

    def registers_ready(self, indices: tuple[int, ...], cycle: float) -> bool:
        """Whether every register in ``indices`` is ready at ``cycle``."""
        for index in indices:
            if index < REGISTER_COUNT - 1 and self.register_ready[index] > cycle:
                return False
        return True

    def mark_written(self, indices: tuple[int, ...], ready_at: float) -> None:
        """Record that ``indices`` will be written and become ready at ``ready_at``."""
        for index in indices:
            if index < REGISTER_COUNT - 1:
                self.register_ready[index] = max(self.register_ready[index], ready_at)

    def can_issue(self, cycle: float) -> bool:
        """Whether the warp is eligible to issue at ``cycle``."""
        return not self.finished and not self.at_barrier and self.ready_cycle <= cycle


def build_warps_for_block(
    block_id: int,
    block_idx: tuple[int, int],
    block_dim: tuple[int, int],
    first_warp_id: int,
) -> list[WarpState]:
    """Create the warps of one block with thread coordinates filled in.

    Threads are linearised in the CUDA order (x fastest) and packed into warps
    of 32 consecutive threads.
    """
    block_x, block_y = block_dim
    if block_x <= 0 or block_y <= 0:
        raise SimulationError("block dimensions must be positive")
    total_threads = block_x * block_y
    warp_count = -(-total_threads // WARP_SIZE)
    warps: list[WarpState] = []
    for warp_index in range(warp_count):
        linear = np.arange(WARP_SIZE, dtype=np.int64) + warp_index * WARP_SIZE
        active = linear < total_threads
        linear_clamped = np.minimum(linear, total_threads - 1)
        warp = WarpState(
            warp_id=first_warp_id + warp_index,
            block_id=block_id,
            block_idx=block_idx,
            lane_tid_x=linear_clamped % block_x,
            lane_tid_y=linear_clamped // block_x,
            active_mask=active,
        )
        warps.append(warp)
    return warps
