"""Reference (scalar) functional execution — the differential-testing oracle.

This module is the semantic bedrock of the simulator: one warp at a time, one
instruction at a time, per-lane Python loops for every memory access (via the
``*_reference`` accessors of :class:`~repro.sim.memory.SharedMemoryArray` and
:class:`~repro.sim.memory.GlobalMemory`).  It is deliberately slow and
deliberately simple — every operand is re-dispatched with ``isinstance`` on
every step so the code reads like the ISA manual.

The production path is :mod:`repro.sim.vectorized`, which batches straight-line
regions across all warps of a block.  ``tests/sim/test_differential.py`` and
``tests/sim/test_fuzz_semantics.py`` run both engines over random programs and
every registry workload and assert bit-identical architectural state; any new
opcode lands here first (see ``docs/simulator.md``).

Shift semantics (shared by both engines, pinned by ``tests/sim/test_shifts.py``):
``SHR`` is a *logical* shift on the 32-bit value regardless of whether the
shift amount comes from a register, an immediate or a constant — an earlier
version arithmetically shifted the sign-extended value for non-register
amounts.  Shift amounts are taken as unsigned and clamp at 32: shifting by
32 or more yields zero for both ``SHL`` and ``SHR``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.isa.assembler import Kernel
from repro.isa.instructions import ConstRef, Immediate, Instruction, MemRef, Opcode
from repro.isa.registers import Register, SpecialRegister
from repro.sim.memory import GlobalMemory, KernelParams, SharedMemoryArray
from repro.sim.warp import WARP_SIZE, WarpState


def _shift_amount_u32(values: np.ndarray) -> np.ndarray:
    """Shift amounts as unsigned 32-bit counts clamped to 32 (=> result 0)."""
    return np.minimum(values.astype(np.uint32).astype(np.uint64), 32)


class ReferenceExecutor:
    """Executes instruction semantics for warps of one kernel launch.

    Control flow (BRA/EXIT/BAR) is resolved by the SM simulator (or by
    :func:`run_block_reference`), not here — this class only computes
    register, shared-memory and global-memory effects.
    """

    def __init__(
        self,
        global_memory: GlobalMemory | None,
        params: KernelParams | None,
        block_dim: tuple[int, int],
        grid_dim: tuple[int, int] = (1, 1),
    ) -> None:
        self._global_memory = global_memory
        self._params = params
        self._block_dim = block_dim
        self._grid_dim = grid_dim

    # ------------------------------------------------------------------ #
    # Operand evaluation.                                                 #
    # ------------------------------------------------------------------ #

    def _read_f32(self, warp: WarpState, operand: object) -> np.ndarray:
        if isinstance(operand, Register):
            return warp.read_f32(operand.index)
        if isinstance(operand, Immediate):
            return np.full(WARP_SIZE, np.float32(operand.as_float()), dtype=np.float32)
        if isinstance(operand, ConstRef):
            return np.full(
                WARP_SIZE,
                np.array([self._read_constant(operand)], dtype=np.uint32).view(np.float32)[0],
                dtype=np.float32,
            )
        raise SimulationError(f"operand {operand!r} cannot be read as float")

    def _read_s32(self, warp: WarpState, operand: object) -> np.ndarray:
        if isinstance(operand, Register):
            return warp.read_s32(operand.index)
        if isinstance(operand, Immediate):
            return np.full(WARP_SIZE, int(operand.as_int()), dtype=np.int64)
        if isinstance(operand, ConstRef):
            raw = self._read_constant(operand)
            signed = raw - 2**32 if raw >= 2**31 else raw
            return np.full(WARP_SIZE, signed, dtype=np.int64)
        raise SimulationError(f"operand {operand!r} cannot be read as integer")

    def _read_u32(self, warp: WarpState, operand: object) -> np.ndarray:
        if isinstance(operand, Register):
            return warp.read_u32(operand.index)
        if isinstance(operand, Immediate):
            return np.full(WARP_SIZE, operand.as_int() & 0xFFFFFFFF, dtype=np.uint32)
        if isinstance(operand, ConstRef):
            return np.full(WARP_SIZE, self._read_constant(operand), dtype=np.uint32)
        raise SimulationError(f"operand {operand!r} cannot be read as unsigned integer")

    def _read_constant(self, ref: ConstRef) -> int:
        if self._params is None:
            raise SimulationError("kernel reads constants but no parameters were provided")
        if ref.bank != 0:
            raise SimulationError(f"only constant bank 0 is modelled, got bank {ref.bank}")
        return self._params.read_word(ref.offset)

    def _memory_addresses(self, warp: WarpState, operand: MemRef) -> np.ndarray:
        base = warp.read_u32(operand.base.index).astype(np.int64)
        return base + operand.offset

    # ------------------------------------------------------------------ #
    # Instruction execution.                                              #
    # ------------------------------------------------------------------ #

    def execute(
        self,
        warp: WarpState,
        instruction: Instruction,
        shared_memory: SharedMemoryArray,
    ) -> None:
        """Apply ``instruction``'s architectural effects to ``warp``.

        Control-flow opcodes are no-ops here (handled by the scheduler).
        """
        mask = warp.active_mask & warp.read_predicate(
            instruction.predicate.index, instruction.predicate_negated
        )
        opcode = instruction.opcode

        if opcode in (Opcode.BRA, Opcode.BAR, Opcode.EXIT, Opcode.NOP):
            return

        if opcode is Opcode.FFMA:
            a, b, c = (self._read_f32(warp, op) for op in instruction.sources)
            result = np.float32(a) * np.float32(b) + np.float32(c)
            warp.write_f32(instruction.dest.index, result, mask)
            return
        if opcode is Opcode.FADD:
            a, b = (self._read_f32(warp, op) for op in instruction.sources)
            warp.write_f32(instruction.dest.index, np.float32(a) + np.float32(b), mask)
            return
        if opcode is Opcode.FMUL:
            a, b = (self._read_f32(warp, op) for op in instruction.sources)
            warp.write_f32(instruction.dest.index, np.float32(a) * np.float32(b), mask)
            return

        if opcode is Opcode.IADD:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a + b).astype(np.uint32), mask)
            return
        if opcode is Opcode.IMUL:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a * b).astype(np.uint32), mask)
            return
        if opcode is Opcode.IMAD:
            a, b, c = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a * b + c).astype(np.uint32), mask)
            return
        if opcode is Opcode.ISCADD:
            a, b, shift = instruction.sources
            base = self._read_s32(warp, a)
            addend = self._read_s32(warp, b)
            amount = int(shift.as_int()) if isinstance(shift, Immediate) else 0
            warp.write_u32(instruction.dest.index, ((base << amount) + addend).astype(np.uint32), mask)
            return
        if opcode is Opcode.SHL:
            a = self._read_u32(warp, instruction.sources[0]).astype(np.uint64)
            amount = _shift_amount_u32(self._read_u32(warp, instruction.sources[1]))
            warp.write_u32(instruction.dest.index, (a << amount).astype(np.uint32), mask)
            return
        if opcode is Opcode.SHR:
            a = self._read_u32(warp, instruction.sources[0]).astype(np.uint64)
            amount = _shift_amount_u32(self._read_u32(warp, instruction.sources[1]))
            warp.write_u32(instruction.dest.index, (a >> amount).astype(np.uint32), mask)
            return
        if opcode is Opcode.LOP_AND:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a & b).astype(np.uint32), mask)
            return
        if opcode is Opcode.LOP_OR:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a | b).astype(np.uint32), mask)
            return
        if opcode is Opcode.LOP_XOR:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            warp.write_u32(instruction.dest.index, (a ^ b).astype(np.uint32), mask)
            return

        if opcode in (Opcode.MOV, Opcode.MOV32I):
            source = instruction.sources[0]
            if isinstance(source, Register):
                warp.write_u32(instruction.dest.index, warp.read_u32(source.index), mask)
            elif isinstance(source, Immediate) and isinstance(source.value, float):
                warp.write_f32(
                    instruction.dest.index,
                    np.full(WARP_SIZE, np.float32(source.value), dtype=np.float32),
                    mask,
                )
            elif isinstance(source, Immediate):
                warp.write_u32(
                    instruction.dest.index,
                    np.full(WARP_SIZE, source.as_int() & 0xFFFFFFFF, dtype=np.uint32),
                    mask,
                )
            elif isinstance(source, ConstRef):
                warp.write_u32(
                    instruction.dest.index,
                    np.full(WARP_SIZE, self._read_constant(source), dtype=np.uint32),
                    mask,
                )
            else:
                raise SimulationError(f"MOV source {source!r} not supported")
            return

        if opcode is Opcode.S2R:
            warp.write_u32(
                instruction.dest.index, self._special_value(warp, instruction.special), mask
            )
            return

        if opcode is Opcode.ISETP:
            a, b = (self._read_s32(warp, op) for op in instruction.sources)
            comparisons = {
                "LT": a < b,
                "LE": a <= b,
                "EQ": a == b,
                "NE": a != b,
                "GE": a >= b,
                "GT": a > b,
            }
            warp.write_predicate(instruction.dest_predicate.index, comparisons[instruction.compare_op], mask)
            return

        if opcode in (Opcode.LDS, Opcode.LD):
            self._execute_load(warp, instruction, shared_memory, mask)
            return
        if opcode in (Opcode.STS, Opcode.ST):
            self._execute_store(warp, instruction, shared_memory, mask)
            return

        raise SimulationError(f"functional semantics for {opcode.value} are not implemented")

    def _special_value(self, warp: WarpState, special: SpecialRegister) -> np.ndarray:
        values = {
            SpecialRegister.TID_X: warp.lane_tid_x,
            SpecialRegister.TID_Y: warp.lane_tid_y,
            SpecialRegister.TID_Z: np.zeros(WARP_SIZE, dtype=np.int64),
            SpecialRegister.CTAID_X: np.full(WARP_SIZE, warp.block_idx[0], dtype=np.int64),
            SpecialRegister.CTAID_Y: np.full(WARP_SIZE, warp.block_idx[1], dtype=np.int64),
            SpecialRegister.CTAID_Z: np.zeros(WARP_SIZE, dtype=np.int64),
            SpecialRegister.LANEID: np.arange(WARP_SIZE, dtype=np.int64),
            SpecialRegister.WARPID: np.full(WARP_SIZE, warp.warp_id, dtype=np.int64),
        }
        return values[special].astype(np.uint32)

    def _execute_load(
        self,
        warp: WarpState,
        instruction: Instruction,
        shared_memory: SharedMemoryArray,
        mask: np.ndarray,
    ) -> None:
        operand = instruction.memory_operand
        if operand is None:
            raise SimulationError(f"{instruction.mnemonic} has no memory operand")
        addresses = self._memory_addresses(warp, operand)
        words = instruction.width // 32
        for word in range(words):
            word_addresses = addresses + 4 * word
            if instruction.opcode is Opcode.LDS:
                values = shared_memory.load_words_reference(word_addresses, mask)
            else:
                if self._global_memory is None:
                    raise SimulationError("kernel loads global memory but none was provided")
                values = self._global_memory.load_words_reference(word_addresses, mask)
            warp.write_u32(instruction.dest.index + word, values, mask)

    def _execute_store(
        self,
        warp: WarpState,
        instruction: Instruction,
        shared_memory: SharedMemoryArray,
        mask: np.ndarray,
    ) -> None:
        operand = instruction.memory_operand
        if operand is None:
            raise SimulationError(f"{instruction.mnemonic} has no memory operand")
        data_registers = [op for op in instruction.sources if isinstance(op, Register)]
        data_registers = [r for r in data_registers if r is not operand.base]
        if not data_registers:
            raise SimulationError(f"{instruction.mnemonic} has no data register")
        source = data_registers[-1]
        addresses = self._memory_addresses(warp, operand)
        words = instruction.width // 32
        for word in range(words):
            values = warp.read_u32(source.index + word)
            word_addresses = addresses + 4 * word
            if instruction.opcode is Opcode.STS:
                shared_memory.store_words_reference(word_addresses, values, mask)
            else:
                if self._global_memory is None:
                    raise SimulationError("kernel stores global memory but none was provided")
                self._global_memory.store_words_reference(word_addresses, values, mask)


def run_block_reference(
    kernel: Kernel,
    warps: list[WarpState],
    shared_memory: SharedMemoryArray,
    *,
    global_memory: GlobalMemory | None = None,
    params: KernelParams | None = None,
    grid_dim: tuple[int, int] = (1, 1),
    max_instructions: int = 1_000_000,
) -> None:
    """Functionally execute one block to completion with the scalar oracle.

    Warps advance round-robin, one instruction per warp per turn, parking at
    barriers until every unfinished warp of the block arrives (the same
    block-level semantics the timing loop implements).  Any warp interleaving
    yields the same final state for race-free programs — the only programs
    whose lock-step batched execution (:mod:`repro.sim.vectorized`) is defined
    for — so the round-robin order is simply a deterministic choice.

    Mutates ``warps`` (registers, predicates, pc, finished), ``shared_memory``
    and ``global_memory`` in place; the differential harness compares those
    against the vectorized engine's results.
    """
    if kernel.instruction_count == 0:
        raise SimulationError("cannot execute an empty kernel")
    block_dim = (
        max(int(w.lane_tid_x.max()) for w in warps) + 1,
        max(int(w.lane_tid_y.max()) for w in warps) + 1,
    )
    executor = ReferenceExecutor(global_memory, params, block_dim, grid_dim)
    instructions = kernel.instructions
    executed = {w.warp_id: 0 for w in warps}
    while True:
        runnable = [w for w in warps if not w.finished and not w.at_barrier]
        if not runnable:
            if all(w.finished for w in warps):
                return
            for w in warps:
                w.at_barrier = False
            continue
        for warp in runnable:
            if warp.finished or warp.at_barrier:
                continue
            if warp.pc >= len(instructions):
                warp.finished = True
                continue
            instruction = instructions[warp.pc]
            executed[warp.warp_id] += 1
            if executed[warp.warp_id] > max_instructions:
                raise SimulationError(
                    f"functional execution exceeded {max_instructions} instructions "
                    f"for warp {warp.warp_id}; the kernel may not terminate"
                )
            executor.execute(warp, instruction, shared_memory)
            if instruction.opcode is Opcode.EXIT:
                mask = warp.active_mask & warp.read_predicate(
                    instruction.predicate.index, instruction.predicate_negated
                )
                if mask.any():
                    warp.finished = True
                else:
                    warp.pc += 1
                continue
            if instruction.opcode is Opcode.BAR:
                warp.at_barrier = True
                warp.pc += 1
                continue
            if instruction.opcode is Opcode.BRA:
                if _branch_taken_reference(warp, instruction):
                    warp.pc = kernel.branch_targets[warp.pc]
                else:
                    warp.pc += 1
                continue
            warp.pc += 1


def _branch_taken_reference(warp: WarpState, instruction: Instruction) -> bool:
    """Resolve a (possibly guarded) warp-uniform branch; divergence raises."""
    if instruction.predicate.is_true and not instruction.predicate_negated:
        return True
    values = warp.read_predicate(instruction.predicate.index, instruction.predicate_negated)
    active_values = values[warp.active_mask]
    if active_values.size == 0:
        return False
    if active_values.all():
        return True
    if not active_values.any():
        return False
    raise SimulationError(
        "divergent branch encountered; the simulator only supports warp-uniform branches"
    )
