"""GPU-level simulation: distributing blocks over SMs.

Fully simulating every SM of a GPU for large grids is unnecessary for the
paper's methodology — all SMs execute the same kernel on interchangeable
blocks.  :class:`GpuSimulator` therefore simulates *one* SM with a
representative set of resident blocks and extrapolates:

* ``run_block`` / ``run_resident_set`` — functional + timing simulation of one
  block or one SM's resident set (used for numerical validation and for
  measuring the sustained main-loop throughput of SGEMM kernels);
* ``estimate_grid_time`` — classic wave-based extrapolation: the grid is
  executed in ``ceil(blocks / (SMs * blocks_per_SM))`` waves, each costing the
  simulated per-resident-set time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.occupancy import OccupancyCalculator
from repro.arch.specs import GpuSpec
from repro.errors import SimulationError
from repro.isa.assembler import Kernel
from repro.sim.launch import BlockGrid, LaunchConfig
from repro.sim.memory import GlobalMemory, KernelParams
from repro.sim.results import SimResult
from repro.sim.sm_sim import SmSimulator


@dataclass(frozen=True)
class GridEstimate:
    """Extrapolated execution estimate for a full grid.

    Attributes
    ----------
    resident_result:
        The simulated result for one SM's resident set of blocks.
    blocks_per_sm:
        Number of blocks resident per SM (from the occupancy calculator).
    waves:
        Number of waves needed to run the whole grid.
    total_cycles:
        Estimated shader cycles for the full grid.
    total_seconds:
        Estimated wall-clock seconds for the full grid.
    gflops:
        Estimated achieved GFLOPS for the full grid, based on the useful
        flops supplied by the caller (or the simulated flops if not given).
    """

    resident_result: SimResult
    blocks_per_sm: int
    waves: int
    total_cycles: float
    total_seconds: float
    gflops: float


def simulate_kernel(
    gpu: GpuSpec,
    kernel: Kernel,
    grid: BlockGrid,
    *,
    global_memory: GlobalMemory | None = None,
    params: KernelParams | None = None,
    functional: bool = True,
    max_cycles: int = 5_000_000,
    executor: str = "vectorized",
) -> SimResult:
    """Convenience wrapper: simulate all blocks of ``grid`` on one SM.

    Suitable for small functional-validation runs and micro-benchmarks where
    the grid fits on (or is intended for) a single SM.  ``executor`` selects
    the functional engine (``"vectorized"`` fast path or the scalar
    ``"reference"`` oracle); both produce bit-identical results.
    """
    simulator = SmSimulator(
        gpu, kernel, global_memory=global_memory, params=params, executor=executor
    )
    config = LaunchConfig(grid=grid, functional=functional, max_cycles=max_cycles)
    return simulator.run(config)


class GpuSimulator:
    """Simulates kernel launches on a whole GPU by extrapolating from one SM."""

    def __init__(self, gpu: GpuSpec) -> None:
        self._gpu = gpu
        self._occupancy = OccupancyCalculator(gpu)

    @property
    def gpu(self) -> GpuSpec:
        """Machine description used by this simulator."""
        return self._gpu

    def run_block(
        self,
        kernel: Kernel,
        grid: BlockGrid,
        block_idx: tuple[int, int] = (0, 0),
        *,
        global_memory: GlobalMemory | None = None,
        params: KernelParams | None = None,
        functional: bool = True,
        max_cycles: int = 5_000_000,
        executor: str = "vectorized",
    ) -> SimResult:
        """Simulate a single block of a launch (functional validation entry point)."""
        simulator = SmSimulator(
            self._gpu, kernel, global_memory=global_memory, params=params, executor=executor
        )
        config = LaunchConfig(grid=grid, functional=functional, max_cycles=max_cycles)
        return simulator.run(config, block_indices=[block_idx])

    def run_resident_set(
        self,
        kernel: Kernel,
        grid: BlockGrid,
        *,
        registers_per_thread: int | None = None,
        global_memory: GlobalMemory | None = None,
        params: KernelParams | None = None,
        functional: bool = True,
        max_cycles: int = 5_000_000,
        blocks_per_sm: int | None = None,
        executor: str = "vectorized",
    ) -> tuple[SimResult, int]:
        """Simulate one SM running its full resident set of blocks.

        Returns the result and the number of resident blocks used.  The
        resident-block count comes from the occupancy calculator unless
        explicitly overridden.
        """
        if blocks_per_sm is None:
            registers = registers_per_thread or max(kernel.register_count, 1)
            occupancy = self._occupancy.resolve(
                threads_per_block=grid.threads_per_block,
                registers_per_thread=registers,
                shared_memory_per_block=kernel.shared_memory_bytes,
            )
            blocks_per_sm = occupancy.active_blocks
        blocks_per_sm = max(1, min(blocks_per_sm, grid.block_count))
        block_indices = grid.block_indices()[:blocks_per_sm]
        simulator = SmSimulator(
            self._gpu, kernel, global_memory=global_memory, params=params, executor=executor
        )
        config = LaunchConfig(grid=grid, functional=functional, max_cycles=max_cycles)
        result = simulator.run(config, block_indices=block_indices)
        return result, blocks_per_sm

    def estimate_grid_time(
        self,
        kernel: Kernel,
        grid: BlockGrid,
        *,
        useful_flops: float | None = None,
        registers_per_thread: int | None = None,
        global_memory: GlobalMemory | None = None,
        params: KernelParams | None = None,
        functional: bool = True,
        max_cycles: int = 5_000_000,
        executor: str = "vectorized",
    ) -> GridEstimate:
        """Estimate full-grid execution by simulating one resident set per wave.

        Parameters
        ----------
        useful_flops:
            The algorithm's useful floating-point work (e.g. ``2*M*N*K`` for
            SGEMM).  When omitted, the simulated flop count scaled by the
            number of blocks is used.
        """
        resident_result, blocks_per_sm = self.run_resident_set(
            kernel,
            grid,
            registers_per_thread=registers_per_thread,
            global_memory=global_memory,
            params=params,
            functional=functional,
            max_cycles=max_cycles,
            executor=executor,
        )
        blocks_per_wave = blocks_per_sm * self._gpu.sm_count
        waves = -(-grid.block_count // blocks_per_wave)
        if waves <= 0:
            raise SimulationError("grid has no blocks")
        total_cycles = resident_result.cycles * waves
        total_seconds = self._gpu.clocks.cycles_to_seconds(total_cycles)
        if useful_flops is None:
            per_block_flops = resident_result.flops / max(resident_result.blocks_simulated, 1)
            useful_flops = per_block_flops * grid.block_count
        gflops = useful_flops / total_seconds / 1e9 if total_seconds > 0 else 0.0
        return GridEstimate(
            resident_result=resident_result,
            blocks_per_sm=blocks_per_sm,
            waves=waves,
            total_cycles=total_cycles,
            total_seconds=total_seconds,
            gflops=gflops,
        )
