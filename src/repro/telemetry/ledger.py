"""The durable run ledger: append-only JSONL records that survive processes.

Every sweep, simulation or profiling run the repository performs produces
numbers — cycles, DRAM traffic, sweep economics, cache hit rates — that
today evaporate when the interpreter exits.  The ledger persists them:

* **Records** (:class:`LedgerRecord`) carry a *key* (what was run: workload,
  config digest, kernel content hash, GPU), a *metrics* dict (what it
  achieved), and *provenance* (git revision, python/numpy versions,
  timestamp) — enough to compare any two runs of the same thing across
  processes, branches and machines.
* **Storage** is append-only JSONL under ``.repro/ledger/`` with one
  *segment file per process* (``segment-<pid>.jsonl``): the multiprocessing
  autotuner's workers never contend for one file, a torn final line (a
  killed process) corrupts nothing that parses, and a merged read
  (:meth:`RunLedger.records`) sees every segment ordered by timestamp.
* **Diffing** (:func:`diff_records`) compares two records of the same key
  and flags regressions in the gated fields (cycles, DRAM bytes) beyond a
  threshold — the same >2% contract ``bench_trajectory.py --check``
  enforces between PRs, now usable between any two local runs via
  ``scripts/ledger.py diff``.

Like the metrics facade and the tracer, the ledger has an install point:
:func:`install_ledger` makes :func:`record_run` a durable append, and
leaves it a strict no-op otherwise.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import subprocess
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator

__all__ = [
    "DEFAULT_LEDGER_ROOT",
    "LEDGER_SCHEMA",
    "LedgerDiff",
    "LedgerRecord",
    "RunLedger",
    "build_record",
    "config_digest",
    "current_ledger",
    "diff_records",
    "environment_provenance",
    "install_ledger",
    "ledger_session",
    "normalize_gpu",
    "record_run",
    "scaled_copy",
]

#: Record format version, stamped into every record.
LEDGER_SCHEMA = 1

#: Where the ledger lives unless told otherwise (relative to the CWD).
DEFAULT_LEDGER_ROOT = ".repro/ledger"

#: Metric fields the regression diff gates, lower-is-better.
GATED_FIELDS = ("cycles", "dram_bytes")

#: The same contract as ``scripts/bench_trajectory.py --check``.
REGRESSION_TOLERANCE = 0.02


def config_digest(config: object) -> str:
    """A short stable digest of a workload configuration.

    Workload configs are frozen dataclasses whose ``repr`` is deterministic
    and value-complete, so hashing the repr identifies the schedule point
    exactly — the same identity the in-process schedule caches key on.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


def normalize_gpu(name: str) -> str:
    """Canonical short GPU key (``"GeForce GTX 580"`` → ``"gtx580"``)."""
    return name.lower().replace("geforce ", "").replace(" ", "")


def environment_provenance() -> dict[str, object]:
    """Where a record came from: git revision, interpreter, numpy, time."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=False,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        rev = "unknown"
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unknown"
    return {
        "git_rev": rev,
        "python": sys.version.split()[0],
        "numpy": numpy_version,
        "hostname": os.uname().nodename if hasattr(os, "uname") else "unknown",
    }


@dataclass(frozen=True)
class LedgerRecord:
    """One durable run record.

    Attributes
    ----------
    kind:
        What produced it: ``"sweep"``, ``"sim"`` or ``"profile"``.
    key:
        The cross-run identity — records with equal keys are comparable
        (same workload, config digest, GPU, variant).  ``diff`` operates
        within one key.
    workload / gpu / kernel_hash / config:
        The key's components, kept readable: registry workload name, short
        GPU key, kernel content hash (:func:`repro.opt.rewrite.kernel_hash`)
        and the configuration ``repr``.
    metrics:
        The run's figures (``cycles``, ``dram_bytes``, stall totals, sweep
        economics, a metrics-facade snapshot, ...).  Values must be
        JSON-serialisable.
    provenance:
        :func:`environment_provenance` output.
    timestamp / seq:
        Append wall-clock time plus a per-process sequence number; the merge
        order of a read.
    """

    kind: str
    key: str
    workload: str = ""
    gpu: str = ""
    kernel_hash: str = ""
    config: str = ""
    metrics: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)
    timestamp: float = 0.0
    seq: int = 0
    pid: int = 0
    schema: int = LEDGER_SCHEMA

    def metric(self, name: str) -> float | None:
        """One numeric metric, or None when absent/non-numeric."""
        value = self.metrics.get(name)
        return float(value) if isinstance(value, (int, float)) else None

    def as_dict(self) -> dict[str, object]:
        """The JSON object one ledger line holds."""
        return {
            "schema": self.schema,
            "kind": self.kind,
            "key": self.key,
            "workload": self.workload,
            "gpu": self.gpu,
            "kernel_hash": self.kernel_hash,
            "config": self.config,
            "metrics": self.metrics,
            "provenance": self.provenance,
            "timestamp": self.timestamp,
            "seq": self.seq,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerRecord":
        """Inverse of :meth:`as_dict` (unknown extra keys are ignored)."""
        return cls(
            kind=str(payload["kind"]),
            key=str(payload["key"]),
            workload=str(payload.get("workload", "")),
            gpu=str(payload.get("gpu", "")),
            kernel_hash=str(payload.get("kernel_hash", "")),
            config=str(payload.get("config", "")),
            metrics=dict(payload.get("metrics", {})),
            provenance=dict(payload.get("provenance", {})),
            timestamp=float(payload.get("timestamp", 0.0)),
            seq=int(payload.get("seq", 0)),
            pid=int(payload.get("pid", 0)),
            schema=int(payload.get("schema", LEDGER_SCHEMA)),
        )


#: Per-process monotonically increasing record sequence.
_SEQ = itertools.count()


def build_record(
    kind: str,
    key: str,
    *,
    workload: str = "",
    gpu: str = "",
    kernel_hash: str = "",
    config: object = None,
    metrics: dict | None = None,
) -> LedgerRecord:
    """A fully stamped record: provenance, timestamp and sequence included."""
    return LedgerRecord(
        kind=kind,
        key=key,
        workload=workload,
        gpu=gpu,
        kernel_hash=kernel_hash,
        config="" if config is None else repr(config),
        metrics=dict(metrics or {}),
        provenance=environment_provenance(),
        timestamp=time.time(),
        seq=next(_SEQ),
        pid=os.getpid(),
    )


class RunLedger:
    """An append-only record store rooted at one directory.

    Appends go to this process's own segment file — a single ``write`` of
    one JSON line in append mode, so concurrent writers (the autotuner's
    pool workers) never interleave *within* a record even if they shared a
    segment, and never contend because they don't.  Reads merge every
    segment, skipping unparseable (torn) lines.
    """

    def __init__(self, root: str | os.PathLike = DEFAULT_LEDGER_ROOT) -> None:
        self.root = Path(root)

    @property
    def segment_path(self) -> Path:
        """This process's segment file."""
        return self.root / f"segment-{os.getpid()}.jsonl"

    def append(self, record: LedgerRecord) -> LedgerRecord:
        """Durably append one record; returns it (for chaining/tests).

        Raises :class:`OSError` when the append cannot land (full or
        read-only disk, or an injected ``telemetry.ledger.append`` fault);
        the :func:`record_run` facade absorbs that into a counter, because
        telemetry must never fail the run it describes.
        """
        from repro.faults import fault_point

        line = json.dumps(record.as_dict(), sort_keys=True)
        if "\n" in line:  # defensive: a record is exactly one line
            raise ValueError("ledger record serialised to multiple lines")
        fault_point("telemetry.ledger.append")
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.segment_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record

    def records(
        self, *, key: str | None = None, kind: str | None = None
    ) -> list[LedgerRecord]:
        """Every record across all segments, oldest first.

        Merged deterministically by ``(timestamp, pid, seq)``; lines that do
        not parse (a torn tail from a killed writer) are skipped, never
        fatal.
        """
        merged: list[LedgerRecord] = []
        if not self.root.is_dir():
            return merged
        for segment in sorted(self.root.glob("*.jsonl")):
            try:
                text = segment.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = LedgerRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue  # torn or foreign line: skip, don't fail the read
                if key is not None and record.key != key:
                    continue
                if kind is not None and record.kind != kind:
                    continue
                merged.append(record)
        merged.sort(key=lambda r: (r.timestamp, r.pid, r.seq))
        return merged

    def keys(self) -> list[str]:
        """Every distinct record key, sorted."""
        return sorted({record.key for record in self.records()})

    def latest(self, key: str, count: int = 1) -> list[LedgerRecord]:
        """The last ``count`` records of ``key``, oldest of the slice first."""
        matching = self.records(key=key)
        return matching[-count:] if count else []


@dataclass(frozen=True)
class FieldDelta:
    """One gated field's movement between two records of the same key."""

    field: str
    baseline: float
    current: float

    @property
    def relative(self) -> float:
        """Fractional change (+0.05 = 5% worse for lower-is-better fields)."""
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return self.current / self.baseline - 1.0


@dataclass(frozen=True)
class LedgerDiff:
    """The comparison of two records sharing a key.

    ``regressions`` names the gated fields whose current value exceeds the
    baseline by more than the tolerance (lower-is-better semantics — the
    cycle/traffic contract of the trajectory gate).
    """

    key: str
    baseline: LedgerRecord
    current: LedgerRecord
    deltas: tuple[FieldDelta, ...]
    tolerance: float

    @property
    def regressions(self) -> list[str]:
        """Gated fields that regressed beyond the tolerance."""
        return [d.field for d in self.deltas if d.relative > self.tolerance]

    @property
    def ok(self) -> bool:
        """True when no gated field regressed."""
        return not self.regressions


def diff_records(
    baseline: LedgerRecord,
    current: LedgerRecord,
    *,
    tolerance: float = REGRESSION_TOLERANCE,
    fields: tuple[str, ...] = GATED_FIELDS,
) -> LedgerDiff:
    """Compare two records of one key on the gated lower-is-better fields.

    Fields absent from either record are skipped (older records may predate
    a metric); present-in-both fields produce a :class:`FieldDelta` and gate.
    """
    if baseline.key != current.key:
        raise ValueError(
            f"cannot diff records of different keys: "
            f"{baseline.key!r} vs {current.key!r}"
        )
    deltas = []
    for name in fields:
        old = baseline.metric(name)
        new = current.metric(name)
        if old is None or new is None:
            continue
        deltas.append(FieldDelta(field=name, baseline=old, current=new))
    return LedgerDiff(
        key=current.key,
        baseline=baseline,
        current=current,
        deltas=tuple(deltas),
        tolerance=tolerance,
    )


# --------------------------------------------------------------------------- #
# The process-wide install point.                                              #
# --------------------------------------------------------------------------- #

#: The installed ledger instrumented code appends to (None = off).
_CURRENT: RunLedger | None = None


def install_ledger(ledger: RunLedger | None) -> RunLedger | None:
    """Install ``ledger`` as the process-wide ledger; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = ledger
    return previous


def current_ledger() -> RunLedger | None:
    """The installed ledger, or None when durable recording is off."""
    return _CURRENT


@contextmanager
def ledger_session(root: str | os.PathLike = DEFAULT_LEDGER_ROOT) -> Iterator[RunLedger]:
    """Install a :class:`RunLedger` at ``root`` for the ``with`` body."""
    ledger = RunLedger(root)
    previous = install_ledger(ledger)
    try:
        yield ledger
    finally:
        install_ledger(previous)


def record_run(
    kind: str,
    key: str,
    *,
    workload: str = "",
    gpu: str = "",
    kernel_hash: str = "",
    config: object = None,
    metrics: dict | None = None,
) -> LedgerRecord | None:
    """Append a stamped record to the installed ledger; no-op when off.

    A failing append (full or read-only disk) is absorbed into the
    ``telemetry.ledger.write_errors`` counter and returns None — the run
    being recorded must not fail because its telemetry could not land.
    """
    from repro.telemetry.metrics import counter_inc

    ledger = _CURRENT
    if ledger is None:
        return None
    record = build_record(
        kind,
        key,
        workload=workload,
        gpu=gpu,
        kernel_hash=kernel_hash,
        config=config,
        metrics=metrics,
    )
    try:
        return ledger.append(record)
    except OSError:
        counter_inc("telemetry.ledger.write_errors", 1)
        return None


def scaled_copy(record: LedgerRecord, scales: dict[str, float]) -> LedgerRecord:
    """A fresh re-stamped copy of ``record`` with metric fields multiplied.

    The synthetic-regression helper behind ``scripts/ledger.py inject`` and
    the CI ledger smoke: scaling ``{"cycles": 1.05}`` fabricates a 5% cycle
    regression for the diff gate to catch.
    """
    metrics = dict(record.metrics)
    for name, factor in scales.items():
        value = record.metric(name)
        if value is not None:
            metrics[name] = value * factor
    return replace(
        record,
        metrics=metrics,
        provenance=environment_provenance(),
        timestamp=time.time(),
        seq=next(_SEQ),
        pid=os.getpid(),
    )
