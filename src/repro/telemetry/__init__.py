"""``repro.telemetry`` — metrics registry + durable run ledger.

The cross-run observability spine (see ``docs/telemetry.md``):

* **Metrics facade** (:mod:`repro.telemetry.metrics`) — process-wide
  labeled counters, gauges, histograms and timers, instrumented through the
  autotune sweep, the opt pipeline and ``run_workload``.  A strict no-op
  when no registry is installed: one global read, zero allocations.
* **Exporters** (:mod:`repro.telemetry.exporters`) — lossless JSON snapshot
  round-trip and the Prometheus text exposition format.
* **Run ledger** (:mod:`repro.telemetry.ledger`) — append-only JSONL
  records under ``.repro/ledger/``, one per sweep/sim/profile run, keyed by
  kernel-content and config hashes plus GPU, carrying a metrics snapshot
  and environment provenance.  Safe under the multiprocessing autotuner via
  per-process segment files merged on read.  ``scripts/ledger.py`` is the
  command-line front end (``list``/``show``/``summary``/``diff``).

This package is a dependency leaf (stdlib + numpy only) so every layer —
``tile``, ``opt``, ``kernels``, ``prof`` — can instrument through it
without import cycles.
"""

from __future__ import annotations

from repro.telemetry.exporters import (
    escape_label_value,
    snapshot_from_json,
    snapshot_to_dict,
    snapshot_to_json,
    to_prometheus,
)
from repro.telemetry.ledger import (
    DEFAULT_LEDGER_ROOT,
    LEDGER_SCHEMA,
    LedgerDiff,
    LedgerRecord,
    RunLedger,
    build_record,
    config_digest,
    current_ledger,
    diff_records,
    environment_provenance,
    install_ledger,
    ledger_session,
    normalize_gpu,
    record_run,
    scaled_copy,
)
from repro.telemetry.metrics import (
    HistogramStat,
    MetricsRegistry,
    MetricsSnapshot,
    counter_inc,
    current_metrics,
    gauge_set,
    install_metrics,
    metrics_session,
    observe,
    time_block,
)

__all__ = [
    "DEFAULT_LEDGER_ROOT",
    "HistogramStat",
    "LEDGER_SCHEMA",
    "LedgerDiff",
    "LedgerRecord",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RunLedger",
    "build_record",
    "config_digest",
    "counter_inc",
    "current_ledger",
    "current_metrics",
    "diff_records",
    "environment_provenance",
    "escape_label_value",
    "gauge_set",
    "install_ledger",
    "install_metrics",
    "ledger_session",
    "metrics_session",
    "normalize_gpu",
    "observe",
    "record_run",
    "scaled_copy",
    "snapshot_from_json",
    "snapshot_to_dict",
    "snapshot_to_json",
    "time_block",
    "to_prometheus",
]
