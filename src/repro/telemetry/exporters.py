"""Metrics snapshot exporters: JSON (lossless) and Prometheus text format.

Two consumers, two formats:

* :func:`snapshot_to_json` / :func:`snapshot_from_json` — the lossless
  round-trip the run ledger embeds in its records (and tests pin).  Each
  series is one ``{"name", "labels", ...}`` object, so arbitrary label
  values (commas, equals signs, quotes) survive exactly;
* :func:`to_prometheus` — the Prometheus text exposition format (the
  ``# TYPE`` + ``name{labels} value`` lines a scrape endpoint or textfile
  collector ingests), with metric names sanitised and label values escaped
  per the exposition-format rules (backslash, double quote, newline).

Histogram series export as Prometheus summaries without quantiles:
``name_count`` / ``name_sum`` plus ``name_min`` / ``name_max`` — the
figures :class:`~repro.telemetry.metrics.HistogramStat` tracks exactly.
"""

from __future__ import annotations

import json
import re

from repro.telemetry.metrics import HistogramStat, LabelPairs, MetricsSnapshot

__all__ = [
    "escape_label_value",
    "snapshot_from_json",
    "snapshot_to_dict",
    "snapshot_to_json",
    "to_prometheus",
]

#: Characters legal in a Prometheus metric name; everything else becomes "_".
_NAME_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def _series(name: str, labels: LabelPairs, **payload: object) -> dict[str, object]:
    """One exported series object (labels as a list of [key, value] pairs)."""
    return {"name": name, "labels": [list(pair) for pair in labels], **payload}


def _labels(entry: dict) -> LabelPairs:
    return tuple((str(key), str(value)) for key, value in entry.get("labels", []))


def snapshot_to_dict(snapshot: MetricsSnapshot) -> dict[str, object]:
    """The JSON-ready view of a snapshot (sorted, nested plain types)."""
    return {
        "counters": [
            _series(name, labels, value=value)
            for (name, labels), value in sorted(snapshot.counters.items())
        ],
        "gauges": [
            _series(name, labels, value=value)
            for (name, labels), value in sorted(snapshot.gauges.items())
        ],
        "histograms": [
            _series(name, labels, **stat.as_dict())
            for (name, labels), stat in sorted(snapshot.histograms.items())
        ],
    }


def snapshot_to_json(snapshot: MetricsSnapshot) -> str:
    """Serialise a snapshot losslessly (see :func:`snapshot_from_json`)."""
    return json.dumps(snapshot_to_dict(snapshot), indent=1, sort_keys=True)


def snapshot_from_dict(payload: dict[str, object]) -> MetricsSnapshot:
    """Rebuild a snapshot from :func:`snapshot_to_dict` output (exact inverse)."""
    return MetricsSnapshot(
        counters={
            (str(entry["name"]), _labels(entry)): float(entry["value"])
            for entry in payload.get("counters", [])
        },
        gauges={
            (str(entry["name"]), _labels(entry)): float(entry["value"])
            for entry in payload.get("gauges", [])
        },
        histograms={
            (str(entry["name"]), _labels(entry)): HistogramStat.from_dict(entry)
            for entry in payload.get("histograms", [])
        },
    )


def snapshot_from_json(text: str) -> MetricsSnapshot:
    """Rebuild a snapshot from :func:`snapshot_to_json` output (exact inverse)."""
    return snapshot_from_dict(json.loads(text))


def escape_label_value(value: str) -> str:
    """Escape one label value per the Prometheus exposition format.

    Backslash, double quote and newline are the three characters the format
    requires escaping inside a quoted label value.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prometheus_name(name: str) -> str:
    """A legal Prometheus metric name (dots and dashes become underscores)."""
    return _NAME_ILLEGAL.sub("_", name)


def _format_value(value: float) -> str:
    """Integral floats render without the trailing ``.0`` (stable, compact)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _prometheus_series(name: str, labels: LabelPairs, value: float) -> str:
    """One exposition line: ``name{k="v",...} value``."""
    if labels:
        rendered = ",".join(
            f'{_prometheus_name(key)}="{escape_label_value(item)}"'
            for key, item in labels
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    counters: dict[str, list[str]] = {}
    for (name, labels), value in sorted(snapshot.counters.items()):
        metric = _prometheus_name(name)
        counters.setdefault(metric, []).append(_prometheus_series(metric, labels, value))
    gauges: dict[str, list[str]] = {}
    for (name, labels), value in sorted(snapshot.gauges.items()):
        metric = _prometheus_name(name)
        gauges.setdefault(metric, []).append(_prometheus_series(metric, labels, value))
    summaries: dict[str, list[str]] = {}
    for (name, labels), stat in sorted(snapshot.histograms.items()):
        metric = _prometheus_name(name)
        lines = summaries.setdefault(metric, [])
        lines.append(_prometheus_series(f"{metric}_count", labels, float(stat.count)))
        lines.append(_prometheus_series(f"{metric}_sum", labels, stat.sum))
        if stat.count:
            lines.append(_prometheus_series(f"{metric}_min", labels, stat.min))
            lines.append(_prometheus_series(f"{metric}_max", labels, stat.max))

    out: list[str] = []
    for metric in sorted(counters):
        out.append(f"# TYPE {metric} counter")
        out.extend(counters[metric])
    for metric in sorted(gauges):
        out.append(f"# TYPE {metric} gauge")
        out.extend(gauges[metric])
    for metric in sorted(summaries):
        out.append(f"# TYPE {metric} summary")
        out.extend(summaries[metric])
    return "\n".join(out) + ("\n" if out else "")
