"""Process-wide metrics facade: labeled counters, gauges, histograms, timers.

The facade mirrors the tracer's design contract (:mod:`repro.prof.trace`):
instrumented library code reports unconditionally, and the cost of *not*
observing is one module-global read — when no :class:`MetricsRegistry` is
installed, every facade call returns immediately without allocating.  That
strictness is load-bearing: the autotune sweep, the opt pipeline and
``run_workload`` are instrumented on their hot paths, and the test suite
pins the uninstalled facade at zero retained allocations per call.

Labels are passed as a tuple of ``(key, value)`` pairs rather than keyword
arguments, so call sites with constant labels compile to a constant tuple
(CPython folds nested constant tuples) and the no-op path allocates nothing::

    counter_inc("tile.schedule_cache.hits", 1, (("cache", "scheduled_procs"),))

Determinism follows the tracer too: the registry clock is injectable, so
tests drive a fake counter and get byte-stable timer observations.

Example (deterministic fake clock)::

    >>> ticks = iter(range(100))
    >>> registry = MetricsRegistry(clock=lambda: next(ticks) * 0.5)
    >>> previous = install_metrics(registry)
    >>> counter_inc("sweep.candidates", 5)
    >>> with time_block("sweep.prune_seconds"):
    ...     pass
    >>> registry.counter_value("sweep.candidates")
    5.0
    >>> registry.histogram_stat("sweep.prune_seconds").sum
    0.5
    >>> _ = install_metrics(previous)
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Tuple

__all__ = [
    "HistogramStat",
    "LabelPairs",
    "MetricsRegistry",
    "MetricsSnapshot",
    "counter_inc",
    "current_metrics",
    "gauge_set",
    "install_metrics",
    "metrics_session",
    "observe",
    "time_block",
]

#: Labels as a tuple of (key, value) pairs.  Constant at most call sites.
LabelPairs = Tuple[Tuple[str, str], ...]


def _canonical(labels: Iterable[tuple[str, object]]) -> LabelPairs:
    """Sorted, stringified label pairs — one identity per label *set*."""
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels))


@dataclass
class HistogramStat:
    """Streaming summary of one histogram series: count, sum, min, max.

    A full bucketed histogram is deliberately out of scope — the figures the
    sweep and pipeline record (durations, deltas) are consumed as rollups,
    and count/sum/min/max round-trip exactly through the JSON exporter.
    """

    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-safe view (an empty series omits the infinite min/max)."""
        payload: dict[str, float] = {"count": self.count, "sum": self.sum}
        if self.count:
            payload["min"] = self.min
            payload["max"] = self.max
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, float]) -> "HistogramStat":
        """Inverse of :meth:`as_dict`."""
        stat = cls(count=int(payload["count"]), sum=float(payload["sum"]))
        if stat.count:
            stat.min = float(payload["min"])
            stat.max = float(payload["max"])
        return stat


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable point-in-time copy of a registry's series.

    The exchange format between the registry, the exporters
    (:mod:`repro.telemetry.exporters`) and the run ledger: plain dicts keyed
    by ``(name, labels)`` pairs, fully JSON-serialisable via
    :func:`repro.telemetry.exporters.snapshot_to_json`.
    """

    counters: dict[tuple[str, LabelPairs], float] = field(default_factory=dict)
    gauges: dict[tuple[str, LabelPairs], float] = field(default_factory=dict)
    histograms: dict[tuple[str, LabelPairs], HistogramStat] = field(default_factory=dict)

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all label sets."""
        return sum(v for (n, _), v in self.counters.items() if n == name)


class MetricsRegistry:
    """Accumulates counters, gauges and histogram summaries by (name, labels).

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds, used by :meth:`timer`.
        Defaults to :func:`time.perf_counter`; tests inject a fake counter
        for deterministic observations.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self.counters: dict[tuple[str, LabelPairs], float] = {}
        self.gauges: dict[tuple[str, LabelPairs], float] = {}
        self.histograms: dict[tuple[str, LabelPairs], HistogramStat] = {}

    # ------------------------------------------------------------------ #
    # Recording.                                                          #
    # ------------------------------------------------------------------ #

    def counter_inc(self, name: str, value: float = 1.0, labels: LabelPairs = ()) -> None:
        """Add ``value`` (>= 0) to the counter ``name``/``labels``."""
        key = (name, _canonical(labels))
        self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def gauge_set(self, name: str, value: float, labels: LabelPairs = ()) -> None:
        """Set the gauge ``name``/``labels`` to ``value`` (last write wins)."""
        self.gauges[(name, _canonical(labels))] = float(value)

    def observe(self, name: str, value: float, labels: LabelPairs = ()) -> None:
        """Fold ``value`` into the histogram summary ``name``/``labels``."""
        key = (name, _canonical(labels))
        stat = self.histograms.get(key)
        if stat is None:
            stat = self.histograms[key] = HistogramStat()
        stat.observe(value)

    @contextmanager
    def timer(self, name: str, labels: LabelPairs = ()) -> Iterator[None]:
        """Observe the wall-clock seconds of the ``with`` body into ``name``."""
        start = self._clock()
        try:
            yield
        finally:
            self.observe(name, self._clock() - start, labels)

    # ------------------------------------------------------------------ #
    # Reading.                                                            #
    # ------------------------------------------------------------------ #

    def counter_value(self, name: str, labels: LabelPairs = ()) -> float:
        """Current value of one counter series (0.0 when never incremented)."""
        return self.counters.get((name, _canonical(labels)), 0.0)

    def gauge_value(self, name: str, labels: LabelPairs = ()) -> float | None:
        """Current value of one gauge series (None when never set)."""
        return self.gauges.get((name, _canonical(labels)))

    def histogram_stat(self, name: str, labels: LabelPairs = ()) -> HistogramStat:
        """Summary of one histogram series (an empty stat when unobserved)."""
        return self.histograms.get((name, _canonical(labels)), HistogramStat())

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of every series recorded so far."""
        return MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={
                key: HistogramStat(count=s.count, sum=s.sum, min=s.min, max=s.max)
                for key, s in self.histograms.items()
            },
        )


# --------------------------------------------------------------------------- #
# The process-wide facade.                                                     #
# --------------------------------------------------------------------------- #

#: The installed registry instrumented library code reports to (None = off).
_CURRENT: MetricsRegistry | None = None


class _NullTimer:
    """The uninstalled :func:`time_block` context: a shared, stateless no-op."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def install_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` as the process-wide registry; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = registry
    return previous


def current_metrics() -> MetricsRegistry | None:
    """The installed registry, or None when metrics are off."""
    return _CURRENT


@contextmanager
def metrics_session(clock: Callable[[], float] | None = None) -> Iterator[MetricsRegistry]:
    """Install a fresh :class:`MetricsRegistry` for the ``with`` body.

    The previous registry (usually None) is restored on exit, so metered
    scopes nest without leaking state into later code::

        with metrics_session() as registry:
            run_generative_sweep("gtx580")
        print(registry.counter_value("autotune.candidates_evaluated"))
    """
    registry = MetricsRegistry(clock=clock)
    previous = install_metrics(registry)
    try:
        yield registry
    finally:
        install_metrics(previous)


def counter_inc(name: str, value: float = 1.0, labels: LabelPairs = ()) -> None:
    """Increment against the installed registry; a no-op when metrics are off."""
    registry = _CURRENT
    if registry is not None:
        registry.counter_inc(name, value, labels)


def gauge_set(name: str, value: float, labels: LabelPairs = ()) -> None:
    """Set a gauge against the installed registry; no-op when metrics are off."""
    registry = _CURRENT
    if registry is not None:
        registry.gauge_set(name, value, labels)


def observe(name: str, value: float, labels: LabelPairs = ()) -> None:
    """Observe into the installed registry; no-op when metrics are off."""
    registry = _CURRENT
    if registry is not None:
        registry.observe(name, value, labels)


def time_block(name: str, labels: LabelPairs = ()):
    """Timer context against the installed registry.

    When metrics are off this returns a shared null context — no generator
    frame, no allocation — so wrapping a hot region costs one global read.
    """
    registry = _CURRENT
    if registry is None:
        return _NULL_TIMER
    return registry.timer(name, labels)
