"""SGEMM as the first citizen of the workload registry.

The SGEMM machinery predates the registry (it *is* the paper), so this
module is a thin adapter: generation delegates to
:mod:`repro.sgemm.generator`, semantics to :mod:`repro.sgemm.reference`,
launch plumbing to :mod:`repro.sgemm.runner`.  The upper-bound resources
follow the paper's Eq. 6 traffic accounting — each block tile streams
``2·B_Sh·K`` elements, i.e. ``8·m·n·k / B_Sh`` bytes across the whole
problem — so the generic :func:`repro.model.analyse_workload_bound`
reproduces the SM-throughput-vs-memory crossover the SGEMM-specific model
derives from arithmetic intensity.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import Kernel
from repro.kernels.base import Workload, WorkloadLaunch
from repro.kernels.registry import register_workload
from repro.model.workload_bounds import WorkloadResources
from repro.sgemm.config import SgemmKernelConfig
from repro.sgemm.generator import (
    generate_naive_sgemm_kernel,
    generate_optimized_sgemm_kernel,
)
from repro.sgemm.reference import expected_result, random_matrices
from repro.sgemm.runner import build_launch as build_sgemm_launch
from repro.sim.memory import GlobalMemory


class SgemmWorkload(Workload):
    """The paper's SGEMM through the workload registry."""

    name = "sgemm"
    description = "register-blocked SGEMM with software pipelining (SM-bound)"

    def default_config(self) -> SgemmKernelConfig:
        # The Fermi-point geometry on a single-tile problem: one simulated
        # block covers the whole grid.
        return SgemmKernelConfig(m=96, n=96, k=16, conflict_free_allocation=False)

    def config_space(self) -> tuple[SgemmKernelConfig, ...]:
        return (
            SgemmKernelConfig(m=96, n=96, k=16, conflict_free_allocation=False),
            SgemmKernelConfig(
                m=96, n=96, k=16, lds_width_bits=32, conflict_free_allocation=False
            ),
        )

    def generate_naive(self, config: SgemmKernelConfig) -> Kernel:
        return generate_naive_sgemm_kernel(config)

    def generate_optimized(self, config: SgemmKernelConfig, gpu=None, **pipeline_kwargs):
        return generate_optimized_sgemm_kernel(config, gpu, **pipeline_kwargs)

    def prepare_inputs(
        self, config: SgemmKernelConfig, seed: int = 0
    ) -> dict[str, np.ndarray]:
        a, b = random_matrices(config, seed=seed)
        return {"a": a, "b": b}

    def reference(
        self, config: SgemmKernelConfig, inputs: dict[str, np.ndarray]
    ) -> np.ndarray:
        return expected_result(config, inputs["a"], inputs["b"])

    def build_launch(
        self, config: SgemmKernelConfig, inputs: dict[str, np.ndarray]
    ) -> WorkloadLaunch:
        memory, params, grid = build_sgemm_launch(config, inputs["a"], inputs["b"])
        return WorkloadLaunch(memory=memory, params=params, grid=grid)

    def read_output(
        self, config: SgemmKernelConfig, memory: GlobalMemory
    ) -> np.ndarray:
        return memory.read_array("C", np.float32, (config.m, config.n))

    def resources(self, config: SgemmKernelConfig) -> WorkloadResources:
        geometry = config.geometry
        tile = geometry.block_tile
        blocks = (config.m // tile) * (config.n // tile)
        flops = config.useful_flops
        # Eq. 6 traffic: each block tile streams a tile-wide column of A and
        # row of B per k step, plus the C tile writeback.
        dram = 4 * (blocks * 2 * tile * config.k + config.m * config.n)
        # Staging: each k step is written once and read 2·B_R times per thread.
        shared = 4 * blocks * config.k * (
            2 * tile + config.threads_per_block * 2 * config.register_blocking
        )
        return WorkloadResources(flops=flops, dram_bytes=dram, shared_bytes=shared)


SGEMM = register_workload(SgemmWorkload())
