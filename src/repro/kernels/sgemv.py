"""SASS-level SGEMV (matrix-vector product) workload: ``y = alpha · A · x``.

SGEMV carries the paper's kernel structure over to a bandwidth-limited
workload: every block owns ``threads_per_block`` consecutive rows of A (one
row per thread), and the vector ``x`` is staged through shared memory in
tiles of ``threads_per_block`` elements — each thread cooperatively loads
one element per tile, a barrier publishes the tile, and the unrolled inner
loop broadcasts the staged elements via LDS into the per-row FFMA chain.

Unlike SGEMM there is no register blocking to tune: each A element is used
exactly once, so the kernel's arithmetic intensity is fixed at ~0.5 flops
per DRAM byte and the analytic bound (see
:func:`repro.model.analyse_workload_bound`) is DRAM-limited on every GPU the
paper studies.  The interesting optimization questions are the ones the
:mod:`repro.opt` pipeline answers mechanically: hoisting the A loads (LD.64
pairs when ``wide_loads`` is set) above the FFMA chain and keeping the
LDS broadcast stream interleaved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelGenerationError
from repro.isa.assembler import Kernel
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import ConstRef, MemRef
from repro.isa.registers import RZ, Register, SpecialRegister, predicate
from repro.kernels.base import Workload, WorkloadLaunch
from repro.kernels.registry import register_workload
from repro.model.workload_bounds import WorkloadResources
from repro.sim.launch import BlockGrid
from repro.sim.memory import GlobalMemory, KernelParams

#: Constant-bank offsets of the kernel parameters (A, x, y base pointers).
PARAM_A_OFFSET = 0x20
PARAM_X_OFFSET = 0x24
PARAM_Y_OFFSET = 0x28


@dataclass(frozen=True)
class SgemvKernelConfig:
    """One SGEMV specialisation: ``y = alpha · A · x`` with A stored m × k row-major.

    Attributes
    ----------
    m, k:
        Matrix dimensions; ``m`` must divide into row blocks of
        ``threads_per_block`` and ``k`` into x tiles of the same size.
    threads_per_block:
        Rows per block == staged x elements per tile (a power of two).
    alpha:
        Scalar applied in the epilogue.
    wide_loads:
        Fetch A row elements with LD.64 register pairs (two per instruction).
    """

    m: int
    k: int
    threads_per_block: int = 32
    alpha: float = 1.0
    wide_loads: bool = True

    def __post_init__(self) -> None:
        t = self.threads_per_block
        if t < 2 or t & (t - 1):
            raise KernelGenerationError(
                f"threads_per_block must be a power of two >= 2, got {t}"
            )
        if self.m % t:
            raise KernelGenerationError(f"m={self.m} must be a multiple of {t}")
        if self.k % t:
            raise KernelGenerationError(f"k={self.k} must be a multiple of {t}")

    @property
    def kernel_name(self) -> str:
        width = "w64" if self.wide_loads else "w32"
        return f"sgemv_t{self.threads_per_block}_{width}_{self.m}x{self.k}"

    @property
    def grid_blocks(self) -> int:
        """Blocks in the 1D launch grid (one per row block)."""
        return self.m // self.threads_per_block


def generate_naive_sgemv_kernel(config: SgemvKernelConfig) -> Kernel:
    """Emit the SGEMV kernel in compiler-like form.

    Registers are assigned sequentially in first-use order and every A
    element is loaded immediately before the FFMA that consumes it — the
    load-use adjacency a naive compiler produces and the scheduling pass is
    expected to break up.
    """
    t = config.threads_per_block
    iterations = config.k // t

    builder = KernelBuilder(
        name=config.kernel_name,
        shared_memory_bytes=t * 4,
        threads_per_block=t,
        metadata={
            "workload": "sgemv",
            "m": config.m,
            "k": config.k,
            "threads_per_block": t,
            "wide_loads": config.wide_loads,
        },
    )

    acc = Register(0)
    stage = Register(1)  # x stage / LDS broadcast / epilogue scratch
    a_regs = (
        (Register(2), Register(3)) if config.wide_loads else (Register(2),)
    )
    a_ptr = Register(4)
    x_ptr = Register(5)
    shared_store = Register(6)
    counter = Register(7)

    # Prologue: acc/stage double as tid/bx scratch until the accumulator is
    # zeroed (the same trick the SGEMM generator uses).
    tid, bx = acc, stage
    builder.s2r(tid, SpecialRegister.TID_X)
    builder.s2r(bx, SpecialRegister.CTAID_X)
    # A row pointer: A + (bx·T + tid) · K · 4.
    builder.mov(a_ptr, ConstRef(bank=0, offset=PARAM_A_OFFSET))
    builder.imad(a_ptr, bx, t * config.k * 4, a_ptr)
    builder.imad(a_ptr, tid, config.k * 4, a_ptr)
    # x pointer: this thread stages x[iteration·T + tid].
    builder.mov(x_ptr, ConstRef(bank=0, offset=PARAM_X_OFFSET))
    builder.imad(x_ptr, tid, 4, x_ptr)
    # Shared staging slot.
    builder.shl(shared_store, tid, 2)
    builder.mov32i(counter, iterations)
    builder.mov32i(acc, 0.0)

    loop_label = builder.label("SGEMV_LOOP")
    # Publish this tile of x: one element per thread, double barrier so the
    # previous tile is fully consumed before being overwritten.
    builder.bar(0)
    builder.ld(stage, MemRef(base=x_ptr))
    builder.sts(MemRef(base=shared_store), stage)
    builder.bar(0)
    builder.iadd(x_ptr, x_ptr, t * 4)

    # Unrolled dot-product slice over the staged tile.
    step = 2 if config.wide_loads else 1
    for kk in range(0, t, step):
        builder.ld(
            a_regs[0],
            MemRef(base=a_ptr, offset=kk * 4),
            width=64 if config.wide_loads else 32,
        )
        for lane in range(step):
            builder.lds(stage, MemRef(base=RZ, offset=(kk + lane) * 4))
            builder.ffma(acc, a_regs[lane], stage, acc)
    builder.iadd(a_ptr, a_ptr, t * 4)

    builder.iadd(counter, counter, -1)
    p_more = predicate(0)
    builder.isetp(p_more, "GT", counter, 0)
    builder.bra(loop_label, predicate=p_more)

    # Epilogue: y + (bx·T + tid) · 4, reusing dead bookkeeping registers.
    tid_again, bx_again = a_regs[0], stage
    builder.s2r(tid_again, SpecialRegister.TID_X)
    builder.s2r(bx_again, SpecialRegister.CTAID_X)
    builder.mov(x_ptr, ConstRef(bank=0, offset=PARAM_Y_OFFSET))
    builder.imad(x_ptr, bx_again, t * 4, x_ptr)
    builder.imad(x_ptr, tid_again, 4, x_ptr)
    if abs(config.alpha - 1.0) > 1e-12:
        builder.fmul(acc, acc, float(config.alpha))
    builder.st(MemRef(base=x_ptr), acc)
    builder.exit()
    return builder.build()


class SgemvWorkload(Workload):
    """`y = alpha·A·x` through the workload registry."""

    name = "sgemv"
    description = "matrix-vector product with shared-memory x staging (DRAM-bound)"

    def default_config(self) -> SgemvKernelConfig:
        return SgemvKernelConfig(m=64, k=64, threads_per_block=32)

    def config_space(self) -> tuple[SgemvKernelConfig, ...]:
        return (
            SgemvKernelConfig(m=64, k=64, threads_per_block=32, wide_loads=True),
            SgemvKernelConfig(m=64, k=64, threads_per_block=32, wide_loads=False),
        )

    def generate_naive(self, config: SgemvKernelConfig) -> Kernel:
        return generate_naive_sgemv_kernel(config)

    def prepare_inputs(
        self, config: SgemvKernelConfig, seed: int = 0
    ) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1.0, 1.0, size=(config.m, config.k)).astype(np.float32)
        x = rng.uniform(-1.0, 1.0, size=(config.k,)).astype(np.float32)
        return {"a": a, "x": x}

    def reference(
        self, config: SgemvKernelConfig, inputs: dict[str, np.ndarray]
    ) -> np.ndarray:
        return (np.float32(config.alpha) * (inputs["a"] @ inputs["x"])).astype(
            np.float32
        )

    def build_launch(
        self, config: SgemvKernelConfig, inputs: dict[str, np.ndarray]
    ) -> WorkloadLaunch:
        memory = GlobalMemory()
        a_base = memory.allocate_array("A", inputs["a"])
        x_base = memory.allocate_array("x", inputs["x"])
        y_base = memory.allocate("y", config.m * 4)
        params = KernelParams()
        params.add_pointer("A", a_base)
        params.add_pointer("x", x_base)
        params.add_pointer("y", y_base)
        if (
            params.offset_of("A") != PARAM_A_OFFSET
            or params.offset_of("y") != PARAM_Y_OFFSET
        ):
            # The generator hard-codes the constant-bank offsets; keep them in sync.
            raise AssertionError(
                "kernel parameter layout drifted from the generator's convention"
            )
        grid = BlockGrid(grid_x=config.grid_blocks, block_x=config.threads_per_block)
        return WorkloadLaunch(memory=memory, params=params, grid=grid)

    def read_output(
        self, config: SgemvKernelConfig, memory: GlobalMemory
    ) -> np.ndarray:
        return memory.read_array("y", np.float32, (config.m,))

    def resources(self, config: SgemvKernelConfig) -> WorkloadResources:
        t = config.threads_per_block
        blocks = config.grid_blocks
        # A streamed once, x re-read by every row block, y written once.
        dram = 4 * (config.m * config.k + blocks * config.k + config.m)
        # Staging: each x tile is written once and broadcast-read T times.
        shared = 4 * blocks * (config.k + config.k * t)
        return WorkloadResources(
            flops=2 * config.m * config.k, dram_bytes=dram, shared_bytes=shared
        )


SGEMV = register_workload(SgemvWorkload())
