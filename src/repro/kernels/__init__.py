"""The multi-workload kernel framework.

Generalises the paper's SGEMM methodology — analytic upper bound → SASS
kernel → mechanical optimization → simulated validation — into a
:class:`~repro.kernels.base.Workload` protocol plus a registry, so the
optimization pipeline, the autotuner, the benchmarks and the examples can
iterate over *every* kernel the repository knows how to build:

* ``sgemm`` — the paper's register-blocked GEMM (SM-throughput-bound),
* ``sgemv`` — matrix-vector product with shared-memory x staging,
* ``transpose`` — padded tiled transpose (zero-FFMA, pure bandwidth),
* ``reduction`` — strided loads + predicated shared-memory tree sum.

Each workload ships a *naive* generator (compiler-like program order and
register assignment) and an *optimized* variant produced by pushing the
naive kernel through :mod:`repro.opt`; both are validated against NumPy on
the functional simulator by :func:`~repro.kernels.base.run_workload`.
"""

from repro.kernels.base import (
    Workload,
    WorkloadLaunch,
    WorkloadRun,
    run_workload,
    workload_cycles,
)
from repro.kernels.registry import (
    get_workload,
    list_workloads,
    register_workload,
    workload_names,
)

# Shipped workloads self-register on import.
from repro.kernels.sgemm import SgemmWorkload
from repro.kernels.sgemv import SgemvKernelConfig, SgemvWorkload, generate_naive_sgemv_kernel
from repro.kernels.transpose import (
    TransposeKernelConfig,
    TransposeWorkload,
    generate_naive_transpose_kernel,
)
from repro.kernels.reduction import (
    ReductionKernelConfig,
    ReductionWorkload,
    generate_naive_reduction_kernel,
)

# Tile-IR workloads (DSL kernels lowered through repro.tile) also
# self-register; the hand generators above stay as golden references.  A
# plain module import keeps the kernels ↔ tile dependency cycle harmless:
# repro.tile.workloads itself imports repro.kernels.base, so attribute
# access here could see a partially initialised module.
import repro.tile.workloads  # noqa: E402,F401  (registers tile_* workloads)

__all__ = [
    "Workload",
    "WorkloadLaunch",
    "WorkloadRun",
    "run_workload",
    "workload_cycles",
    "get_workload",
    "list_workloads",
    "register_workload",
    "workload_names",
    "SgemmWorkload",
    "SgemvKernelConfig",
    "SgemvWorkload",
    "generate_naive_sgemv_kernel",
    "TransposeKernelConfig",
    "TransposeWorkload",
    "generate_naive_transpose_kernel",
    "ReductionKernelConfig",
    "ReductionWorkload",
    "generate_naive_reduction_kernel",
]
