"""Tiled matrix-transpose workload: ``out = inᵀ`` through shared memory.

The classic bandwidth kernel: a ``tile × tile`` block of the input is read
with unit-stride global loads, rotated through shared memory, and written
back with unit-stride global stores — both memory streams stay coalesced and
the strided access lands on shared memory instead of DRAM.  The staging
array is padded by one word per row so the column-order reads are free of
shared-memory bank conflicts (the paper's §5.1 "proper padding" device).

As a *zero-FFMA* body, transpose is the stress case for the optimization
pipeline: the conflict analyser must report an empty FFMA population, the
register reallocator has nothing to recolor, and the scheduler only sees
memory and address chains.  Its analytic bound is pure bandwidth — the
:func:`repro.model.analyse_workload_bound` breakdown reports effective GB/s
with no GFLOPS ceiling at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelGenerationError
from repro.isa.assembler import Kernel
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import ConstRef, MemRef
from repro.isa.registers import Register, SpecialRegister
from repro.kernels.base import Workload, WorkloadLaunch
from repro.kernels.registry import register_workload
from repro.model.workload_bounds import WorkloadResources
from repro.sim.launch import BlockGrid
from repro.sim.memory import GlobalMemory, KernelParams

#: Constant-bank offsets of the kernel parameters (input, output pointers).
PARAM_IN_OFFSET = 0x20
PARAM_OUT_OFFSET = 0x24


@dataclass(frozen=True)
class TransposeKernelConfig:
    """One transpose specialisation: ``out (n × m) = in (m × n)ᵀ``.

    Attributes
    ----------
    m, n:
        Input dimensions, each a multiple of ``tile``.
    tile:
        Edge of the square block tile; the block runs ``tile²`` threads.
    """

    m: int
    n: int
    tile: int = 16

    def __post_init__(self) -> None:
        if self.tile < 2 or self.tile & (self.tile - 1):
            raise KernelGenerationError(
                f"tile must be a power of two >= 2, got {self.tile}"
            )
        if self.tile * self.tile > 1024:
            raise KernelGenerationError("tile² exceeds the 1024-thread block limit")
        if self.m % self.tile or self.n % self.tile:
            raise KernelGenerationError(
                f"m={self.m}, n={self.n} must be multiples of tile {self.tile}"
            )

    @property
    def threads_per_block(self) -> int:
        return self.tile * self.tile

    @property
    def padded_row_words(self) -> int:
        """Shared-memory row pitch in words (tile + 1 to dodge bank conflicts)."""
        return self.tile + 1

    @property
    def kernel_name(self) -> str:
        return f"transpose_t{self.tile}_{self.m}x{self.n}"

    def grid(self) -> tuple[int, int]:
        """(grid_x, grid_y) = (n / tile, m / tile)."""
        return self.n // self.tile, self.m // self.tile


def generate_naive_transpose_kernel(config: TransposeKernelConfig) -> Kernel:
    """Emit the tiled transpose kernel in program order.

    Thread (tx, ty) of block (bx, by) copies
    ``in[by·tile + ty][bx·tile + tx]`` to ``out[bx·tile + ty][by·tile + tx]``
    via the padded staging array.
    """
    tile = config.tile
    pitch = config.padded_row_words

    builder = KernelBuilder(
        name=config.kernel_name,
        shared_memory_bytes=tile * pitch * 4,
        threads_per_block=config.threads_per_block,
        metadata={
            "workload": "transpose",
            "m": config.m,
            "n": config.n,
            "tile": tile,
        },
    )

    tid = Register(0)
    bx = Register(1)
    by = Register(2)
    tx = Register(3)
    ty = Register(4)
    in_ptr = Register(5)
    shared_store = Register(6)
    shared_read = Register(7)
    value = Register(8)
    out_ptr = Register(9)

    builder.s2r(tid, SpecialRegister.TID_X)
    builder.s2r(bx, SpecialRegister.CTAID_X)
    builder.s2r(by, SpecialRegister.CTAID_Y)
    builder.lop_and(tx, tid, tile - 1)
    builder.shr(ty, tid, tile.bit_length() - 1)

    # in + ((by·tile + ty)·n + bx·tile + tx) · 4
    builder.mov(in_ptr, ConstRef(bank=0, offset=PARAM_IN_OFFSET))
    builder.imad(in_ptr, by, tile * config.n * 4, in_ptr)
    builder.imad(in_ptr, ty, config.n * 4, in_ptr)
    builder.imad(in_ptr, bx, tile * 4, in_ptr)
    builder.imad(in_ptr, tx, 4, in_ptr)

    # Row-order store slot, column-order read slot (both on the padded pitch).
    builder.imul(shared_store, ty, pitch * 4)
    builder.imad(shared_store, tx, 4, shared_store)
    builder.imul(shared_read, tx, pitch * 4)
    builder.imad(shared_read, ty, 4, shared_read)

    # out + ((bx·tile + ty)·m + by·tile + tx) · 4
    builder.mov(out_ptr, ConstRef(bank=0, offset=PARAM_OUT_OFFSET))
    builder.imad(out_ptr, bx, tile * config.m * 4, out_ptr)
    builder.imad(out_ptr, ty, config.m * 4, out_ptr)
    builder.imad(out_ptr, by, tile * 4, out_ptr)
    builder.imad(out_ptr, tx, 4, out_ptr)

    builder.ld(value, MemRef(base=in_ptr))
    builder.sts(MemRef(base=shared_store), value)
    builder.bar(0)
    builder.lds(value, MemRef(base=shared_read))
    builder.st(MemRef(base=out_ptr), value)
    builder.exit()
    return builder.build()


class TransposeWorkload(Workload):
    """``out = inᵀ`` through the workload registry."""

    name = "transpose"
    description = "tiled matrix transpose via padded shared memory (zero-FFMA)"
    # Pure data movement: results must match bit-for-bit.
    rtol = 0.0
    atol = 0.0

    def default_config(self) -> TransposeKernelConfig:
        return TransposeKernelConfig(m=32, n=32, tile=16)

    def config_space(self) -> tuple[TransposeKernelConfig, ...]:
        return (
            TransposeKernelConfig(m=32, n=32, tile=16),
            TransposeKernelConfig(m=32, n=32, tile=8),
        )

    def generate_naive(self, config: TransposeKernelConfig) -> Kernel:
        return generate_naive_transpose_kernel(config)

    def prepare_inputs(
        self, config: TransposeKernelConfig, seed: int = 0
    ) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(-1.0, 1.0, size=(config.m, config.n)).astype(np.float32)
        return {"in": matrix}

    def reference(
        self, config: TransposeKernelConfig, inputs: dict[str, np.ndarray]
    ) -> np.ndarray:
        return np.ascontiguousarray(inputs["in"].T)

    def build_launch(
        self, config: TransposeKernelConfig, inputs: dict[str, np.ndarray]
    ) -> WorkloadLaunch:
        memory = GlobalMemory()
        in_base = memory.allocate_array("in", inputs["in"])
        out_base = memory.allocate("out", config.m * config.n * 4)
        params = KernelParams()
        params.add_pointer("in", in_base)
        params.add_pointer("out", out_base)
        if (
            params.offset_of("in") != PARAM_IN_OFFSET
            or params.offset_of("out") != PARAM_OUT_OFFSET
        ):
            # The generator hard-codes the constant-bank offsets; keep them in sync.
            raise AssertionError(
                "kernel parameter layout drifted from the generator's convention"
            )
        grid_x, grid_y = config.grid()
        grid = BlockGrid(
            grid_x=grid_x, grid_y=grid_y, block_x=config.threads_per_block
        )
        return WorkloadLaunch(memory=memory, params=params, grid=grid)

    def read_output(
        self, config: TransposeKernelConfig, memory: GlobalMemory
    ) -> np.ndarray:
        return memory.read_array("out", np.float32, (config.n, config.m))

    def resources(self, config: TransposeKernelConfig) -> WorkloadResources:
        elements = config.m * config.n
        # Every element: one global read, one global write, one shared
        # write, one shared read — no arithmetic at all.
        return WorkloadResources(
            flops=0, dram_bytes=8 * elements, shared_bytes=8 * elements
        )


TRANSPOSE = register_workload(TransposeWorkload())
