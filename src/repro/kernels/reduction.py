"""Block-parallel sum-reduction workload: ``out[b] = Σ in[b·chunk : (b+1)·chunk]``.

Each block reduces a contiguous chunk: every thread first accumulates
``elements_per_thread`` strided global loads into a register, the partials
are published to shared memory, and a fully unrolled barrier-synchronised
tree halves the active thread count per level.  The tree is expressed with
*predicated* loads/adds/stores (``@P1 LDS / FADD / STS``) instead of
branches — the simulator only supports warp-uniform control flow, and
predication is also how hand-written SASS avoids divergence bookkeeping.

The workload exists to drag the optimization pipeline away from SGEMM's
comfort zone: almost every instruction past the prologue is predicated or a
barrier, regions are tiny, and the analytic bound is DRAM bandwidth with a
trailing log-depth shared-memory tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelGenerationError
from repro.isa.assembler import Kernel
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import ConstRef, MemRef
from repro.isa.registers import Register, SpecialRegister, predicate
from repro.kernels.base import Workload, WorkloadLaunch
from repro.kernels.registry import register_workload
from repro.model.workload_bounds import WorkloadResources
from repro.sim.launch import BlockGrid
from repro.sim.memory import GlobalMemory, KernelParams

#: Constant-bank offsets of the kernel parameters (input, output pointers).
PARAM_IN_OFFSET = 0x20
PARAM_OUT_OFFSET = 0x24


@dataclass(frozen=True)
class ReductionKernelConfig:
    """One reduction specialisation.

    Attributes
    ----------
    n:
        Input length; a multiple of the per-block chunk
        ``threads_per_block × elements_per_thread``.
    threads_per_block:
        Tree width (a power of two).
    elements_per_thread:
        Strided global loads each thread folds in before the tree.
    """

    n: int
    threads_per_block: int = 64
    elements_per_thread: int = 4

    def __post_init__(self) -> None:
        t = self.threads_per_block
        if t < 2 or t & (t - 1):
            raise KernelGenerationError(
                f"threads_per_block must be a power of two >= 2, got {t}"
            )
        if self.elements_per_thread < 1:
            raise KernelGenerationError("elements_per_thread must be >= 1")
        if self.n % self.chunk:
            raise KernelGenerationError(
                f"n={self.n} must be a multiple of the block chunk {self.chunk}"
            )

    @property
    def chunk(self) -> int:
        """Elements reduced per block."""
        return self.threads_per_block * self.elements_per_thread

    @property
    def grid_blocks(self) -> int:
        return self.n // self.chunk

    @property
    def kernel_name(self) -> str:
        return (
            f"reduce_t{self.threads_per_block}"
            f"_e{self.elements_per_thread}_{self.n}"
        )


def generate_naive_reduction_kernel(config: ReductionKernelConfig) -> Kernel:
    """Emit the reduction kernel in program order with sequential registers."""
    t = config.threads_per_block

    builder = KernelBuilder(
        name=config.kernel_name,
        shared_memory_bytes=t * 4,
        threads_per_block=t,
        metadata={
            "workload": "reduction",
            "n": config.n,
            "threads_per_block": t,
            "elements_per_thread": config.elements_per_thread,
        },
    )

    acc = Register(0)
    stage = Register(1)  # load staging / tree partner value
    in_ptr = Register(2)
    shared_slot = Register(3)  # this thread's shared cell (store and read base)
    out_ptr = Register(4)
    tid = Register(5)  # kept live for the whole tree (ISETP guards)

    builder.s2r(tid, SpecialRegister.TID_X)
    builder.s2r(stage, SpecialRegister.CTAID_X)
    # in + (bx·chunk + tid) · 4 — thread t folds elements t, t+T, t+2T, …
    builder.mov(in_ptr, ConstRef(bank=0, offset=PARAM_IN_OFFSET))
    builder.imad(in_ptr, stage, config.chunk * 4, in_ptr)
    builder.imad(in_ptr, tid, 4, in_ptr)
    # out + bx · 4
    builder.mov(out_ptr, ConstRef(bank=0, offset=PARAM_OUT_OFFSET))
    builder.imad(out_ptr, stage, 4, out_ptr)
    builder.shl(shared_slot, tid, 2)

    builder.mov32i(acc, 0.0)
    for element in range(config.elements_per_thread):
        builder.ld(stage, MemRef(base=in_ptr, offset=element * t * 4))
        builder.fadd(acc, acc, stage)

    builder.sts(MemRef(base=shared_slot), acc)
    builder.bar(0)

    p_active = predicate(1)
    span = t // 2
    while span >= 1:
        builder.isetp(p_active, "LT", tid, span)
        with builder.guarded(p_active):
            builder.lds(stage, MemRef(base=shared_slot, offset=span * 4))
            builder.fadd(acc, acc, stage)
            builder.sts(MemRef(base=shared_slot), acc)
        builder.bar(0)
        span //= 2

    p_leader = predicate(2)
    builder.isetp(p_leader, "EQ", tid, 0)
    with builder.guarded(p_leader):
        builder.st(MemRef(base=out_ptr), acc)
    builder.exit()
    return builder.build()


class ReductionWorkload(Workload):
    """Per-block sum reduction through the workload registry."""

    name = "reduction"
    description = "strided loads + predicated shared-memory tree sum (DRAM-bound)"

    def default_config(self) -> ReductionKernelConfig:
        return ReductionKernelConfig(n=512, threads_per_block=64, elements_per_thread=4)

    def config_space(self) -> tuple[ReductionKernelConfig, ...]:
        return (
            ReductionKernelConfig(n=512, threads_per_block=64, elements_per_thread=4),
            ReductionKernelConfig(n=512, threads_per_block=128, elements_per_thread=2),
        )

    def generate_naive(self, config: ReductionKernelConfig) -> Kernel:
        return generate_naive_reduction_kernel(config)

    def prepare_inputs(
        self, config: ReductionKernelConfig, seed: int = 0
    ) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        data = rng.uniform(-1.0, 1.0, size=(config.n,)).astype(np.float32)
        return {"in": data}

    def reference(
        self, config: ReductionKernelConfig, inputs: dict[str, np.ndarray]
    ) -> np.ndarray:
        chunks = inputs["in"].reshape(config.grid_blocks, config.chunk)
        return chunks.astype(np.float64).sum(axis=1).astype(np.float32)

    def build_launch(
        self, config: ReductionKernelConfig, inputs: dict[str, np.ndarray]
    ) -> WorkloadLaunch:
        memory = GlobalMemory()
        in_base = memory.allocate_array("in", inputs["in"])
        out_base = memory.allocate("out", config.grid_blocks * 4)
        params = KernelParams()
        params.add_pointer("in", in_base)
        params.add_pointer("out", out_base)
        if (
            params.offset_of("in") != PARAM_IN_OFFSET
            or params.offset_of("out") != PARAM_OUT_OFFSET
        ):
            # The generator hard-codes the constant-bank offsets; keep them in sync.
            raise AssertionError(
                "kernel parameter layout drifted from the generator's convention"
            )
        grid = BlockGrid(grid_x=config.grid_blocks, block_x=config.threads_per_block)
        return WorkloadLaunch(memory=memory, params=params, grid=grid)

    def read_output(
        self, config: ReductionKernelConfig, memory: GlobalMemory
    ) -> np.ndarray:
        return memory.read_array("out", np.float32, (config.grid_blocks,))

    def resources(self, config: ReductionKernelConfig) -> WorkloadResources:
        t = config.threads_per_block
        blocks = config.grid_blocks
        # One FADD per element folded in, plus the per-block tree adds.
        flops = config.n + blocks * (t - 1)
        dram = 4 * (config.n + blocks)
        # Shared: the initial T partial stores, then per level `span` each of
        # {read, add-store} — total T + 2·(T - 1) accesses per block.
        shared = 4 * blocks * (t + 2 * (t - 1))
        return WorkloadResources(flops=flops, dram_bytes=dram, shared_bytes=shared)


REDUCTION = register_workload(ReductionWorkload())
