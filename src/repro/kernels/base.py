"""The ``Workload`` protocol and the generic run/validate harness.

The paper's methodology is a loop: derive an analytic upper bound for a
kernel, generate the kernel at SASS level, optimize it, measure, compare.
:class:`Workload` captures the per-kernel pieces of that loop so the
machinery around it — the optimization pipeline, the simulator harness, the
autotuner and the benchmarks — can be written once:

* ``generate_naive`` — the compiler-like kernel (sequential register
  allocation, program order), the optimization pipeline's input;
* ``generate_optimized`` — the naive kernel pushed through
  :mod:`repro.opt` (register reallocation, scheduling, control hints);
* ``prepare_inputs`` / ``reference`` — NumPy semantics to validate against;
* ``build_launch`` / ``read_output`` — simulated-memory plumbing;
* ``resources`` — the upper-bound inputs (flops, DRAM and shared traffic)
  consumed by :func:`repro.model.analyse_workload_bound`;
* ``config_space`` — the sweep points the autotuner explores.

:func:`run_workload` drives a full functional simulation of any workload and
checks the result against NumPy; :func:`workload_cycles` is the cheap
timing-only single-block evaluation the autotuner and benchmarks use.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.arch.specs import GpuSpec
from repro.errors import ReproError
from repro.isa.assembler import Kernel
from repro.model.workload_bounds import (
    WorkloadBound,
    WorkloadResources,
    analyse_workload_bound,
)
from repro.sim.launch import BlockGrid, LaunchConfig
from repro.sim.memory import GlobalMemory, KernelParams
from repro.sim.results import SimResult
from repro.sim.sm_sim import SmSimulator
from repro.telemetry.ledger import config_digest, current_ledger, normalize_gpu, record_run
from repro.telemetry.metrics import counter_inc, current_metrics, gauge_set


@dataclass
class WorkloadLaunch:
    """Everything needed to simulate one workload launch.

    Built by :meth:`Workload.build_launch`: the simulated global memory with
    the inputs (and zeroed outputs) allocated, the kernel-parameter block,
    and the block grid.
    """

    memory: GlobalMemory
    params: KernelParams
    grid: BlockGrid


@dataclass
class WorkloadRun:
    """Outcome of one simulated workload execution.

    Attributes
    ----------
    workload_name / config:
        What ran.
    kernel:
        The generated (naive or optimized) kernel.
    result:
        Timing/issue statistics of the simulated blocks.
    output:
        The output array read back from simulated global memory.
    max_error:
        Maximum absolute deviation from the NumPy reference.
    optimized:
        Whether the kernel went through the optimization pipeline.
    dram_load_bytes / dram_store_bytes:
        Simulated DRAM traffic of the run — bytes actually moved by active
        lanes (predicated-off lanes move nothing), summed over every block
        of the grid.  Comparable against the compulsory traffic the bound
        model prices.
    """

    workload_name: str
    config: Any
    kernel: Kernel
    result: SimResult
    output: np.ndarray
    max_error: float
    optimized: bool
    dram_load_bytes: int = 0
    dram_store_bytes: int = 0

    @property
    def dram_bytes(self) -> int:
        """Total simulated DRAM traffic (loads plus stores)."""
        return self.dram_load_bytes + self.dram_store_bytes


class Workload(ABC):
    """One kernel family the repository can generate, bound and simulate."""

    #: Registry name (e.g. ``"sgemm"``); unique across the registry.
    name: str = ""
    #: One-line description for listings.
    description: str = ""
    #: Validation tolerances against the NumPy reference.
    rtol: float = 1e-4
    atol: float = 1e-3

    # ------------------------------------------------------------------ #
    # Kernel generation.                                                  #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def default_config(self) -> Any:
        """The workload's canonical small configuration."""

    def config_space(self) -> tuple[Any, ...]:
        """Configurations the autotuner sweeps (default: just the canonical one)."""
        return (self.default_config(),)

    @abstractmethod
    def generate_naive(self, config: Any) -> Kernel:
        """The compiler-like kernel: program order, sequential registers."""

    def generate_optimized(
        self, config: Any, gpu: GpuSpec | None = None, **pipeline_kwargs: object
    ):
        """The naive kernel run through the :mod:`repro.opt` pipeline.

        Returns ``(kernel, PipelineResult)``.  Workloads may override to
        steer pass options (e.g. an FFMA:LDS interleave target).
        """
        from repro.opt.pipeline import optimize_kernel

        naive = self.generate_naive(config)
        result = optimize_kernel(naive, gpu, **pipeline_kwargs)
        return result.kernel, result

    # ------------------------------------------------------------------ #
    # Semantics.                                                          #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def prepare_inputs(self, config: Any, seed: int = 0) -> dict[str, np.ndarray]:
        """Random input arrays in the layout the kernel expects."""

    @abstractmethod
    def reference(self, config: Any, inputs: dict[str, np.ndarray]) -> np.ndarray:
        """The NumPy reference result for ``inputs``."""

    @abstractmethod
    def build_launch(self, config: Any, inputs: dict[str, np.ndarray]) -> WorkloadLaunch:
        """Allocate inputs/outputs in simulated memory and build the launch."""

    @abstractmethod
    def read_output(self, config: Any, memory: GlobalMemory) -> np.ndarray:
        """Read the kernel's output array back from simulated memory."""

    def validate(self, computed: np.ndarray, expected: np.ndarray) -> float:
        """Check ``computed`` against ``expected``; returns the max abs error."""
        if computed.shape != expected.shape:
            raise ReproError(
                f"{self.name}: result shape {computed.shape} does not match "
                f"the reference {expected.shape}"
            )
        error = float(
            np.max(np.abs(computed.astype(np.float64) - expected.astype(np.float64)))
        )
        if not np.allclose(computed, expected, rtol=self.rtol, atol=self.atol):
            raise ReproError(
                f"{self.name} result differs from the NumPy reference "
                f"(max |error| = {error:.3e})"
            )
        return error

    # ------------------------------------------------------------------ #
    # Upper bound.                                                        #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def resources(self, config: Any) -> WorkloadResources:
        """The upper-bound inputs: flops, DRAM traffic, shared traffic."""

    def bound(self, config: Any, gpu: GpuSpec) -> WorkloadBound:
        """The analytic upper bound of ``config`` on ``gpu``."""
        return analyse_workload_bound(self.resources(config), gpu)


def run_workload(
    gpu: GpuSpec,
    workload: Workload,
    config: Any = None,
    *,
    optimized: bool = False,
    seed: int = 0,
    validate: bool = True,
    max_cycles: int = 20_000_000,
    collect_profile: bool = False,
) -> WorkloadRun:
    """Generate, simulate (functionally) and validate one workload.

    Simulates every block of the launch grid so the full output is computed
    and comparable against NumPy — keep the problem sizes small.
    ``collect_profile`` threads through to :meth:`SmSimulator.run`, filling
    the result's per-instruction :class:`~repro.sim.results.InstructionCounters`.
    """
    if config is None:
        config = workload.default_config()
    if optimized:
        kernel, _ = workload.generate_optimized(config, gpu)
    else:
        kernel = workload.generate_naive(config)

    inputs = workload.prepare_inputs(config, seed=seed)
    launch = workload.build_launch(config, inputs)
    simulator = SmSimulator(
        gpu, kernel, global_memory=launch.memory, params=launch.params
    )
    result = simulator.run(
        LaunchConfig(grid=launch.grid, functional=True, max_cycles=max_cycles),
        block_indices=launch.grid.block_indices(),
        collect_profile=collect_profile,
    )
    output = workload.read_output(config, launch.memory)
    max_error = 0.0
    if validate:
        expected = workload.reference(config, inputs)
        max_error = workload.validate(output, expected)
    run = WorkloadRun(
        workload_name=workload.name,
        config=config,
        kernel=kernel,
        result=result,
        output=output,
        max_error=max_error,
        optimized=optimized,
        dram_load_bytes=launch.memory.load_bytes,
        dram_store_bytes=launch.memory.store_bytes,
    )
    if current_metrics() is not None or current_ledger() is not None:
        _record_workload_run(gpu, run)
    return run


def _record_workload_run(gpu: GpuSpec, run: WorkloadRun) -> None:
    """Publish one ``run_workload`` execution to the telemetry spine.

    The metrics series and the ledger record carry the simulator's own
    books — ``SimResult.cycles`` and the global memory's byte counts (the
    sums of the per-instruction :class:`~repro.sim.results
    .InstructionCounters` when the run was profiled) — so telemetry never
    disagrees with the simulation it describes.
    """
    from repro.opt.rewrite import kernel_hash

    labels = (
        ("workload", run.workload_name),
        ("variant", "opt" if run.optimized else "naive"),
    )
    stalls = run.result.stalls.as_dict()
    if current_metrics() is not None:
        counter_inc("sim.runs", 1, labels)
        gauge_set("sim.cycles", run.result.cycles, labels)
        gauge_set("sim.dram_bytes", float(run.dram_bytes), labels)
        gauge_set("sim.stall_total", float(run.result.stalls.total()), labels)
    if current_ledger() is not None:
        digest = config_digest(run.config)
        gpu_key = normalize_gpu(gpu.name)
        variant = "opt" if run.optimized else "naive"
        record_run(
            "sim",
            f"run:{run.workload_name}:{digest}:{gpu_key}:{variant}",
            workload=run.workload_name,
            gpu=gpu_key,
            kernel_hash=kernel_hash(run.kernel),
            config=run.config,
            metrics={
                "cycles": run.result.cycles,
                "dram_load_bytes": run.dram_load_bytes,
                "dram_store_bytes": run.dram_store_bytes,
                "dram_bytes": run.dram_bytes,
                "thread_instructions": run.result.thread_instructions,
                "flops": run.result.flops,
                "max_error": run.max_error,
                "stall_total": run.result.stalls.total(),
                "stalls": stalls,
            },
        )


def workload_cycles(
    gpu: GpuSpec,
    kernel: Kernel,
    *,
    max_cycles: int = 5_000_000,
) -> float:
    """Timing-only single-block cycle count of ``kernel`` on ``gpu``.

    The autotuner's and benchmarks' cheap figure of merit; grid-wide
    functional runs go through :func:`run_workload`.
    """
    from repro.opt.autotune import simulate_one_block

    return simulate_one_block(gpu, kernel, max_cycles=max_cycles).cycles
