"""The workload registry.

The registry maps workload names to :class:`~repro.kernels.base.Workload`
instances so that the autotuner, the benchmarks and the examples can sweep
"every kernel this repository knows how to build" without hard-coding the
list.  Workload modules register themselves at import time via
:func:`register_workload`; importing :mod:`repro.kernels` pulls all shipped
workloads in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.base import Workload

_REGISTRY: dict[str, "Workload"] = {}


def register_workload(workload: "Workload") -> "Workload":
    """Register ``workload`` under its ``name`` (idempotent per name+type).

    Registering two different workload objects under one name is a
    programming error and raises; re-registering the same class (e.g. on a
    module reload) silently replaces the entry.
    """
    existing = _REGISTRY.get(workload.name)
    if existing is not None:
        # Compare by class identity *name*, not object identity: a module
        # reload re-creates the class and must still count as "the same".
        existing_cls = (type(existing).__module__, type(existing).__qualname__)
        incoming_cls = (type(workload).__module__, type(workload).__qualname__)
        if existing_cls != incoming_cls:
            raise ReproError(
                f"workload name '{workload.name}' already registered by "
                f"{type(existing).__name__}"
            )
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> "Workload":
    """Look up a registered workload by name."""
    _ensure_builtin_workloads()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ReproError(f"unknown workload '{name}'; registered workloads: {known}")
    return _REGISTRY[name]


def workload_names() -> tuple[str, ...]:
    """Names of all registered workloads, sorted."""
    _ensure_builtin_workloads()
    return tuple(sorted(_REGISTRY))


def list_workloads() -> tuple["Workload", ...]:
    """All registered workloads, sorted by name."""
    _ensure_builtin_workloads()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def _ensure_builtin_workloads() -> None:
    """Import the shipped workload modules so they self-register.

    Lookup helpers call this so the registry is complete even when a caller
    imports :mod:`repro.kernels.registry` directly (e.g. a multiprocessing
    worker unpickling a candidate).
    """
    import repro.kernels  # noqa: F401  (importing the package registers everything)
