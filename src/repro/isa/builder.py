"""Programmatic kernel builder.

The SGEMM generator and the micro-benchmark generators construct kernels
instruction by instruction; :class:`KernelBuilder` offers a fluent interface
for that (one method per opcode, plus labels, loops and assembly), so the
generators read close to the hand-written SASS the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import AssemblyError
from repro.isa.assembler import Kernel, assemble
from repro.isa.instructions import (
    ConstRef,
    Immediate,
    Instruction,
    Label,
    MemRef,
    Opcode,
    Program,
)
from repro.isa.registers import PT, Predicate, Register, SpecialRegister

RegisterLike = Union[Register, int]
OperandLike = Union[Register, int, float, Immediate, ConstRef, MemRef]


def _as_register(value: RegisterLike) -> Register:
    """Coerce an int or Register into a Register."""
    if isinstance(value, Register):
        return value
    return Register(value)


def _as_operand(value: OperandLike) -> object:
    """Coerce a Python value into an instruction operand."""
    if isinstance(value, (Register, Immediate, ConstRef, MemRef)):
        return value
    if isinstance(value, bool):
        raise AssemblyError("bool is not a valid operand")
    if isinstance(value, int):
        return Immediate(value)
    if isinstance(value, float):
        return Immediate(value)
    raise AssemblyError(f"cannot convert {value!r} into an operand")


@dataclass
class KernelBuilder:
    """Accumulates instructions and assembles them into a :class:`Kernel`.

    Parameters
    ----------
    name:
        Kernel name.
    shared_memory_bytes:
        Static shared-memory footprint per block.
    threads_per_block:
        Block size the kernel is generated for.
    emit_control_notation:
        Whether to emit Kepler control-notation words when assembling.
    """

    name: str = "kernel"
    shared_memory_bytes: int = 0
    threads_per_block: int = 0
    emit_control_notation: bool = False
    control_hint: int | None = None
    metadata: dict[str, object] = field(default_factory=dict)
    _items: list[object] = field(default_factory=list, repr=False)
    _guard: Predicate = field(default=PT, repr=False)
    _guard_negated: bool = field(default=False, repr=False)
    _label_counter: int = field(default=0, repr=False)
    _provenance: tuple[str, ...] = field(default=(), repr=False)

    # ------------------------------------------------------------------ #
    # Structural helpers.                                                 #
    # ------------------------------------------------------------------ #

    def label(self, name: str | None = None) -> Label:
        """Define a label at the current position and return it."""
        if name is None:
            name = f"L_{self._label_counter}"
            self._label_counter += 1
        label = Label(name)
        self._items.append(label)
        return label

    def new_label(self, name: str | None = None) -> Label:
        """Create a label object without placing it (place it later with :meth:`place`)."""
        if name is None:
            name = f"L_{self._label_counter}"
            self._label_counter += 1
        return Label(name)

    def place(self, label: Label) -> Label:
        """Place a label previously created with :meth:`new_label`."""
        self._items.append(label)
        return label

    def raw(self, instruction: Instruction) -> Instruction:
        """Append an already-built instruction (stamping provenance if unset)."""
        if not instruction.provenance and self._provenance:
            instruction = instruction.with_provenance(self.current_provenance)
        self._items.append(instruction)
        return instruction

    def comment_last(self, text: str) -> None:
        """Attach a comment to the most recently appended instruction."""
        for position in range(len(self._items) - 1, -1, -1):
            item = self._items[position]
            if isinstance(item, Instruction):
                self._items[position] = item.with_comment(text)
                return
        raise AssemblyError("no instruction to comment")

    def guarded(self, predicate: Predicate, negated: bool = False) -> "_GuardScope":
        """Context manager applying a guard predicate to enclosed instructions."""
        return _GuardScope(self, predicate, negated)

    def provenance(self, tag: str) -> "_ProvenanceScope":
        """Context manager tagging enclosed instructions with an origin path.

        Scopes nest: ``provenance("loop(k)")`` inside ``provenance("main")``
        stamps ``main/loop(k)``.  The tag survives assembly, optimisation
        passes and profiling rollups (see :mod:`repro.prof`).
        """
        return _ProvenanceScope(self, tag)

    @property
    def current_provenance(self) -> str:
        """The ``/``-joined provenance path currently in scope."""
        return "/".join(self._provenance)

    @property
    def instruction_count(self) -> int:
        """Number of instructions appended so far."""
        return sum(1 for item in self._items if isinstance(item, Instruction))

    # ------------------------------------------------------------------ #
    # Instruction emitters.                                               #
    # ------------------------------------------------------------------ #

    def _emit(self, **kwargs) -> Instruction:
        instruction = Instruction(
            predicate=self._guard,
            predicate_negated=self._guard_negated,
            provenance=self.current_provenance,
            **kwargs,
        )
        self._items.append(instruction)
        return instruction

    def ffma(self, dest: RegisterLike, a: RegisterLike, b: RegisterLike, c: RegisterLike) -> Instruction:
        """``FFMA Rd, Ra, Rb, Rc`` — Rd := Ra * Rb + Rc."""
        return self._emit(
            opcode=Opcode.FFMA,
            dest=_as_register(dest),
            sources=(_as_register(a), _as_register(b), _as_register(c)),
        )

    def fadd(self, dest: RegisterLike, a: RegisterLike, b: OperandLike) -> Instruction:
        """``FADD Rd, Ra, b``."""
        return self._emit(
            opcode=Opcode.FADD, dest=_as_register(dest), sources=(_as_register(a), _as_operand(b))
        )

    def fmul(self, dest: RegisterLike, a: RegisterLike, b: OperandLike) -> Instruction:
        """``FMUL Rd, Ra, b``."""
        return self._emit(
            opcode=Opcode.FMUL, dest=_as_register(dest), sources=(_as_register(a), _as_operand(b))
        )

    def iadd(self, dest: RegisterLike, a: RegisterLike, b: OperandLike) -> Instruction:
        """``IADD Rd, Ra, b``."""
        return self._emit(
            opcode=Opcode.IADD, dest=_as_register(dest), sources=(_as_register(a), _as_operand(b))
        )

    def imul(self, dest: RegisterLike, a: RegisterLike, b: OperandLike) -> Instruction:
        """``IMUL Rd, Ra, b``."""
        return self._emit(
            opcode=Opcode.IMUL, dest=_as_register(dest), sources=(_as_register(a), _as_operand(b))
        )

    def imad(self, dest: RegisterLike, a: RegisterLike, b: OperandLike, c: OperandLike) -> Instruction:
        """``IMAD Rd, Ra, b, c`` — Rd := Ra * b + c."""
        return self._emit(
            opcode=Opcode.IMAD,
            dest=_as_register(dest),
            sources=(_as_register(a), _as_operand(b), _as_operand(c)),
        )

    def iscadd(self, dest: RegisterLike, a: RegisterLike, b: OperandLike, shift: int) -> Instruction:
        """``ISCADD Rd, Ra, b, shift`` — Rd := (Ra << shift) + b."""
        return self._emit(
            opcode=Opcode.ISCADD,
            dest=_as_register(dest),
            sources=(_as_register(a), _as_operand(b), Immediate(shift)),
        )

    def shl(self, dest: RegisterLike, a: RegisterLike, amount: OperandLike) -> Instruction:
        """``SHL Rd, Ra, amount``."""
        return self._emit(
            opcode=Opcode.SHL, dest=_as_register(dest), sources=(_as_register(a), _as_operand(amount))
        )

    def shr(self, dest: RegisterLike, a: RegisterLike, amount: OperandLike) -> Instruction:
        """``SHR Rd, Ra, amount``."""
        return self._emit(
            opcode=Opcode.SHR, dest=_as_register(dest), sources=(_as_register(a), _as_operand(amount))
        )

    def lop_and(self, dest: RegisterLike, a: RegisterLike, b: OperandLike) -> Instruction:
        """``LOP.AND Rd, Ra, b``."""
        return self._emit(
            opcode=Opcode.LOP_AND, dest=_as_register(dest), sources=(_as_register(a), _as_operand(b))
        )

    def lop_or(self, dest: RegisterLike, a: RegisterLike, b: OperandLike) -> Instruction:
        """``LOP.OR Rd, Ra, b``."""
        return self._emit(
            opcode=Opcode.LOP_OR, dest=_as_register(dest), sources=(_as_register(a), _as_operand(b))
        )

    def lop_xor(self, dest: RegisterLike, a: RegisterLike, b: OperandLike) -> Instruction:
        """``LOP.XOR Rd, Ra, b``."""
        return self._emit(
            opcode=Opcode.LOP_XOR, dest=_as_register(dest), sources=(_as_register(a), _as_operand(b))
        )

    def mov(self, dest: RegisterLike, source: OperandLike) -> Instruction:
        """``MOV Rd, src`` (register, immediate or constant-bank source)."""
        return self._emit(opcode=Opcode.MOV, dest=_as_register(dest), sources=(_as_operand(source),))

    def mov32i(self, dest: RegisterLike, value: Union[int, float]) -> Instruction:
        """``MOV32I Rd, imm32``."""
        return self._emit(opcode=Opcode.MOV32I, dest=_as_register(dest), sources=(Immediate(value),))

    def s2r(self, dest: RegisterLike, special: SpecialRegister) -> Instruction:
        """``S2R Rd, SR_*`` — read a special register."""
        return self._emit(opcode=Opcode.S2R, dest=_as_register(dest), special=special)

    def isetp(
        self,
        dest_predicate: Predicate,
        compare_op: str,
        a: RegisterLike,
        b: OperandLike,
    ) -> Instruction:
        """``ISETP.<op> P, Ra, b`` — integer compare into a predicate."""
        return self._emit(
            opcode=Opcode.ISETP,
            dest_predicate=dest_predicate,
            compare_op=compare_op,
            sources=(_as_register(a), _as_operand(b)),
        )

    def lds(self, dest: RegisterLike, address: MemRef, width: int = 32) -> Instruction:
        """``LDS[.64/.128] Rd, [Rbase+offset]`` — shared-memory load."""
        return self._emit(opcode=Opcode.LDS, dest=_as_register(dest), sources=(address,), width=width)

    def sts(self, address: MemRef, source: RegisterLike, width: int = 32) -> Instruction:
        """``STS[.64/.128] [Rbase+offset], Rsrc`` — shared-memory store."""
        return self._emit(opcode=Opcode.STS, sources=(address, _as_register(source)), width=width)

    def ld(self, dest: RegisterLike, address: MemRef, width: int = 32) -> Instruction:
        """``LD[.64/.128] Rd, [Rbase+offset]`` — global-memory load."""
        return self._emit(opcode=Opcode.LD, dest=_as_register(dest), sources=(address,), width=width)

    def st(self, address: MemRef, source: RegisterLike, width: int = 32) -> Instruction:
        """``ST[.64/.128] [Rbase+offset], Rsrc`` — global-memory store."""
        return self._emit(opcode=Opcode.ST, sources=(address, _as_register(source)), width=width)

    def bra(self, target: Label, predicate: Predicate | None = None, negated: bool = False) -> Instruction:
        """``[@P] BRA label`` — (conditional) branch."""
        guard = predicate if predicate is not None else self._guard
        instruction = Instruction(
            opcode=Opcode.BRA,
            target=target,
            predicate=guard,
            predicate_negated=negated if predicate is not None else self._guard_negated,
            provenance=self.current_provenance,
        )
        self._items.append(instruction)
        return instruction

    def bar(self, barrier_id: int = 0) -> Instruction:
        """``BAR.SYNC id`` — block-wide barrier."""
        return self._emit(opcode=Opcode.BAR, sources=(Immediate(barrier_id),))

    def exit(self) -> Instruction:
        """``EXIT`` — terminate the thread."""
        return self._emit(opcode=Opcode.EXIT)

    def nop(self) -> Instruction:
        """``NOP``."""
        return self._emit(opcode=Opcode.NOP)

    # ------------------------------------------------------------------ #
    # Final assembly.                                                     #
    # ------------------------------------------------------------------ #

    def program(self) -> Program:
        """The accumulated items as an unresolved :class:`Program`."""
        return Program(items=tuple(self._items), name=self.name, metadata=dict(self.metadata))

    def build(self) -> Kernel:
        """Assemble the accumulated instructions into a :class:`Kernel`."""
        return assemble(
            self.program(),
            shared_memory_bytes=self.shared_memory_bytes,
            threads_per_block=self.threads_per_block,
            emit_control_notation=self.emit_control_notation,
            control_hint=self.control_hint,
            metadata=self.metadata,
        )


class _GuardScope:
    """Context manager that applies a guard predicate inside a ``with`` block."""

    def __init__(self, builder: KernelBuilder, predicate: Predicate, negated: bool) -> None:
        self._builder = builder
        self._predicate = predicate
        self._negated = negated
        self._saved: tuple[Predicate, bool] | None = None

    def __enter__(self) -> KernelBuilder:
        self._saved = (self._builder._guard, self._builder._guard_negated)
        self._builder._guard = self._predicate
        self._builder._guard_negated = self._negated
        return self._builder

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._saved is not None
        self._builder._guard, self._builder._guard_negated = self._saved


class _ProvenanceScope:
    """Context manager that pushes a provenance path segment."""

    def __init__(self, builder: KernelBuilder, tag: str) -> None:
        self._builder = builder
        self._tag = tag

    def __enter__(self) -> KernelBuilder:
        self._builder._provenance = self._builder._provenance + (self._tag,)
        return self._builder

    def __exit__(self, exc_type, exc, tb) -> None:
        self._builder._provenance = self._builder._provenance[:-1]
