"""Instruction set definition.

Only the instructions actually needed by SGEMM kernels and by the paper's
micro-benchmarks are modelled, which keeps the functional simulator and the
encoders small while covering everything the analysis touches:

* floating point: FFMA, FADD, FMUL
* integer: IADD, IMUL, IMAD, ISCADD, SHL, SHR, LOP (and/or/xor), MOV, MOV32I
* shared memory: LDS / LDS.64 / LDS.128, STS / STS.64 / STS.128
* global memory: LD / LD.64 / LD.128, ST / ST.64 / ST.128
* predicates and control flow: ISETP, BRA, SSY-less straight-line loops,
  BAR.SYNC, EXIT, NOP
* special registers: S2R

Instructions are plain frozen dataclasses; semantics live in
:mod:`repro.sim.functional` and timing lives in :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union

from repro.errors import IsaError
from repro.isa.registers import PT, Predicate, Register, SpecialRegister


class cached_property:  # noqa: N801 — drop-in for functools.cached_property
    """Lock-free cached property.

    Python 3.11's :class:`functools.cached_property` acquires an RLock on
    every cache miss; instruction objects are created by the hundred
    thousand across an autotuning sweep, making that lock measurable.
    Instances here are effectively immutable, so the lock buys nothing.
    """

    def __init__(self, func):
        self.func = func
        self.attrname = None
        self.__doc__ = func.__doc__

    def __set_name__(self, owner, name):
        self.attrname = name

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        value = self.func(instance)
        instance.__dict__[self.attrname] = value
        return value


class Opcode(str, Enum):
    """Mnemonics of the modelled instruction set."""

    # Floating point.
    FFMA = "FFMA"
    FADD = "FADD"
    FMUL = "FMUL"
    # Integer.
    IADD = "IADD"
    IMUL = "IMUL"
    IMAD = "IMAD"
    ISCADD = "ISCADD"
    SHL = "SHL"
    SHR = "SHR"
    LOP_AND = "LOP.AND"
    LOP_OR = "LOP.OR"
    LOP_XOR = "LOP.XOR"
    MOV = "MOV"
    MOV32I = "MOV32I"
    S2R = "S2R"
    # Predicate / compare.
    ISETP = "ISETP"
    # Shared memory.
    LDS = "LDS"
    STS = "STS"
    # Global memory.
    LD = "LD"
    ST = "ST"
    # Control.
    BRA = "BRA"
    BAR = "BAR"
    EXIT = "EXIT"
    NOP = "NOP"


class MemSpace(str, Enum):
    """Memory space addressed by a load/store instruction."""

    SHARED = "shared"
    GLOBAL = "global"


class OperandKind(str, Enum):
    """Classification of instruction source operands."""

    REGISTER = "register"
    IMMEDIATE = "immediate"
    CONSTANT = "constant"
    MEMORY = "memory"
    SPECIAL = "special"


@dataclass(frozen=True)
class Immediate:
    """An immediate operand (integer or raw float bits)."""

    value: Union[int, float]

    def as_float(self) -> float:
        """The operand interpreted as a float."""
        return float(self.value)

    def as_int(self) -> int:
        """The operand interpreted as an integer (floats are truncated)."""
        return int(self.value)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.value)


@dataclass(frozen=True)
class ConstRef:
    """A constant-bank operand ``c[bank][offset]`` (kernel parameters)."""

    bank: int
    offset: int

    def __post_init__(self) -> None:
        if self.bank < 0:
            raise IsaError("constant bank must be non-negative")
        if self.offset < 0 or self.offset % 4 != 0:
            raise IsaError("constant offset must be a non-negative multiple of 4")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"c[{self.bank:#x}][{self.offset:#x}]"


@dataclass(frozen=True)
class MemRef:
    """A memory operand ``[Rbase + offset]``."""

    base: Register
    offset: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.offset:
            return f"[{self.base}+{self.offset:#x}]"
        return f"[{self.base}]"


@dataclass(frozen=True)
class Label:
    """A branch target label."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise IsaError(f"invalid label name '{self.name}'")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


Operand = Union[Register, Immediate, ConstRef, MemRef, SpecialRegister, Label, Predicate]

#: Width (bits) suffixes allowed on memory instructions.
MEMORY_WIDTHS = (32, 64, 128)

#: Opcodes executed on the SP (CUDA core) pipeline.
_SP_OPCODES = {
    Opcode.FFMA,
    Opcode.FADD,
    Opcode.FMUL,
    Opcode.IADD,
    Opcode.IMUL,
    Opcode.IMAD,
    Opcode.ISCADD,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.LOP_AND,
    Opcode.LOP_OR,
    Opcode.LOP_XOR,
    Opcode.MOV,
    Opcode.MOV32I,
    Opcode.S2R,
    Opcode.ISETP,
}

#: Opcodes executed on the LD/ST pipeline.
_LDST_OPCODES = {Opcode.LDS, Opcode.STS, Opcode.LD, Opcode.ST}

#: Opcodes handled by the control path.
_CONTROL_OPCODES = {Opcode.BRA, Opcode.BAR, Opcode.EXIT, Opcode.NOP}

#: ISETP comparison operators accepted by the parser and the simulator.
ISETP_OPERATORS = ("LT", "LE", "EQ", "NE", "GE", "GT")

#: Assembly operand signatures per opcode, consumed by the ISA reference
#: generator (``scripts/gen_isa_reference.py`` → ``docs/isa.md``).  ``src``
#: stands for a register, immediate or constant-bank operand.
OPCODE_OPERANDS: dict[Opcode, str] = {
    Opcode.FFMA: "Rd, Ra, Rb, Rc",
    Opcode.FADD: "Rd, Ra, src",
    Opcode.FMUL: "Rd, Ra, src",
    Opcode.IADD: "Rd, Ra, src",
    Opcode.IMUL: "Rd, Ra, src",
    Opcode.IMAD: "Rd, Ra, src, src",
    Opcode.ISCADD: "Rd, Ra, src, shift",
    Opcode.SHL: "Rd, Ra, src",
    Opcode.SHR: "Rd, Ra, src",
    Opcode.LOP_AND: "Rd, Ra, src",
    Opcode.LOP_OR: "Rd, Ra, src",
    Opcode.LOP_XOR: "Rd, Ra, src",
    Opcode.MOV: "Rd, src",
    Opcode.MOV32I: "Rd, imm32",
    Opcode.S2R: "Rd, SR_*",
    Opcode.ISETP: "P, Ra, src",
    Opcode.LDS: "Rd, [Ra+offset]",
    Opcode.STS: "[Ra+offset], Rs",
    Opcode.LD: "Rd, [Ra+offset]",
    Opcode.ST: "[Ra+offset], Rs",
    Opcode.BRA: "label",
    Opcode.BAR: "id",
    Opcode.EXIT: "",
    Opcode.NOP: "",
}

#: One-line semantics notes per opcode, consumed by the ISA reference generator.
OPCODE_NOTES: dict[Opcode, str] = {
    Opcode.FFMA: "Rd := Ra * Rb + Rc (fused, 2 flops)",
    Opcode.FADD: "Rd := Ra + src (1 flop)",
    Opcode.FMUL: "Rd := Ra * src (1 flop)",
    Opcode.IADD: "Rd := Ra + src",
    Opcode.IMUL: "Rd := Ra * src",
    Opcode.IMAD: "Rd := Ra * src + src",
    Opcode.ISCADD: "Rd := (Ra << shift) + src",
    Opcode.SHL: "Rd := Ra << src",
    Opcode.SHR: "Rd := Ra >> src (logical)",
    Opcode.LOP_AND: "Rd := Ra & src",
    Opcode.LOP_OR: "Rd := Ra | src",
    Opcode.LOP_XOR: "Rd := Ra ^ src",
    Opcode.MOV: "Rd := src (register, immediate or c[bank][offset])",
    Opcode.MOV32I: "Rd := 32-bit immediate (int or float bits)",
    Opcode.S2R: "Rd := special register (tid/ctaid/laneid/warpid)",
    Opcode.ISETP: "P := Ra <op> src, op in {LT,LE,EQ,NE,GE,GT}",
    Opcode.LDS: "shared-memory load; .64/.128 fill a register pair/quad",
    Opcode.STS: "shared-memory store; .64/.128 drain a register pair/quad",
    Opcode.LD: "global-memory load; .64/.128 fill a register pair/quad",
    Opcode.ST: "global-memory store; .64/.128 drain a register pair/quad",
    Opcode.BRA: "warp-uniform (optionally predicated) branch",
    Opcode.BAR: "BAR.SYNC block-wide barrier",
    Opcode.EXIT: "terminate the thread",
    Opcode.NOP: "no operation (scheduling filler)",
}


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Attributes
    ----------
    opcode:
        The instruction mnemonic.
    dest:
        Destination register (or ``None`` for stores, branches, barriers…).
    sources:
        Source operands in assembly order.
    predicate:
        Guard predicate; ``PT`` means unconditional.
    predicate_negated:
        Whether the guard is ``@!P<n>``.
    width:
        Access width in bits for memory instructions (32, 64, 128).
    dest_predicate:
        Destination predicate for ISETP.
    compare_op:
        Comparison operator for ISETP.
    special:
        Source special register for S2R.
    target:
        Branch target label for BRA.
    comment:
        Free-form annotation kept through assembly/disassembly round trips.
    provenance:
        ``/``-separated origin path (IR node / schedule primitive) stamped by
        the generator that emitted the instruction.  Optimisation passes
        preserve it, so profilers can roll machine-level counters up to the
        tile-IR construct that produced each instruction.  Not encoded.
    """

    opcode: Opcode
    dest: Register | None = None
    sources: tuple[Operand, ...] = ()
    predicate: Predicate = PT
    predicate_negated: bool = False
    width: int = 32
    dest_predicate: Predicate | None = None
    compare_op: str | None = None
    special: SpecialRegister | None = None
    target: Label | None = None
    comment: str = ""
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.opcode in (Opcode.LDS, Opcode.STS, Opcode.LD, Opcode.ST):
            if self.width not in MEMORY_WIDTHS:
                raise IsaError(
                    f"{self.opcode.value} width must be one of {MEMORY_WIDTHS}, got {self.width}"
                )
        if self.opcode is Opcode.ISETP:
            if self.dest_predicate is None or self.compare_op is None:
                raise IsaError("ISETP requires a destination predicate and a comparison")
            if self.compare_op not in ISETP_OPERATORS:
                raise IsaError(f"unsupported ISETP comparison '{self.compare_op}'")
        if self.opcode is Opcode.S2R and self.special is None:
            raise IsaError("S2R requires a special register source")
        if self.opcode is Opcode.BRA and self.target is None:
            raise IsaError("BRA requires a target label")

    # ------------------------------------------------------------------ #
    # Classification helpers used throughout the simulator and analyses. #
    # ------------------------------------------------------------------ #

    @cached_property
    def is_math(self) -> bool:
        """Whether the instruction executes on the SP pipeline."""
        return self.opcode in _SP_OPCODES

    @cached_property
    def is_ffma(self) -> bool:
        """Whether the instruction is a fused multiply-add."""
        return self.opcode is Opcode.FFMA

    @cached_property
    def is_memory(self) -> bool:
        """Whether the instruction executes on the LD/ST pipeline."""
        return self.opcode in _LDST_OPCODES

    @cached_property
    def is_shared_load(self) -> bool:
        """Whether the instruction is an LDS of any width."""
        return self.opcode is Opcode.LDS

    @cached_property
    def is_shared_store(self) -> bool:
        """Whether the instruction is an STS of any width."""
        return self.opcode is Opcode.STS

    @cached_property
    def is_global_load(self) -> bool:
        """Whether the instruction is a global-memory load."""
        return self.opcode is Opcode.LD

    @cached_property
    def is_global_store(self) -> bool:
        """Whether the instruction is a global-memory store."""
        return self.opcode is Opcode.ST

    @cached_property
    def is_control(self) -> bool:
        """Whether the instruction is handled by the control path."""
        return self.opcode in _CONTROL_OPCODES

    @cached_property
    def is_barrier(self) -> bool:
        """Whether the instruction is a block-wide barrier."""
        return self.opcode is Opcode.BAR

    @cached_property
    def flop_count(self) -> int:
        """Floating-point operations performed per thread (2 for FFMA)."""
        if self.opcode is Opcode.FFMA:
            return 2
        if self.opcode in (Opcode.FADD, Opcode.FMUL):
            return 1
        return 0

    @cached_property
    def memory_space(self) -> MemSpace | None:
        """Memory space touched, if any."""
        if self.opcode in (Opcode.LDS, Opcode.STS):
            return MemSpace.SHARED
        if self.opcode in (Opcode.LD, Opcode.ST):
            return MemSpace.GLOBAL
        return None

    @cached_property
    def registers_written(self) -> tuple[Register, ...]:
        """Destination registers, expanding wide loads to register pairs/quads."""
        if self.dest is None or self.dest.is_zero:
            return ()
        if self.opcode in (Opcode.LDS, Opcode.LD) and self.width > 32:
            count = self.width // 32
            return tuple(self.dest.offset(i) for i in range(count))
        return (self.dest,)

    @cached_property
    def registers_read(self) -> tuple[Register, ...]:
        """Source registers, expanding wide stores and memory bases."""
        regs: list[Register] = []
        for operand in self.sources:
            if isinstance(operand, Register):
                if not operand.is_zero:
                    regs.append(operand)
                if self.opcode in (Opcode.STS, Opcode.ST) and self.width > 32:
                    # The stored data register expands to a pair/quad.
                    if not operand.is_zero:
                        for extra in range(1, self.width // 32):
                            regs.append(operand.offset(extra))
            elif isinstance(operand, MemRef):
                if not operand.base.is_zero:
                    regs.append(operand.base)
        return tuple(regs)

    @cached_property
    def source_register_indices(self) -> tuple[int, ...]:
        """Indices of plain register sources (used by bank-conflict analysis)."""
        return tuple(
            operand.index
            for operand in self.sources
            if isinstance(operand, Register) and not operand.is_zero
        )

    @cached_property
    def memory_operand(self) -> MemRef | None:
        """The memory operand of a load/store, if any."""
        for operand in self.sources:
            if isinstance(operand, MemRef):
                return operand
        return None

    def with_comment(self, comment: str) -> "Instruction":
        """A copy of this instruction carrying ``comment``."""
        return Instruction(
            opcode=self.opcode,
            dest=self.dest,
            sources=self.sources,
            predicate=self.predicate,
            predicate_negated=self.predicate_negated,
            width=self.width,
            dest_predicate=self.dest_predicate,
            compare_op=self.compare_op,
            special=self.special,
            target=self.target,
            comment=comment,
            provenance=self.provenance,
        )

    def with_provenance(self, provenance: str) -> "Instruction":
        """A copy of this instruction carrying ``provenance``."""
        return Instruction(
            opcode=self.opcode,
            dest=self.dest,
            sources=self.sources,
            predicate=self.predicate,
            predicate_negated=self.predicate_negated,
            width=self.width,
            dest_predicate=self.dest_predicate,
            compare_op=self.compare_op,
            special=self.special,
            target=self.target,
            comment=self.comment,
            provenance=provenance,
        )

    @cached_property
    def mnemonic(self) -> str:
        """Opcode text including the width suffix for memory instructions."""
        if self.opcode in (Opcode.LDS, Opcode.STS, Opcode.LD, Opcode.ST) and self.width > 32:
            return f"{self.opcode.value}.{self.width}"
        if self.opcode is Opcode.ISETP:
            return f"ISETP.{self.compare_op}"
        return self.opcode.value


@dataclass(frozen=True)
class Program:
    """An assembled-but-unresolved instruction stream with labels.

    ``items`` interleaves :class:`Label` markers and :class:`Instruction`
    entries in program order; the assembler resolves labels to instruction
    indices when building a :class:`repro.isa.assembler.Kernel`.
    """

    items: tuple[Union[Label, Instruction], ...] = ()
    name: str = "kernel"
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        """All instructions, in order, skipping label markers."""
        return tuple(item for item in self.items if isinstance(item, Instruction))

    def label_positions(self) -> dict[str, int]:
        """Map of label name to the index of the instruction it precedes."""
        positions: dict[str, int] = {}
        index = 0
        for item in self.items:
            if isinstance(item, Label):
                if item.name in positions:
                    raise IsaError(f"label '{item.name}' defined twice")
                positions[item.name] = index
            else:
                index += 1
        return positions
