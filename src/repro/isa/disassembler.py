"""Disassembler: render instructions and kernels back to assembly text.

The output uses the same syntax the parser accepts, so
``parse_program(disassemble(kernel)) == kernel's program`` modulo label names
— a property exercised by the round-trip tests.
"""

from __future__ import annotations

from repro.isa.instructions import (
    ConstRef,
    Immediate,
    Instruction,
    MemRef,
    Opcode,
)
from repro.isa.registers import Predicate, Register, SpecialRegister


def _format_operand(operand: object) -> str:
    """Render one operand in parser-compatible syntax."""
    if isinstance(operand, Register):
        return operand.name
    if isinstance(operand, Predicate):
        return operand.name
    if isinstance(operand, Immediate):
        if isinstance(operand.value, float):
            text = repr(float(operand.value))
            return text if "." in text or "e" in text else text + ".0"
        return str(operand.value)
    if isinstance(operand, ConstRef):
        return f"c[{operand.bank:#x}][{operand.offset:#x}]"
    if isinstance(operand, MemRef):
        if operand.offset:
            return f"[{operand.base.name}+{operand.offset:#x}]"
        return f"[{operand.base.name}]"
    if isinstance(operand, SpecialRegister):
        return operand.value
    return str(operand)


def format_instruction(instruction: Instruction) -> str:
    """Render one instruction as a single assembly line (with trailing ``;``)."""
    parts: list[str] = []
    if not instruction.predicate.is_true or instruction.predicate_negated:
        bang = "!" if instruction.predicate_negated else ""
        parts.append(f"@{bang}{instruction.predicate.name}")

    mnemonic = instruction.mnemonic
    if instruction.opcode is Opcode.BAR:
        mnemonic = "BAR.SYNC"
    parts.append(mnemonic)

    operands: list[str] = []
    if instruction.opcode is Opcode.ISETP:
        assert instruction.dest_predicate is not None
        operands.append(instruction.dest_predicate.name)
        operands.extend(_format_operand(op) for op in instruction.sources)
    elif instruction.opcode is Opcode.BRA:
        assert instruction.target is not None
        operands.append(instruction.target.name)
    elif instruction.opcode is Opcode.S2R:
        assert instruction.dest is not None and instruction.special is not None
        operands.append(instruction.dest.name)
        operands.append(instruction.special.value)
    elif instruction.opcode in (Opcode.EXIT, Opcode.NOP):
        pass
    elif instruction.opcode is Opcode.BAR:
        operands.extend(_format_operand(op) for op in instruction.sources)
        if not operands:
            operands.append("0")
    else:
        if instruction.dest is not None:
            operands.append(instruction.dest.name)
        operands.extend(_format_operand(op) for op in instruction.sources)

    line = " ".join(parts)
    if operands:
        line += " " + ", ".join(operands)
    line += ";"
    if instruction.comment:
        line += f"  // {instruction.comment}"
    return line


def disassemble(kernel) -> str:
    """Render a :class:`repro.isa.assembler.Kernel` as assembly text.

    Branch targets are re-materialised as ``L<index>:`` labels.
    """
    target_indices = sorted(set(kernel.branch_targets.values()))
    label_names = {index: f"L{index}" for index in target_indices}

    lines: list[str] = []
    for index, instruction in enumerate(kernel.instructions):
        if index in label_names:
            lines.append(f"{label_names[index]}:")
        if instruction.opcode is Opcode.BRA:
            target_index = kernel.branch_targets.get(index)
            if target_index is not None:
                renamed = instruction.with_comment(instruction.comment)
                line = format_instruction(renamed)
                assert instruction.target is not None
                line = line.replace(instruction.target.name, label_names.get(target_index, f"L{target_index}"), 1)
                lines.append("    " + line)
                continue
        lines.append("    " + format_instruction(instruction))
    # A label pointing one past the last instruction (loop exits) still needs emitting.
    end_index = len(kernel.instructions)
    if end_index in label_names:
        lines.append(f"{label_names[end_index]}:")
    return "\n".join(lines) + "\n"
