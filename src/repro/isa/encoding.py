"""Binary encoding of instructions.

The important property reproduced here is structural: Fermi and Kepler GK104
instructions are 64-bit words whose register operand fields are **six bits
wide**, so a thread can name at most 63 general-purpose registers (plus RZ).
That encoding limit is the root cause of the paper's register-blocking-factor
ceiling (Equation 2 / Section 4.5), so the encoder refuses any register index
that does not fit the field, exactly like real hardware.

The bit layout used here is a documented, self-consistent layout for this
library (NVIDIA has never published the real one); round-tripping through
:func:`encode_instruction` / :func:`decode_instruction` is lossless for the
modelled instruction set.
"""

from __future__ import annotations

from dataclasses import dataclass
import struct

from repro.errors import EncodingError
from repro.isa.instructions import (
    ConstRef,
    Immediate,
    Instruction,
    MemRef,
    Opcode,
    ISETP_OPERATORS,
)
from repro.isa.registers import Predicate, Register, RZ_INDEX, SpecialRegister

#: Width of a register operand field in bits — the source of the 63-register limit.
REGISTER_FIELD_BITS = 6

#: Maximum register index encodable in a register field.
MAX_ENCODABLE_REGISTER = (1 << REGISTER_FIELD_BITS) - 1  # 63 == RZ

_OPCODE_CODES: dict[Opcode, int] = {op: i + 1 for i, op in enumerate(Opcode)}
_CODE_OPCODES: dict[int, Opcode] = {v: k for k, v in _OPCODE_CODES.items()}

_WIDTH_CODES = {32: 0, 64: 1, 128: 2}
_CODE_WIDTHS = {v: k for k, v in _WIDTH_CODES.items()}

_SPECIAL_CODES = {sr: i for i, sr in enumerate(SpecialRegister)}
_CODE_SPECIALS = {v: k for k, v in _SPECIAL_CODES.items()}

_COMPARE_CODES = {name: i for i, name in enumerate(ISETP_OPERATORS)}
_CODE_COMPARES = {v: k for k, v in _COMPARE_CODES.items()}


def opcode_code(opcode: Opcode) -> int:
    """The numeric code the encoder assigns to ``opcode``.

    Exposed for the ISA reference generator (``docs/isa.md``); the binary
    layout itself is internal to this module.
    """
    return _OPCODE_CODES[opcode]


def _encode_register_field(register: Register | None) -> int:
    """Encode a register (or absence thereof) into a 6-bit field."""
    if register is None:
        return RZ_INDEX
    if register.index > MAX_ENCODABLE_REGISTER:
        raise EncodingError(
            f"register R{register.index} does not fit the {REGISTER_FIELD_BITS}-bit field"
        )
    return register.index


@dataclass(frozen=True)
class EncodedInstruction:
    """A 64-bit primary word plus an optional 64-bit extension word.

    The extension word carries 32-bit immediates, constant-bank offsets and
    memory offsets that do not fit the primary word — mirroring how wide
    immediates consume extra encoding space on real hardware.
    """

    primary: int
    extension: int = 0

    def to_bytes(self) -> bytes:
        """Little-endian byte representation (8 or 16 bytes)."""
        if self.extension:
            return struct.pack("<QQ", self.primary, self.extension)
        return struct.pack("<Q", self.primary)


def _float_bits(value: float) -> int:
    """IEEE-754 bit pattern of a float32 value."""
    return struct.unpack("<I", struct.pack("<f", float(value)))[0]


def _bits_to_float(bits: int) -> float:
    """Float32 value for an IEEE-754 bit pattern."""
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def encode_instruction(instruction: Instruction) -> EncodedInstruction:
    """Encode one instruction into its binary words.

    The encoding is a pure function of the (immutable) instruction, so the
    result is memoized on the instance: optimization pipelines re-assemble
    the same instruction objects several times per kernel.

    Raises
    ------
    EncodingError
        If any operand does not fit its field — most importantly a register
        index above 63.
    """
    cached = instruction.__dict__.get("_encoded")
    if cached is not None:
        return cached
    opcode_code = _OPCODE_CODES[instruction.opcode]

    word = 0
    word |= opcode_code & 0xFF                                   # bits 0..7
    word |= (instruction.predicate.index & 0x7) << 8             # bits 8..10
    word |= (1 if instruction.predicate_negated else 0) << 11    # bit 11
    word |= _encode_register_field(instruction.dest) << 12       # bits 12..17
    word |= (_WIDTH_CODES[instruction.width] & 0x3) << 18        # bits 18..19

    if instruction.dest_predicate is not None:
        word |= (instruction.dest_predicate.index & 0x7) << 20   # bits 20..22
    if instruction.compare_op is not None:
        word |= (_COMPARE_CODES[instruction.compare_op] & 0x7) << 23  # bits 23..25
    if instruction.special is not None:
        word |= (_SPECIAL_CODES[instruction.special] & 0xF) << 26  # bits 26..29

    extension = 0
    source_slot = 0
    operand_kind_bits = 0
    for operand in instruction.sources:
        if source_slot >= 3:
            raise EncodingError("at most three source operands are encodable")
        shift = 30 + source_slot * 6
        if isinstance(operand, Register):
            word |= _encode_register_field(operand) << shift
            kind = 0
        elif isinstance(operand, Immediate):
            if isinstance(operand.value, float):
                if source_slot >= 2:
                    raise EncodingError("float immediates only encodable in slots 0 and 1")
                extension |= _float_bits(operand.value) << (32 * source_slot)
            else:
                imm = int(operand.value) & 0xFFFFFFFF
                if source_slot >= 2:
                    # The extension word only has room for two 32-bit
                    # operands; a third integer immediate rides in the free
                    # top bits of the primary word instead.  Five bits cover
                    # the one producer of slot-2 immediates, ISCADD's shift
                    # count — the same field width real hardware gives it.
                    if not 0 <= int(operand.value) < 32:
                        raise EncodingError(
                            "slot-2 immediates must fit the 5-bit shift field"
                        )
                    word |= (imm & 0x1F) << 59
                else:
                    extension |= imm << (32 * source_slot)
            kind = 1 if isinstance(operand.value, int) else 2
        elif isinstance(operand, ConstRef):
            if source_slot >= 2:
                raise EncodingError("constant operands only encodable in slots 0 and 1")
            packed = ((operand.bank & 0xF) << 20) | (operand.offset & 0xFFFFF)
            extension |= packed << (32 * source_slot)
            kind = 3
        elif isinstance(operand, MemRef):
            word |= _encode_register_field(operand.base) << shift
            if not 0 <= operand.offset < (1 << 20):
                raise EncodingError("memory offsets must fit in 20 bits")
            if source_slot >= 2:
                raise EncodingError("memory operands only encodable in slots 0 and 1")
            extension |= (operand.offset & 0xFFFFF) << (32 * source_slot)
            kind = 4
        else:
            raise EncodingError(f"operand {operand!r} is not encodable")
        operand_kind_bits |= (kind & 0x7) << (source_slot * 3)
        source_slot += 1

    word |= (source_slot & 0x3) << 48                            # bits 48..49
    word |= (operand_kind_bits & 0x1FF) << 50                    # bits 50..58
    if instruction.target is not None:
        # Branch displacement is resolved by the assembler; the raw encoding
        # stores a placeholder in the extension word's top half.
        extension |= 0x1 << 63
    encoded = EncodedInstruction(primary=word, extension=extension)
    instruction.__dict__["_encoded"] = encoded
    return encoded


def decode_instruction(encoded: EncodedInstruction) -> Instruction:
    """Decode binary words produced by :func:`encode_instruction`.

    Branch targets cannot be recovered without the surrounding kernel's label
    table, so decoded BRA instructions carry a synthetic ``Ldecoded`` label.
    """
    from repro.isa.instructions import Label  # local import to avoid a cycle at module load

    word = encoded.primary
    opcode_code = word & 0xFF
    if opcode_code not in _CODE_OPCODES:
        raise EncodingError(f"unknown opcode code {opcode_code}")
    opcode = _CODE_OPCODES[opcode_code]

    pred_index = (word >> 8) & 0x7
    negated = bool((word >> 11) & 0x1)
    dest_index = (word >> 12) & 0x3F
    width = _CODE_WIDTHS[(word >> 18) & 0x3]
    dest_pred_index = (word >> 20) & 0x7
    compare_code = (word >> 23) & 0x7
    special_code = (word >> 26) & 0xF
    source_count = (word >> 48) & 0x3
    operand_kind_bits = (word >> 50) & 0x1FF

    sources: list[object] = []
    for slot in range(source_count):
        kind = (operand_kind_bits >> (slot * 3)) & 0x7
        reg_field = (word >> (30 + slot * 6)) & 0x3F
        ext_field = (encoded.extension >> (32 * slot)) & 0xFFFFFFFF
        if kind == 0:
            sources.append(Register(reg_field))
        elif kind == 1:
            if slot >= 2:  # 5-bit shift field in the primary word (ISCADD)
                sources.append(Immediate((word >> 59) & 0x1F))
            else:
                sources.append(Immediate(ext_field if ext_field < 2**31 else ext_field - 2**32))
        elif kind == 2:
            sources.append(Immediate(_bits_to_float(ext_field)))
        elif kind == 3:
            sources.append(ConstRef(bank=(ext_field >> 20) & 0xF, offset=ext_field & 0xFFFFF))
        elif kind == 4:
            sources.append(MemRef(base=Register(reg_field), offset=ext_field & 0xFFFFF))
        else:
            raise EncodingError(f"unknown operand kind {kind}")

    dest = None if dest_index == RZ_INDEX and opcode not in (Opcode.MOV, Opcode.FFMA) else Register(dest_index)
    if opcode in (Opcode.STS, Opcode.ST, Opcode.BRA, Opcode.BAR, Opcode.EXIT, Opcode.NOP, Opcode.ISETP):
        dest = None

    return Instruction(
        opcode=opcode,
        dest=dest,
        sources=tuple(sources),
        predicate=Predicate(pred_index),
        predicate_negated=negated,
        width=width,
        dest_predicate=Predicate(dest_pred_index) if opcode is Opcode.ISETP else None,
        compare_op=_CODE_COMPARES[compare_code] if opcode is Opcode.ISETP else None,
        special=_CODE_SPECIALS[special_code] if opcode is Opcode.S2R else None,
        target=Label("Ldecoded") if opcode is Opcode.BRA else None,
    )
