"""Registers, predicates and special registers of the Fermi/Kepler ISA.

The Fermi (sm_20) and Kepler GK104 (sm_30) instruction encodings reserve six
bits per register operand, so a thread can address registers ``R0`` … ``R62``
plus the always-zero register ``RZ`` (encoded as index 63).  That hard limit
of 63 usable registers per thread is one of the two constraints the paper's
upper-bound analysis is built on (the other being the scheduler issue
throughput).

Kepler additionally exhibits operand *register-bank* behaviour: registers are
spread over four banks (even0/even1/odd0/odd1 in the paper's naming) and FFMA
throughput drops when distinct source operands collide on a bank.  The bank of
a :class:`Register` is exposed here so the allocator and the conflict analyzer
can reason about it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.arch.register_file import RegisterBank, register_bank
from repro.errors import IsaError

#: Highest addressable general-purpose register index (R62); index 63 is RZ.
MAX_GPR_INDEX = 62

#: Encoding value of the zero register.
RZ_INDEX = 63


@dataclass(frozen=True, order=True)
class Register:
    """A general-purpose 32-bit register ``R<index>``.

    ``Register(63)`` denotes ``RZ``, the hard-wired zero register.
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index <= RZ_INDEX:
            raise IsaError(
                f"register index must be in [0, {RZ_INDEX}], got {self.index}"
            )

    @property
    def is_zero(self) -> bool:
        """Whether this is the hard-wired zero register RZ."""
        return self.index == RZ_INDEX

    @property
    def bank(self) -> RegisterBank:
        """Operand-collector bank this register resides on (Kepler model)."""
        return register_bank(self.index)

    @property
    def name(self) -> str:
        """Assembly name, e.g. ``"R7"`` or ``"RZ"``."""
        return "RZ" if self.is_zero else f"R{self.index}"

    def offset(self, delta: int) -> "Register":
        """Register ``delta`` slots above this one (used by wide accesses)."""
        if self.is_zero:
            raise IsaError("cannot take an offset from RZ")
        return Register(self.index + delta)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Register({self.name})"


#: The hard-wired zero register.
RZ = Register(RZ_INDEX)


def reg(index: int) -> Register:
    """Shorthand constructor for ``Register(index)``."""
    return Register(index)


@dataclass(frozen=True, order=True)
class Predicate:
    """A predicate register ``P0`` … ``P6``; index 7 denotes ``PT`` (true)."""

    index: int

    MAX_INDEX = 7

    def __post_init__(self) -> None:
        if not 0 <= self.index <= self.MAX_INDEX:
            raise IsaError(f"predicate index must be in [0, 7], got {self.index}")

    @property
    def is_true(self) -> bool:
        """Whether this is PT, the always-true predicate."""
        return self.index == self.MAX_INDEX

    @property
    def name(self) -> str:
        """Assembly name, e.g. ``"P2"`` or ``"PT"``."""
        return "PT" if self.is_true else f"P{self.index}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


#: The always-true predicate.
PT = Predicate(Predicate.MAX_INDEX)


def predicate(index: int) -> Predicate:
    """Shorthand constructor for ``Predicate(index)``."""
    return Predicate(index)


class SpecialRegister(str, Enum):
    """Special read-only registers accessible through the S2R instruction."""

    TID_X = "SR_TID.X"
    TID_Y = "SR_TID.Y"
    TID_Z = "SR_TID.Z"
    CTAID_X = "SR_CTAID.X"
    CTAID_Y = "SR_CTAID.Y"
    CTAID_Z = "SR_CTAID.Z"
    LANEID = "SR_LANEID"
    WARPID = "SR_WARPID"

    @classmethod
    def from_name(cls, text: str) -> "SpecialRegister":
        """Parse an assembly special-register name."""
        normalized = text.strip().upper()
        for member in cls:
            if member.value == normalized:
                return member
        raise IsaError(f"unknown special register '{text}'")


def parse_register(text: str) -> Register:
    """Parse an assembly register token such as ``"R12"`` or ``"RZ"``."""
    token = text.strip().upper()
    if token == "RZ":
        return RZ
    if not token.startswith("R"):
        raise IsaError(f"expected a register, got '{text}'")
    try:
        index = int(token[1:])
    except ValueError as exc:
        raise IsaError(f"malformed register token '{text}'") from exc
    if not 0 <= index <= MAX_GPR_INDEX:
        raise IsaError(
            f"register {token} is not encodable: only R0..R{MAX_GPR_INDEX} and RZ exist "
            "on Fermi/GK104 (6-bit register fields)"
        )
    return Register(index)


def parse_predicate(text: str) -> Predicate:
    """Parse an assembly predicate token such as ``"P3"`` or ``"PT"``."""
    token = text.strip().upper()
    if token == "PT":
        return PT
    if not token.startswith("P"):
        raise IsaError(f"expected a predicate, got '{text}'")
    try:
        index = int(token[1:])
    except ValueError as exc:
        raise IsaError(f"malformed predicate token '{text}'") from exc
    if not 0 <= index < Predicate.MAX_INDEX:
        raise IsaError(f"predicate {token} out of range")
    return Predicate(index)
