"""Assembler: turn a :class:`Program` into an executable :class:`Kernel`.

A :class:`Kernel` bundles everything the simulator, the analyses and the
benchmarks need:

* the resolved instruction stream (labels converted to instruction indices),
* the binary encoding of every instruction (which is where the 63-register
  limit is enforced),
* the Kepler control notations (one word per group of seven instructions),
* resource metadata: registers used, shared memory used, threads per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa.instructions import cached_property
from repro.isa.control_notation import (
    ControlNotation,
    GROUP_SIZE,
    notation_schedule_for,
)
from repro.isa.encoding import EncodedInstruction, encode_instruction
from repro.isa.instructions import Instruction, Opcode, Program
from repro.isa.parser import parse_program


@dataclass(frozen=True)
class Kernel:
    """An assembled kernel ready for simulation and analysis.

    Attributes
    ----------
    name:
        Kernel name.
    instructions:
        The resolved instruction stream in program order.
    branch_targets:
        For each instruction index holding a BRA, the index of its target.
    encoded:
        Binary encodings, one per instruction.
    control_notations:
        Kepler scheduling words, one per group of seven instructions (empty
        for Fermi-only kernels).
    shared_memory_bytes:
        Static shared-memory allocation per block.
    threads_per_block:
        Block size the kernel was generated for (0 when unspecified).
    metadata:
        Free-form annotations (blocking factor, variant, …).
    """

    name: str
    instructions: tuple[Instruction, ...]
    branch_targets: dict[int, int] = field(default_factory=dict)
    encoded: tuple[EncodedInstruction, ...] = ()
    control_notations: tuple[ControlNotation, ...] = ()
    shared_memory_bytes: int = 0
    threads_per_block: int = 0
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def instruction_count(self) -> int:
        """Number of instructions in the kernel."""
        return len(self.instructions)

    @cached_property
    def register_count(self) -> int:
        """Number of architectural registers the kernel touches.

        Computed as 1 + the highest register index read or written (ignoring
        RZ), which matches how the hardware allocates a contiguous register
        window per thread.  Cached: kernels are immutable and the walk over
        every operand of every instruction is hot in autotune sweeps.
        """
        highest = -1
        for instruction in self.instructions:
            for register in instruction.registers_written:
                if register.index > highest and not register.is_zero:
                    highest = register.index
            for register in instruction.registers_read:
                if register.index > highest and not register.is_zero:
                    highest = register.index
        return highest + 1

    def instruction_mix(self) -> dict[str, int]:
        """Histogram of instruction mnemonics (with memory width suffixes)."""
        mix: dict[str, int] = {}
        for instruction in self.instructions:
            mix[instruction.mnemonic] = mix.get(instruction.mnemonic, 0) + 1
        return mix

    def ffma_fraction(self) -> float:
        """Fraction of instructions that are FFMA (static count)."""
        if not self.instructions:
            return 0.0
        ffma = sum(1 for instruction in self.instructions if instruction.is_ffma)
        return ffma / len(self.instructions)

    def control_notation_for(self, instruction_index: int) -> ControlNotation | None:
        """The control notation covering ``instruction_index``, if any."""
        if not self.control_notations:
            return None
        group = instruction_index // GROUP_SIZE
        if group >= len(self.control_notations):
            return None
        return self.control_notations[group]

    def binary_size_bytes(self) -> int:
        """Size of the encoded kernel, including Kepler control words."""
        instruction_bytes = sum(len(enc.to_bytes()) for enc in self.encoded)
        return instruction_bytes + 8 * len(self.control_notations)


def assemble(
    program: Program,
    *,
    shared_memory_bytes: int = 0,
    threads_per_block: int = 0,
    emit_control_notation: bool = False,
    control_hint: int | None = None,
    metadata: dict[str, object] | None = None,
) -> Kernel:
    """Assemble a :class:`Program` into a :class:`Kernel`.

    Parameters
    ----------
    program:
        Parsed or programmatically built instruction stream.
    shared_memory_bytes:
        Static shared-memory allocation the kernel requires per block.
    threads_per_block:
        Block size the kernel expects (stored as metadata; the simulator can
        still launch other sizes for micro-benchmarks).
    emit_control_notation:
        When true, generate Kepler control-notation words (one per group of
        seven instructions), mimicking the paper's fixed-hint scheme.
    control_hint:
        The 8-bit hint used for every slot when ``emit_control_notation`` is
        set; defaults to the library's default hint.

    Raises
    ------
    AssemblyError
        If a branch references an undefined label or the program ends without
        an EXIT on a fall-through path.
    """
    instructions = program.instructions
    label_positions = program.label_positions()

    branch_targets: dict[int, int] = {}
    for index, instruction in enumerate(instructions):
        if instruction.opcode is Opcode.BRA:
            assert instruction.target is not None  # guaranteed by Instruction validation
            target_name = instruction.target.name
            if target_name not in label_positions:
                raise AssemblyError(f"branch to undefined label '{target_name}'")
            target_index = label_positions[target_name]
            if target_index > len(instructions):
                raise AssemblyError(f"label '{target_name}' points past the end of the kernel")
            branch_targets[index] = target_index

    encoded = tuple(encode_instruction(instruction) for instruction in instructions)

    notations: tuple[ControlNotation, ...] = ()
    if emit_control_notation:
        if control_hint is None:
            notations = tuple(notation_schedule_for(len(instructions)))
        else:
            notations = tuple(notation_schedule_for(len(instructions), hint=control_hint))

    return Kernel(
        name=program.name,
        instructions=instructions,
        branch_targets=branch_targets,
        encoded=encoded,
        control_notations=notations,
        shared_memory_bytes=shared_memory_bytes,
        threads_per_block=threads_per_block,
        metadata=dict(metadata or {}) | dict(program.metadata),
    )


def assemble_text(
    text: str,
    *,
    name: str = "kernel",
    shared_memory_bytes: int = 0,
    threads_per_block: int = 0,
    emit_control_notation: bool = False,
    control_hint: int | None = None,
) -> Kernel:
    """Parse assembly text and assemble it in one step."""
    program = parse_program(text, name=name)
    return assemble(
        program,
        shared_memory_bytes=shared_memory_bytes,
        threads_per_block=threads_per_block,
        emit_control_notation=emit_control_notation,
        control_hint=control_hint,
    )
