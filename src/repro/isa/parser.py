"""Text assembly parser (asfermi-style syntax).

The accepted syntax is a pragmatic subset of what ``asfermi`` and ``cuobjdump``
print, e.g.::

    LOOP:
        FFMA R26, R6, R8, R26;
        LDS.64 R6, [R60+0x10];
    @P0 BRA LOOP;
        BAR.SYNC 0;
        EXIT;

* labels end with ``:`` and stand on their own line;
* an optional guard ``@P<n>`` or ``@!P<n>`` precedes the mnemonic;
* memory operands are ``[R<base>]`` or ``[R<base>+0x<offset>]``;
* constants are ``c[0x0][0x140]``;
* immediates are decimal or hexadecimal integers, or floats containing ``.``;
* ``//`` and ``#`` start comments; a trailing ``;`` is optional.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.instructions import (
    ConstRef,
    Immediate,
    Instruction,
    Label,
    MemRef,
    Opcode,
    Program,
    ISETP_OPERATORS,
)
from repro.isa.registers import (
    PT,
    Predicate,
    SpecialRegister,
    parse_predicate,
    parse_register,
)

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s*$")
_GUARD_RE = re.compile(r"^@(!?)(P[0-6T])\s+", re.IGNORECASE)
_MEMREF_RE = re.compile(
    r"^\[\s*(RZ|R\d+)\s*(?:\+\s*(0x[0-9a-fA-F]+|\d+)\s*)?\]$", re.IGNORECASE
)
_CONST_RE = re.compile(
    r"^c\s*\[\s*(0x[0-9a-fA-F]+|\d+)\s*\]\s*\[\s*(0x[0-9a-fA-F]+|\d+)\s*\]$", re.IGNORECASE
)
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d*([eE][+-]?\d+)?$|^-?\.\d+([eE][+-]?\d+)?$")

#: Mnemonics (upper-case, without width suffix) mapped to opcodes.
_MNEMONICS: dict[str, Opcode] = {op.value: op for op in Opcode}
_MNEMONICS["LOP"] = Opcode.LOP_AND  # refined by the .AND/.OR/.XOR suffix
_MNEMONICS["BAR.SYNC"] = Opcode.BAR


def _strip_comment(line: str) -> str:
    """Remove ``//`` and ``#`` comments."""
    for marker in ("//", "#"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _parse_int(token: str) -> int:
    """Parse a decimal or hexadecimal integer token."""
    negative = token.startswith("-")
    body = token[1:] if negative else token
    value = int(body, 16) if body.lower().startswith("0x") else int(body)
    return -value if negative else value


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas that are not inside brackets."""
    operands: list[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        operands.append(current.strip())
    return operands


def _parse_operand(token: str, line_number: int) -> object:
    """Parse a single operand token into its operand object."""
    token = token.strip()
    if not token:
        raise AssemblyError(f"line {line_number}: empty operand")
    upper = token.upper()
    if upper == "RZ" or re.fullmatch(r"R\d+", upper):
        return parse_register(upper)
    if upper == "PT" or re.fullmatch(r"P\d", upper):
        return parse_predicate(upper)
    if upper.startswith("SR_"):
        return SpecialRegister.from_name(upper)
    memref = _MEMREF_RE.match(token)
    if memref:
        base = parse_register(memref.group(1))
        offset = _parse_int(memref.group(2)) if memref.group(2) else 0
        return MemRef(base=base, offset=offset)
    const = _CONST_RE.match(token)
    if const:
        return ConstRef(bank=_parse_int(const.group(1)), offset=_parse_int(const.group(2)))
    if _FLOAT_RE.match(token):
        return Immediate(float(token))
    if _INT_RE.match(token):
        return Immediate(_parse_int(token))
    # Anything left is treated as a branch-target label reference.
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
        return Label(token)
    raise AssemblyError(f"line {line_number}: cannot parse operand '{token}'")


def _split_mnemonic(text: str) -> tuple[str, list[str]]:
    """Split ``"LDS.64"`` / ``"ISETP.GE.AND"`` into base mnemonic and suffixes."""
    parts = text.upper().split(".")
    return parts[0], parts[1:]


def parse_instruction_line(line: str, line_number: int = 0) -> Instruction:
    """Parse one instruction line (without label) into an :class:`Instruction`."""
    text = line.strip().rstrip(";").strip()
    if not text:
        raise AssemblyError(f"line {line_number}: empty instruction")

    guard = PT
    negated = False
    guard_match = _GUARD_RE.match(text)
    if guard_match:
        negated = guard_match.group(1) == "!"
        guard_token = guard_match.group(2).upper()
        guard = PT if guard_token == "PT" else parse_predicate(guard_token)
        text = text[guard_match.end():].strip()

    pieces = text.split(None, 1)
    mnemonic_text = pieces[0].upper()
    operand_text = pieces[1] if len(pieces) > 1 else ""
    base, suffixes = _split_mnemonic(mnemonic_text)

    width = 32
    compare_op: str | None = None
    opcode: Opcode
    if base == "LOP":
        if not suffixes or suffixes[0] not in ("AND", "OR", "XOR"):
            raise AssemblyError(f"line {line_number}: LOP needs an .AND/.OR/.XOR suffix")
        opcode = {"AND": Opcode.LOP_AND, "OR": Opcode.LOP_OR, "XOR": Opcode.LOP_XOR}[suffixes[0]]
    elif base in ("LDS", "STS", "LD", "ST"):
        opcode = Opcode(base)
        for suffix in suffixes:
            if suffix in ("64", "128", "32"):
                width = int(suffix)
            elif suffix in ("E",):  # LD.E / ST.E generic-addressing marker, accepted and ignored
                continue
            else:
                raise AssemblyError(f"line {line_number}: unknown suffix .{suffix} on {base}")
    elif base == "ISETP":
        opcode = Opcode.ISETP
        compare_suffixes = [s for s in suffixes if s in ISETP_OPERATORS]
        if not compare_suffixes:
            raise AssemblyError(f"line {line_number}: ISETP needs a comparison suffix")
        compare_op = compare_suffixes[0]
    elif base == "BAR":
        opcode = Opcode.BAR
    elif base in _MNEMONICS:
        opcode = _MNEMONICS[base]
    else:
        raise AssemblyError(f"line {line_number}: unknown mnemonic '{mnemonic_text}'")

    operands = [_parse_operand(tok, line_number) for tok in _split_operands(operand_text)]

    # Distribute operands into the Instruction fields opcode by opcode.
    dest = None
    dest_predicate = None
    special = None
    target = None
    sources: list[object] = []

    if opcode is Opcode.ISETP:
        if not operands or not isinstance(operands[0], Predicate):
            raise AssemblyError(f"line {line_number}: ISETP needs a destination predicate")
        dest_predicate = operands[0]
        # An optional second predicate (the !PT combine operand) is accepted and dropped.
        rest = [op for op in operands[1:] if not isinstance(op, Predicate)]
        sources = rest
    elif opcode is Opcode.BRA:
        if not operands or not isinstance(operands[-1], Label):
            raise AssemblyError(f"line {line_number}: BRA needs a target label")
        target = operands[-1]
    elif opcode is Opcode.BAR:
        sources = [op for op in operands if isinstance(op, Immediate)]
    elif opcode in (Opcode.EXIT, Opcode.NOP):
        sources = []
    elif opcode is Opcode.S2R:
        if len(operands) != 2 or not isinstance(operands[1], SpecialRegister):
            raise AssemblyError(f"line {line_number}: S2R expects 'S2R Rd, SR_*'")
        dest = operands[0]
        special = operands[1]
    elif opcode in (Opcode.STS, Opcode.ST):
        # STS [addr], Rsrc  — no destination register.
        sources = operands
    else:
        if not operands:
            raise AssemblyError(f"line {line_number}: {opcode.value} needs operands")
        dest = operands[0]
        sources = operands[1:]

    from repro.isa.registers import Register as _Register

    if dest is not None and not isinstance(dest, _Register):
        raise AssemblyError(f"line {line_number}: destination of {opcode.value} must be a register")

    return Instruction(
        opcode=opcode,
        dest=dest,
        sources=tuple(sources),
        predicate=guard,
        predicate_negated=negated,
        width=width,
        dest_predicate=dest_predicate,
        compare_op=compare_op,
        special=special,
        target=target,
    )


def parse_program(text: str, name: str = "kernel") -> Program:
    """Parse a full assembly listing into a :class:`Program`.

    Blank lines and comments are skipped; labels and instructions are kept in
    program order.
    """
    items: list[object] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            items.append(Label(label_match.group(1)))
            continue
        items.append(parse_instruction_line(line, line_number))
    return Program(items=tuple(items), name=name)
