"""Kepler control notation (per-7-instruction scheduling words).

Section 3.2 of the paper describes the scheduling information that the Kepler
(GK104) toolchain embeds in the binary: one 64-bit word precedes each group of
seven instructions, it carries identifier nibbles (0x7 in the low word, 0x2 in
the high word in the paper's hex rendering), and the remaining bits split into
seven per-instruction fields.  The authors could not fully decrypt the fields
and used a fixed notation per instruction *type*; we model the same structure:

* a :class:`ControlNotation` holds one 8-bit hint per instruction in a group
  of seven;
* :func:`encode_control_word` / :func:`decode_control_word` pack/unpack the
  64-bit notation word with the identifier nibbles in place;
* the simulator interprets a hint's low three bits as extra *stall cycles*
  requested before issuing the instruction and bit 3 as a *yield* flag,
  which is enough to reproduce the "bad notation → poor performance"
  behaviour the paper reports for its first Kepler attempts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsaError

#: Number of instructions covered by one control word.
GROUP_SIZE = 7

#: Identifier nibble stored in the low 4 bits of the control word.
LOW_IDENTIFIER = 0x7

#: Identifier nibble stored in the top 4 bits of the control word.
HIGH_IDENTIFIER = 0x2

#: Default hint used by the paper-style "same notation per instruction type" scheme.
DEFAULT_HINT = 0x25 & 0xFF


@dataclass(frozen=True)
class ControlNotation:
    """Scheduling hints for one group of up to seven instructions.

    Attributes
    ----------
    hints:
        One 8-bit hint per instruction slot.  Missing slots (for the last,
        partial group of a kernel) default to :data:`DEFAULT_HINT`.
    """

    hints: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.hints) > GROUP_SIZE:
            raise IsaError(f"a control notation covers at most {GROUP_SIZE} instructions")
        for hint in self.hints:
            if not 0 <= hint <= 0xFF:
                raise IsaError(f"control hint {hint:#x} does not fit in 8 bits")

    def hint_for(self, slot: int) -> int:
        """Hint for instruction ``slot`` within the group (0-based)."""
        if not 0 <= slot < GROUP_SIZE:
            raise IsaError(f"slot must be in [0, {GROUP_SIZE}), got {slot}")
        if slot < len(self.hints):
            return self.hints[slot]
        return DEFAULT_HINT

    def padded(self) -> "ControlNotation":
        """This notation with all seven slots filled in."""
        full = tuple(self.hint_for(slot) for slot in range(GROUP_SIZE))
        return ControlNotation(hints=full)

    @staticmethod
    def uniform(hint: int, count: int = GROUP_SIZE) -> "ControlNotation":
        """A notation using the same hint for ``count`` slots."""
        return ControlNotation(hints=tuple(hint for _ in range(count)))

    def stall_cycles(self, slot: int) -> int:
        """Extra stall cycles requested before issuing instruction ``slot``."""
        return self.hint_for(slot) & 0x7

    def yield_flag(self, slot: int) -> bool:
        """Whether the scheduler should yield to another warp after ``slot``."""
        return bool((self.hint_for(slot) >> 3) & 0x1)


def encode_control_word(notation: ControlNotation) -> int:
    """Pack a :class:`ControlNotation` into the 64-bit notation word.

    Layout (low to high): 4 identifier bits (0x7), then seven 8-bit hint
    fields, then 4 identifier bits (0x2) in the top nibble.
    """
    padded = notation.padded()
    word = LOW_IDENTIFIER & 0xF
    for slot, hint in enumerate(padded.hints):
        word |= (hint & 0xFF) << (4 + 8 * slot)
    word |= (HIGH_IDENTIFIER & 0xF) << 60
    return word


def decode_control_word(word: int) -> ControlNotation:
    """Unpack a 64-bit notation word produced by :func:`encode_control_word`.

    Raises
    ------
    IsaError
        If the identifier nibbles are not the expected 0x7 / 0x2 markers.
    """
    if word & 0xF != LOW_IDENTIFIER:
        raise IsaError("control word is missing the 0x7 low identifier nibble")
    if (word >> 60) & 0xF != HIGH_IDENTIFIER:
        raise IsaError("control word is missing the 0x2 high identifier nibble")
    hints = tuple((word >> (4 + 8 * slot)) & 0xFF for slot in range(GROUP_SIZE))
    return ControlNotation(hints=hints)


def notation_schedule_for(instruction_count: int, hint: int = DEFAULT_HINT) -> list[ControlNotation]:
    """Uniform control notations covering ``instruction_count`` instructions.

    This mirrors the paper's Kepler compromise of using the same notation for
    every instruction of a given type when the real encoding is unknown.
    """
    if instruction_count < 0:
        raise IsaError("instruction count must be non-negative")
    groups = -(-instruction_count // GROUP_SIZE) if instruction_count else 0
    notations: list[ControlNotation] = []
    for group in range(groups):
        remaining = instruction_count - group * GROUP_SIZE
        slots = min(GROUP_SIZE, remaining)
        notations.append(ControlNotation.uniform(hint, slots))
    return notations
