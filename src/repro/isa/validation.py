"""Kernel validation passes.

These checks catch the mistakes the paper's authors had to avoid by hand when
writing SASS directly: exceeding the 63-register limit, mis-aligned wide
shared-memory accesses, wide loads whose destination register pair/quad runs
past the register window, branches without targets, and kernels that fall off
the end without an EXIT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GpuSpec
from repro.errors import ValidationError
from repro.isa.assembler import Kernel
from repro.isa.instructions import Opcode


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating a kernel against a machine description.

    Attributes
    ----------
    kernel_name:
        Name of the validated kernel.
    register_count:
        Architectural registers used per thread.
    shared_memory_bytes:
        Static shared memory per block.
    errors:
        Hard violations; the kernel cannot run if any are present.
    warnings:
        Suspicious-but-legal constructs (e.g. unaligned wide accesses that the
        hardware would serialise).
    """

    kernel_name: str
    register_count: int
    shared_memory_bytes: int
    errors: tuple[str, ...] = ()
    warnings: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the kernel passed validation without errors."""
        return not self.errors


def validate_kernel(kernel: Kernel, gpu: GpuSpec, *, strict: bool = False) -> ValidationReport:
    """Validate ``kernel`` against the resource limits of ``gpu``.

    Parameters
    ----------
    kernel:
        The assembled kernel to validate.
    gpu:
        Machine description providing the register and shared-memory limits.
    strict:
        When true, raise :class:`ValidationError` on the first error instead
        of collecting everything into the report.

    Returns
    -------
    ValidationReport
        Collected errors and warnings.
    """
    errors: list[str] = []
    warnings: list[str] = []

    register_count = kernel.register_count
    max_registers = gpu.register_file.max_registers_per_thread
    if register_count > max_registers:
        errors.append(
            f"kernel uses {register_count} registers per thread but {gpu.name} allows at most "
            f"{max_registers}"
        )

    if kernel.shared_memory_bytes > gpu.shared_memory.size_bytes:
        errors.append(
            f"kernel requests {kernel.shared_memory_bytes} bytes of shared memory but the SM has "
            f"{gpu.shared_memory.size_bytes}"
        )

    if kernel.threads_per_block and kernel.threads_per_block > gpu.sm.max_threads:
        errors.append(
            f"block size {kernel.threads_per_block} exceeds the per-SM thread limit of {gpu.sm.max_threads}"
        )

    has_exit = any(instruction.opcode is Opcode.EXIT for instruction in kernel.instructions)
    if not has_exit:
        errors.append("kernel has no EXIT instruction")

    for index, instruction in enumerate(kernel.instructions):
        if instruction.opcode is Opcode.BRA and index not in kernel.branch_targets:
            errors.append(f"instruction {index}: BRA has no resolved target")
        if instruction.opcode in (Opcode.LDS, Opcode.LD) and instruction.width > 32:
            if instruction.dest is None:
                errors.append(f"instruction {index}: wide load without a destination")
            else:
                last = instruction.dest.index + instruction.width // 32 - 1
                if last > max_registers - 1:
                    errors.append(
                        f"instruction {index}: {instruction.mnemonic} destination pair/quad "
                        f"R{instruction.dest.index}..R{last} exceeds the register window"
                    )
                alignment = instruction.width // 32
                if instruction.dest.index % alignment != 0:
                    warnings.append(
                        f"instruction {index}: {instruction.mnemonic} destination R{instruction.dest.index} "
                        f"is not {alignment}-register aligned"
                    )
        if instruction.opcode in (Opcode.LDS, Opcode.STS, Opcode.LD, Opcode.ST):
            operand = instruction.memory_operand
            if operand is None:
                errors.append(f"instruction {index}: {instruction.mnemonic} has no memory operand")
            elif operand.offset % (instruction.width // 8) != 0:
                warnings.append(
                    f"instruction {index}: {instruction.mnemonic} offset {operand.offset:#x} is not "
                    f"{instruction.width // 8}-byte aligned"
                )

    report = ValidationReport(
        kernel_name=kernel.name,
        register_count=register_count,
        shared_memory_bytes=kernel.shared_memory_bytes,
        errors=tuple(errors),
        warnings=tuple(warnings),
    )
    if strict and errors:
        raise ValidationError("; ".join(errors))
    return report
