"""Fermi/Kepler-style native instruction set (SASS) toolchain.

The paper programs the GPUs directly in native assembly (via a patched
``asfermi``) because the register budget, the instruction selection (LDS vs
LDS.64 vs LDS.128), the instruction order and — on Kepler — the operand
register banks and the control notation all have first-order performance
effects that the compiler does not let the programmer control.

This subpackage rebuilds that toolchain in Python:

* :mod:`repro.isa.registers` — general-purpose registers, predicates and
  special registers, including the operand-bank mapping of GK104.
* :mod:`repro.isa.instructions` — the instruction set used by SGEMM and the
  micro-benchmarks (FFMA/FADD/FMUL, integer ALU, LDS/STS at 32/64/128 bits,
  global LD/ST, control flow, barriers).
* :mod:`repro.isa.encoding` — the 64-bit binary encoding whose 6-bit register
  fields impose the 63-register-per-thread limit the paper's analysis hinges
  on.
* :mod:`repro.isa.control_notation` — the Kepler per-7-instruction scheduling
  words (``0x….7 0x2….`` in the paper's notation).
* :mod:`repro.isa.parser` / :mod:`repro.isa.assembler` /
  :mod:`repro.isa.disassembler` — text assembly in, :class:`Kernel` out, and
  back.
* :mod:`repro.isa.builder` — a programmatic kernel builder used by the SGEMM
  generator and the micro-benchmark generators.
* :mod:`repro.isa.validation` — ISA/resource validation passes.
"""

from repro.isa.registers import (
    PT,
    RZ,
    Predicate,
    Register,
    SpecialRegister,
    predicate,
    reg,
)
from repro.isa.instructions import (
    ConstRef,
    Immediate,
    Instruction,
    Label,
    MemRef,
    MemSpace,
    Opcode,
    OperandKind,
)
from repro.isa.encoding import encode_instruction, decode_instruction, REGISTER_FIELD_BITS
from repro.isa.control_notation import ControlNotation, encode_control_word, decode_control_word
from repro.isa.parser import parse_program
from repro.isa.assembler import Kernel, assemble, assemble_text
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.builder import KernelBuilder
from repro.isa.validation import validate_kernel

__all__ = [
    "PT",
    "RZ",
    "Predicate",
    "Register",
    "SpecialRegister",
    "predicate",
    "reg",
    "ConstRef",
    "Immediate",
    "Instruction",
    "Label",
    "MemRef",
    "MemSpace",
    "Opcode",
    "OperandKind",
    "encode_instruction",
    "decode_instruction",
    "REGISTER_FIELD_BITS",
    "ControlNotation",
    "encode_control_word",
    "decode_control_word",
    "parse_program",
    "Kernel",
    "assemble",
    "assemble_text",
    "disassemble",
    "format_instruction",
    "KernelBuilder",
    "validate_kernel",
]
