"""Deterministic, seeded fault injection for the storage spine.

The kernel cache is only as good as its failure paths, and failure paths
that only fire when a disk actually fills are failure paths that have never
run.  This module makes them run on demand: the filesystem operations of
:mod:`repro.kcache.store`, :mod:`repro.kcache.locks`,
:mod:`repro.kcache.simstore` and :mod:`repro.telemetry.ledger` each pass
through a named *fault point*, and an installed :class:`FaultPlan` decides —
deterministically, from a seed — whether that point raises ``EIO``, reports
a full (``ENOSPC``) or read-only (``EROFS``) filesystem, tears the bytes
being written, sleeps, or dies outright mid-operation.

The facade follows the contract of :mod:`repro.telemetry.metrics`: library
code calls :func:`fault_point` / :func:`fault_mutate` unconditionally, and
when no plan is installed both are strict no-ops — one module-global read,
zero allocations (the test suite pins this with tracemalloc, because the
fault points sit on the warm-hit path of ``get_kernel``).

Determinism is the point.  The Lai & Seznec methodology gives every cached
artifact a bit-exact oracle, so a chaos schedule that replays identically
from its seed turns "the service survived" into a machine-checkable
invariant: under any schedule, every request returns a provably correct
kernel or a typed :class:`repro.errors.KernelCacheError` — never a silently
wrong one.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterator, Sequence

from repro.errors import ReproError
from repro.telemetry.metrics import counter_inc

__all__ = [
    "ABORT_EXIT_STATUS",
    "FAULT_KINDS",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "current_faults",
    "fault_mutate",
    "fault_point",
    "faults_session",
    "install_faults",
]

#: Every fault kind a rule may inject.
FAULT_KINDS = ("eio", "enospc", "erofs", "torn", "delay", "crash", "abort")

#: Errno raised per filesystem-error kind.
_ERRNO_OF = {"eio": errno.EIO, "enospc": errno.ENOSPC, "erofs": errno.EROFS}

#: Exit status of an ``abort`` fault (a simulated ``kill -9`` mid-commit).
ABORT_EXIT_STATUS = 70


class InjectedCrash(BaseException):
    """A simulated process death at a fault point.

    Derives from :class:`BaseException` so that library code catching broad
    ``Exception`` (torn-pickle guards, best-effort cache writes) cannot
    absorb it — a crash propagates the way a real ``SIGKILL`` would end the
    process.  Chaos-harness workers catch it at top level and ``os._exit``.
    """


class FaultError(ReproError):
    """An invalid fault rule or plan (bad kind, bad probability)."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where* (site pattern), *what* (kind), *when*.

    Attributes
    ----------
    sites:
        ``fnmatch`` pattern over fault-point names, e.g.
        ``"kcache.store.meta.*"`` or ``"kcache.locks.claim"``.
    kind:
        One of :data:`FAULT_KINDS`.  ``torn`` only applies at mutate points
        (it rewrites the bytes about to be written); every other kind fires
        at plain fault points.
    probability:
        Chance a matching pass fires, decided by the plan's seeded RNG.
    times:
        Maximum number of fires (None = unbounded).
    skip:
        Matching passes to let through before the rule may fire.
    delay_s:
        Sleep length of a ``delay`` fault.
    torn_keep:
        Fraction of the payload a ``torn`` fault keeps (None = the seeded
        RNG picks in [0, 0.9]).
    """

    sites: str
    kind: str
    probability: float = 1.0
    times: int | None = 1
    skip: int = 0
    delay_s: float = 0.0
    torn_keep: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(f"probability {self.probability!r} outside [0, 1]")


class FaultPlan:
    """A seeded schedule of :class:`FaultRule` firings.

    All randomness (fire decisions, torn-byte positions) flows from one
    ``random.Random(seed)``, so a plan replays identically: the same seed,
    rules and sequence of fault-point passes produce the same injected
    faults.  ``fired`` records every injection as ``(site, kind)`` pairs —
    chaos harnesses use it to count injected faults and to scale their
    invariants (a torn write legitimately costs a rebuild).

    ``allow_abort`` gates the ``abort`` kind: only a process that has opted
    in (a chaos-pool worker) actually ``os._exit``\\ s; everywhere else an
    ``abort`` downgrades to raising :class:`InjectedCrash`, so a stray rule
    can never kill the test runner.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule],
        *,
        seed: int = 0,
        allow_abort: bool = False,
    ) -> None:
        import random

        self.rules = tuple(rules)
        self.seed = seed
        self.allow_abort = allow_abort
        self.fired: list[tuple[str, str]] = []
        self._rng = random.Random(seed)
        self._matches = [0] * len(self.rules)
        self._fires = [0] * len(self.rules)
        self._lock = threading.Lock()

    def fired_count(self, *kinds: str) -> int:
        """How many faults fired (of ``kinds``, or all kinds when empty)."""
        with self._lock:
            if not kinds:
                return len(self.fired)
            return sum(1 for _, kind in self.fired if kind in kinds)

    def _select(self, site: str, *, mutate: bool) -> FaultRule | None:
        """The first rule firing at ``site`` on this pass, bookkeeping done."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                if (rule.kind == "torn") != mutate:
                    continue
                if not fnmatchcase(site, rule.sites):
                    continue
                self._matches[index] += 1
                if self._matches[index] <= rule.skip:
                    continue
                if rule.times is not None and self._fires[index] >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                self._fires[index] += 1
                self.fired.append((site, rule.kind))
                return rule
        return None

    def hit(self, site: str) -> None:
        """Apply the plan at a plain fault point (may raise, sleep or exit)."""
        rule = self._select(site, mutate=False)
        if rule is None:
            return
        counter_inc("faults.injected", 1, (("kind", rule.kind), ("site", site)))
        if rule.kind == "delay":
            time.sleep(rule.delay_s)
            return
        if rule.kind == "crash" or (rule.kind == "abort" and not self.allow_abort):
            raise InjectedCrash(site)
        if rule.kind == "abort":
            os._exit(ABORT_EXIT_STATUS)
        raise OSError(_ERRNO_OF[rule.kind], os.strerror(_ERRNO_OF[rule.kind]), site)

    def mutate(self, site: str, data: bytes) -> bytes:
        """Apply the plan at a mutate point: possibly tear ``data``."""
        rule = self._select(site, mutate=True)
        if rule is None:
            return data
        counter_inc("faults.injected", 1, (("kind", rule.kind), ("site", site)))
        with self._lock:
            keep = rule.torn_keep
            if keep is None:
                keep = self._rng.uniform(0.0, 0.9)
            kept = int(len(data) * keep)
            torn = bytearray(data[:kept])
            if torn and self._rng.random() < 0.5:
                # Half the time the tear also flips a byte, not just truncates.
                position = self._rng.randrange(len(torn))
                torn[position] ^= 0xFF
        return bytes(torn)


# --------------------------------------------------------------------------- #
# The process-wide facade.                                                     #
# --------------------------------------------------------------------------- #

#: The installed plan fault points consult (None = faults off, strict no-op).
_CURRENT: FaultPlan | None = None


def install_faults(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` as the process-wide fault plan; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = plan
    return previous


def current_faults() -> FaultPlan | None:
    """The installed plan, or None when fault injection is off."""
    return _CURRENT


@contextmanager
def faults_session(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the ``with`` body, restoring the previous plan."""
    previous = install_faults(plan)
    try:
        yield plan
    finally:
        install_faults(previous)


def fault_point(site: str) -> None:
    """Pass through the fault point ``site``; a no-op when faults are off.

    Call sites pass constant strings, so the uninstalled path is one global
    read and a None check — zero allocations.
    """
    plan = _CURRENT
    if plan is not None:
        plan.hit(site)


def fault_mutate(site: str, data: bytes) -> bytes:
    """Pass ``data`` through the mutate point ``site``; identity when off."""
    plan = _CURRENT
    if plan is None:
        return data
    return plan.mutate(site, data)
