"""Deterministic fault injection for the kernel-cache storage spine.

A seeded :class:`FaultPlan` (rules over named fault points) installs
process-wide — :func:`install_faults` / :func:`faults_session`, strict no-op
when uninstalled — and the filesystem operations of ``kcache.store``,
``kcache.locks``, ``kcache.simstore`` and ``telemetry.ledger`` pass through
it: injected ``EIO``/``ENOSPC``/``EROFS``, torn payloads, delays and
simulated crashes, replayable from one seed.

See ``docs/faults.md`` for the site catalogue and the chaos-harness
invariants this layer exists to check.
"""

from repro.faults.injector import (
    ABORT_EXIT_STATUS,
    FAULT_KINDS,
    FaultError,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    current_faults,
    fault_mutate,
    fault_point,
    faults_session,
    install_faults,
)
from repro.faults.schedule import DESTRUCTIVE_KINDS, MUTATE_SITES, SITES, random_plan

__all__ = [
    "ABORT_EXIT_STATUS",
    "DESTRUCTIVE_KINDS",
    "FAULT_KINDS",
    "MUTATE_SITES",
    "SITES",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "current_faults",
    "fault_mutate",
    "fault_point",
    "faults_session",
    "install_faults",
    "random_plan",
]
