"""Seeded random fault schedules over the storage spine's site catalogue.

:data:`SITES` names every fault point the storage layers declare; it is the
contract the chaos harness enumerates (a new injection point belongs here
so schedules start exercising it).  :func:`random_plan` draws a small random
rule set over those sites from one seed — the unit of replay for
``tests/kcache/test_chaos.py`` and the CI chaos smoke: the same seed always
yields the same schedule, so a failing schedule is a one-integer repro.
"""

from __future__ import annotations

import random

from repro.faults.injector import FaultPlan, FaultRule

__all__ = ["SITES", "MUTATE_SITES", "DESTRUCTIVE_KINDS", "random_plan"]

#: Every plain fault point the storage layers pass through.
SITES = (
    "kcache.store.payload.write",
    "kcache.store.payload.commit",
    "kcache.store.payload.committed",
    "kcache.store.meta.write",
    "kcache.store.meta.commit",
    "kcache.store.meta.committed",
    "kcache.store.read.meta",
    "kcache.store.read.payload",
    "kcache.store.unlink",
    "kcache.store.poison.write",
    "kcache.store.poison.commit",
    "kcache.store.poison.committed",
    "kcache.store.poison.read",
    "kcache.locks.claim",
    "kcache.locks.read",
    "kcache.locks.release",
    "kcache.simstore.read",
    "kcache.simstore.write",
    "telemetry.ledger.append",
)

#: Mutate points: the bytes being written/read pass through these.
MUTATE_SITES = (
    "kcache.store.payload.write",
    "kcache.store.meta.write",
    "kcache.store.read.payload",
)

#: Fault kinds that can destroy or hide an already-committed entry — the
#: chaos invariant "one durable build per key" is scaled by these, because a
#: torn write or an injected read error legitimately costs a rebuild.
DESTRUCTIVE_KINDS = ("torn", "eio", "enospc", "erofs", "crash", "abort")

#: Kinds :func:`random_plan` draws from (abort only fires when the plan's
#: process opted in; elsewhere it downgrades to an in-process crash).
_PLAIN_KINDS = ("eio", "enospc", "erofs", "delay", "crash")


def random_plan(
    seed: int,
    *,
    max_rules: int = 5,
    allow_abort: bool = False,
    delay_s: float = 0.002,
) -> FaultPlan:
    """A seeded random :class:`FaultPlan` over the site catalogue.

    Draws 1..``max_rules`` rules, each aimed at one concrete site (plain
    kinds) or one mutate site (``torn``), with small fire budgets and skip
    offsets so faults land at different depths of a request sequence.
    """
    rng = random.Random(seed)
    rules: list[FaultRule] = []
    for _ in range(rng.randint(1, max_rules)):
        if rng.random() < 0.25:
            rules.append(
                FaultRule(
                    sites=rng.choice(MUTATE_SITES),
                    kind="torn",
                    probability=rng.uniform(0.5, 1.0),
                    times=rng.randint(1, 2),
                    skip=rng.randint(0, 2),
                    torn_keep=rng.choice([None, 0.0, 0.5, 0.95]),
                )
            )
            continue
        kind = rng.choice(_PLAIN_KINDS)
        rules.append(
            FaultRule(
                sites=rng.choice(SITES),
                kind=kind,
                probability=rng.uniform(0.5, 1.0),
                times=rng.randint(1, 3),
                skip=rng.randint(0, 2),
                delay_s=delay_s if kind == "delay" else 0.0,
            )
        )
    return FaultPlan(rules, seed=seed, allow_abort=allow_abort)
