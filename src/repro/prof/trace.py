"""Lightweight span tracing with Chrome trace-event export.

The tracer is a deliberately small nesting-span recorder: code under
measurement opens spans with :func:`trace_span` (a no-op when no tracer is
installed, so instrumented library code pays one global read on the cold
path), and an installed :class:`Tracer` turns the spans into Chrome
trace-event JSON that ``chrome://tracing`` and Perfetto load directly.

Determinism is a design constraint, not an afterthought: the clock is
injectable, so tests drive a fake counter and get byte-stable traces, while
production use defaults to :func:`time.perf_counter`.

Example (deterministic fake clock)::

    >>> ticks = iter(range(100))
    >>> tracer = Tracer(clock=lambda: next(ticks) * 0.001)
    >>> with tracer.span("lower", category="tile", kernel="sgemm"):
    ...     pass
    >>> event = tracer.events[0]
    >>> (event.name, event.category, event.start_us, event.duration_us)
    ('lower', 'tile', 0.0, 1000.0)
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "TraceEvent",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "trace_instant",
    "trace_span",
    "tracing",
]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded span (``phase == "X"``) or instant (``phase == "i"``).

    Timestamps are microseconds relative to the tracer's construction, the
    unit the Chrome trace-event format mandates.
    """

    name: str
    category: str
    start_us: float
    duration_us: float
    phase: str = "X"
    args: dict = field(default_factory=dict)

    def as_chrome_event(self) -> dict:
        """The Chrome trace-event JSON object for this event."""
        event: dict = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "ts": self.start_us,
            "pid": 1,
            "tid": 1,
        }
        if self.phase == "X":
            event["dur"] = self.duration_us
        else:
            event["s"] = "t"  # instant scope: thread
        if self.args:
            event["args"] = dict(self.args)
        return event


class Tracer:
    """Records nested spans against an injectable monotonic clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds.  Defaults to
        :func:`time.perf_counter`; tests inject a fake counter for
        deterministic traces.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self._origin = self._clock()
        self.events: list[TraceEvent] = []

    def _now_us(self) -> float:
        return (self._clock() - self._origin) * 1e6

    @contextmanager
    def span(self, name: str, category: str = "repro", **args: object) -> Iterator[dict]:
        """Record a complete ("X") event spanning the ``with`` body.

        Yields the event's mutable ``args`` dict so the body can attach
        results discovered mid-span (candidate counts, cycle figures, ...).
        """
        span_args: dict = dict(args)
        start = self._now_us()
        try:
            yield span_args
        finally:
            end = self._now_us()
            self.events.append(
                TraceEvent(
                    name=name,
                    category=category,
                    start_us=start,
                    duration_us=end - start,
                    phase="X",
                    args=span_args,
                )
            )

    def instant(self, name: str, category: str = "repro", **args: object) -> None:
        """Record a zero-duration instant ("i") event."""
        self.events.append(
            TraceEvent(
                name=name,
                category=category,
                start_us=self._now_us(),
                duration_us=0.0,
                phase="i",
                args=dict(args),
            )
        )

    def to_chrome_trace(self) -> dict:
        """The Perfetto/``chrome://tracing``-loadable trace object."""
        return {
            "displayTimeUnit": "ms",
            "traceEvents": [event.as_chrome_event() for event in self.events],
        }

    def dump(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1, sort_keys=True)


#: The process-wide tracer instrumented library code reports to (None = off).
_CURRENT: Tracer | None = None


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process-wide tracer; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer
    return previous


def current_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is off."""
    return _CURRENT


@contextmanager
def tracing(clock: Callable[[], float] | None = None) -> Iterator[Tracer]:
    """Install a fresh :class:`Tracer` for the ``with`` body.

    The previous tracer (usually None) is restored on exit, so traced scopes
    nest without leaking state into later code::

        with tracing() as tracer:
            autotune_schedules(gpu, candidates)
        tracer.dump("sweep.trace.json")
    """
    tracer = Tracer(clock=clock)
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)


@contextmanager
def trace_span(name: str, category: str = "repro", **args: object) -> Iterator[dict]:
    """Span against the installed tracer; a cheap no-op when tracing is off.

    Always yields an args dict so instrumented code can attach results
    unconditionally; without a tracer the dict is simply discarded.
    """
    tracer = _CURRENT
    if tracer is None:
        yield {}
        return
    with tracer.span(name, category, **args) as span_args:
        yield span_args


def trace_instant(name: str, category: str = "repro", **args: object) -> None:
    """Instant event against the installed tracer; no-op when tracing is off."""
    tracer = _CURRENT
    if tracer is not None:
        tracer.instant(name, category, **args)
