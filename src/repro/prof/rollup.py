"""Roll per-instruction simulator counters up by tile-IR provenance tag.

The lowering stamps every emitted SASS instruction with a ``/``-separated
provenance path (``loop(ko)/stage_shared(A_shared)/prefetch``), and the
profiled simulator attributes issue slots, wall-clock cycles, stall events
and memory traffic to individual program counters
(:class:`repro.sim.results.InstructionCounters`).  This module joins the two:
group the per-pc arrays by (optionally truncated) provenance tag so a profile
reads in the vocabulary of the *schedule* — "``stage_shared(B_shared)`` cost
1410 cycles, 62% of them ldst-pipe stalls" — instead of raw SASS offsets.

Attribution is exhaustive by construction (see ``InstructionCounters``), so
the rows of a rollup sum to the simulated cycle count exactly;
:attr:`ProfileRollup.attributed_fraction` states the reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import Kernel
from repro.sim.results import STALL_REASONS, InstructionCounters

__all__ = ["ProvenanceRow", "ProfileRollup", "rollup_by_provenance"]

#: Tag used for instructions that carry no provenance (hand-written kernels).
UNTAGGED = "<untagged>"


@dataclass(frozen=True)
class ProvenanceRow:
    """Aggregated counters of every instruction sharing one provenance tag."""

    tag: str
    instructions: int                 # static instruction slots under the tag
    issues: int                       # dynamic warp-instruction issues
    issue_cycles: float               # wall cycles attributed at issue
    stall_cycles: dict[str, float]    # idle wall cycles per stall reason
    stall_events: dict[str, int]      # stall-pressure events per reason
    smem_replays: int                 # extra shared-memory conflict replays
    dram_bytes: int                   # global-memory bytes moved

    @property
    def cycles(self) -> float:
        """Total wall-clock cycles attributed to this tag (issue + stalls)."""
        return self.issue_cycles + sum(self.stall_cycles.values())

    @property
    def total_stall_cycles(self) -> float:
        """Idle wall-clock cycles attributed to this tag."""
        return sum(self.stall_cycles.values())

    @property
    def dominant_stall(self) -> str | None:
        """The stall reason costing this tag the most cycles (None if never stalled)."""
        reason = max(self.stall_cycles, key=lambda r: self.stall_cycles[r])
        return reason if self.stall_cycles[reason] > 0 else None

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view."""
        return {
            "tag": self.tag,
            "instructions": self.instructions,
            "issues": self.issues,
            "cycles": self.cycles,
            "issue_cycles": self.issue_cycles,
            "stall_cycles": dict(self.stall_cycles),
            "stall_events": dict(self.stall_events),
            "smem_replays": self.smem_replays,
            "dram_bytes": self.dram_bytes,
        }


@dataclass(frozen=True)
class ProfileRollup:
    """A profiled run's counters grouped by provenance tag.

    ``rows`` are sorted most-expensive-first.  ``total_cycles`` is the
    simulated cycle count the rows are reconciled against.
    """

    total_cycles: float
    rows: tuple[ProvenanceRow, ...]

    @property
    def attributed_cycles(self) -> float:
        """Wall-clock cycles covered by the rows."""
        return sum(row.cycles for row in self.rows)

    @property
    def attributed_fraction(self) -> float:
        """Fraction of the simulated cycles the rollup accounts for (1.0 = all)."""
        if self.total_cycles <= 0:
            return 0.0
        return self.attributed_cycles / self.total_cycles

    @property
    def stall_cycle_totals(self) -> dict[str, float]:
        """Idle cycles per stall reason, summed across all tags."""
        totals = {reason: 0.0 for reason in STALL_REASONS}
        for row in self.rows:
            for reason, cycles in row.stall_cycles.items():
                totals[reason] += cycles
        return totals

    @property
    def issue_cycle_total(self) -> float:
        """Issue-attributed (busy) cycles, summed across all tags."""
        return sum(row.issue_cycles for row in self.rows)

    def row(self, tag: str) -> ProvenanceRow | None:
        """The row for ``tag``, or None when no instruction carries it."""
        for candidate in self.rows:
            if candidate.tag == tag:
                return candidate
        return None

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view."""
        return {
            "total_cycles": self.total_cycles,
            "attributed_cycles": self.attributed_cycles,
            "attributed_fraction": self.attributed_fraction,
            "rows": [row.as_dict() for row in self.rows],
        }


def _truncate(tag: str, depth: int | None) -> str:
    if not tag:
        return UNTAGGED
    if depth is None:
        return tag
    return "/".join(tag.split("/")[:depth])


def rollup_by_provenance(
    kernel: Kernel,
    counters: InstructionCounters,
    *,
    total_cycles: float,
    depth: int | None = None,
) -> ProfileRollup:
    """Group ``counters`` by the provenance tags of ``kernel``'s instructions.

    Parameters
    ----------
    kernel:
        The simulated kernel (supplies per-pc provenance tags).
    counters:
        Per-instruction counters from a ``collect_profile=True`` run.
    total_cycles:
        The run's simulated cycle count, recorded for reconciliation.
    depth:
        Truncate tags to this many path segments (``1`` groups everything
        under its top-level phase: ``prologue``, ``loop(ko)``, ...); None
        keeps full paths.
    """
    if counters.instruction_count != kernel.instruction_count:
        raise ValueError(
            f"counters track {counters.instruction_count} instructions but the "
            f"kernel has {kernel.instruction_count}"
        )
    groups: dict[str, list[int]] = {}
    for pc, instruction in enumerate(kernel.instructions):
        groups.setdefault(_truncate(instruction.provenance, depth), []).append(pc)

    rows = []
    for tag, pcs in groups.items():
        rows.append(
            ProvenanceRow(
                tag=tag,
                instructions=len(pcs),
                issues=int(counters.issues[pcs].sum()),
                issue_cycles=float(counters.issue_cycles[pcs].sum()),
                stall_cycles={
                    reason: float(counters.stall_cycles[reason][pcs].sum())
                    for reason in STALL_REASONS
                },
                stall_events={
                    reason: int(counters.stall_events[reason][pcs].sum())
                    for reason in STALL_REASONS
                },
                smem_replays=int(counters.smem_replays[pcs].sum()),
                dram_bytes=int(counters.dram_bytes[pcs].sum()),
            )
        )
    rows.sort(key=lambda row: (-row.cycles, row.tag))
    return ProfileRollup(total_cycles=total_cycles, rows=tuple(rows))
