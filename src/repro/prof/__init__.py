"""``repro.prof`` — counter-based profiling with tile-IR provenance.

The observability layer over the simulator, the tile compiler and the
autotuner:

* **Provenance** — the lowering stamps every emitted SASS instruction with
  its schedule-primitive origin path, preserved through the optimization
  pipeline (see :attr:`repro.isa.instructions.Instruction.provenance`);
* **Counters** — the simulator attributes issue slots, wall-clock cycles,
  stall events, shared-memory bank-conflict replays and DRAM bytes to
  individual instructions (``collect_profile=True``);
* **Rollup** — :func:`rollup_by_provenance` groups the per-instruction
  counters by provenance tag, exhaustively (rows sum to the cycle count);
* **Gap attribution** — :func:`attribute_gap` joins the rollup against the
  workload's Eq. 6/8/9 analytic floors;
* **Tracing** — :func:`tracing` / :func:`trace_span` record schedule
  primitives, lowering, optimization passes and autotune sweeps as Chrome
  trace events (Perfetto-loadable), against an injectable clock.

``scripts/profile_kernel.py`` is the command-line front end.
"""

from __future__ import annotations

from repro.prof.report import (
    BoundFloors,
    GapReport,
    attribute_gap,
    bound_floors,
    format_gap,
)
from repro.prof.rollup import ProfileRollup, ProvenanceRow, rollup_by_provenance
from repro.prof.trace import (
    TraceEvent,
    Tracer,
    current_tracer,
    install_tracer,
    trace_instant,
    trace_span,
    tracing,
)

__all__ = [
    "BoundFloors",
    "GapReport",
    "KernelProfile",
    "ProfileRollup",
    "ProvenanceRow",
    "TraceEvent",
    "Tracer",
    "attribute_gap",
    "bound_floors",
    "current_tracer",
    "format_gap",
    "format_profile",
    "install_tracer",
    "profile_kernel",
    "profile_workload",
    "rollup_by_provenance",
    "trace_instant",
    "trace_span",
    "tracing",
]

#: Profiler entry points live in :mod:`repro.prof.profiler`, which reaches
#: into the kernel registry and the autotuner; importing it lazily keeps
#: ``repro.prof.trace`` importable from those very modules (no cycle).
_PROFILER_EXPORTS = {"KernelProfile", "profile_kernel", "profile_workload", "format_profile"}


def __getattr__(name: str):
    if name in _PROFILER_EXPORTS:
        from repro.prof import profiler

        return getattr(profiler, name)
    raise AttributeError(f"module 'repro.prof' has no attribute '{name}'")
