"""Bound-gap attribution: decompose achieved-vs-bound in the cycle domain.

The paper's Eq. 6/8/9 bounds say how fast a kernel *could* run given its
compulsory work (flops, DRAM bytes, shared-memory bytes); the profiled
simulator says how fast it *did* run and charges every cycle to an
instruction.  This module joins the two: it converts the workload's analytic
floors (:func:`repro.model.analyse_workload_bound`) into simulated-SM cycles,
subtracts the binding floor from the achieved cycle count, and decomposes the
remaining gap into the profiler's exhaustive issue/stall attribution.

The cycle-domain conversion mirrors the simulator's bandwidth model: the
whole grid runs on one simulated SM that owns ``1/sm_count`` of the GPU's
DRAM bandwidth and FLOP throughput, so a whole-GPU bound time of ``t``
seconds corresponds to ``t × f_shader × sm_count`` cycles on that SM.  The
floors and the simulator therefore price DRAM bytes identically, and the
reconciliation identity

``achieved = bound + (busy - bound) + Σ stall_cycles[reason]``

holds exactly (busy = issue-attributed cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GpuSpec
from repro.model.workload_bounds import (
    WorkloadBound,
    WorkloadResources,
    analyse_workload_bound,
)
from repro.prof.rollup import ProfileRollup
from repro.sim.results import STALL_REASONS

__all__ = ["BoundFloors", "GapReport", "attribute_gap", "bound_floors", "format_gap"]


@dataclass(frozen=True)
class BoundFloors:
    """The analytic floors of one workload, in simulated-SM cycles."""

    compute_cycles: float
    dram_cycles: float
    shared_cycles: float

    @property
    def bound_cycles(self) -> float:
        """The binding floor: no schedule can beat the slowest resource."""
        return max(self.compute_cycles, self.dram_cycles, self.shared_cycles)

    @property
    def limited_by(self) -> str:
        """Which resource the binding floor belongs to."""
        floors = {
            "compute": self.compute_cycles,
            "dram": self.dram_cycles,
            "shared": self.shared_cycles,
        }
        return max(floors, key=lambda name: floors[name])

    def as_dict(self) -> dict[str, object]:
        return {
            "compute_cycles": self.compute_cycles,
            "dram_cycles": self.dram_cycles,
            "shared_cycles": self.shared_cycles,
            "bound_cycles": self.bound_cycles,
            "limited_by": self.limited_by,
        }


def bound_floors(gpu: GpuSpec, resources: WorkloadResources) -> BoundFloors:
    """Eq. 6/8/9 floors of ``resources`` converted to simulated-SM cycles.

    One simulated SM owns ``1/sm_count`` of every whole-GPU rate, so the
    whole-GPU bound times scale by ``f_shader × sm_count`` to become cycles
    of a single SM executing the entire grid — exactly what
    :func:`repro.kernels.run_workload` simulates.
    """
    bound = analyse_workload_bound(resources, gpu)
    cycles_per_second = gpu.clocks.shader_mhz * 1e6 * gpu.sm_count
    return BoundFloors(
        compute_cycles=bound.compute_time_s * cycles_per_second,
        dram_cycles=bound.dram_time_s * cycles_per_second,
        shared_cycles=bound.shared_time_s * cycles_per_second,
    )


@dataclass(frozen=True)
class GapReport:
    """Achieved-vs-bound decomposition of one profiled run.

    ``gap_terms`` decomposes ``gap_cycles`` exactly: the issue term is the
    busy cycles in excess of the binding floor (negative when stalls overlap
    a non-compute floor), and each stall term is that reason's exhaustively
    attributed idle cycles.
    """

    label: str
    gpu_name: str
    achieved_cycles: float
    floors: BoundFloors
    bound: WorkloadBound
    busy_cycles: float
    stall_cycles: dict[str, float]

    @property
    def gap_cycles(self) -> float:
        """Cycles lost to the binding floor (achieved minus bound)."""
        return self.achieved_cycles - self.floors.bound_cycles

    @property
    def gap_fraction(self) -> float:
        """Gap as a fraction of the bound (0.25 = 25% over the bound)."""
        if self.floors.bound_cycles <= 0:
            return 0.0
        return self.gap_cycles / self.floors.bound_cycles

    @property
    def bound_efficiency(self) -> float:
        """Achieved fraction of the workload's own bound (not the GPU peak)."""
        if self.achieved_cycles <= 0:
            return 0.0
        return self.floors.bound_cycles / self.achieved_cycles

    @property
    def gap_terms(self) -> list[tuple[str, float]]:
        """The exact decomposition of ``gap_cycles``, largest term first."""
        terms = [("issue_above_bound", self.busy_cycles - self.floors.bound_cycles)]
        terms.extend(
            (f"stall:{reason}", self.stall_cycles.get(reason, 0.0))
            for reason in STALL_REASONS
        )
        return sorted(terms, key=lambda term: -term[1])

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view."""
        return {
            "label": self.label,
            "gpu": self.gpu_name,
            "achieved_cycles": self.achieved_cycles,
            "floors": self.floors.as_dict(),
            "busy_cycles": self.busy_cycles,
            "stall_cycles": dict(self.stall_cycles),
            "gap_cycles": self.gap_cycles,
            "gap_fraction": self.gap_fraction,
            "bound_efficiency": self.bound_efficiency,
            "gap_terms": [{"term": name, "cycles": value} for name, value in self.gap_terms],
            "potential_gflops": self.bound.potential_gflops,
        }


def attribute_gap(
    gpu: GpuSpec,
    resources: WorkloadResources,
    rollup: ProfileRollup,
    *,
    label: str = "",
) -> GapReport:
    """Join a profiled run's rollup against the workload's analytic floors.

    ``rollup`` must come from a run whose simulated work matches
    ``resources`` (the full grid for whole-problem resources) — otherwise
    the floors and the achieved cycles price different amounts of work.
    """
    return GapReport(
        label=label,
        gpu_name=gpu.name,
        achieved_cycles=rollup.total_cycles,
        floors=bound_floors(gpu, resources),
        bound=analyse_workload_bound(resources, gpu),
        busy_cycles=rollup.issue_cycle_total,
        stall_cycles=rollup.stall_cycle_totals,
    )


def format_gap(report: GapReport) -> str:
    """Render a gap report as aligned text."""
    floors = report.floors
    lines = [
        f"bound-gap attribution — {report.label or 'kernel'} on {report.gpu_name}",
        f"  achieved: {report.achieved_cycles:12.0f} cycles "
        f"({100.0 * report.bound_efficiency:.1f}% of bound)",
        f"  bound:    {floors.bound_cycles:12.0f} cycles  (limited by {floors.limited_by})",
        f"    compute floor: {floors.compute_cycles:12.0f}",
        f"    dram floor:    {floors.dram_cycles:12.0f}",
        f"    shared floor:  {floors.shared_cycles:12.0f}",
        f"  gap:      {report.gap_cycles:12.0f} cycles ({100.0 * report.gap_fraction:+.1f}%)",
    ]
    for name, cycles in report.gap_terms:
        if cycles == 0.0:
            continue
        lines.append(f"    {name:24s} {cycles:12.0f}")
    return "\n".join(lines)
