"""Profile orchestration: simulate with counters, roll up, attribute the gap.

Two entry points mirror the repo's two simulation harnesses:

* :func:`profile_workload` — the full-grid *functional* run of a registry
  workload (:func:`repro.kernels.run_workload` with ``collect_profile``),
  rolled up by provenance and joined against the workload's analytic bound;
* :func:`profile_kernel` — the cheap single-block *timing* profile of any
  assembled kernel (the autotuner's evaluation primitive with counters on),
  rollup only — a raw kernel carries no resource declaration to bound.

Both return a :class:`KernelProfile`; :func:`format_profile` renders it as
the per-schedule-primitive breakdown ``scripts/profile_kernel.py`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.arch.specs import GpuSpec
from repro.isa.assembler import Kernel
from repro.prof.report import GapReport, attribute_gap, format_gap
from repro.prof.rollup import ProfileRollup, rollup_by_provenance
from repro.prof.trace import trace_span
from repro.sim.results import SimResult

__all__ = ["KernelProfile", "profile_kernel", "profile_workload", "format_profile"]


@dataclass(frozen=True)
class KernelProfile:
    """One profiled simulation: counters rolled up by provenance, plus context.

    ``gap`` is populated when the profiled work has a resource declaration to
    bound (workload profiles); raw kernel profiles carry None.
    """

    label: str
    gpu_name: str
    kernel: Kernel
    result: SimResult
    rollup: ProfileRollup
    gap: GapReport | None = None

    @property
    def cycles(self) -> float:
        """Simulated cycles of the profiled run."""
        return self.result.cycles

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view (the ``--json`` payload of the CLI)."""
        payload: dict[str, object] = {
            "label": self.label,
            "gpu": self.gpu_name,
            "kernel": self.kernel.name,
            "instructions": self.kernel.instruction_count,
            "registers": self.kernel.register_count,
            "cycles": self.result.cycles,
            "warp_instructions": self.result.warp_instructions,
            "flops": self.result.flops,
            "stalls": self.result.stalls.as_dict(),
            "rollup": self.rollup.as_dict(),
        }
        if self.gap is not None:
            payload["gap"] = self.gap.as_dict()
        return payload


def profile_workload(
    gpu: GpuSpec,
    workload_name: str,
    config: Any = None,
    *,
    optimized: bool = True,
    seed: int = 0,
    validate: bool = True,
    max_cycles: int = 20_000_000,
    depth: int | None = None,
) -> KernelProfile:
    """Functionally simulate one registry workload with full attribution.

    Runs every block of the grid on one simulated SM (so the achieved cycles
    and the workload's whole-problem resources price the same work), rolls
    the counters up by provenance tag and attributes the achieved-vs-bound
    gap.  ``depth`` truncates provenance tags (see
    :func:`repro.prof.rollup.rollup_by_provenance`).
    """
    from repro.kernels.base import run_workload
    from repro.kernels.registry import get_workload

    workload = get_workload(workload_name)
    if config is None:
        config = workload.default_config()
    label = f"{workload_name}:{'pipeline' if optimized else 'naive'}"
    with trace_span(f"profile.{label}", category="prof", gpu=gpu.name) as span:
        run = run_workload(
            gpu,
            workload,
            config,
            optimized=optimized,
            seed=seed,
            validate=validate,
            max_cycles=max_cycles,
            collect_profile=True,
        )
        assert run.result.counters is not None
        rollup = rollup_by_provenance(
            run.kernel, run.result.counters, total_cycles=run.result.cycles, depth=depth
        )
        gap = attribute_gap(gpu, workload.resources(config), rollup, label=label)
        span["cycles"] = run.result.cycles
        span["attributed_fraction"] = rollup.attributed_fraction
    return KernelProfile(
        label=label,
        gpu_name=gpu.name,
        kernel=run.kernel,
        result=run.result,
        rollup=rollup,
        gap=gap,
    )


def profile_kernel(
    gpu: GpuSpec,
    kernel: Kernel,
    *,
    max_cycles: int = 2_000_000,
    depth: int | None = None,
) -> KernelProfile:
    """Single-block timing profile of an assembled kernel (no bound join)."""
    from repro.opt.autotune import simulate_one_block

    with trace_span(f"profile.{kernel.name}", category="prof", gpu=gpu.name) as span:
        result = simulate_one_block(
            gpu, kernel, max_cycles=max_cycles, collect_profile=True
        )
        assert result.counters is not None
        rollup = rollup_by_provenance(
            kernel, result.counters, total_cycles=result.cycles, depth=depth
        )
        span["cycles"] = result.cycles
    return KernelProfile(
        label=kernel.name,
        gpu_name=gpu.name,
        kernel=kernel,
        result=result,
        rollup=rollup,
    )


def format_profile(profile: KernelProfile) -> str:
    """Render the per-provenance breakdown (and gap, if any) as text."""
    rollup = profile.rollup
    header = (
        f"{'provenance':44s} {'cycles':>9s} {'%tot':>6s} {'issues':>7s} "
        f"{'busy':>9s} {'stalled':>9s} {'top stall':>17s} {'replays':>7s} {'dram':>10s}"
    )
    lines = [
        f"profile — {profile.label} on {profile.gpu_name}: "
        f"{profile.cycles:.0f} cycles, "
        f"{100.0 * rollup.attributed_fraction:.1f}% attributed",
        header,
        "-" * len(header),
    ]
    for row in rollup.rows:
        fraction = row.cycles / rollup.total_cycles if rollup.total_cycles else 0.0
        dominant = row.dominant_stall
        top_stall = (
            f"{dominant} {100.0 * row.stall_cycles[dominant] / row.cycles:.0f}%"
            if dominant is not None and row.cycles > 0
            else "-"
        )
        lines.append(
            f"{row.tag:44s} {row.cycles:9.0f} {100.0 * fraction:6.1f} "
            f"{row.issues:7d} {row.issue_cycles:9.0f} {row.total_stall_cycles:9.0f} "
            f"{top_stall:>17s} {row.smem_replays:7d} {row.dram_bytes:10d}"
        )
    if profile.gap is not None:
        lines.append("")
        lines.append(format_gap(profile.gap))
    return "\n".join(lines)
