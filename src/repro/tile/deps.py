"""Dependence analysis: the legality core behind every scheduling primitive.

Every question a scheduling primitive asks — "may these loops interchange?",
"may this loop fission?", "is this subtree safe to batch-unroll?" — reduces
to one analysis: for every pair of accesses to the same tensor where at least
one access writes, which *iteration distances* can separate the two accesses?

The engine computes, per statement pair, a **dependence distance vector**
over the loops enclosing both accesses.  Accesses are affine, extents are
concrete integers, so each tensor dimension yields one linear equation over
the per-loop distances ``δ_v`` (and over "free" variables: loops enclosing
only one side, and the synthetic window coordinates of ``Stage``/``Unstage``
bulk copies).  The solver runs interval-constraint propagation with a GCD
feasibility test:

* an infeasible system (0 excluded from the attainable range, or the GCD of
  the coefficients not dividing the constant) proves *independence* — no
  dependence is recorded;
* a distance whose interval collapses to a point is **exact** (the classic
  constant-distance entry);
* anything else stays in the conservative **unknown** lattice element ``*``
  (rendered so in diagnostics), optionally with a provable sign.

Non-affine constructs never reach the solver — the IR is affine by
construction — but the same lattice discipline applies wherever the solver
cannot pin a distance: primitives must treat ``*`` as "any distance,
including the hostile one".  Guards are *ignored* (the analysis
over-approximates the guarded iteration space), which is conservative for
every transformation the primitives perform.

The primitive-facing checks (:func:`check_reorder`, :func:`check_fission`,
:func:`check_unroll`) return the *blocking* :class:`Dependence` (or ``None``
when the rewrite is legal), so a rejection can name the exact dependence in
its :class:`~repro.errors.ScheduleError`.

>>> from repro.tile import library
>>> from repro.tile.deps import dependences
>>> for dep in dependences(library.matmul_proc(m=2, n=2, k=2)):
...     print(dep.describe())
flow dependence on 'C' at distance (i: 0, j: 0): 'C[i, j] = 0.0' -> 'C[i, j] += (A[i, k] * B[k, j])'
output dependence on 'C' at distance (i: 0, j: 0): 'C[i, j] = 0.0' -> 'C[i, j] += (A[i, k] * B[k, j])'
anti dependence on 'C' at distance (i: 0, j: 0, k: *): 'C[i, j] += (A[i, k] * B[k, j])' -> 'C[i, j] += (A[i, k] * B[k, j])'
output dependence on 'C' at distance (i: 0, j: 0, k: *): 'C[i, j] += (A[i, k] * B[k, j])' -> 'C[i, j] += (A[i, k] * B[k, j])'
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

from repro.tile.ir import (
    Affine,
    Assign,
    Guard,
    Loop,
    Proc,
    Stage,
    Stmt,
    Unstage,
    expr_reads,
)

__all__ = [
    "Access",
    "Dependence",
    "collect_accesses",
    "dependences",
    "solve_pair",
    "check_reorder",
    "check_fission",
    "check_unroll",
    "check_double_buffer",
]


# --------------------------------------------------------------------------- #
# Accesses.                                                                    #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Access:
    """One tensor access site with its full static context.

    ``loops`` is the stack of enclosing loop variables (outer → inner);
    ``free`` holds synthetic window coordinates (``Stage``/``Unstage`` walk a
    whole window per execution) with their extents.  ``implicit`` marks the
    read half of an accumulating ``+=`` — it is performed *inside* the
    instruction, so it can never be hoisted apart from its write (the
    batching hazard check exploits this).
    """

    tensor: str
    index: tuple[Affine, ...]
    is_write: bool
    position: int
    loops: tuple[str, ...]
    guards: tuple[tuple[Affine, int], ...] = ()
    free: tuple[tuple[str, int], ...] = ()
    implicit: bool = False
    stmt: str = ""

    def describe(self) -> str:
        return self.stmt or f"{self.tensor}[{', '.join(str(i) for i in self.index)}]"


def collect_accesses(
    stmts: tuple[Stmt, ...],
    *,
    base_loops: tuple[str, ...] = (),
    base_guards: tuple[tuple[Affine, int], ...] = (),
    counter_start: int = 0,
) -> list[Access]:
    """Every access in ``stmts``, with loop/guard context and textual order."""
    found: list[Access] = []
    counter = [counter_start]
    window = [0]

    def fresh_window(extent: int) -> tuple[str, int]:
        window[0] += 1
        return (f"%w{window[0]}", extent)

    def add(tensor: str, index: tuple[Affine, ...], is_write: bool,
            loops: tuple[str, ...], guards, free=(), implicit=False,
            stmt: str = "") -> None:
        found.append(
            Access(
                tensor=tensor,
                index=index,
                is_write=is_write,
                position=counter[0],
                loops=loops,
                guards=tuple(guards),
                free=tuple(free),
                implicit=implicit,
                stmt=stmt,
            )
        )
        counter[0] += 1

    def visit(stmts_: tuple[Stmt, ...], loops: tuple[str, ...], guards) -> None:
        for stmt in stmts_:
            if isinstance(stmt, Loop):
                visit(stmt.body, loops + (stmt.var,), guards)
            elif isinstance(stmt, Guard):
                visit(stmt.body, loops, guards + ((stmt.expr, stmt.bound),))
            elif isinstance(stmt, Assign):
                text = str(stmt)
                for r in expr_reads(stmt.value):
                    add(r.tensor, r.index, False, loops, guards, stmt=text)
                if stmt.accumulate:
                    add(stmt.tensor, stmt.index, False, loops, guards,
                        implicit=True, stmt=text)
                add(stmt.tensor, stmt.index, True, loops, guards, stmt=text)
            elif isinstance(stmt, Stage):
                text = str(stmt)
                coords = [fresh_window(size) for size in stmt.sizes]
                src_index = list(stmt.base)
                buf_index = []
                for buffer_dim, tensor_dim in enumerate(stmt.axes):
                    name, _ = coords[buffer_dim]
                    src_index[tensor_dim] = src_index[tensor_dim] + Affine.var(name)
                    buf_index.append(Affine.var(name))
                add(stmt.tensor, tuple(src_index), False, loops, guards,
                    free=coords, stmt=text)
                add(stmt.buffer, tuple(buf_index), True, loops, guards,
                    free=coords, stmt=text)
            elif isinstance(stmt, Unstage):
                text = str(stmt)
                coords = [fresh_window(size) for size in stmt.sizes]
                dst_index = tuple(
                    base + Affine.var(coords[d][0]) for d, base in enumerate(stmt.base)
                )
                add(stmt.buffer, (Affine.constant(0),), False, loops, guards,
                    free=coords, stmt=text)
                add(stmt.tensor, dst_index, True, loops, guards,
                    free=coords, stmt=text)

    visit(stmts, base_loops, base_guards)
    return found


# --------------------------------------------------------------------------- #
# Dependences and the distance solver.                                         #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Dependence:
    """A may-dependence between two accesses of the same tensor.

    ``loops`` are the loops enclosing both accesses (outer → inner);
    ``ranges`` bounds the per-loop iteration distance ``sink − source``; an
    entry that collapses to one value is an exact distance, anything wider is
    the conservative unknown ``*``.  ``source`` is always the textually
    earlier access.
    """

    kind: str  # "flow" | "anti" | "output"
    tensor: str
    source: Access
    sink: Access
    loops: tuple[str, ...]
    ranges: tuple[tuple[int, int], ...]

    @property
    def distance(self) -> tuple[int | None, ...]:
        """Exact per-loop distances (``None`` = unknown)."""
        return tuple(lo if lo == hi else None for lo, hi in self.ranges)

    def range_of(self, var: str) -> tuple[int, int] | None:
        """The distance interval of ``var`` (``None`` when not a common loop)."""
        for name, bounds in zip(self.loops, self.ranges):
            if name == var:
                return bounds
        return None

    def distance_str(self) -> str:
        parts = []
        for var, (lo, hi) in zip(self.loops, self.ranges):
            parts.append(f"{var}: {lo}" if lo == hi else f"{var}: *")
        return "(" + ", ".join(parts) + ")"

    def describe(self) -> str:
        source, sink = self.source.describe(), self.sink.describe()
        return (
            f"{self.kind} dependence on '{self.tensor}' at distance "
            f"{self.distance_str()}: '{source}' -> '{sink}'"
        )


def _classify(source: Access, sink: Access) -> str:
    if source.is_write and sink.is_write:
        return "output"
    return "flow" if source.is_write else "anti"


def _common_prefix(a: tuple[str, ...], b: tuple[str, ...]) -> tuple[str, ...]:
    common: list[str] = []
    for x, y in zip(a, b):
        if x != y:
            break
        common.append(x)
    return tuple(common)


def _tighten(
    equations: list[tuple[dict[str, int], int]],
    bounds: dict[str, tuple[int, int]],
) -> dict[str, tuple[int, int]] | None:
    """Interval-constraint propagation over ``Σ coeff·var + const == 0``.

    Returns tightened bounds, or ``None`` when the system is infeasible
    (which proves independence).
    """
    # The live-coefficient sets and divisibility screen are invariant across
    # propagation passes — hoist them out of the fixed-point loop.
    prepared: list[tuple[dict[str, int], int]] = []
    for coeffs, const in equations:
        live = {v: c for v, c in coeffs.items() if c != 0}
        if not live:
            if const != 0:
                return None
            continue
        divisor = 0
        for c in live.values():
            divisor = gcd(divisor, abs(c))
        if divisor and const % divisor:
            return None
        prepared.append((live, const))

    for _ in range(64):
        changed = False
        for live, const in prepared:
            lo = hi = const
            for var, c in live.items():
                vlo, vhi = bounds[var]
                lo += min(c * vlo, c * vhi)
                hi += max(c * vlo, c * vhi)
            if lo > 0 or hi < 0:
                return None
            for var, c in live.items():
                vlo, vhi = bounds[var]
                rest_lo = lo - min(c * vlo, c * vhi)
                rest_hi = hi - max(c * vlo, c * vhi)
                # c·var must equal -(rest) for some rest in [rest_lo, rest_hi].
                new_lo, new_hi = _solve_interval(c, rest_lo, rest_hi)
                if new_lo > vlo:
                    vlo, changed = new_lo, True
                if new_hi < vhi:
                    vhi, changed = new_hi, True
                if vlo > vhi:
                    return None
                bounds[var] = (vlo, vhi)
        if not changed:
            return bounds
    return bounds


def _solve_interval(coeff: int, rest_lo: int, rest_hi: int) -> tuple[int, int]:
    """Integer ``var`` range satisfying ``coeff·var + rest == 0`` for some
    ``rest`` in ``[rest_lo, rest_hi]`` — i.e. ``coeff·var ∈ [-rest_hi, -rest_lo]``."""
    lo_num, hi_num = -rest_hi, -rest_lo
    if coeff < 0:
        coeff, lo_num, hi_num = -coeff, -hi_num, -lo_num
    # var >= lo_num / coeff (ceil), var <= hi_num / coeff (floor)
    lo = -((-lo_num) // coeff)
    hi = hi_num // coeff
    return lo, hi


def solve_pair(
    a: Access, b: Access, extents: dict[str, int]
) -> Dependence | None:
    """The dependence between ``a`` and ``b``, or ``None`` when independent.

    ``a`` must be the textually earlier access; the distance is the iteration
    of ``b`` minus the iteration of ``a`` over their common loops.
    """
    if a.tensor != b.tensor or not (a.is_write or b.is_write):
        return None
    common = _common_prefix(a.loops, b.loops)
    if len(a.index) != len(b.index):
        # Rank mismatch (a collapsed register buffer against its full-rank
        # bulk copy): no equations to solve — assume every distance.
        return Dependence(
            kind=_classify(a, b),
            tensor=a.tensor,
            source=a,
            sink=b,
            loops=common,
            ranges=tuple(
                (-(extents[v] - 1), extents[v] - 1) for v in common
            ),
        )
    bounds: dict[str, tuple[int, int]] = {}
    for var in common:
        span = extents[var] - 1
        bounds[f"δ{var}"] = (-span, span)
    free_ranges: dict[str, int] = {}
    for side, access in (("a", a), ("b", b)):
        for var in access.loops[len(common):]:
            free_ranges[f"{side}.{var}"] = extents[var]
        for var, extent in access.free:
            free_ranges[f"{side}.{var}"] = extent
    for name, extent in free_ranges.items():
        bounds[name] = (0, extent - 1)

    equations: list[tuple[dict[str, int], int]] = []
    for dim in range(len(a.index)):
        ia, ib = a.index[dim], b.index[dim]
        coeffs: dict[str, int] = {}
        const = ib.const - ia.const
        for var in common:
            ca, cb = ia.coeff(var), ib.coeff(var)
            if cb:
                coeffs[f"δ{var}"] = coeffs.get(f"δ{var}", 0) + cb
            if cb != ca:
                # The absolute iteration matters: treat it as a free value.
                name = f"v.{var}"
                bounds.setdefault(name, (0, extents[var] - 1))
                coeffs[name] = coeffs.get(name, 0) + (cb - ca)
        handled = set(common)
        for var in ia.vars() - handled:
            key = f"a.{var}"
            if key not in bounds:  # pragma: no cover - defensive
                bounds[key] = (0, extents.get(var, 1) - 1)
            coeffs[key] = coeffs.get(key, 0) - ia.coeff(var)
        for var in ib.vars() - handled:
            key = f"b.{var}"
            if key not in bounds:  # pragma: no cover - defensive
                bounds[key] = (0, extents.get(var, 1) - 1)
            coeffs[key] = coeffs.get(key, 0) + ib.coeff(var)
        equations.append((coeffs, const))

    solved = _tighten(equations, bounds)
    if solved is None:
        return None
    ranges = tuple(solved[f"δ{var}"] for var in common)
    if a.position == b.position and all(lo == hi == 0 for lo, hi in ranges):
        return None  # an access trivially "depends" on its own instance
    return Dependence(
        kind=_classify(a, b),
        tensor=a.tensor,
        source=a,
        sink=b,
        loops=common,
        ranges=ranges,
    )


def _pairwise(
    group_a: list[Access],
    group_b: list[Access],
    extents: dict[str, int],
) -> list[Dependence]:
    """Dependences between two textual groups (``group_a`` earlier)."""
    found: list[Dependence] = []
    for a in group_a:
        for b in group_b:
            dep = solve_pair(a, b, extents)
            if dep is not None:
                found.append(dep)
    return found


def dependences(proc: Proc, *, tensor: str | None = None) -> list[Dependence]:
    """All may-dependences of ``proc`` (optionally restricted to ``tensor``).

    Pairs are oriented textually (source first); self-pairs of one statement
    across iterations are included — the accumulation chain of a ``+=`` shows
    up as the classic ``(0, ..., *)`` flow/output pair on its own statement.
    """
    extents = {var: loop.extent for var, loop in proc.loops().items()}
    accesses = collect_accesses(proc.body)
    if tensor is not None:
        accesses = [a for a in accesses if a.tensor == tensor]
    found: list[Dependence] = []
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            dep = solve_pair(a, b, extents)
            if dep is not None:
                found.append(dep)
    return found


# --------------------------------------------------------------------------- #
# Primitive-facing legality checks.                                            #
# --------------------------------------------------------------------------- #


def _carried_outside(dep: Dependence, var: str) -> bool:
    """Whether an exact non-zero distance on a loop outside ``var`` fixes the
    execution order of every instance pair regardless of inner interchanges."""
    for name, (lo, hi) in zip(dep.loops, dep.ranges):
        if name == var:
            return False
        if lo == hi and lo != 0:
            return True
    return False


def check_reorder(proc: Proc, outer: str, inner: str) -> Dependence | None:
    """The dependence blocking ``reorder(outer, inner)``, or ``None``.

    Interchange reverses the execution order exactly of instance pairs whose
    distances on ``(outer, inner)`` have strictly opposite signs; a
    dependence is blocking unless that sign pattern is provably impossible.
    """
    extents = {var: loop.extent for var, loop in proc.loops().items()}
    accesses = collect_accesses(proc.body)
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if a.tensor != b.tensor or not (a.is_write or b.is_write):
                continue
            dep = solve_pair(a, b, extents)
            if dep is None:
                continue
            d_outer, d_inner = dep.range_of(outer), dep.range_of(inner)
            if d_outer is None or d_inner is None:
                continue  # not carried by this pair of loops
            if _carried_outside(dep, outer):
                continue
            olo, ohi = d_outer
            ilo, ihi = d_inner
            if olo == ohi == 0 or ilo == ihi == 0:
                continue
            if (olo >= 0 and ilo >= 0) or (ohi <= 0 and ihi <= 0):
                continue
            return dep
    return None


def check_fission(
    proc: Proc,
    loop: Loop,
    first: tuple[Stmt, ...],
    second: tuple[Stmt, ...],
    *,
    path: tuple[str, ...],
    guards: tuple[tuple[Affine, int], ...] = (),
) -> Dependence | None:
    """The dependence blocking ``fission`` of ``loop`` into the two groups.

    Fission runs all iterations of ``first`` before any iteration of
    ``second``; that reverses exactly the instance pairs where a ``second``
    statement at iteration *i* precedes a ``first`` statement at iteration
    *j > i* — i.e. a cross-group dependence with a possibly *negative*
    distance on the fissioned loop.
    """
    extents = {var: inner.extent for var, inner in proc.loops().items()}
    base = path + (loop.var,)
    group_a = collect_accesses(first, base_loops=base, base_guards=guards)
    group_b = collect_accesses(
        second, base_loops=base, base_guards=guards,
        counter_start=len(group_a),
    )
    for dep in _pairwise(group_a, group_b, extents):
        interval = dep.range_of(loop.var)
        if interval is None:  # pragma: no cover - loop.var always common
            return dep
        if interval[0] < 0:
            return dep
    return None


def check_double_buffer(
    proc: Proc, loop: Loop, stage: Stage, *, path: tuple[str, ...]
) -> Dependence | None:
    """The dependence blocking ``double_buffer`` of ``stage`` in ``loop``.

    Double buffering commits the lowering to *prefetching*: the staged window
    of iteration ``i`` is read from global memory during iteration ``i − 1``
    (the loads land in the inactive tile while the compute still reads the
    active one).  That is only sound when no value the window reads is
    produced too late: a cross-iteration flow from a write inside the loop
    into the staged window must have an **exact** distance of at least 2
    iterations — distance 1 means the producing write and the prefetching
    read share an iteration, and an unknown (``*``) distance may hide exactly
    that case, so both are rejected.  Same-iteration writes after the stage
    (``δ = 0`` anti direction) are harmless: the stage semantically reads the
    pre-write value, and the prefetch reads it even earlier.

    ``stage_shared`` never creates this situation (it requires the staged
    tensor to be read-only inside the loop), so schedules built from the
    primitives always pass; the check guards hand-constructed IR.
    """
    extents = {var: inner.extent for var, inner in proc.loops().items()}
    accesses = collect_accesses(loop.body, base_loops=path + (loop.var,))
    stage_text = str(stage)
    window_reads = [
        a for a in accesses
        if a.tensor == stage.tensor and not a.is_write and a.stmt == stage_text
    ]
    writes = [a for a in accesses if a.tensor == stage.tensor and a.is_write]
    for read in window_reads:
        for write in writes:
            a, b = (read, write) if read.position <= write.position else (write, read)
            dep = solve_pair(a, b, extents)
            if dep is None:
                continue
            interval = dep.range_of(loop.var)
            if interval is None:  # pragma: no cover - loop.var always common
                return dep
            lo, hi = interval
            if a is read:
                # δ = write iter − read iter; the write feeds the window when
                # δ ≤ −1, and the prefetch honors only δ ≤ −2.
                if lo <= -1 <= hi:
                    return dep
            else:
                # Write textually before the stage: it feeds the window at
                # δ ≥ 0, but the prefetch reads one iteration early, so δ of
                # 0 or 1 both land after the load was issued.
                if lo <= 1 and hi >= 0:
                    return dep
    return None


def check_unroll(proc: Proc, loop: Loop, *, path: tuple[str, ...]) -> Dependence | None:
    """The dependence blocking full unrolling of ``loop``.

    The lowering emits unrolled subtrees batch-wise: every (explicit) operand
    read of the batch is hoisted ahead of the batch's arithmetic and stores.
    That is only sound when no *memory* value written inside the batch is
    also read inside it — a flow dependence through a non-register tensor
    whose distance on every loop *outside* the subtree can be zero (register
    buffers resolve to registers, and the implicit read of a ``+=`` happens
    inside its own instruction; neither is hoisted).
    """
    extents = {var: inner.extent for var, inner in proc.loops().items()}
    outside = set(path)
    accesses = collect_accesses(loop.body, base_loops=path + (loop.var,))
    writes = [
        a for a in accesses
        if a.is_write and not (
            proc.is_buffer(a.tensor) and proc.buffer(a.tensor).memory == "register"
        )
    ]
    reads = [
        a for a in accesses
        if not a.is_write and not a.implicit and not (
            proc.is_buffer(a.tensor) and proc.buffer(a.tensor).memory == "register"
        )
    ]
    for w in writes:
        for r in reads:
            a, b = (w, r) if w.position <= r.position else (r, w)
            dep = solve_pair(a, b, extents)
            if dep is None:
                continue
            hoistable = True
            for name, (lo, hi) in zip(dep.loops, dep.ranges):
                if name in outside and not (lo <= 0 <= hi):
                    hoistable = False  # carried strictly outside the batch
                    break
            if hoistable:
                return dep
    return None
