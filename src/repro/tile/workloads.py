"""Tile-IR workloads: DSL kernels registered in :mod:`repro.kernels`.

Each workload here is the registry face of one :mod:`repro.tile.library`
kernel: the *naive* variant is the scheduled proc lowered to SASS in program
order with sequential registers (the optimization pipeline's input, like
every other workload's ``generate_naive``), and the *optimized* variant is
that kernel pushed through :mod:`repro.opt`.  The schedule parameters live in
the workload configuration, which is what lets the autotuner sweep schedules
(tile sizes, register blocking, staging and pipelining choices) exactly the
way it sweeps the hand generators' knobs.

The hand-written generators (``sgemm``, ``transpose``, ``sgemv``) stay
registered as golden references; the equivalence tests in
``tests/tile/test_equivalence.py`` pin the DSL kernels to them bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import TileError
from repro.isa.assembler import Kernel
from repro.kernels.base import Workload, WorkloadLaunch
from repro.kernels.registry import register_workload
from repro.model.workload_bounds import WorkloadResources
from repro.sim.launch import BlockGrid
from repro.sim.memory import GlobalMemory, KernelParams
from repro.telemetry.metrics import counter_inc
from repro.tile import library
from repro.tile.interp import interpret
from repro.tile.ir import Proc
from repro.tile.lower import launch_geometry, lower
from repro.tile.resources import proc_resources


#: Memoized schedule applications and lowerings, keyed by *schedule hash* —
#: the (workload, frozen config) pair identifies the schedule point exactly.
#: Procs and kernels are immutable, so the sweep machinery (bound pruning,
#: candidate generation, benchmarks) can re-request the same point without
#: re-running ~30 primitive applications and a full lowering each time.
#: Capped FIFO so a long sweep cannot grow memory without bound.
_SCHEDULE_CACHE_LIMIT = 256
_SCHEDULED_PROCS: dict[tuple[str, object], Proc] = {}
_LOWERED_KERNELS: dict[tuple[str, object], Kernel] = {}

#: Metrics-facade label sets of the two memo caches (constant tuples, so the
#: uninstalled facade path allocates nothing at these call sites).
_SCHEDULED_LABELS = (("cache", "scheduled_procs"),)
_LOWERED_LABELS = (("cache", "lowered_kernels"),)

#: Label set of the durable kernel-store tier behind the memos.
_BUILD_LABELS = (("kind", "build"),)


def _durable_store():
    """The installed :class:`repro.kcache.store.KernelStore`, or None.

    The memos sit in front of the durable store: a memo miss consults the
    store before rebuilding, and every build is published back, so a *new
    process* starts warm.  Without an installed store the memos behave
    exactly as before (imported lazily — the kcache layer sits above tile).
    """
    from repro.kcache.store import current_store

    return current_store()


def _store_publish(store, key: str, **kwargs) -> None:
    """Best-effort durable publish of one memo-tier build.

    The memos are caches in front of a cache: a publish that cannot land
    (read-only or failing store, injected fault) costs the *next* process a
    rebuild, never this one its result — so failures become a counter, not
    an exception.
    """
    try:
        store.put(key, **kwargs)
    except OSError:
        counter_inc("kcache.memo.publish_errors", 1)


def _cache_put(cache: dict, key, value, labels):
    if len(cache) >= _SCHEDULE_CACHE_LIMIT:
        cache.pop(next(iter(cache)))
        counter_inc("tile.schedule_cache.evictions", 1, labels)
    cache[key] = value
    return value


def clear_schedule_caches() -> None:
    """Drop both memo caches (tests isolating cache-economics measurements)."""
    _SCHEDULED_PROCS.clear()
    _LOWERED_KERNELS.clear()


class TileWorkload(Workload):
    """Shared machinery: proc → schedule → lowering → launch plumbing.

    Subclasses supply :meth:`naive_proc`, :meth:`scheduled_proc`,
    :meth:`prepare_inputs` and :meth:`reference`; launch building, output
    read-back and the upper-bound :meth:`resources` are generic because the
    proc itself names its parameters (in ABI order), its outputs and — by
    walking the nest — its traffic.
    """

    def naive_proc(self, config) -> Proc:
        """The unscheduled loop nest (the semantic oracle)."""
        raise NotImplementedError

    def scheduled_proc(self, config) -> Proc:
        """The golden schedule applied to the naive proc."""
        raise NotImplementedError

    def _build_key(self, config) -> str:
        """The GPU-independent routine key of this schedule point's artifacts."""
        from repro.kcache.keys import routine_key

        return routine_key(self.name, config, None)

    def cached_scheduled_proc(self, config) -> Proc:
        """The scheduled proc, memoized by schedule hash and durably stored."""
        key = (self.name, config)
        proc = _SCHEDULED_PROCS.get(key)
        if proc is not None:
            counter_inc("tile.schedule_cache.hits", 1, _SCHEDULED_LABELS)
            return proc
        counter_inc("tile.schedule_cache.misses", 1, _SCHEDULED_LABELS)
        store = _durable_store()
        if store is not None:
            entry = store.load(self._build_key(config))
            if entry is not None and "proc" in entry.artifacts:
                counter_inc("kcache.hits", 1, _BUILD_LABELS)
                return _cache_put(
                    _SCHEDULED_PROCS, key, entry.artifacts["proc"], _SCHEDULED_LABELS
                )
            counter_inc("kcache.misses", 1, _BUILD_LABELS)
        proc = _cache_put(
            _SCHEDULED_PROCS, key, self.scheduled_proc(config), _SCHEDULED_LABELS
        )
        if store is not None:
            _store_publish(
                store,
                self._build_key(config),
                kind="build",
                artifacts={"proc": proc},
                workload=self.name,
                gpu="any",
                config=config,
            )
        return proc

    def lds_width_bits(self, config) -> int:
        return 64

    def ld_width_bits(self, config) -> int:
        return 64

    def generate_naive(self, config) -> Kernel:
        key = (self.name, config)
        kernel = _LOWERED_KERNELS.get(key)
        if kernel is not None:
            counter_inc("tile.schedule_cache.hits", 1, _LOWERED_LABELS)
            return kernel
        counter_inc("tile.schedule_cache.misses", 1, _LOWERED_LABELS)
        store = _durable_store()
        if store is not None:
            entry = store.load(self._build_key(config))
            if entry is not None and "kernel" in entry.artifacts:
                counter_inc("kcache.hits", 1, _BUILD_LABELS)
                if "proc" in entry.artifacts:
                    _SCHEDULED_PROCS.setdefault(key, entry.artifacts["proc"])
                return _cache_put(
                    _LOWERED_KERNELS, key, entry.artifacts["kernel"], _LOWERED_LABELS
                )
            counter_inc("kcache.misses", 1, _BUILD_LABELS)
        proc = self.cached_scheduled_proc(config)
        kernel = _cache_put(_LOWERED_KERNELS, key, lower(
            proc,
            lds_width_bits=self.lds_width_bits(config),
            ld_width_bits=self.ld_width_bits(config),
        ), _LOWERED_LABELS)
        if store is not None:
            _store_publish(
                store,
                self._build_key(config),
                kind="build",
                artifacts={"proc": proc, "kernel": kernel},
                workload=self.name,
                gpu="any",
                config=config,
            )
        return kernel

    def oracle(self, config, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Interpret the *naive* proc on ``inputs`` — the ground truth."""
        return interpret(self.naive_proc(config), inputs)

    def resources(self, config) -> WorkloadResources:
        """Upper-bound inputs derived from the scheduled loop nest itself.

        No hand-derived traffic formulas: :func:`repro.tile.resources
        .proc_resources` counts flops, DRAM and shared traffic off the IR
        (and the tests pin it against the hand workloads' Eq. 6-style
        accounting).
        """
        return proc_resources(self.cached_scheduled_proc(config))

    def build_launch(self, config, inputs: dict[str, np.ndarray]) -> WorkloadLaunch:
        proc = self.cached_scheduled_proc(config)
        outputs = set(proc.outputs())
        memory = GlobalMemory()
        params = KernelParams()
        for param in proc.params:
            if param.name in inputs:
                base = memory.allocate_array(param.name, inputs[param.name])
            else:
                base = memory.allocate(param.name, param.size * 4)
            params.add_pointer(param.name, base)
        if not outputs:
            raise TileError(f"proc '{proc.name}' writes no tensor parameter")
        geometry = launch_geometry(proc)
        grid = BlockGrid(
            grid_x=geometry.grid_x,
            grid_y=geometry.grid_y,
            block_x=geometry.threads_per_block,
        )
        return WorkloadLaunch(memory=memory, params=params, grid=grid)

    def read_output(self, config, memory: GlobalMemory) -> np.ndarray:
        proc = self.cached_scheduled_proc(config)
        (output,) = proc.outputs()
        return memory.read_array(output, np.float32, proc.param(output).shape)


# --------------------------------------------------------------------------- #
# SGEMM.                                                                       #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TileSgemmConfig:
    """One DSL SGEMM schedule point.

    ``m``/``n``/``k`` size the problem — arbitrarily: sizes that are not
    multiples of the tile (or of the staging stride) schedule through
    ``predicate_tail`` guards and lower to clipped staging plus predicated
    epilogue stores.  The rest *is* the schedule: block tile, register
    blocking, staging stride, B-register window, and the
    staging/pipelining/unrolling toggles the autotuner flips.
    """

    m: int = 96
    n: int = 96
    k: int = 16
    tile: int = 96
    register_blocking: int = 6
    stride: int = 16
    b_window: int = 2
    stage: bool = True
    prefetch: bool = True
    unroll_inner: bool = True
    double_buffer: bool = False

    @property
    def kernel_name(self) -> str:
        flags = ("s" if self.stage else "") + ("p" if self.prefetch else "")
        return (
            f"tile_sgemm_b{self.register_blocking}_t{self.tile}_l{self.stride}"
            f"_w{self.b_window}{('_' + flags) if flags != 'sp' else ''}"
            f"{'_db' if self.double_buffer else ''}"
            f"_{self.m}x{self.n}x{self.k}"
        )


class TileSgemmWorkload(TileWorkload):
    """DSL-scheduled SGEMM (golden reference: the ``sgemm`` hand generator)."""

    name = "tile_sgemm"
    description = "SGEMM from the tile IR: split/stage/unroll schedule (SM-bound)"

    def default_config(self) -> TileSgemmConfig:
        return TileSgemmConfig()

    def config_space(self) -> tuple[TileSgemmConfig, ...]:
        return (
            TileSgemmConfig(),
            TileSgemmConfig(b_window=1),
            # An imperfect problem: no dimension is a multiple of the tile,
            # exercising the predicate-tail guards end to end.
            TileSgemmConfig(m=100, n=92, k=20),
        )

    def naive_proc(self, config: TileSgemmConfig) -> Proc:
        return library.matmul_proc(config.m, config.n, config.k)

    def scheduled_proc(self, config: TileSgemmConfig) -> Proc:
        proc = library.schedule_sgemm(
            self.naive_proc(config),
            tile=config.tile,
            register_blocking=config.register_blocking,
            stride=config.stride,
            b_window=config.b_window,
            stage=config.stage,
            prefetch=config.prefetch,
            unroll_inner=config.unroll_inner,
            double_buffer=config.double_buffer,
        )
        return replace(proc, name=config.kernel_name)

    def prepare_inputs(self, config: TileSgemmConfig, seed: int = 0) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            "A": rng.uniform(-1.0, 1.0, (config.m, config.k)).astype(np.float32),
            "B": rng.uniform(-1.0, 1.0, (config.k, config.n)).astype(np.float32),
        }

    def reference(self, config: TileSgemmConfig, inputs: dict[str, np.ndarray]) -> np.ndarray:
        return (inputs["A"] @ inputs["B"]).astype(np.float32)


# --------------------------------------------------------------------------- #
# Transpose.                                                                   #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TileTransposeConfig:
    """One DSL transpose schedule point."""

    m: int = 32
    n: int = 32
    tile: int = 16
    pad: int = 1

    @property
    def kernel_name(self) -> str:
        return f"tile_transpose_t{self.tile}_p{self.pad}_{self.m}x{self.n}"


class TileTransposeWorkload(TileWorkload):
    """DSL-scheduled transpose (golden reference: the hand ``transpose``)."""

    name = "tile_transpose"
    description = "transpose from the tile IR: crosswise-bound padded staging"
    rtol = 0.0
    atol = 0.0

    def default_config(self) -> TileTransposeConfig:
        return TileTransposeConfig()

    def config_space(self) -> tuple[TileTransposeConfig, ...]:
        return (
            TileTransposeConfig(),
            TileTransposeConfig(tile=8),
            TileTransposeConfig(m=29, n=23),
        )

    def naive_proc(self, config: TileTransposeConfig) -> Proc:
        return library.transpose_proc(config.m, config.n)

    def scheduled_proc(self, config: TileTransposeConfig) -> Proc:
        proc = library.schedule_transpose(
            self.naive_proc(config), tile=config.tile, pad=config.pad
        )
        return replace(proc, name=config.kernel_name)

    def prepare_inputs(self, config: TileTransposeConfig, seed: int = 0) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {"in": rng.uniform(-1.0, 1.0, (config.m, config.n)).astype(np.float32)}

    def reference(self, config: TileTransposeConfig, inputs: dict[str, np.ndarray]) -> np.ndarray:
        return np.ascontiguousarray(inputs["in"].T)


# --------------------------------------------------------------------------- #
# SGEMV.                                                                       #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TileSgemvConfig:
    """One DSL SGEMV schedule point."""

    m: int = 64
    k: int = 64
    threads: int = 32
    k_window: int = 2
    stage: bool = True
    prefetch: bool = True

    @property
    def kernel_name(self) -> str:
        flags = ("s" if self.stage else "") + ("p" if self.prefetch else "")
        return (
            f"tile_sgemv_t{self.threads}_w{self.k_window}"
            f"{('_' + flags) if flags != 'sp' else ''}_{self.m}x{self.k}"
        )


class TileSgemvWorkload(TileWorkload):
    """DSL-scheduled SGEMV (golden reference: the hand ``sgemv``)."""

    name = "tile_sgemv"
    description = "SGEMV from the tile IR: staged x tile, pipelined prefetch"

    def lds_width_bits(self, config: TileSgemvConfig) -> int:
        # Pair only the global A stream (the hand generator's wide_loads):
        # pairing the broadcast x loads too would pin both FFMA operands to
        # register pairs, which the bank-conflict recoloring cannot unpick.
        return 32

    def default_config(self) -> TileSgemvConfig:
        return TileSgemvConfig()

    def config_space(self) -> tuple[TileSgemvConfig, ...]:
        return (TileSgemvConfig(), TileSgemvConfig(prefetch=False))

    def naive_proc(self, config: TileSgemvConfig) -> Proc:
        return library.sgemv_proc(config.m, config.k)

    def scheduled_proc(self, config: TileSgemvConfig) -> Proc:
        proc = library.schedule_sgemv(
            self.naive_proc(config),
            threads=config.threads,
            k_window=config.k_window,
            stage=config.stage,
            prefetch=config.prefetch,
        )
        return replace(proc, name=config.kernel_name)

    def prepare_inputs(self, config: TileSgemvConfig, seed: int = 0) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            "A": rng.uniform(-1.0, 1.0, (config.m, config.k)).astype(np.float32),
            "x": rng.uniform(-1.0, 1.0, (config.k,)).astype(np.float32),
        }

    def reference(self, config: TileSgemvConfig, inputs: dict[str, np.ndarray]) -> np.ndarray:
        return (inputs["A"] @ inputs["x"]).astype(np.float32)


TILE_SGEMM = register_workload(TileSgemmWorkload())
TILE_TRANSPOSE = register_workload(TileTransposeWorkload())
TILE_SGEMV = register_workload(TileSgemvWorkload())
