"""Generative schedule-space autotuning for tile-IR workloads.

The tile workloads encode their *schedule* in the workload configuration
(tile sizes, register blocking, staging stride, B-register window, staging
and pipelining toggles), so sweeping schedules is sweeping configurations —
the same :class:`~repro.opt.autotune.WorkloadCandidate` machinery that sweeps
the hand generators' knobs evaluates DSL schedules, shares the kernel-hash
simulation cache and the multiprocessing pool, and ranks everything on one
leaderboard.

This module closes the paper's §5.5 loop mechanically:

* :func:`schedule_space` *generates* the candidate set — the cross product of
  (block tile, register blocking B_R, staging stride L, B-window) filtered
  by the structural validity rules the lowering imposes, crossed with
  imperfect *tail* problem sizes (``predicate_tail`` schedules), plus the
  named staging/pipelining ablations (``nostage``/``noprefetch``/``w1``);
* :func:`prune_by_bound` evaluates each candidate's **analytic upper bound**
  (:func:`repro.tile.resources.proc_resources` feeding
  :func:`repro.model.analyse_workload_bound`) and discards everything whose
  bound is hopeless before any simulation runs — the "where to look" half of
  the paper's argument;
* :func:`schedule_candidates` chains the two (pruning whenever a GPU is
  given), and :func:`autotune_schedules` runs the surviving candidates
  through the shared simulation harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.arch.specs import GpuSpec, get_gpu_spec
from repro.errors import ReproError, ResourceLimitError
from repro.opt.autotune import (
    AutotuneCache,
    TuneOutcome,
    WorkloadCandidate,
    autotune_workloads,
)
from repro.prof.trace import trace_span
from repro.telemetry.ledger import config_digest, current_ledger, normalize_gpu, record_run
from repro.telemetry.metrics import counter_inc, current_metrics, observe
from repro.tile.resources import proc_occupancy
from repro.tile.workloads import TileSgemmConfig, TileSgemvConfig, TileTransposeConfig

__all__ = [
    "PruneReport",
    "schedule_space",
    "prune_by_bound",
    "schedule_candidates",
    "autotune_schedules",
    "sweep_summary",
]

#: Default generative axes of the SGEMM schedule space.
SGEMM_TILES = (24, 48, 96)
SGEMM_BLOCKINGS = (3, 6)
SGEMM_STRIDES = (8, 16)
SGEMM_WINDOWS = (1, 2)
SGEMM_DOUBLE_BUFFERS = (False, True)

#: Default imperfect problem sizes crossed into the sweep (predicate-tail
#: schedules: none of these is a multiple of any swept tile).
TAIL_SIZES = ((100, 92, 20),)


def _sgemm_valid(config: TileSgemmConfig) -> bool:
    """Structural validity of one SGEMM schedule point.

    Mirrors the constraints the schedule and lowering impose: the register
    blocking divides the tile, the window divides the blocking, the thread-x
    extent is a power of two (flat-TID shift/mask decomposition), the block
    is at most 1024 threads, and — when staging — the tile×stride window
    distributes evenly over the block with a power-of-two number of load
    groups per staged row (the cooperative-copy distribution rules).
    """
    if config.tile % config.register_blocking:
        return False
    if config.register_blocking % config.b_window:
        return False
    threads_x = config.tile // config.register_blocking
    if threads_x & (threads_x - 1):
        return False
    threads = threads_x * threads_x
    if threads > 1024:
        return False
    if config.stage:
        window = config.tile * config.stride
        if window % threads:
            return False
        per_thread = window // threads
        if config.tile % per_thread:
            return False
        groups_per_row = config.tile // per_thread
        if groups_per_row > 1 and groups_per_row & (groups_per_row - 1):
            return False
    return True


def _sgemm_points(
    base: TileSgemmConfig,
    tiles: tuple[int, ...],
    blockings: tuple[int, ...],
    strides: tuple[int, ...],
    windows: tuple[int, ...],
    double_buffers: tuple[bool, ...] = SGEMM_DOUBLE_BUFFERS,
) -> list[tuple[str, TileSgemmConfig]]:
    """The generative (tile, B_R, L, window, double-buffer) grid, filtered."""
    points: list[tuple[str, TileSgemmConfig]] = []
    seen: set[TileSgemmConfig] = set()

    def push(label: str, config: TileSgemmConfig) -> None:
        if config in seen or not _sgemm_valid(config):
            return
        seen.add(config)
        points.append((label, config))

    # Named ablation points first: the staging ladder the benchmarks track.
    push("golden", base)
    push("noprefetch", replace(base, prefetch=False))
    push("nostage", replace(base, stage=False, prefetch=False))
    push("w1", replace(base, b_window=1))
    for tile in tiles:
        for blocking in blockings:
            for stride in strides:
                for window in windows:
                    for double in double_buffers:
                        config = replace(
                            base,
                            tile=tile,
                            register_blocking=blocking,
                            stride=stride,
                            b_window=window,
                            # Halved tiles quadruple the threads per element:
                            # the prefetch registers no longer fit beside the
                            # full accumulator tile, so sub-base tiles
                            # pipeline off.
                            prefetch=base.prefetch and tile >= base.tile,
                            # The double-buffer axis only exists for staged
                            # schedules (there is no tile to alternate
                            # otherwise).
                            double_buffer=double and base.stage,
                        )
                        label = f"t{tile}b{blocking}l{stride}w{window}"
                        push(label + ("db" if config.double_buffer else ""), config)
    return points


def schedule_space(
    *,
    sgemm: TileSgemmConfig | None = None,
    transpose: TileTransposeConfig | None = None,
    sgemv: TileSgemvConfig | None = None,
    include_naive: bool = False,
    tiles: tuple[int, ...] = SGEMM_TILES,
    register_blockings: tuple[int, ...] = SGEMM_BLOCKINGS,
    strides: tuple[int, ...] = SGEMM_STRIDES,
    b_windows: tuple[int, ...] = SGEMM_WINDOWS,
    double_buffers: tuple[bool, ...] = SGEMM_DOUBLE_BUFFERS,
    tail_sizes: tuple[tuple[int, int, int], ...] = TAIL_SIZES,
) -> list[WorkloadCandidate]:
    """The unpruned generative sweep over every DSL workload's schedules.

    ``include_naive`` additionally evaluates every point without the pass
    pipeline, doubling the sweep (useful for before/after tables).
    ``tail_sizes`` crosses the SGEMM grid with imperfect (M, N, K) problem
    sizes — every candidate carries its problem size in the label.
    ``double_buffers`` is the double-buffering axis: ``True`` points stage
    two alternating shared tiles (one barrier per main-loop iteration, twice
    the footprint); :func:`prune_by_bound` discards the ones whose doubled
    tiles cannot even be resident.
    """
    candidates: list[WorkloadCandidate] = []

    def push(workload: str, label: str, config) -> None:
        if include_naive:
            candidates.append(
                WorkloadCandidate(
                    workload=workload, config=config, optimize=False,
                    label=f"{workload}:{label}:naive",
                )
            )
        candidates.append(
            WorkloadCandidate(
                workload=workload, config=config, optimize=True,
                label=f"{workload}:{label}",
            )
        )

    base = sgemm or TileSgemmConfig()
    for label, config in _sgemm_points(
        base, tiles, register_blockings, strides, b_windows, double_buffers
    ):
        push("tile_sgemm", label, config)
    for m, n, k in tail_sizes:
        tail_base = replace(base, m=m, n=n, k=k)
        for label, config in _sgemm_points(
            tail_base, tiles, register_blockings, strides, b_windows, double_buffers
        ):
            push("tile_sgemm", f"{label}@{m}x{n}x{k}", config)

    transpose = transpose or TileTransposeConfig()
    for label, config in (
        ("nopad", replace(transpose, pad=0)),
        ("golden", transpose),
        ("t8", replace(transpose, tile=8)),
    ):
        push("tile_transpose", label, config)

    sgemv = sgemv or TileSgemvConfig()
    for label, config in (
        ("w1", replace(sgemv, k_window=1)),
        ("noprefetch", replace(sgemv, prefetch=False)),
        ("golden", sgemv),
    ):
        push("tile_sgemv", label, config)

    return candidates


@dataclass(frozen=True)
class PruneReport:
    """Outcome of an analytic-bound pruning pass.

    ``kept`` feed the simulator; ``pruned`` records (label, bound seconds)
    of everything discarded without simulating — occupancy-killed candidates
    (doubled tiles that cannot be resident) carry an infinite bound.
    ``elapsed_s`` is the host-side wall time of the pruning pass itself; the
    per-candidate schedule applications are memoized by schedule hash, so
    repeated sweeps over overlapping spaces get cheaper, not slower.
    """

    kept: tuple[WorkloadCandidate, ...]
    pruned: tuple[tuple[str, float], ...]
    elapsed_s: float = field(default=0.0, compare=False)

    @property
    def total(self) -> int:
        return len(self.kept) + len(self.pruned)

    @property
    def pruned_fraction(self) -> float:
        return len(self.pruned) / self.total if self.total else 0.0


def _size_key(candidate: WorkloadCandidate) -> tuple:
    config = candidate.config
    return (
        candidate.workload,
        getattr(config, "m", None),
        getattr(config, "n", None),
        getattr(config, "k", None),
    )


def prune_by_bound(
    gpu: GpuSpec | str,
    candidates: list[WorkloadCandidate],
    *,
    keep_within: float = 1.2,
) -> PruneReport:
    """Discard candidates whose analytic bound is hopeless before simulating.

    Each candidate's scheduled proc yields its compulsory traffic
    (:func:`repro.tile.resources.proc_resources`), and the generalized
    Eq. 6/8/9 bound turns that into a minimum execution time.  Within each
    (workload, problem size) group, candidates whose *bound* already exceeds
    ``keep_within ×`` the group's best bound cannot win by simulation either
    — the bound is a lower bound on time — so they are pruned unsimulated.

    Occupancy prunes on top of the bound: a schedule whose shared-memory
    footprint cannot be resident on ``gpu`` at all — double-buffered tiles
    are the textbook case, costing 2× the footprint plus the parity
    alignment hole — is discarded outright (recorded with an infinite
    bound), because it cannot launch, let alone win.
    """
    from repro.kernels.registry import get_workload

    started = time.perf_counter()
    spec = get_gpu_spec(gpu) if isinstance(gpu, str) else gpu
    if keep_within < 1.0:
        raise ReproError("keep_within must be >= 1.0 (a ratio over the best bound)")
    with trace_span(
        "autotune.prune_by_bound", category="autotune", candidates=len(candidates)
    ) as span:
        report = _prune_by_bound(spec, candidates, keep_within, started)
        span["kept"] = len(report.kept)
        span["pruned"] = len(report.pruned)
    if current_metrics() is not None:
        counter_inc("autotune.candidates_generated", report.total)
        counter_inc("autotune.candidates_pruned", len(report.pruned))
        counter_inc("autotune.candidates_kept", len(report.kept))
        observe("autotune.prune_seconds", report.elapsed_s)
    return report


def _prune_by_bound(
    spec: GpuSpec,
    candidates: list[WorkloadCandidate],
    keep_within: float,
    started: float,
) -> PruneReport:
    from repro.kernels.registry import get_workload

    times: dict[int, float] = {}
    groups: dict[tuple, list[int]] = {}
    unresident: set[int] = set()
    for position, candidate in enumerate(candidates):
        try:
            workload = get_workload(candidate.workload)
            config = (
                candidate.config
                if candidate.config is not None
                else workload.default_config()
            )
            scheduled = getattr(workload, "cached_scheduled_proc", None)
            if scheduled is not None:
                try:
                    proc_occupancy(scheduled(config), spec)
                except ResourceLimitError:
                    times[position] = float("inf")
                    unresident.add(position)
                    continue
            times[position] = workload.bound(config, spec).bound_time_s
        except ReproError:
            continue  # unboundable: let the simulator report the error
        groups.setdefault(_size_key(candidate), []).append(position)

    pruned: set[int] = set(unresident)
    for members in groups.values():
        best = min(times[position] for position in members)
        for position in members:
            if times[position] > keep_within * best:
                pruned.add(position)
    return PruneReport(
        kept=tuple(
            candidate
            for position, candidate in enumerate(candidates)
            if position not in pruned
        ),
        pruned=tuple(
            (candidates[position].display_label, times[position])
            for position in sorted(pruned)
        ),
        elapsed_s=time.perf_counter() - started,
    )


def schedule_candidates(
    *,
    sgemm: TileSgemmConfig | None = None,
    transpose: TileTransposeConfig | None = None,
    sgemv: TileSgemvConfig | None = None,
    include_naive: bool = False,
    gpu: GpuSpec | str | None = None,
    keep_within: float = 1.2,
    **space_kwargs,
) -> list[WorkloadCandidate]:
    """The generative sweep, bound-pruned when a ``gpu`` is given.

    Without a GPU the full validity-filtered space is returned (nothing to
    price the bound against); with one, only candidates whose analytic bound
    is within ``keep_within×`` of their group's best survive to simulation.
    """
    space = schedule_space(
        sgemm=sgemm, transpose=transpose, sgemv=sgemv,
        include_naive=include_naive, **space_kwargs,
    )
    if gpu is None:
        return space
    return list(prune_by_bound(gpu, space, keep_within=keep_within).kept)


def autotune_schedules(
    gpu,
    candidates: list[WorkloadCandidate] | None = None,
    *,
    workers: int | None = None,
    cache: AutotuneCache | None = None,
    max_cycles: int = 2_000_000,
) -> list[TuneOutcome]:
    """Evaluate DSL schedule candidates on ``gpu``, best first.

    A thin veneer over :func:`repro.opt.autotune.autotune_workloads` with the
    bound-pruned generative sweep as the default candidate set.
    """
    return autotune_workloads(
        gpu,
        candidates if candidates is not None else schedule_candidates(gpu=gpu),
        workers=workers,
        cache=cache,
        max_cycles=max_cycles,
    )


def schedule_cache_stats() -> dict[str, float] | None:
    """Schedule-memo economics read from the installed metrics facade.

    The scheduled-proc and lowered-kernel memos (:mod:`repro.tile.workloads`)
    report their hits, misses and FIFO evictions through
    :mod:`repro.telemetry.metrics`; this aggregates both caches' series.
    Returns None when no registry is installed — the caches' private dicts
    are deliberately not consulted.
    """
    registry = current_metrics()
    if registry is None:
        return None
    snapshot = registry.snapshot()
    return {
        "hits": snapshot.counter_total("tile.schedule_cache.hits"),
        "misses": snapshot.counter_total("tile.schedule_cache.misses"),
        "evictions": snapshot.counter_total("tile.schedule_cache.evictions"),
    }


def sweep_summary(report: PruneReport, outcomes: list[TuneOutcome]) -> str:
    """One-line sweep log: candidate economics at a glance.

    Surfaces the figures a sweep's cost is made of — how many candidates the
    bound pruned (and how long pruning took), how many simulations the
    kernel-hash cache absorbed, and the winner::

        swept 63 candidates: pruned 41 by bound in 0.52s, simulated 22
        (9 cache hits), best tile_sgemm:golden @ 8125 cycles

    With a metrics registry installed (:func:`repro.telemetry.metrics
    .metrics_session`), the schedule-memo economics — hits, misses and the
    previously invisible FIFO evictions — ride along, read from the facade
    rather than from the caches' private state::

        ...; schedule cache 30 hits / 12 misses / 3 evictions
    """
    cache_hits = sum(1 for outcome in outcomes if outcome.ok and outcome.from_cache)
    best = next((outcome for outcome in outcomes if outcome.ok), None)
    line = (
        f"swept {report.total} candidates: pruned {len(report.pruned)} by bound "
        f"in {report.elapsed_s:.2f}s, simulated {len(outcomes)} "
        f"({cache_hits} cache hit{'' if cache_hits == 1 else 's'})"
    )
    if best is not None:
        line += f", best {best.label} @ {best.cycles:.0f} cycles"
    stats = schedule_cache_stats()
    if stats is not None:
        line += (
            f"; schedule cache {stats['hits']:.0f} hits / "
            f"{stats['misses']:.0f} misses / {stats['evictions']:.0f} evictions"
        )
    return line


@dataclass(frozen=True)
class SweepReport:
    """A timed generative sweep: pruning plus simulation of the survivors.

    The benchmark harness (``benchmarks/bench_sim.py``) records these figures
    into ``BENCH_sim.json``; the sweep-throughput entries feed the trajectory
    gate (``scripts/bench_trajectory.py --check``), which flags regressions
    in simulated candidates per second.

    Attributes
    ----------
    prune:
        The bound-pruning pass, including its wall time
        (:attr:`PruneReport.elapsed_s`).
    outcomes:
        Simulation outcomes (warm seeds included), best first.
    sim_elapsed_s:
        Host wall time of the simulation phase (warm seeds included).
    seed_candidates:
        Warm-start candidates injected from the kernel store's nearest
        tuned shapes (:mod:`repro.kcache.warmstart`); empty when the sweep
        ran cold.
    warm_pruned:
        Candidates discarded *unsimulated* because their per-block cycle
        floor already exceeded the best warm seed's achieved cycles (a
        sound cut: the floor is a lower bound, the threshold a measurement).
    """

    prune: PruneReport
    outcomes: tuple[TuneOutcome, ...]
    sim_elapsed_s: float
    seed_candidates: tuple[WorkloadCandidate, ...] = ()
    warm_pruned: int = 0

    @property
    def total_elapsed_s(self) -> float:
        """End-to-end sweep wall time: pruning plus simulation."""
        return self.prune.elapsed_s + self.sim_elapsed_s

    @property
    def candidates_per_s(self) -> float:
        """Sweep throughput: candidates retired per second of wall time.

        Counts every candidate the sweep disposed of — pruned analytically
        or simulated — over the end-to-end time; this is the headline
        figure the vectorized functional engine is benchmarked on.
        """
        if self.total_elapsed_s <= 0:
            return 0.0
        return self.prune.total / self.total_elapsed_s


#: Which :func:`schedule_space` keyword carries each workload's base config
#: (the shape the warm-start policy measures neighbour distance against).
_WARM_BASE_FIELD = {
    "tile_sgemm": "sgemm",
    "tile_transpose": "transpose",
    "tile_sgemv": "sgemv",
}

#: Constant label set of the warm-start counters.
_WARM_LABELS = (("stage", "warm_start"),)


def _warm_seed_candidates(
    store, workload: str, spec: GpuSpec, base, *, limit: int
) -> list[WorkloadCandidate]:
    """Warm-start candidates from the store's nearest tuned shapes."""
    from repro.kcache.keys import shape_of
    from repro.kcache.warmstart import nearest_tuned, warm_seed_configs

    neighbours = nearest_tuned(
        store, workload, normalize_gpu(spec.name), shape_of(base), limit=limit
    )
    valid = _sgemm_valid if workload == "tile_sgemm" else None
    seeds = warm_seed_configs(base, neighbours, valid=valid)
    return [
        WorkloadCandidate(
            workload=workload,
            config=seed.config,
            optimize=True,
            label=f"{workload}:warm{index}",
        )
        for index, seed in enumerate(seeds)
    ]


def _warm_prune(
    kept: list[WorkloadCandidate],
    seed_candidates: list[WorkloadCandidate],
    seed_outcomes: list[TuneOutcome],
    spec: GpuSpec,
) -> tuple[list[WorkloadCandidate], int]:
    """Drop candidates a warm seed's *measurement* proves cannot win.

    A candidate whose analytic per-block cycle floor
    (:func:`repro.kcache.warmstart.block_cycle_floor`) exceeds the best
    seed's achieved cycles cannot place above that seed on the leaderboard,
    so simulating it buys nothing.  Candidates identical to a seed config
    are dropped too — their outcome is already on the board.
    """
    from repro.kernels.registry import get_workload
    from repro.kcache.warmstart import block_cycle_floor

    best_seed = min((o.cycles for o in seed_outcomes if o.ok), default=None)
    if best_seed is None:
        return kept, 0
    seed_points = {(c.workload, c.config) for c in seed_candidates}
    survivors: list[WorkloadCandidate] = []
    pruned = 0
    for candidate in kept:
        if (candidate.workload, candidate.config) in seed_points:
            continue  # already measured as a seed
        floor = block_cycle_floor(get_workload(candidate.workload), candidate.config, spec)
        if floor > best_seed:
            pruned += 1
            continue
        survivors.append(candidate)
    return survivors, pruned


def run_generative_sweep(
    gpu: GpuSpec | str,
    *,
    workload: str | None = None,
    keep_within: float = 1.2,
    workers: int | None = 1,
    cache: AutotuneCache | None = None,
    max_cycles: int = 2_000_000,
    include_tails: bool = True,
    warm_start: bool = False,
    store=None,
    warm_limit: int = 2,
    **space_kwargs,
) -> SweepReport:
    """Generate, prune and simulate the schedule space, timing each phase.

    The single-entry-point version of the :func:`schedule_space` →
    :func:`prune_by_bound` → :func:`autotune_schedules` chain, with wall
    times captured where benchmarks need them.  ``workload`` restricts the
    space to one workload's candidates (e.g. ``"tile_sgemm"``);
    ``include_tails=False`` additionally drops the ``@``-labelled tail
    problem sizes, matching the benchmark harness's fixed-size sweep.

    With ``warm_start=True`` and a kernel store available (``store`` or the
    installed :func:`repro.kcache.store.current_store`), the winning
    schedules of the nearest cached shapes are re-instantiated at this
    sweep's shape and simulated *first*; their measured cycles then prune
    every enumerated candidate whose analytic per-block floor proves it
    cannot beat them (:func:`_warm_prune`) — never-worse winners in strictly
    fewer simulations.
    """
    spec = get_gpu_spec(gpu) if isinstance(gpu, str) else gpu
    candidates = schedule_space(**space_kwargs)
    if workload is not None:
        candidates = [c for c in candidates if c.workload == workload]
    if not include_tails:
        candidates = [c for c in candidates if "@" not in c.label]

    seed_candidates: list[WorkloadCandidate] = []
    seed_outcomes: list[TuneOutcome] = []
    if warm_start and workload in _WARM_BASE_FIELD:
        if store is None:
            from repro.kcache.store import current_store

            store = current_store()
        if store is not None:
            base_field = _WARM_BASE_FIELD[workload]
            base = space_kwargs.get(base_field)
            if base is None:
                from repro.kernels.registry import get_workload

                base = get_workload(workload).default_config()
            seed_candidates = _warm_seed_candidates(
                store, workload, spec, base, limit=warm_limit
            )

    started = time.perf_counter()
    if seed_candidates:
        seed_outcomes = autotune_schedules(
            spec, seed_candidates, workers=workers, cache=cache, max_cycles=max_cycles
        )
    seed_sim_s = time.perf_counter() - started
    report = prune_by_bound(spec, candidates, keep_within=keep_within)
    kept, warm_pruned = _warm_prune(list(report.kept), seed_candidates, seed_outcomes, spec)
    started = time.perf_counter()
    outcomes = autotune_schedules(
        spec, kept, workers=workers, cache=cache, max_cycles=max_cycles
    )
    if seed_candidates:
        counter_inc("kcache.warm.seeds", len(seed_candidates), _WARM_LABELS)
        counter_inc("kcache.warm.pruned", warm_pruned, _WARM_LABELS)
    combined = sorted(
        (*seed_outcomes, *outcomes), key=lambda o: (not o.ok, o.cycles, o.label)
    )
    sweep = SweepReport(
        prune=report,
        outcomes=tuple(combined),
        sim_elapsed_s=seed_sim_s + (time.perf_counter() - started),
        seed_candidates=tuple(seed_candidates),
        warm_pruned=warm_pruned,
    )
    if current_ledger() is not None:
        _ledger_sweep(
            sweep,
            spec,
            workload,
            config={
                "keep_within": keep_within,
                "max_cycles": max_cycles,
                "include_tails": include_tails,
                **space_kwargs,
            },
        )
    return sweep


def _ledger_sweep(
    sweep: SweepReport,
    spec: GpuSpec,
    workload: str | None,
    *,
    config: dict[str, object],
) -> None:
    """Append one ``kind="sweep"`` record for a finished generative sweep.

    The key is stable across runs of the same (workload, GPU) sweep so
    ``scripts/ledger.py diff`` can compare the latest two; the best
    candidate's cycles are the gated figure.
    """
    gpu_key = normalize_gpu(spec.name)
    best = next((o for o in sweep.outcomes if o.ok), None)
    metrics: dict[str, object] = {
        "candidates": sweep.prune.total,
        "pruned": len(sweep.prune.pruned),
        "simulated": len(sweep.outcomes),
        "sim_cache_hits": sum(1 for o in sweep.outcomes if o.ok and o.from_cache),
        "warm_seeds": len(sweep.seed_candidates),
        "warm_pruned": sweep.warm_pruned,
        "prune_seconds": sweep.prune.elapsed_s,
        "sim_seconds": sweep.sim_elapsed_s,
        "candidates_per_s": sweep.candidates_per_s,
    }
    kernel_hash = ""
    if best is not None:
        metrics["best_label"] = best.label
        metrics["cycles"] = best.cycles
        metrics["gflops"] = best.gflops
        metrics["efficiency"] = best.efficiency
        kernel_hash = best.kernel_hash
    record_run(
        "sweep",
        f"sweep:{workload or 'all'}:{gpu_key}:{config_digest(config)}",
        workload=workload or "all",
        gpu=gpu_key,
        kernel_hash=kernel_hash,
        config=config,
        metrics=metrics,
    )
