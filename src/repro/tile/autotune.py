"""Schedule-space autotuning for tile-IR workloads.

The tile workloads encode their *schedule* in the workload configuration
(tile sizes, register blocking, staging stride, B-register window, staging
and pipelining toggles), so sweeping schedules is sweeping configurations —
the same :class:`~repro.opt.autotune.WorkloadCandidate` machinery that sweeps
the hand generators' knobs evaluates DSL schedules, shares the kernel-hash
simulation cache and the multiprocessing pool, and ranks everything on one
leaderboard.

:func:`schedule_candidates` builds the standard sweep; the convenience
:func:`autotune_schedules` runs it.  Both are re-exported from
:mod:`repro.opt.autotune` so the optimizer layer remains the one entry point
for tuning.
"""

from __future__ import annotations

from dataclasses import replace

from repro.opt.autotune import (
    AutotuneCache,
    TuneOutcome,
    WorkloadCandidate,
    autotune_workloads,
)
from repro.tile.workloads import TileSgemmConfig, TileSgemvConfig, TileTransposeConfig

__all__ = ["schedule_candidates", "autotune_schedules"]


def _sgemm_schedules(base: TileSgemmConfig) -> list[tuple[str, TileSgemmConfig]]:
    """The SGEMM schedule axis: pipelining → staging → windowing → blocking."""
    points = [
        ("nostage", replace(base, stage=False, prefetch=False)),
        ("noprefetch", replace(base, prefetch=False)),
        ("w1", replace(base, b_window=1)),
        ("golden", base),
    ]
    half = base.tile // 2
    if (
        half >= base.register_blocking
        and half % base.register_blocking == 0
        and base.m % half == 0
        and base.n % half == 0
    ):
        # Halving the tile quadruples the threads per element: the prefetch
        # registers no longer fit next to the full accumulator tile, so this
        # point runs without software pipelining.
        points.append((f"t{half}", replace(base, tile=half, prefetch=False)))
    return points


def schedule_candidates(
    *,
    sgemm: TileSgemmConfig | None = None,
    transpose: TileTransposeConfig | None = None,
    sgemv: TileSgemvConfig | None = None,
    include_naive: bool = False,
) -> list[WorkloadCandidate]:
    """Candidates sweeping each DSL workload's schedule space.

    ``include_naive`` additionally evaluates every point without the pass
    pipeline, doubling the sweep (useful for before/after tables).
    """
    candidates: list[WorkloadCandidate] = []

    def push(workload: str, label: str, config) -> None:
        if include_naive:
            candidates.append(
                WorkloadCandidate(
                    workload=workload, config=config, optimize=False,
                    label=f"{workload}:{label}:naive",
                )
            )
        candidates.append(
            WorkloadCandidate(
                workload=workload, config=config, optimize=True,
                label=f"{workload}:{label}",
            )
        )

    for label, config in _sgemm_schedules(sgemm or TileSgemmConfig()):
        push("tile_sgemm", label, config)

    transpose = transpose or TileTransposeConfig()
    for label, config in (
        ("nopad", replace(transpose, pad=0)),
        ("golden", transpose),
        ("t8", replace(transpose, tile=8)),
    ):
        push("tile_transpose", label, config)

    sgemv = sgemv or TileSgemvConfig()
    for label, config in (
        ("w1", replace(sgemv, k_window=1)),
        ("noprefetch", replace(sgemv, prefetch=False)),
        ("golden", sgemv),
    ):
        push("tile_sgemv", label, config)

    return candidates


def autotune_schedules(
    gpu,
    candidates: list[WorkloadCandidate] | None = None,
    *,
    workers: int | None = None,
    cache: AutotuneCache | None = None,
    max_cycles: int = 2_000_000,
) -> list[TuneOutcome]:
    """Evaluate DSL schedule candidates on ``gpu``, best first.

    A thin veneer over :func:`repro.opt.autotune.autotune_workloads` with the
    schedule sweep as the default candidate set.
    """
    return autotune_workloads(
        gpu,
        candidates if candidates is not None else schedule_candidates(),
        workers=workers,
        cache=cache,
        max_cycles=max_cycles,
    )
