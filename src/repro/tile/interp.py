"""The NumPy interpreter — the IR's semantic oracle.

``interpret`` executes a :class:`~repro.tile.ir.Proc` directly: loops run
sequentially in program order (lowering tags are ignored), every arithmetic
step is performed in float32, and multiplies/adds are kept *separate* — the
same semantics as the functional simulator's FFMA, which computes
``f32(a) · f32(b) + f32(c)`` unfused.  Because both sides round identically
and the scheduling primitives preserve per-element accumulation order, the
oracle comparison in the tests can demand bit-exact equality, not just
``allclose``.

The oracle has three jobs:

* define what a ``Proc`` means (there is no other specification);
* validate every scheduling rewrite (``interpret(p) == interpret(f(p))``);
* validate the SASS lowering (functional simulation == interpretation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TileError
from repro.tile.ir import (
    Assign,
    BinOp,
    Const,
    Expr,
    Guard,
    Loop,
    Proc,
    Read,
    Stage,
    Stmt,
    Unstage,
    check_proc,
    walk_stmts,
)


def interpret(
    proc: Proc, inputs: dict[str, np.ndarray], *, check: bool = True
) -> dict[str, np.ndarray]:
    """Execute ``proc`` on NumPy arrays and return its written tensors.

    Parameters
    ----------
    proc:
        The loop nest to execute (scheduled or not — tags are ignored).
    inputs:
        One float32 array per *read* tensor parameter, keyed by name.
        Written-only parameters are implicitly zero-initialised.
    check:
        Run :func:`~repro.tile.ir.check_proc` first (on by default; property
        tests disable it when they check separately).

    Returns
    -------
    dict[str, np.ndarray]
        The arrays of every tensor parameter the proc writes.
    """
    if check:
        check_proc(proc)

    tensors: dict[str, np.ndarray] = {}
    for param in proc.params:
        if param.name in inputs:
            array = np.asarray(inputs[param.name], dtype=np.float32)
            if array.shape != param.shape:
                raise TileError(
                    f"input '{param.name}' has shape {array.shape}, expected {param.shape}"
                )
            tensors[param.name] = array.copy()
        else:
            tensors[param.name] = np.zeros(param.shape, dtype=np.float32)
    for buffer in proc.buffers:
        # Double-buffered shared tiles are modelled as they are laid out: two
        # parity-indexed copies, tile ``i % 2`` serving staging-loop iteration
        # ``i``.  This is the oracle the parity lowering is validated against.
        shape = (2,) + buffer.shape if buffer.double else buffer.shape
        tensors[buffer.name] = np.zeros(shape, dtype=np.float32)

    parity_of: dict[str, str] = {}
    for stmt in walk_stmts(proc.body):
        if isinstance(stmt, Stage) and stmt.parity is not None:
            known = parity_of.setdefault(stmt.buffer, stmt.parity)
            if known != stmt.parity:
                raise TileError(
                    f"buffer '{stmt.buffer}' is staged under two parity loops "
                    f"('{known}' and '{stmt.parity}')"
                )

    _run(proc, proc.body, tensors, {}, parity_of)
    return {name: tensors[name] for name in proc.outputs()}


def _half(parity_of: dict[str, str], tensor: str, env: dict[str, int]) -> int:
    """Which copy of a double-buffered tile the current iteration addresses."""
    return env.get(parity_of[tensor], 0) % 2


def _run(proc: Proc, stmts: tuple[Stmt, ...], tensors: dict[str, np.ndarray],
         env: dict[str, int], parity_of: dict[str, str]) -> None:
    for stmt in stmts:
        if isinstance(stmt, Loop):
            for value in range(stmt.extent):
                env[stmt.var] = value
                _run(proc, stmt.body, tensors, env, parity_of)
            del env[stmt.var]
        elif isinstance(stmt, Guard):
            if stmt.expr.evaluate(env) < stmt.bound:
                _run(proc, stmt.body, tensors, env, parity_of)
        elif isinstance(stmt, Assign):
            index = tuple(i.evaluate(env) for i in stmt.index)
            if stmt.tensor in parity_of:
                index = (_half(parity_of, stmt.tensor, env),) + index
            value = _eval(stmt.value, tensors, env, parity_of)
            if stmt.accumulate:
                tensors[stmt.tensor][index] = np.float32(tensors[stmt.tensor][index] + value)
            else:
                tensors[stmt.tensor][index] = value
        elif isinstance(stmt, Stage):
            _run_stage(stmt, tensors, env)
        elif isinstance(stmt, Unstage):
            _run_unstage(stmt, tensors, env)
        else:  # pragma: no cover - exhaustive over Stmt
            raise TileError(f"cannot interpret statement {stmt!r}")


def _eval(expr: Expr, tensors: dict[str, np.ndarray], env: dict[str, int],
          parity_of: dict[str, str]) -> np.float32:
    if isinstance(expr, Const):
        return np.float32(expr.value)
    if isinstance(expr, Read):
        index = tuple(i.evaluate(env) for i in expr.index)
        if expr.tensor in parity_of:
            index = (_half(parity_of, expr.tensor, env),) + index
        return np.float32(tensors[expr.tensor][index])
    if isinstance(expr, BinOp):
        lhs = _eval(expr.lhs, tensors, env, parity_of)
        rhs = _eval(expr.rhs, tensors, env, parity_of)
        return np.float32(lhs * rhs) if expr.op == "mul" else np.float32(lhs + rhs)
    raise TileError(f"cannot evaluate expression {expr!r}")  # pragma: no cover


def _clipped_count(base: int, size: int, limit: int | None) -> int:
    """In-bounds element count of one window dimension under a clip limit."""
    if limit is None:
        return size
    return max(0, min(size, limit - base))


def _run_stage(stmt: Stage, tensors: dict[str, np.ndarray], env: dict[str, int]) -> None:
    base = tuple(b.evaluate(env) for b in stmt.base)
    source = tensors[stmt.tensor]
    target = tensors[stmt.buffer]
    if stmt.parity is not None:
        target = target[env.get(stmt.parity, 0) % 2]
    limits = stmt.limits or (None,) * len(base)
    # Window in tensor-dim order (clipped to the tensor on limited dims),
    # then permuted into buffer-dim order.
    window_slices = list(slice(b, b + 1) for b in base)
    counts = list(stmt.sizes)
    for buffer_dim, tensor_dim in enumerate(stmt.axes):
        counts[buffer_dim] = _clipped_count(
            base[tensor_dim], stmt.sizes[buffer_dim], limits[tensor_dim]
        )
        window_slices[tensor_dim] = slice(
            base[tensor_dim], base[tensor_dim] + counts[buffer_dim]
        )
    window = source[tuple(window_slices)]
    # Drop the singleton dims not walked by the buffer, then permute.
    walked = sorted(stmt.axes)
    window = window.reshape(tuple(window.shape[d] for d in walked))
    order = tuple(walked.index(t) for t in stmt.axes)
    staged = np.zeros(stmt.sizes, dtype=np.float32)
    staged[tuple(slice(0, c) for c in counts)] = np.transpose(window, order)
    target[...] = staged


def _run_unstage(stmt: Unstage, tensors: dict[str, np.ndarray], env: dict[str, int]) -> None:
    base = tuple(b.evaluate(env) for b in stmt.base)
    limits = stmt.limits or (None,) * len(base)
    counts = tuple(
        _clipped_count(b, s, limit)
        for b, s, limit in zip(base, stmt.sizes, limits)
    )
    slices = tuple(slice(b, b + c) for b, c in zip(base, counts))
    source = tensors[stmt.buffer]
    if stmt.parity is not None:
        source = source[env.get(stmt.parity, 0) % 2]
    window = source.reshape(stmt.sizes)
    tensors[stmt.tensor][slices] = window[tuple(slice(0, c) for c in counts)]


def assert_equivalent(
    before: Proc,
    after: Proc,
    inputs: dict[str, np.ndarray],
) -> None:
    """Raise unless both procs produce bit-identical outputs on ``inputs``.

    The oracle check every scheduling primitive must survive: schedules may
    only reorder *independent* iterations and stage values, never change what
    is computed, so float32 results must match exactly.
    """
    out_before = interpret(before, inputs)
    out_after = interpret(after, inputs)
    if set(out_before) != set(out_after):
        raise TileError(
            f"schedule changed the written tensors: {sorted(out_before)} vs {sorted(out_after)}"
        )
    for name, expected in out_before.items():
        got = out_after[name]
        if expected.shape != got.shape or not np.array_equal(expected, got):
            worst = float(np.max(np.abs(expected.astype(np.float64) - got.astype(np.float64))))
            raise TileError(
                f"schedule changed the value of '{name}' (max |difference| = {worst:.3e})"
            )
