"""The schedulable loop-nest IR.

A :class:`Proc` is a kernel written as a naive loop nest over sized tensors:
``Loop`` nodes with concrete integer extents, ``Assign`` statements whose
indices are affine expressions of the surrounding loop variables, and two
staging nodes (``Stage``/``Unstage``) that the scheduling primitives insert
when a tensor window is staged through shared memory or registers.

The IR is deliberately small — it expresses exactly the kernels the paper
hand-writes (dense affine loop nests with accumulation), nothing more.  Its
semantics are defined by the NumPy interpreter (:mod:`repro.tile.interp`),
which serves as the oracle every scheduling rewrite and the SASS lowering are
validated against.

Design choices mirror the rest of the repository:

* **Extents and shapes are concrete integers.**  The existing generators
  specialise kernels per problem size (leading dimensions folded into
  immediate offsets); the IR does the same, which keeps affine arithmetic in
  plain ``int`` and the lowering free of division code.
* **Everything is immutable.**  Scheduling primitives are pure
  ``Proc -> Proc`` functions; a schedule is an ordinary Python composition.
* **Loop bindings are loop attributes.**  ``split``/``reorder`` restructure
  the tree; ``bind_block``/``bind_thread``/``unroll`` only retag a loop.  The
  interpreter ignores tags entirely, which is what makes "every schedule is
  semantics-preserving" checkable by running both versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterator, Union

from repro.errors import TileError

# --------------------------------------------------------------------------- #
# Affine index expressions.                                                    #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Affine:
    """An affine expression ``const + Σ coeff · var`` over loop variables.

    Terms are kept sorted by variable name with zero coefficients dropped, so
    structurally equal expressions compare equal.

    >>> i, j = Affine.var("i"), Affine.var("j")
    >>> str(i * 4 + j + 1)
    '4*i + j + 1'
    >>> (i * 4 + j).evaluate({"i": 2, "j": 3})
    11
    """

    const: int = 0
    terms: tuple[tuple[str, int], ...] = ()

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine(const=int(value))

    @staticmethod
    def var(name: str, coeff: int = 1) -> "Affine":
        return Affine(terms=_normalise({name: coeff}))

    # -- algebra ---------------------------------------------------------- #

    def __add__(self, other: Union["Affine", int]) -> "Affine":
        other = to_affine(other)
        if not other.terms:
            return Affine(const=self.const + other.const, terms=self.terms)
        if not self.terms:
            return Affine(const=self.const + other.const, terms=other.terms)
        merged = dict(self.terms)
        for name, coeff in other.terms:
            merged[name] = merged.get(name, 0) + coeff
        return Affine(const=self.const + other.const, terms=_normalise(merged))

    __radd__ = __add__

    def __sub__(self, other: Union["Affine", int]) -> "Affine":
        return self + to_affine(other) * -1

    def __mul__(self, factor: int) -> "Affine":
        if not isinstance(factor, int):
            raise TileError("affine expressions can only be scaled by integers")
        if factor == 0:
            return Affine(const=0)
        # Scaling by a non-zero factor kills no term and keeps the name order,
        # so the result is already normalised.
        return Affine(
            const=self.const * factor,
            terms=tuple((name, coeff * factor) for name, coeff in self.terms),
        )

    __rmul__ = __mul__

    # -- queries ---------------------------------------------------------- #

    def vars(self) -> frozenset[str]:
        """Variables with a non-zero coefficient."""
        return frozenset(name for name, _ in self.terms)

    def coeff(self, name: str) -> int:
        """Coefficient of ``name`` (0 when absent)."""
        for term_name, term_coeff in self.terms:
            if term_name == name:
                return term_coeff
        return 0

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def evaluate(self, env: dict[str, int]) -> int:
        """Value of the expression under a variable assignment."""
        total = self.const
        for name, coeff in self.terms:
            if name not in env:
                raise TileError(f"unbound loop variable '{name}' in {self}")
            total += coeff * env[name]
        return total

    def substitute(self, mapping: dict[str, "Affine"]) -> "Affine":
        """Replace variables by affine expressions."""
        const = self.const
        merged: dict[str, int] = {}
        for name, coeff in self.terms:
            repl = mapping.get(name)
            if repl is None:
                merged[name] = merged.get(name, 0) + coeff
            else:
                const += repl.const * coeff
                for rname, rcoeff in repl.terms:
                    merged[rname] = merged.get(rname, 0) + rcoeff * coeff
        return Affine(const=const, terms=_normalise(merged))

    def bounds(self, ranges: dict[str, int]) -> tuple[int, int]:
        """(min, max) over ``var in [0, ranges[var])`` for every variable."""
        lo = hi = self.const
        for name, coeff in self.terms:
            if name not in ranges:
                raise TileError(f"no range known for loop variable '{name}'")
            span = coeff * (ranges[name] - 1)
            lo += min(0, span)
            hi += max(0, span)
        return lo, hi

    def split_terms(self, offset_vars: frozenset[str]) -> tuple["Affine", "Affine"]:
        """Split into (base, offset): offset holds the ``offset_vars`` terms."""
        base: dict[str, int] = {}
        offset: dict[str, int] = {}
        for name, coeff in self.terms:
            (offset if name in offset_vars else base)[name] = coeff
        return (
            Affine(const=self.const, terms=_normalise(base)),
            Affine(terms=_normalise(offset)),
        )

    def __str__(self) -> str:
        parts = [
            (f"{coeff}*{name}" if coeff != 1 else name) for name, coeff in self.terms
        ]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


def _normalise(terms: dict[str, int]) -> tuple[tuple[str, int], ...]:
    return tuple(sorted((n, c) for n, c in terms.items() if c != 0))


IndexLike = Union[Affine, int, str]


def to_affine(value: IndexLike) -> Affine:
    """Coerce an int (constant) or str (variable) into an :class:`Affine`."""
    if isinstance(value, Affine):
        return value
    if isinstance(value, bool):
        raise TileError("bool is not a valid index expression")
    if isinstance(value, int):
        return Affine.constant(value)
    if isinstance(value, str):
        return Affine.var(value)
    raise TileError(f"cannot convert {value!r} into an affine expression")


# --------------------------------------------------------------------------- #
# Value expressions.                                                           #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Read:
    """A scalar read ``tensor[index...]`` (tensor parameter or staging buffer)."""

    tensor: str
    index: tuple[Affine, ...]

    def __str__(self) -> str:
        return f"{self.tensor}[{', '.join(str(i) for i in self.index)}]"


@dataclass(frozen=True)
class Const:
    """A float32 literal."""

    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinOp:
    """``lhs op rhs`` with ``op`` in {'add', 'mul'} (float32 semantics)."""

    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        if self.op not in ("add", "mul"):
            raise TileError(f"unsupported operator '{self.op}'")

    def __str__(self) -> str:
        symbol = "+" if self.op == "add" else "*"
        return f"({self.lhs} {symbol} {self.rhs})"


Expr = Union[Read, Const, BinOp]


def read(tensor: str, *index: IndexLike) -> Read:
    """Convenience constructor: ``read("A", "i", "k")`` → ``A[i, k]``."""
    return Read(tensor=tensor, index=tuple(to_affine(i) for i in index))


def mul(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp(op="mul", lhs=lhs, rhs=rhs)


def add(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp(op="add", lhs=lhs, rhs=rhs)


def expr_reads(expr: Expr) -> Iterator[Read]:
    """All :class:`Read` leaves of an expression."""
    if isinstance(expr, Read):
        yield expr
    elif isinstance(expr, BinOp):
        yield from expr_reads(expr.lhs)
        yield from expr_reads(expr.rhs)


def map_expr_reads(expr: Expr, fn) -> Expr:
    """Rebuild an expression with ``fn`` applied to every :class:`Read`."""
    if isinstance(expr, Read):
        return fn(expr)
    if isinstance(expr, BinOp):
        return BinOp(op=expr.op, lhs=map_expr_reads(expr.lhs, fn), rhs=map_expr_reads(expr.rhs, fn))
    return expr


# --------------------------------------------------------------------------- #
# Statements.                                                                  #
# --------------------------------------------------------------------------- #


class LoopKind(str, Enum):
    """How a loop executes after lowering.

    ``SEQ`` loops become SASS counter/branch loops, ``UNROLL`` loops are fully
    expanded at lowering time, and the four binding kinds map iterations onto
    the launch grid (block indices) or the threads of a block.
    """

    SEQ = "seq"
    UNROLL = "unroll"
    BLOCK_X = "block_x"
    BLOCK_Y = "block_y"
    THREAD_X = "thread_x"
    THREAD_Y = "thread_y"

    @property
    def is_block(self) -> bool:
        return self in (LoopKind.BLOCK_X, LoopKind.BLOCK_Y)

    @property
    def is_thread(self) -> bool:
        return self in (LoopKind.THREAD_X, LoopKind.THREAD_Y)


@dataclass(frozen=True)
class Assign:
    """``tensor[index...] = value`` or, with ``accumulate``, ``+= value``."""

    tensor: str
    index: tuple[Affine, ...]
    value: Expr
    accumulate: bool = False

    def __str__(self) -> str:
        op = "+=" if self.accumulate else "="
        return f"{self.tensor}[{', '.join(str(i) for i in self.index)}] {op} {self.value}"


@dataclass(frozen=True)
class Loop:
    """``for var in range(extent): body`` with a lowering tag."""

    var: str
    extent: int
    body: tuple["Stmt", ...]
    kind: LoopKind = LoopKind.SEQ

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise TileError(f"loop '{self.var}' must have extent >= 1, got {self.extent}")


@dataclass(frozen=True)
class Guard:
    """``if expr < bound: body`` — the predicated tail of an imperfect split."""

    expr: Affine
    bound: int
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Stage:
    """Bulk copy of a tensor window into a staging buffer.

    ``buffer[o0, o1, ...] = tensor[base + permute(o)]`` for every offset tuple
    ``o`` with ``o_d < sizes[d]``; ``axes[d]`` names the tensor dimension that
    buffer dimension ``d`` walks (so ``axes=(1, 0)`` stages a 2-D window
    transposed).  Inserted by ``stage_shared``; the lowering turns it into a
    barrier-fenced cooperative load, optionally software-pipelined
    (``prefetch``) the way the paper's main loop prefetches the next tile
    while computing on the current one.

    ``limits`` (one entry per *tensor* dimension, ``None`` = unclipped) marks
    a window that may overhang the tensor: only elements with
    ``base_d + offset_d < limits[d]`` are copied, the rest of the buffer
    reads as zero.  ``stage_shared`` derives the limits from ``predicate_tail``
    guards, which is what lets boundary tiles of an imperfect problem size
    stage a full-shape buffer.

    ``parity`` names the sequential loop whose iteration parity selects which
    of a double-buffered target's two tiles the copy fills (and the compute
    reads): iteration ``i`` uses tile ``i % 2``.  Set by the ``double_buffer``
    scheduling primitive, always together with the target buffer's ``double``
    flag; the lowering exploits it to drop one of the two per-iteration
    barriers.
    """

    buffer: str
    tensor: str
    base: tuple[Affine, ...]
    sizes: tuple[int, ...]
    axes: tuple[int, ...]
    prefetch: bool = True
    limits: tuple[int | None, ...] = ()
    parity: str | None = None

    def __str__(self) -> str:
        base = ", ".join(str(b) for b in self.base)
        clip = ""
        if any(limit is not None for limit in self.limits):
            clip = f" clip<{list(self.limits)}"
        par = f" parity({self.parity})" if self.parity else ""
        return f"stage {self.buffer}{list(self.sizes)} <- {self.tensor}[{base} ...]{clip}{par}"


@dataclass(frozen=True)
class Unstage:
    """Bulk copy of a register-staged buffer back into its tensor window.

    ``limits`` (one entry per tensor dimension, ``None`` = unclipped) marks a
    window that may overhang the tensor: only elements with
    ``base_d + offset_d < limits[d]`` are stored.  ``stage_registers`` derives
    the limits from ``predicate_tail`` guards around the staged accesses — the
    predicated epilogue stores of a boundary tile.

    ``parity`` mirrors :class:`Stage.parity` for the (rare) write-back from a
    double-buffered shared buffer: the copy reads tile ``parity % 2``.
    """

    tensor: str
    base: tuple[Affine, ...]
    buffer: str
    sizes: tuple[int, ...]
    limits: tuple[int | None, ...] = ()
    parity: str | None = None

    def __str__(self) -> str:
        base = ", ".join(str(b) for b in self.base)
        clip = ""
        if any(limit is not None for limit in self.limits):
            clip = f" clip<{list(self.limits)}"
        par = f" parity({self.parity})" if self.parity else ""
        return f"unstage {self.tensor}[{base} ...] <- {self.buffer}{list(self.sizes)}{clip}{par}"


Stmt = Union[Assign, Loop, Guard, Stage, Unstage]


# --------------------------------------------------------------------------- #
# Procedures.                                                                  #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TensorParam:
    """A sized tensor parameter (float32, row-major)."""

    name: str
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape or any(s < 1 for s in self.shape):
            raise TileError(f"tensor '{self.name}' must have positive dimensions")

    @property
    def size(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def strides(self) -> tuple[int, ...]:
        """Row-major element strides."""
        strides = [1] * len(self.shape)
        for d in range(len(self.shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        return tuple(strides)


@dataclass(frozen=True)
class Buffer:
    """A staging buffer introduced by a scheduling primitive.

    ``memory`` is ``"shared"`` (cooperatively filled, barrier-fenced) or
    ``"register"`` (per-thread scalars).  Shared buffers may carry a row
    ``pad`` — extra words appended to the innermost dimension, the paper's
    §5.1 bank-conflict padding.

    ``double`` marks a double-buffered shared tile: the allocation holds
    *two* copies of ``shape`` and the ``Stage`` filling it alternates between
    them by the parity of its staging loop (``Stage.parity``).  ``shape``,
    ``padded_shape`` and ``size_words`` keep describing one tile; the
    lowering's shared-memory layout doubles the footprint.
    """

    name: str
    shape: tuple[int, ...]
    memory: str
    pad: int = 0
    double: bool = False

    def __post_init__(self) -> None:
        if self.memory not in ("shared", "register"):
            raise TileError(f"buffer memory must be 'shared' or 'register', got {self.memory!r}")
        if self.pad and self.memory != "shared":
            raise TileError("only shared buffers can be padded")
        if self.double and self.memory != "shared":
            raise TileError("only shared buffers can be double-buffered")
        if not self.shape or any(s < 1 for s in self.shape):
            raise TileError(f"buffer '{self.name}' must have positive dimensions")

    @property
    def padded_shape(self) -> tuple[int, ...]:
        """Allocation shape: the innermost dimension grown by ``pad`` words."""
        return self.shape[:-1] + (self.shape[-1] + self.pad,)

    @property
    def size_words(self) -> int:
        total = 1
        for dim in self.padded_shape:
            total *= dim
        return total

    def strides(self) -> tuple[int, ...]:
        """Row-major element strides over the *padded* allocation."""
        padded = self.padded_shape
        strides = [1] * len(padded)
        for d in range(len(padded) - 2, -1, -1):
            strides[d] = strides[d + 1] * padded[d + 1]
        return tuple(strides)


@dataclass(frozen=True)
class Proc:
    """A kernel as a loop nest over tensor parameters.

    ``params`` order is the kernel-parameter ABI: the lowering expects the
    pointer for ``params[i]`` at constant-bank offset ``0x20 + 4 i``, matching
    :class:`repro.sim.memory.KernelParams`.
    """

    name: str
    params: tuple[TensorParam, ...]
    body: tuple[Stmt, ...]
    buffers: tuple[Buffer, ...] = field(default=())

    def _param_map(self) -> dict[str, TensorParam]:
        cached = self.__dict__.get("_params_by_name")
        if cached is None:
            cached = {p.name: p for p in self.params}
            object.__setattr__(self, "_params_by_name", cached)
        return cached

    def _buffer_map(self) -> dict[str, "Buffer"]:
        cached = self.__dict__.get("_buffers_by_name")
        if cached is None:
            cached = {b.name: b for b in self.buffers}
            object.__setattr__(self, "_buffers_by_name", cached)
        return cached

    def param(self, name: str) -> TensorParam:
        param = self._param_map().get(name)
        if param is None:
            raise TileError(f"proc '{self.name}' has no tensor parameter '{name}'")
        return param

    def buffer(self, name: str) -> "Buffer":
        buffer = self._buffer_map().get(name)
        if buffer is None:
            raise TileError(f"proc '{self.name}' has no staging buffer '{name}'")
        return buffer

    def is_buffer(self, name: str) -> bool:
        return name in self._buffer_map()

    def outputs(self) -> tuple[str, ...]:
        """Names of tensor parameters the proc writes (in param order)."""
        written: set[str] = set()
        for stmt in walk_stmts(self.body):
            if isinstance(stmt, Assign) and not self.is_buffer(stmt.tensor):
                written.add(stmt.tensor)
            elif isinstance(stmt, Unstage):
                written.add(stmt.tensor)
        return tuple(p.name for p in self.params if p.name in written)

    def loops(self) -> dict[str, Loop]:
        """Every loop keyed by its variable name.

        Cached per (immutable) proc: the schedule primitives and the
        dependence analysis look loops up far more often than trees change.
        Callers treat the mapping as read-only.
        """
        cached = self.__dict__.get("_loops_by_var")
        if cached is not None:
            return cached
        found: dict[str, Loop] = {}
        for stmt in walk_stmts(self.body):
            if isinstance(stmt, Loop):
                if stmt.var in found:
                    raise TileError(f"duplicate loop variable '{stmt.var}'")
                found[stmt.var] = stmt
        object.__setattr__(self, "_loops_by_var", found)
        return found

    def find_loop(self, var: str) -> Loop:
        loop = self.loops().get(var)
        if loop is None:
            known = ", ".join(sorted(self.loops())) or "<none>"
            raise TileError(f"no loop '{var}' in proc '{self.name}' (loops: {known})")
        return loop

    def with_body(self, body: tuple[Stmt, ...]) -> "Proc":
        return replace(self, body=body)

    def __str__(self) -> str:
        lines = [f"proc {self.name}({', '.join(f'{p.name}: f32{list(p.shape)}' for p in self.params)})"]
        for buffer in self.buffers:
            lines.append(f"  {buffer.memory} {buffer.name}: f32{list(buffer.shape)}"
                         + (f" pad={buffer.pad}" if buffer.pad else "")
                         + (" x2" if buffer.double else ""))
        _format_stmts(self.body, lines, indent=1)
        return "\n".join(lines)


def _format_stmts(stmts: tuple[Stmt, ...], lines: list[str], indent: int) -> None:
    pad = "  " * indent
    for stmt in stmts:
        if isinstance(stmt, Loop):
            tag = "" if stmt.kind is LoopKind.SEQ else f"  # {stmt.kind.value}"
            lines.append(f"{pad}for {stmt.var} in {stmt.extent}:{tag}")
            _format_stmts(stmt.body, lines, indent + 1)
        elif isinstance(stmt, Guard):
            lines.append(f"{pad}if {stmt.expr} < {stmt.bound}:")
            _format_stmts(stmt.body, lines, indent + 1)
        else:
            lines.append(f"{pad}{stmt}")


def walk_stmts(stmts: tuple[Stmt, ...]) -> Iterator[Stmt]:
    """Depth-first pre-order walk over a statement tree."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, (Loop, Guard)):
            yield from walk_stmts(stmt.body)


def map_stmts(stmts: tuple[Stmt, ...], fn) -> tuple[Stmt, ...]:
    """Rebuild a statement tree bottom-up.

    ``fn`` receives each (already-rebuilt) statement and returns a statement,
    a tuple of statements (splice) or ``None`` (drop).
    """
    result: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, (Loop, Guard)):
            # Rebuild only when the body actually changed (same objects in the
            # same order) — most primitives rewrite one region and leave the
            # rest of the tree untouched.
            body = map_stmts(stmt.body, fn)
            old = stmt.body
            if len(body) != len(old) or any(
                n is not o for n, o in zip(body, old)
            ):
                stmt = replace(stmt, body=body)
        mapped = fn(stmt)
        if mapped is None:
            continue
        if isinstance(mapped, tuple):
            result.extend(mapped)
        else:
            result.append(mapped)
    return tuple(result)


def substitute_stmts(stmts: tuple[Stmt, ...], mapping: dict[str, Affine]) -> tuple[Stmt, ...]:
    """Substitute loop variables by affine expressions everywhere."""

    def sub_affine(a: Affine) -> Affine:
        return a.substitute(mapping)

    def sub_expr(expr: Expr) -> Expr:
        return map_expr_reads(
            expr, lambda r: Read(tensor=r.tensor, index=tuple(sub_affine(i) for i in r.index))
        )

    def fn(stmt: Stmt):
        if isinstance(stmt, Assign):
            return Assign(
                tensor=stmt.tensor,
                index=tuple(sub_affine(i) for i in stmt.index),
                value=sub_expr(stmt.value),
                accumulate=stmt.accumulate,
            )
        if isinstance(stmt, Guard):
            return replace(stmt, expr=sub_affine(stmt.expr))
        if isinstance(stmt, Stage):
            return replace(stmt, base=tuple(sub_affine(b) for b in stmt.base))
        if isinstance(stmt, Unstage):
            return replace(stmt, base=tuple(sub_affine(b) for b in stmt.base))
        return stmt

    return map_stmts(stmts, fn)


# --------------------------------------------------------------------------- #
# Static checking.                                                             #
# --------------------------------------------------------------------------- #


def check_proc(proc: Proc) -> None:
    """Static sanity check: names, nesting tags and index bounds.

    Raises :class:`~repro.errors.TileError` on duplicate loop variables,
    unknown tensors, multiply-bound block/thread axes, or any access whose
    static interval (every loop variable ranging over its extent) can fall
    outside the tensor or buffer shape.

    A proc that passed once is marked and not re-checked: every schedule
    primitive checks its result, and the same object then reaches the
    lowering and the interpreter.
    """
    if proc.__dict__.get("_check_proc_passed"):
        return
    proc.loops()  # raises on duplicate loop variables

    names = {p.name for p in proc.params} | {b.name for b in proc.buffers}
    if len(names) != len(proc.params) + len(proc.buffers):
        raise TileError(f"proc '{proc.name}' has duplicate tensor/buffer names")

    # Which loop's parity selects each double-buffered tile's active copy.
    # Every access to such a buffer must sit inside that loop — outside it
    # "the" tile is ambiguous (and the interpreter and the lowering would be
    # free to disagree) — and two stages alternating the same tile on
    # different loops are equally ambiguous.
    parity_loop: dict[str, str] = {}
    for stmt in walk_stmts(proc.body):
        if isinstance(stmt, Stage) and stmt.parity is not None:
            known = parity_loop.setdefault(stmt.buffer, stmt.parity)
            if known != stmt.parity:
                raise TileError(
                    f"buffer '{stmt.buffer}' is staged under two parity loops "
                    f"('{known}' and '{stmt.parity}')"
                )

    bound_axes: dict[LoopKind, str] = {}
    for stmt in walk_stmts(proc.body):
        if isinstance(stmt, Loop) and stmt.kind not in (LoopKind.SEQ, LoopKind.UNROLL):
            if stmt.kind in bound_axes:
                raise TileError(
                    f"loops '{bound_axes[stmt.kind]}' and '{stmt.var}' are both bound to "
                    f"{stmt.kind.value}"
                )
            bound_axes[stmt.kind] = stmt.var

    def shape_of(name: str) -> tuple[int, ...]:
        if proc.is_buffer(name):
            return proc.buffer(name).shape
        return proc.param(name).shape

    def check_access(name: str, index: tuple[Affine, ...], ranges: dict[str, int],
                     guards: tuple[tuple[Affine, int], ...] = ()) -> None:
        if proc.is_buffer(name) and proc.buffer(name).double:
            loop_var = parity_loop.get(name)
            if loop_var is None or loop_var not in ranges:
                raise TileError(
                    f"access to double-buffered '{name}' outside its parity "
                    f"loop{f' {loop_var!r}' if loop_var else ''}: which tile is "
                    f"active is undefined there"
                )
        shape = shape_of(name)
        if len(index) != len(shape):
            raise TileError(
                f"'{name}' is {len(shape)}-dimensional but indexed with {len(index)} expressions"
            )
        for dim, expr in enumerate(index):
            lo, hi = expr.bounds(ranges)
            for guard_expr, bound in guards:
                # A guard `e < bound` caps any index that differs from e by a
                # constant — the predicate_tail pattern.
                difference = expr - guard_expr
                if difference.is_constant:
                    hi = min(hi, bound - 1 + difference.const)
            if lo < 0 or hi >= shape[dim]:
                raise TileError(
                    f"index {expr} of '{name}' spans [{lo}, {hi}] outside dimension {shape[dim]}"
                )

    def check_parity(parity: str | None, buffer: Buffer, ranges: dict[str, int]) -> None:
        if buffer.double:
            if parity is None:
                raise TileError(
                    f"double-buffered '{buffer.name}' is staged without a parity loop"
                )
            if parity not in ranges:
                raise TileError(
                    f"parity loop '{parity}' of '{buffer.name}' does not enclose the "
                    f"staging copy"
                )
        elif parity is not None:
            raise TileError(
                f"staging of '{buffer.name}' carries parity loop '{parity}' but the "
                f"buffer is not double-buffered"
            )

    def check_window(name: str, base: tuple[Affine, ...], sizes: tuple[int, ...],
                     axes: tuple[int, ...], ranges: dict[str, int],
                     limits: tuple[int | None, ...] = ()) -> None:
        shape = shape_of(name)
        if len(base) != len(shape):
            raise TileError(f"stage of '{name}' has {len(base)} base expressions for shape {shape}")
        if limits and len(limits) != len(shape):
            raise TileError(
                f"window of '{name}' has {len(limits)} clip limits for shape {shape}"
            )
        extent_of_dim = {axes[d]: sizes[d] for d in range(len(axes))}
        for dim, expr in enumerate(base):
            lo, hi = expr.bounds(ranges)
            hi += extent_of_dim.get(dim, 1) - 1
            limit = limits[dim] if limits else None
            if limit is not None:
                if limit < 1 or limit > shape[dim]:
                    raise TileError(
                        f"window clip limit {limit} of '{name}' dimension {dim} is outside "
                        f"its extent {shape[dim]}"
                    )
                # Clipped dimensions copy only in-bounds elements; the static
                # window may overhang.
                hi = min(hi, limit - 1)
            if lo < 0 or hi >= shape[dim]:
                raise TileError(
                    f"staged window of '{name}' spans [{lo}, {hi}] outside dimension {shape[dim]}"
                )

    def recurse(stmts: tuple[Stmt, ...], ranges: dict[str, int],
                guards: tuple[tuple[Affine, int], ...] = ()) -> None:
        for stmt in stmts:
            if isinstance(stmt, Loop):
                recurse(stmt.body, {**ranges, stmt.var: stmt.extent}, guards)
            elif isinstance(stmt, Guard):
                stmt.expr.bounds(ranges)  # raises on unbound variables
                recurse(stmt.body, ranges, guards + ((stmt.expr, stmt.bound),))
            elif isinstance(stmt, Assign):
                check_access(stmt.tensor, stmt.index, ranges, guards)
                for r in expr_reads(stmt.value):
                    check_access(r.tensor, r.index, ranges, guards)
            elif isinstance(stmt, Stage):
                buffer = proc.buffer(stmt.buffer)
                if tuple(stmt.sizes) != buffer.shape:
                    raise TileError(
                        f"stage sizes {stmt.sizes} do not match buffer '{buffer.name}' "
                        f"shape {buffer.shape}"
                    )
                check_parity(stmt.parity, buffer, ranges)
                check_window(stmt.tensor, stmt.base, stmt.sizes, stmt.axes, ranges,
                             stmt.limits)
            elif isinstance(stmt, Unstage):
                if proc.is_buffer(stmt.buffer):
                    check_parity(stmt.parity, proc.buffer(stmt.buffer), ranges)
                identity = tuple(range(len(stmt.sizes)))
                check_window(stmt.tensor, stmt.base, stmt.sizes, identity, ranges,
                             stmt.limits)

    recurse(proc.body, {})
    object.__setattr__(proc, "_check_proc_passed", True)
