"""Derive upper-bound resource counts from the loop nest itself.

The hand-written workloads carry hand-derived traffic formulas (Eq. 6-style
accounting done on paper); a tile-IR proc *is* that accounting.  Walking the
scheduled nest and multiplying by loop extents yields, exactly:

* ``flops`` — one per ``mul``/``add`` evaluation (an FFMA counts two);
* ``dram_bytes`` — direct tensor-parameter accesses, each staged window
  (counted once per *block*, because the cooperative copy is executed by the
  block, not per thread — the one place the interpreter's per-thread
  re-execution and the hardware cost model differ), and the write-backs;
* ``shared_bytes`` — staging-buffer writes (the window, once per block) plus
  the per-thread reads of shared buffers, counted per *distinct address*
  within an unrolled subtree: the lowering caches a loaded operand in a
  register for the whole batch, so a value read by all six FFMAs of a row
  costs one LDS, exactly the paper's ``2·B_R`` per-k-step accounting.

Guarded statements count only the iterations whose predicate holds, so
``predicate_tail`` schedules report the true (not rounded-up) traffic.

The result plugs straight into
:func:`repro.model.analyse_workload_bound` — deriving the paper's bound
inputs from the IR instead of re-deriving them per workload by hand.
"""

from __future__ import annotations

from itertools import product

from repro.arch.occupancy import OccupancyCalculator, OccupancyResult
from repro.arch.specs import GpuSpec
from repro.model.workload_bounds import WorkloadResources
from repro.tile.ir import (
    Assign,
    BinOp,
    Expr,
    Guard,
    Loop,
    LoopKind,
    Proc,
    Stage,
    Stmt,
    Unstage,
    expr_reads,
)

__all__ = ["proc_resources", "proc_shared_footprint", "proc_occupancy"]

#: The architectural per-thread register budget every lowering stays inside.
REGISTER_BUDGET = 63


def proc_shared_footprint(proc: Proc) -> int:
    """Shared-memory bytes one block of ``proc`` allocates, as lowered.

    Uses the lowering's actual layout (:func:`repro.tile.lower.shared_layout`),
    so double-buffered tiles are priced at their true cost: two copies *plus*
    the power-of-two alignment hole the parity-XOR addressing needs.
    """
    from repro.tile.lower import shared_layout

    return shared_layout(proc.buffers)[1]


def proc_occupancy(proc: Proc, gpu: GpuSpec, *,
                   registers_per_thread: int = REGISTER_BUDGET) -> OccupancyResult:
    """Occupancy of ``proc`` on ``gpu`` from its launch geometry and footprint.

    Raises :class:`~repro.errors.ResourceLimitError` when the configuration
    cannot be resident at all — e.g. when a double-buffered schedule's
    doubled tiles exceed the SM's shared-memory capacity.  The autotuner uses
    exactly that signal to prune schedules whose doubled tiles kill
    occupancy before simulating them.
    """
    from repro.tile.lower import launch_geometry

    geometry = launch_geometry(proc)
    return OccupancyCalculator(gpu).resolve(
        threads_per_block=geometry.threads_per_block,
        registers_per_thread=registers_per_thread,
        shared_memory_per_block=proc_shared_footprint(proc),
    )


def _expr_flops(expr: Expr) -> int:
    if isinstance(expr, BinOp):
        return 1 + _expr_flops(expr.lhs) + _expr_flops(expr.rhs)
    return 0


def _enumerated_fraction(guards, ranges: dict[str, int]) -> float:
    """Exact satisfied fraction of one guard group by enumeration."""
    involved = sorted({v for expr, _ in guards for v in expr.vars()})
    if not involved:
        return 1.0 if all(expr.const < bound for expr, bound in guards) else 0.0
    total = 0
    satisfied = 0
    for values in product(*(range(ranges[v]) for v in involved)):
        env = dict(zip(involved, values))
        total += 1
        if all(expr.evaluate(env) < bound for expr, bound in guards):
            satisfied += 1
    return satisfied / total if total else 1.0


def _guard_fraction(guards, ranges: dict[str, int]) -> float:
    """Fraction of iterations (over the guard expressions' variables) that
    satisfy every active guard.

    Guards over disjoint variable sets are independent, so the fraction
    factorises over connected components — the i/j/k tail guards of a
    predicated SGEMM each enumerate their own few hundred points instead of
    one cross product over the whole iteration space.
    """
    if not guards:
        return 1.0
    groups: list[tuple[set[str], list]] = []
    for guard in guards:
        vars_ = set(guard[0].vars())
        merged: tuple[set[str], list] = (set(vars_), [guard])
        remaining = []
        for group_vars, group_guards in groups:
            if group_vars & merged[0]:
                merged = (merged[0] | group_vars, merged[1] + group_guards)
            else:
                remaining.append((group_vars, group_guards))
        groups = remaining + [merged]
    fraction = 1.0
    for _, group_guards in groups:
        fraction *= _enumerated_fraction(group_guards, ranges)
    return fraction


def _window_elements(base, sizes_by_dim: dict[int, int], limits,
                     ranges: dict[str, int], rank: int) -> float:
    """Mean in-bounds elements of one bulk-copy window per execution.

    Unclipped windows are their full size; clipped windows average the
    per-dimension in-bounds counts over the values of the base expressions'
    loop variables (the boundary tiles of an imperfect problem copy fewer
    elements, and that is the *compulsory* traffic the bound model prices).
    """
    sizes = [sizes_by_dim.get(dim, 1) for dim in range(rank)]
    if not limits or all(limit is None for limit in limits):
        total = 1.0
        for size in sizes:
            total *= size
        return total
    involved = sorted({
        var
        for dim in range(rank)
        if limits[dim] is not None
        for var in base[dim].vars()
    })
    count = 0
    total = 0.0
    for values in product(*(range(ranges[v]) for v in involved)):
        env = dict(zip(involved, values))
        elements = 1.0
        for dim in range(rank):
            if limits[dim] is None:
                elements *= sizes[dim]
            else:
                in_bounds = min(sizes[dim], limits[dim] - base[dim].evaluate(env))
                elements *= max(0, in_bounds)
        count += 1
        total += elements
    return total / count if count else 0.0


def proc_resources(proc: Proc) -> WorkloadResources:
    """Count flops and DRAM/shared traffic of one full execution of ``proc``.

    Works on naive and scheduled procs alike; on a scheduled proc the staging
    structure is priced the way the simulator prices it (cooperative copies
    once per block, buffer reads per thread).
    """
    is_shared = {
        b.name for b in proc.buffers if b.memory == "shared"
    }
    is_register = {
        b.name for b in proc.buffers if b.memory == "register"
    }

    flops = 0.0
    dram = 0.0
    shared = 0.0

    def access(tensor: str, count: float) -> None:
        nonlocal dram, shared
        if tensor in is_register:
            return
        if tensor in is_shared:
            shared += 4 * count
        else:
            dram += 4 * count

    def visit(stmts: tuple[Stmt, ...], trip: float, thread_trip: float,
              ranges: dict[str, int], guards, unrolled: dict[str, int]) -> None:
        nonlocal flops
        for stmt in stmts:
            if isinstance(stmt, Loop):
                inner_ranges = {**ranges, stmt.var: stmt.extent}
                inner_unrolled = unrolled
                if stmt.kind is LoopKind.UNROLL:
                    inner_unrolled = {**unrolled, stmt.var: stmt.extent}
                if stmt.kind.is_thread:
                    visit(stmt.body, trip * stmt.extent,
                          thread_trip * stmt.extent, inner_ranges, guards,
                          inner_unrolled)
                else:
                    visit(stmt.body, trip * stmt.extent, thread_trip,
                          inner_ranges, guards, inner_unrolled)
            elif isinstance(stmt, Guard):
                visit(stmt.body, trip, thread_trip, ranges,
                      guards + ((stmt.expr, stmt.bound),), unrolled)
            elif isinstance(stmt, Assign):
                count = trip * _guard_fraction(guards, ranges)
                flops += count * (
                    _expr_flops(stmt.value) + (1 if stmt.accumulate else 0)
                )
                for r in expr_reads(stmt.value):
                    # A value whose address is invariant across enclosing
                    # unrolled loops is loaded once and reused from a
                    # register (the lowering's batch cache).
                    reuse = 1
                    varies = frozenset().union(*(i.vars() for i in r.index)) \
                        if r.index else frozenset()
                    for var, extent in unrolled.items():
                        if var not in varies:
                            reuse *= extent
                    access(r.tensor, count / reuse)
                if stmt.accumulate and stmt.tensor not in is_register:
                    # Read-modify-write touches the element twice.
                    access(stmt.tensor, count)
                access(stmt.tensor, count)
            elif isinstance(stmt, Stage):
                rank = len(stmt.base)
                sizes_by_dim = {
                    stmt.axes[bd]: stmt.sizes[bd] for bd in range(len(stmt.axes))
                }
                window = _window_elements(
                    stmt.base, sizes_by_dim, stmt.limits, ranges, rank
                )
                full_window = 1
                for size in stmt.sizes:
                    full_window *= size
                # The cooperative copy runs once per block: divide out the
                # thread-loop multiplicity the IR's per-thread semantics add.
                block_trip = trip / max(thread_trip, 1.0)
                access(stmt.tensor, block_trip * window)          # global reads
                access(stmt.buffer, block_trip * full_window)     # shared writes
            elif isinstance(stmt, Unstage):
                rank = len(stmt.base)
                sizes_by_dim = {dim: stmt.sizes[dim] for dim in range(rank)}
                window = _window_elements(
                    stmt.base, sizes_by_dim, stmt.limits, ranges, rank
                )
                access(stmt.tensor, trip * window)

    visit(proc.body, 1.0, 1.0, {}, (), {})
    return WorkloadResources(
        flops=int(round(flops)),
        dram_bytes=int(round(dram)),
        shared_bytes=int(round(shared)),
    )
