"""Lowering: scheduled loop nests → SASS kernels.

The backend walks a canonically scheduled :class:`~repro.tile.ir.Proc` —
block-bound loops outermost, thread-bound loops next, then the thread body —
and emits instructions through :class:`repro.isa.builder.KernelBuilder`,
reproducing the structure of the hand-written generators:

* a **prologue** that decomposes ``TID.X`` with shift/mask, materialises one
  base-pointer register per distinct access pattern (block/thread terms folded
  in with IMAD chains) and the shared-memory store/read address registers;
* **incremental addressing**: a pointer whose accesses walk one sequential
  loop is advanced by an IADD per iteration instead of recomputed (accesses
  with irregular loop terms fall back to IMAD-computed scratch addresses);
* **software-pipelined staging**: a ``Stage`` with ``prefetch`` at the top of
  a sequential loop becomes the paper's main-loop shape — initial global
  loads before the loop, then per iteration ``BAR; STS; BAR``, pointer
  advance, a predicated prefetch of the *next* tile, and the compute;
* **batched operand loads**: unrolled compute is emitted batch-wise — the
  reads of a subtree are hoisted in address order ahead of its arithmetic,
  reusing a small register pool, and adjacent 32-bit loads into consecutive
  registers fuse into LDS.64/LD.64 pairs (the paper's wide operand fetch);
* an **epilogue** whose write-back pointers are computed late, reusing
  registers freed by the main loop — the trick that keeps the SGEMM register
  budget inside the 63-register limit.

The result is assembled, unoptimized SASS in program order with sequential
register assignment — exactly the "compiler-like" starting point the
:mod:`repro.opt` pipeline expects to recolor and reschedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import LoweringError
from repro.isa.assembler import Kernel
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import ConstRef, MemRef
from repro.isa.registers import RZ, Register, SpecialRegister, predicate
from repro.prof.trace import trace_span
from repro.tile.ir import (
    Affine,
    Assign,
    BinOp,
    Buffer,
    Const,
    Expr,
    Guard,
    Loop,
    LoopKind,
    Proc,
    Read,
    Stage,
    Stmt,
    Unstage,
    check_proc,
    expr_reads,
    walk_stmts,
)

#: Constant-bank offset of the first kernel parameter (CUDA-ABI-like).
PARAM_BASE_OFFSET = 0x20

#: Default size of the reusable operand-register pool for batched loads.
DEFAULT_POOL_SIZE = 8

#: Guard predicates alternate between these two indices (P0 is the loop
#: branch, P1 the prefetch guard).
_LOOP_PREDICATE = 0
_PREFETCH_PREDICATE = 1
_GUARD_PREDICATES = (2, 3)
#: Predicates for clip conditions of cooperative staging loads (P4 holds the
#: element-invariant conjunction, P5 the per-element condition).
_CLIP_PREDICATES = (4, 5)


def shared_layout(
    buffers: tuple[Buffer, ...]
) -> tuple[dict[str, int], int, int]:
    """Shared-memory layout of a proc's buffers: (bases, total bytes, mask).

    Double-buffered tiles are laid out first, their parity-1 copies at a
    power-of-two byte offset ``mask`` above the parity-0 block: because every
    parity-0 address of a double tile is below ``mask``, ``address XOR mask``
    *is* ``address + mask`` — one ``LOP.XOR`` on a pointer register flips it
    between the two tiles.  Single-buffered tiles follow after the parity-1
    block.  The mask is 0 when nothing is double-buffered (and the layout is
    then the plain declaration-order packing it always was).
    """
    doubles = [b for b in buffers if b.memory == "shared" and b.double]
    singles = [b for b in buffers if b.memory == "shared" and not b.double]
    bases: dict[str, int] = {}
    offset = 0
    for buffer in doubles:
        bases[buffer.name] = offset
        offset += buffer.size_words * 4
    if doubles:
        mask = 1 << (offset - 1).bit_length()
        total = mask + offset
    else:
        mask = 0
        total = 0
    for buffer in singles:
        bases[buffer.name] = total
        total += buffer.size_words * 4
    return bases, total, mask


@dataclass(frozen=True)
class LaunchGeometry:
    """Grid/block geometry implied by a scheduled proc's loop bindings."""

    grid_x: int
    grid_y: int
    threads_x: int
    threads_y: int

    @property
    def threads_per_block(self) -> int:
        return self.threads_x * self.threads_y


def launch_geometry(proc: Proc) -> LaunchGeometry:
    """Read the launch geometry off a scheduled proc's bound loops."""
    extents = {LoopKind.BLOCK_X: 1, LoopKind.BLOCK_Y: 1,
               LoopKind.THREAD_X: 1, LoopKind.THREAD_Y: 1}
    for stmt in walk_stmts(proc.body):
        if isinstance(stmt, Loop) and stmt.kind in extents:
            extents[stmt.kind] = stmt.extent
    if extents[LoopKind.THREAD_X] == 1 and extents[LoopKind.THREAD_Y] > 1:
        raise LoweringError("a thread-y binding requires a thread-x binding")
    return LaunchGeometry(
        grid_x=extents[LoopKind.BLOCK_X],
        grid_y=extents[LoopKind.BLOCK_Y],
        threads_x=extents[LoopKind.THREAD_X],
        threads_y=extents[LoopKind.THREAD_Y],
    )


def lower(proc: Proc, *, lds_width_bits: int = 64, ld_width_bits: int = 64,
          pool_size: int | None = None) -> Kernel:
    """Lower a scheduled proc to an assembled (unoptimized) kernel.

    Parameters
    ----------
    proc:
        The scheduled loop nest.  At least one loop must be thread-bound.
    lds_width_bits:
        64 fuses adjacent *shared-memory* operand loads into register-pair
        LDS.64 (the paper's wide operand fetch); 32 keeps them narrow.
    ld_width_bits:
        The same choice for *global* loads (LD.64, the hand SGEMV's
        ``wide_loads``).  The knobs are separate because pairing constrains
        the register recoloring: the hand kernels pair exactly the streams
        whose pairs the bank-conflict-free allocation can still color.
    pool_size:
        Registers in the reusable operand pool for batched loads.  ``None``
        (the default) sizes the pool from a liveness estimate: whatever the
        63-register file has left after the fixed allocations (accumulators,
        pointers, counters, prefetch registers), grown to cover the largest
        eager staging run so wide tiles stop falling back to chunked copies.
    """
    for name, width in (("lds_width_bits", lds_width_bits), ("ld_width_bits", ld_width_bits)):
        if width not in (32, 64):
            raise LoweringError(f"{name} must be 32 or 64, got {width}")
    check_proc(proc)
    with trace_span(f"lower.{proc.name}", category="tile") as span:
        kernel = _Lowering(proc, lds_width_bits=lds_width_bits,
                           ld_width_bits=ld_width_bits, pool_size=pool_size).lower()
        span["instructions"] = kernel.instruction_count
        span["registers"] = kernel.register_count
    return kernel


# --------------------------------------------------------------------------- #
# Register bookkeeping.                                                        #
# --------------------------------------------------------------------------- #


class _RegFile:
    """Bump allocator over the 63 general registers."""

    def __init__(self) -> None:
        self._next = 0

    def take(self, count: int = 1, *, what: str = "value") -> list[Register]:
        if self._next + count > 63:
            raise LoweringError(
                f"register file exhausted allocating {count} {what} register(s) "
                f"(already using {self._next}); simplify the schedule or shrink "
                f"the register tile"
            )
        taken = [Register(self._next + i) for i in range(count)]
        self._next += count
        return taken

    @property
    def used(self) -> int:
        return self._next


class _Pool:
    """A small reusable register pool with stack-style release.

    Allocation prefers the lowest free indices and can reserve *consecutive*
    pairs, which is what lets adjacent loads fuse into LDS.64/LD.64 (wide
    loads write ``Rd`` and ``Rd+1``).
    """

    def __init__(self, regs: list[Register]) -> None:
        self._regs = regs
        self._free = sorted(r.index for r in regs)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def size(self) -> int:
        return len(self._regs)

    def alloc(self) -> Register:
        if not self._free:
            raise LoweringError("operand pool exhausted; raise pool_size")
        return Register(self._free.pop(0))

    def alloc_pair(self) -> tuple[Register, Register] | None:
        """A consecutive (prefer even-aligned) register pair, if available."""
        candidates = [
            i for pos, i in enumerate(self._free[:-1]) if self._free[pos + 1] == i + 1
        ]
        if not candidates:
            return None
        aligned = [i for i in candidates if i % 2 == 0]
        index = (aligned or candidates)[0]
        self._free.remove(index)
        self._free.remove(index + 1)
        return Register(index), Register(index + 1)

    def release(self, regs: list[Register]) -> None:
        for reg in regs:
            self._free.append(reg.index)
        self._free.sort()

    def mark(self) -> tuple[int, ...]:
        return tuple(self._free)

    def restore(self, mark: tuple[int, ...]) -> None:
        self._free = list(mark)


# --------------------------------------------------------------------------- #
# Access planning.                                                             #
# --------------------------------------------------------------------------- #


@dataclass
class _Pointer:
    """One base-pointer register: a distinct (tensor, runtime-term) pattern."""

    key: tuple
    tensor: str
    param_offset: int | None          # constant-bank slot; None for shared buffers
    shared_base: int                  # byte offset of the buffer in shared memory
    runtime_terms: tuple[tuple[str, int], ...]  # (var, byte coeff), block/thread/dist vars
    seq_terms: dict[str, int] = field(default_factory=dict)  # advance steps per loop
    scratch_seq: bool = False         # True → recompute seq terms per access
    epilogue: bool = False            # all uses in the trailing write-back zone
    is_store: bool = False            # the shared-store side of a Stage copy
    force_register: bool = False      # double-buffered: parity XOR needs a home
    sites_after_loop: set[str] = field(default_factory=set)
    reg: Register | None = None

    @property
    def needs_register(self) -> bool:
        return (self.param_offset is not None or bool(self.runtime_terms)
                or bool(self.seq_terms) or self.force_register)


@dataclass
class _StagePlan:
    """Lowering plan for one cooperative Stage copy."""

    stage: Stage
    buffer: Buffer
    shared_base: int
    per_thread: int
    groups_per_row: int               # 1-D staging: 0
    src_pointer: _Pointer
    store_pointer: _Pointer
    q_src_step: int                   # source byte stride between a thread's loads
    q_store_step: int                 # shared byte stride between a thread's stores
    src_const: int = 0                # constant byte offset of the window base
    pipelined: bool = False           # set when the stage heads a prefetch loop
    prefetch_regs: list[Register] = field(default_factory=list)


class _Lowering:
    def __init__(self, proc: Proc, *, lds_width_bits: int, ld_width_bits: int,
                 pool_size: int | None) -> None:
        self._proc = proc
        self._wide_shared = lds_width_bits == 64
        self._wide_global = ld_width_bits == 64
        self._pool_size = pool_size
        # (tensor, index) -> _split_access result; accesses are resolved once
        # per unroll iteration but classify identically every time.
        self._split_cache: dict[tuple, tuple] = {}
        # id(Read) -> env-independent half of _resolve_read.
        self._resolve_cache: dict[int, tuple] = {}
        self._geometry = launch_geometry(proc)
        if not any(
            stmt.kind.is_thread
            for stmt in walk_stmts(proc.body)
            if isinstance(stmt, Loop)
        ):
            raise LoweringError(
                "the proc has no thread-bound loop; apply bind_thread before lowering"
            )
        if self._geometry.threads_per_block < 1:
            raise LoweringError("the proc binds no thread loops")
        if self._geometry.threads_y > 1:
            tx = self._geometry.threads_x
            if tx & (tx - 1):
                raise LoweringError(
                    "thread-x extent must be a power of two when thread-y is bound "
                    f"(got {tx}); the flat TID is decomposed with shift/mask"
                )

        self._kinds: dict[str, LoopKind] = {
            stmt.var: stmt.kind for stmt in walk_stmts(proc.body) if isinstance(stmt, Loop)
        }
        self._extents: dict[str, int] = {
            stmt.var: stmt.extent for stmt in walk_stmts(proc.body) if isinstance(stmt, Loop)
        }
        self._param_offsets = {
            p.name: PARAM_BASE_OFFSET + 4 * i for i, p in enumerate(proc.params)
        }
        self._shared_bases, self._shared_bytes, self._parity_mask = shared_layout(
            proc.buffers
        )

        self._regs = _RegFile()
        self._pointers: dict[tuple, _Pointer] = {}
        self._stage_plans: dict[int, _StagePlan] = {}
        self._counters: dict[str, Register] = {}
        self._up_counters: dict[str, Register] = {}
        self._needs_up: set[str] = set()
        self._persistent_vars: set[str] = set()
        self._var_regs: dict[str, Register] = {}
        self._buffer_regs: dict[str, list[Register]] = {}
        self._guard_cursor = 0
        self._active_guard_slots: list[int] = []
        self._guard_slot_key: dict[int, object] = {}
        self._unstage_for: dict[str, Unstage] = {}
        self._droppable: set[int] = set()
        self._epilogue_clip_vars: set[str] = set()
        self._epilogue_env: dict[str, Register] = {}

        self._builder = KernelBuilder(
            name=proc.name,
            shared_memory_bytes=self._shared_bytes,
            threads_per_block=self._geometry.threads_per_block,
            metadata={
                "tile_proc": proc.name,
                "lds_width_bits": lds_width_bits,
                "ld_width_bits": ld_width_bits,
            },
        )

    # ------------------------------------------------------------------ #
    # Plan: classify accesses, decide pointers, advancing and counters.    #
    # ------------------------------------------------------------------ #

    def _var_class(self, var: str) -> str:
        kind = self._kinds.get(var)
        if kind is None:
            raise LoweringError(f"variable '{var}' has no loop")
        if kind.is_block or kind.is_thread:
            return "launch"
        return "seq" if kind is LoopKind.SEQ else "unroll"

    def _flatten(self, tensor: str, index: tuple[Affine, ...]) -> Affine:
        """Byte-offset affine of an access (padded strides for buffers)."""
        if self._proc.is_buffer(tensor):
            strides = self._proc.buffer(tensor).strides()
        else:
            strides = self._proc.param(tensor).strides()
        flat = Affine.constant(0)
        for expr, stride in zip(index, strides):
            flat = flat + expr * (stride * 4)
        return flat

    def _split_access(self, tensor: str, index: tuple[Affine, ...]):
        """(runtime_terms, seq_terms, unroll_affine) of a flattened access."""
        key = (tensor, index)
        cached = self._split_cache.get(key)
        if cached is not None:
            return cached
        flat = self._flatten(tensor, index)
        runtime: list[tuple[str, int]] = []
        seq: dict[str, int] = {}
        unroll_terms: dict[str, int] = {}
        for var, coeff in flat.terms:
            cls = self._var_class(var)
            if cls == "launch":
                runtime.append((var, coeff))
            elif cls == "seq":
                seq[var] = coeff
            else:
                unroll_terms[var] = coeff
        unroll_affine = Affine(const=flat.const,
                               terms=tuple(sorted(unroll_terms.items())))
        result = (tuple(sorted(runtime)), seq, unroll_affine)
        self._split_cache[key] = result
        return result

    def _pointer_for(self, tensor: str, runtime_terms: tuple[tuple[str, int], ...],
                     seq_terms: dict[str, int]) -> _Pointer:
        key = (tensor, runtime_terms)
        pointer = self._pointers.get(key)
        if pointer is None:
            pointer = _Pointer(
                key=key,
                tensor=tensor,
                param_offset=self._param_offsets.get(tensor),
                shared_base=self._shared_bases.get(tensor, 0),
                runtime_terms=runtime_terms,
                seq_terms=dict(seq_terms),
                # A double-buffered tile is addressed through a register even
                # when the access has no runtime terms: the parity XOR needs
                # a pointer to flip.
                force_register=(
                    self._proc.is_buffer(tensor)
                    and self._proc.buffer(tensor).memory == "shared"
                    and self._proc.buffer(tensor).double
                ),
            )
            self._pointers[key] = pointer
        elif pointer.seq_terms != seq_terms:
            # Accesses disagree on their sequential-loop pattern: give up on
            # incremental advancing and recompute addresses per access.
            pointer.scratch_seq = True
            for var in set(pointer.seq_terms) | set(seq_terms):
                self._needs_up.add(var)
        return pointer

    def _epilogue_zone(self) -> tuple[tuple[Stmt, ...], tuple[Stmt, ...]]:
        """Split the thread body into (main, trailing-Unstage epilogue)."""
        body = self._thread_body
        cut = len(body)
        while cut > 0 and isinstance(body[cut - 1], Unstage):
            cut -= 1
        return body[:cut], body[cut:]

    def _parse_structure(self) -> None:
        """Find block loops, block-level stages and the thread body.

        ``predicate_tail`` guards interposed between block/thread loops are
        *sunk* into the thread body (a guard never references a loop nested
        inside it, so pushing it below the loop filters the same instances);
        the sunk wrappers predicate per-thread work while the cooperative
        staging copies stay unguarded — their out-of-window loads land in
        buffer lanes the guarded compute never reads.
        """
        pending: list[Guard] = []
        stmts: tuple[Stmt, ...] = self._proc.body
        while len(stmts) == 1:
            head = stmts[0]
            if isinstance(head, Loop) and head.kind.is_block:
                stmts = head.body
            elif isinstance(head, Guard):
                pending.append(head)
                stmts = head.body
            else:
                break
        self._block_stages: list[Stage] = []
        thread_loop: Loop | None = None
        trailing: list[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Stage) and thread_loop is None:
                self._block_stages.append(stmt)
            elif isinstance(stmt, Loop) and stmt.kind.is_thread and thread_loop is None:
                thread_loop = stmt
            elif thread_loop is None:
                raise LoweringError(
                    f"unexpected block-level statement {stmt!r}; only staging copies may "
                    f"appear between the block and thread loops"
                )
            else:
                trailing.append(stmt)
        if thread_loop is None:
            raise LoweringError("the proc has no thread-bound loop to lower onto TID")
        if trailing:
            raise LoweringError("statements after the thread loops are not supported")
        inner = thread_loop.body
        while len(inner) == 1:
            head = inner[0]
            if isinstance(head, Loop) and head.kind.is_thread:
                inner = head.body
            elif isinstance(head, Guard):
                pending.append(head)
                inner = head.body
            else:
                break
        for stmt in inner:
            if isinstance(stmt, Loop) and stmt.kind.is_thread:
                raise LoweringError("thread loops must be perfectly nested")
        for guard in reversed(pending):
            inner = (replace(guard, body=inner),)
        self._thread_body: tuple[Stmt, ...] = inner
        self._unstage_for = {
            stmt.buffer: stmt
            for stmt in walk_stmts(self._thread_body)
            if isinstance(stmt, Unstage)
        }
        self._droppable = {
            id(stmt)
            for stmt in walk_stmts(self._thread_body)
            if isinstance(stmt, Guard) and self._guard_droppable(stmt)
        }

    def _guard_droppable(self, guard: Guard) -> bool:
        """Whether the lowering may execute ``guard``'s body unpredicated.

        True when every write in the body targets a register buffer whose
        write-back is clipped by exactly this guard's condition: the lanes
        the guard disables are then never stored, so computing garbage in
        them is unobservable (and their overhanging loads stay within the
        flat simulated memory).  A cooperative ``Stage`` does not block
        dropping — its addresses depend only on loop variables, so executing
        it for guarded-out lanes rewrites the buffer with identical content
        (and it *must* execute unguarded: every thread of the block
        participates in the copy and its barriers).
        """
        for stmt in walk_stmts(guard.body):
            if isinstance(stmt, Unstage):
                return False
            if not isinstance(stmt, Assign):
                continue
            if not (
                self._proc.is_buffer(stmt.tensor)
                and self._proc.buffer(stmt.tensor).memory == "register"
            ):
                return False
            unstage = self._unstage_for.get(stmt.tensor)
            if unstage is None or not unstage.limits:
                return False
            if not self._clip_matches(guard, unstage, stmt):
                return False
        return True

    @staticmethod
    def _clip_matches(guard: Guard, unstage: Unstage, assign: Assign) -> bool:
        """Whether ``guard`` restates a clipped write-back dimension for the
        element ``assign`` writes: ``unstage.base[d] + buffer_index == expr``
        with the same bound."""
        for dim, limit in enumerate(unstage.limits):
            if limit != guard.bound:
                continue
            for index in assign.index:
                if unstage.base[dim] + index == guard.expr:
                    return True
        return False

    def _plan(self) -> None:
        self._parse_structure()
        main, epilogue = self._epilogue_zone()

        def visit(stmts: tuple[Stmt, ...], in_epilogue: bool, seq_path: tuple[str, ...]) -> None:
            for stmt in stmts:
                if isinstance(stmt, Loop):
                    path = seq_path + ((stmt.var,) if stmt.kind is LoopKind.SEQ else ())
                    visit(stmt.body, in_epilogue, path)
                elif isinstance(stmt, Guard):
                    if id(stmt) not in self._droppable:
                        for var in stmt.expr.vars():
                            cls = self._var_class(var)
                            if cls == "launch":
                                self._persistent_vars.add(var)
                            elif cls == "seq":
                                self._needs_up.add(var)
                    visit(stmt.body, in_epilogue, seq_path)
                elif isinstance(stmt, Assign):
                    for r in expr_reads(stmt.value):
                        self._plan_access(r.tensor, r.index, in_epilogue, seq_path)
                    self._plan_access(stmt.tensor, stmt.index, in_epilogue, seq_path)
                elif isinstance(stmt, Stage):
                    self._plan_stage(stmt, seq_path)
                elif isinstance(stmt, Unstage):
                    for dim, limit in enumerate(stmt.limits):
                        if limit is None:
                            continue
                        for var in stmt.base[dim].vars():
                            cls = self._var_class(var)
                            if cls == "seq":
                                self._needs_up.add(var)
                            elif cls == "launch":
                                if in_epilogue:
                                    self._epilogue_clip_vars.add(var)
                                else:
                                    self._persistent_vars.add(var)
                    self._plan_access(stmt.tensor, stmt.base, in_epilogue, seq_path,
                                      window=stmt.sizes)

        for stage in self._block_stages:
            self._plan_stage(stage, ())
        visit(main, False, ())
        visit(epilogue, True, ())

        # A stage software-pipelines only when it heads a sequential loop
        # whose whole leading stage group asked for prefetch; everything else
        # copies eagerly and must not reserve prefetch registers.
        for stmt in walk_stmts(self._proc.body):
            if not (isinstance(stmt, Loop) and stmt.kind is LoopKind.SEQ):
                continue
            leading: list[Stage] = []
            for inner in stmt.body:
                if isinstance(inner, Stage):
                    leading.append(inner)
                else:
                    break
            if leading and all(s.prefetch for s in leading):
                for stage in leading:
                    self._stage_plans[id(stage)].pipelined = True

        # Decide advancing: a pointer whose seq terms are not all enclosed by
        # the loops it is used under cannot be advanced incrementally.
        for pointer in self._pointers.values():
            if pointer.scratch_seq:
                continue
            for var in pointer.seq_terms:
                if var not in self._seq_enclosure.get(pointer.key, set()):
                    pointer.scratch_seq = True
                    self._needs_up.update(pointer.seq_terms)
                    break

    _seq_enclosure: dict[tuple, set[str]]

    def _note_site(self, pointer: _Pointer, in_epilogue: bool,
                   seq_path: tuple[str, ...]) -> None:
        enclosure = self._seq_enclosure.setdefault(pointer.key, set(seq_path))
        enclosure.intersection_update(seq_path)
        if not hasattr(pointer, "_any_site"):
            pointer.epilogue = in_epilogue
            pointer._any_site = True  # type: ignore[attr-defined]
        elif pointer.epilogue and not in_epilogue:
            pointer.epilogue = False
        if not in_epilogue:
            # Sites in the main zone after a loop that advances the pointer
            # would observe the advanced value; record which loops must
            # restore.  Main-zone sites outside a seq loop of the pointer:
            for var in pointer.seq_terms:
                if var not in seq_path:
                    pointer.sites_after_loop.add(var)

    def _plan_access(self, tensor: str, index: tuple[Affine, ...], in_epilogue: bool,
                     seq_path: tuple[str, ...], window: tuple[int, ...] | None = None) -> None:
        if self._proc.is_buffer(tensor) and self._proc.buffer(tensor).memory == "register":
            return
        runtime, seq, _ = self._split_access(tensor, index)
        pointer = self._pointer_for(tensor, runtime, seq)
        self._note_site(pointer, in_epilogue, seq_path)

    def _plan_stage(self, stage: Stage, seq_path: tuple[str, ...]) -> None:
        buffer = self._proc.buffer(stage.buffer)
        if buffer.memory != "shared":
            raise LoweringError(f"stage target '{buffer.name}' is not a shared buffer")
        if len(stage.sizes) not in (1, 2):
            raise LoweringError("only 1-D and 2-D staging is supported")
        threads = self._geometry.threads_per_block
        elements = 1
        for size in stage.sizes:
            elements *= size
        if elements % threads:
            raise LoweringError(
                f"staged window of {elements} elements does not divide across "
                f"{threads} threads"
            )
        per_thread = elements // threads
        groups_per_row = 0
        if len(stage.sizes) == 2:
            last = stage.sizes[-1]
            if last % per_thread:
                raise LoweringError(
                    f"per-thread run of {per_thread} elements does not divide the "
                    f"staged row of {last}"
                )
            groups_per_row = last // per_thread
            if groups_per_row > 1 and groups_per_row & (groups_per_row - 1):
                raise LoweringError(
                    f"{groups_per_row} load groups per staged row is not a power of "
                    f"two; the thread distribution needs shift/mask decomposition"
                )

        tensor = stage.tensor
        strides = self._proc.param(tensor).strides()
        # Distribution variables are synthetic "launch" terms on the source
        # pointer: __b0 walks the leading buffer dimension, __b1 the group
        # within a row (already scaled by per_thread at compute time).
        runtime: list[tuple[str, int]] = []
        base_seq: dict[str, int] = {}
        base_runtime: dict[str, int] = {}
        flat_base = Affine.constant(0)
        for expr, stride in zip(stage.base, strides):
            flat_base = flat_base + expr * (stride * 4)
        for var, coeff in flat_base.terms:
            cls = self._var_class(var)
            if cls == "launch":
                base_runtime[var] = coeff
            elif cls == "seq":
                base_seq[var] = coeff
            else:
                raise LoweringError(
                    f"staged window base of '{tensor}' depends on unrolled loop '{var}'"
                )
        runtime.extend(sorted(base_runtime.items()))
        if len(stage.sizes) == 1:
            src_b0 = strides[stage.axes[0]] * 4 * per_thread
            runtime.append(("__flat_tid", src_b0))
            q_src_step = strides[stage.axes[0]] * 4
            q_store_step = 4
            store_terms: tuple[tuple[str, int], ...] = (("__flat_tid", 4 * per_thread),)
        else:
            row_stride = strides[stage.axes[0]] * 4
            col_stride = strides[stage.axes[1]] * 4
            runtime.append(("__b0", row_stride))
            runtime.append(("__b1", col_stride * per_thread))
            q_src_step = col_stride
            pitch_bytes = buffer.strides()[0] * 4
            q_store_step = 4
            store_terms = (("__b0", pitch_bytes), ("__b1", 4 * per_thread))

        src_pointer = self._pointer_for(tensor, tuple(sorted(runtime)), base_seq)
        self._note_site(src_pointer, False, seq_path)
        store_key = (stage.buffer + "@store", store_terms)
        store_pointer = self._pointers.get(store_key)
        if store_pointer is None:
            store_pointer = _Pointer(
                key=store_key,
                tensor=stage.buffer,
                param_offset=None,
                shared_base=self._shared_bases[stage.buffer],
                runtime_terms=store_terms,
                is_store=True,
            )
            self._pointers[store_key] = store_pointer
            self._seq_enclosure[store_key] = set()

        # Clipped cooperative loads predicate per element on the runtime
        # window base: sequential base terms read the loop's iteration count.
        if any(limit is not None for limit in stage.limits):
            for dim, limit in enumerate(stage.limits):
                if limit is None:
                    continue
                for var in stage.base[dim].vars():
                    if self._var_class(var) == "seq":
                        self._needs_up.add(var)

        self._stage_plans[id(stage)] = _StagePlan(
            stage=stage,
            buffer=buffer,
            shared_base=self._shared_bases[stage.buffer],
            per_thread=per_thread,
            groups_per_row=groups_per_row,
            src_pointer=src_pointer,
            store_pointer=store_pointer,
            q_src_step=q_src_step,
            q_store_step=q_store_step,
            src_const=flat_base.const,
        )

    # ------------------------------------------------------------------ #
    # Emission.                                                            #
    # ------------------------------------------------------------------ #

    def lower(self) -> Kernel:
        self._seq_enclosure = {}
        self._plan()
        self._allocate_registers()
        self._emit_prologue()
        if self._block_stages:
            self._emit_stage_group(self._block_stages, {}, guard=None,
                                   leading_barrier=False)
        main, epilogue = self._epilogue_zone()
        self._emit_block(main, {}, None)
        self._emit_epilogue(epilogue)
        with self._builder.provenance("exit"):
            self._builder.exit()
        kernel = self._builder.build()
        if kernel.register_count > 63:
            raise LoweringError(
                f"lowered kernel uses {kernel.register_count} registers, beyond the "
                f"63-register limit"
            )
        return kernel

    def _allocate_registers(self) -> None:
        # Register buffers first: their indices start at R0, and the prologue
        # borrows the first few as scratch before they are initialised.
        for buffer in self._proc.buffers:
            if buffer.memory == "register":
                count = 1
                for dim in buffer.shape:
                    count *= dim
                self._buffer_regs[buffer.name] = self._regs.take(
                    count, what=f"'{buffer.name}' accumulator"
                )
        for var in sorted(self._persistent_vars):
            self._var_regs[var] = self._regs.take(what=f"'{var}' index")[0]
        for pointer in self._pointers.values():
            if pointer.needs_register and not pointer.epilogue:
                pointer.reg = self._regs.take(what=f"'{pointer.tensor}' pointer")[0]
        seq_vars = sorted(
            var for var, kind in self._kinds.items() if kind is LoopKind.SEQ
        )
        for var in seq_vars:
            self._counters[var] = self._regs.take(what=f"'{var}' counter")[0]
            if var in self._needs_up:
                self._up_counters[var] = self._regs.take(what=f"'{var}' index")[0]
        for plan in self._stage_plans.values():
            if plan.pipelined:
                plan.prefetch_regs = self._regs.take(
                    plan.per_thread, what=f"'{plan.stage.buffer}' prefetch"
                )
        if self._pool_size is None:
            # Liveness-derived sizing: the fixed allocations above are live for
            # the whole kernel, everything else is the pool's to batch with.
            # Grow the default up to the largest eager (non-pipelined) staging
            # run so wide tiles load in one sweep instead of chunking.
            eager_need = max(
                (
                    plan.per_thread
                    for plan in self._stage_plans.values()
                    if not plan.pipelined
                ),
                default=0,
            )
            desired = max(DEFAULT_POOL_SIZE, eager_need)
        else:
            desired = self._pool_size
        self._pool = _Pool(self._regs.take(
            min(desired, 63 - self._regs.used) if 63 - self._regs.used >= 2
            else desired,
            what="operand pool",
        ))

    # -- prologue ------------------------------------------------------- #

    def _emit_prologue(self) -> None:
        with self._builder.provenance("prologue"):
            self._emit_prologue_inner()

    def _emit_prologue_inner(self) -> None:
        builder = self._builder
        geometry = self._geometry

        needed: set[str] = set()
        for pointer in self._pointers.values():
            if not pointer.epilogue:
                needed.update(var for var, _ in pointer.runtime_terms)
        block_vars = {
            var for var, kind in self._kinds.items() if kind.is_block
        }
        thread_vars = {var for var, kind in self._kinds.items() if kind.is_thread}
        needed |= self._persistent_vars
        distributions = {
            (plan.per_thread, plan.groups_per_row, len(plan.stage.sizes))
            for plan in self._stage_plans.values()
        }
        needs_tid = bool(distributions) or bool(needed & thread_vars)

        scratch: list[Register] = []
        borrow_source: list[Register] = []
        for regs in self._buffer_regs.values():
            borrow_source.extend(regs)

        def scratch_reg() -> Register:
            if borrow_source:
                return borrow_source.pop(0)
            reg = self._pool.alloc()
            scratch.append(reg)
            return reg

        env: dict[str, Register] = {}

        def materialise(var: str) -> Register:
            if var in env:
                return env[var]
            reg = self._var_regs.get(var) or scratch_reg()
            env[var] = reg
            return reg

        tid: Register | None = None
        if needs_tid:
            tid = scratch_reg()
            builder.s2r(tid, SpecialRegister.TID_X)
        for var in sorted(needed & block_vars):
            reg = materialise(var)
            axis = self._kinds[var]
            builder.s2r(
                reg,
                SpecialRegister.CTAID_X if axis is LoopKind.BLOCK_X else SpecialRegister.CTAID_Y,
            )
        thread_sorted = sorted(needed & thread_vars, key=lambda v: self._kinds[v].value)
        for var in thread_sorted:
            reg = materialise(var)
            if self._kinds[var] is LoopKind.THREAD_X:
                if geometry.threads_y > 1:
                    builder.lop_and(reg, tid, geometry.threads_x - 1)
                else:
                    builder.mov(reg, tid)
            else:
                builder.shr(reg, tid, geometry.threads_x.bit_length() - 1)

        # Cooperative-load distribution registers (shared across stages with
        # the same shape).
        dist_regs: dict[tuple, dict[str, Register]] = {}
        for plan in self._stage_plans.values():
            sig = (plan.per_thread, plan.groups_per_row, len(plan.stage.sizes))
            if sig in dist_regs:
                continue
            regs: dict[str, Register] = {}
            if len(plan.stage.sizes) == 1:
                regs["__flat_tid"] = tid
            elif (
                plan.groups_per_row == geometry.threads_x
                and geometry.threads_y > 1
                and any(self._kinds[v] is LoopKind.THREAD_X for v in env)
                and any(self._kinds[v] is LoopKind.THREAD_Y for v in env)
            ):
                # The distribution coincides with the thread decomposition:
                # reuse the already-materialised tx/ty registers.
                for var, reg in env.items():
                    if self._kinds[var] is LoopKind.THREAD_Y:
                        regs["__b0"] = reg
                    elif self._kinds[var] is LoopKind.THREAD_X:
                        regs["__b1"] = reg
            else:
                b0 = scratch_reg()
                b1 = scratch_reg()
                if plan.groups_per_row > 1:
                    builder.shr(b0, tid, plan.groups_per_row.bit_length() - 1)
                    builder.lop_and(b1, tid, plan.groups_per_row - 1)
                else:
                    builder.mov(b0, tid)
                    builder.mov32i(b1, 0)
                regs["__b0"] = b0
                regs["__b1"] = b1
            dist_regs[sig] = regs
        self._dist_regs_by_stage = {}
        for plan in self._stage_plans.values():
            sig = (plan.per_thread, plan.groups_per_row, len(plan.stage.sizes))
            self._dist_regs_by_stage[id(plan.stage)] = dist_regs[sig]

        # Base pointers.
        for pointer in self._pointers.values():
            if pointer.epilogue or pointer.reg is None:
                continue
            term_env = dict(env)
            for stage_id, regs in self._dist_regs_by_stage.items():
                plan = self._stage_plans[stage_id]
                if pointer is plan.src_pointer or pointer is plan.store_pointer:
                    term_env.update(regs)
            self._emit_pointer(pointer, pointer.reg, term_env)

        self._pool.release(scratch)
        # Borrowed accumulator registers fall out of scope here; they are
        # re-initialised by the register-buffer init statements before use.

    def _emit_pointer(self, pointer: _Pointer, reg: Register,
                      env: dict[str, Register]) -> None:
        """Materialise a base pointer into ``reg`` with MOV/IMUL + IMAD."""
        builder = self._builder
        started = False
        if pointer.param_offset is not None:
            builder.mov(reg, ConstRef(bank=0, offset=pointer.param_offset))
            started = True
        for var, coeff in pointer.runtime_terms:
            src = env.get(var)
            if src is None:
                raise LoweringError(
                    f"pointer for '{pointer.tensor}' needs '{var}' which is not "
                    f"materialised"
                )
            if started:
                builder.imad(reg, src, coeff, reg)
            else:
                builder.imul(reg, src, coeff)
                started = True
        if not started:
            builder.mov32i(reg, 0)

    # -- statement walk -------------------------------------------------- #

    def _emit_block(self, stmts: tuple[Stmt, ...], env: dict[str, int],
                    pred) -> None:
        position = 0
        stmts = tuple(stmts)
        while position < len(stmts):
            stmt = stmts[position]
            if isinstance(stmt, Stage):
                group = [stmt]
                while position + 1 < len(stmts) and isinstance(stmts[position + 1], Stage):
                    position += 1
                    group.append(stmts[position])
                self._emit_stage_group(group, env, guard=pred,
                                       leading_barrier=False)
            elif isinstance(stmt, Loop) and stmt.kind is LoopKind.SEQ:
                if pred is not None:
                    raise LoweringError("sequential loops inside guards are not supported")
                self._emit_seq_loop(stmt, env)
            elif isinstance(stmt, Loop) and stmt.kind is LoopKind.UNROLL:
                self._emit_compute((stmt,), env, pred)
            elif isinstance(stmt, Loop):
                raise LoweringError(
                    f"loop '{stmt.var}' ({stmt.kind.value}) in a position the lowering "
                    f"does not support"
                )
            elif isinstance(stmt, Guard):
                self._emit_guard(stmt, env, pred)
            elif isinstance(stmt, Assign):
                self._emit_compute((stmt,), env, pred)
            elif isinstance(stmt, Unstage):
                self._emit_unstage(stmt, env, pred)
            position += 1

    def _fold_guard(self, stmt: Guard, env: dict[str, int]):
        """(decision, residual): 'taken'/'skipped' when static, else 'runtime'."""
        const = stmt.expr.const
        residual: dict[str, int] = {}
        for var, coeff in stmt.expr.terms:
            value = env.get(var)
            if value is None:
                residual[var] = residual.get(var, 0) + coeff
            else:
                const += coeff * value
        expr = Affine(const=const, terms=tuple(sorted(residual.items())))
        if not expr.terms:
            return ("taken" if expr.const < stmt.bound else "skipped"), expr
        ranges = {var: self._extents[var] for var, _ in expr.terms}
        lo, hi = expr.bounds(ranges)
        if hi < stmt.bound:
            return "taken", expr
        if lo >= stmt.bound:
            return "skipped", expr
        return "runtime", expr

    def _guard_slot(self, pred) -> int:
        """A guard-predicate slot not in use by an enclosing runtime guard."""
        for offset in range(len(_GUARD_PREDICATES)):
            slot = _GUARD_PREDICATES[
                (self._guard_cursor + offset) % len(_GUARD_PREDICATES)
            ]
            if slot in self._active_guard_slots:
                continue
            if pred is not None and slot == pred.index:
                continue
            self._guard_cursor += 1
            return slot
        raise LoweringError(
            f"runtime guards nest deeper than the {len(_GUARD_PREDICATES)} "
            f"available guard predicates"
        )

    def _materialise_guard(self, expr: Affine, bound: int, pred):
        """ISETP ``expr < bound`` into a fresh guard predicate.

        With an enclosing predicate the result is the conjunction: the slot
        is preset false and the compare executes under the outer predicate,
        so masked lanes keep the false value (a per-lane AND).
        """
        with self._builder.provenance("guard"):
            return self._materialise_guard_inner(expr, bound, pred)

    def _materialise_guard_inner(self, expr: Affine, bound: int, pred):
        builder = self._builder
        scratch = self._pool.alloc()
        builder.mov32i(scratch, expr.const)
        for var in sorted(expr.vars()):
            reg = self._var_regs.get(var) or self._up_counters.get(var)
            if reg is None:
                raise LoweringError(f"guard variable '{var}' has no runtime register")
            builder.imad(scratch, reg, expr.coeff(var), scratch)
        slot = self._guard_slot(pred)
        guard = predicate(slot)
        if pred is None:
            builder.isetp(guard, "LT", scratch, bound)
        else:
            builder.isetp(guard, "GE", RZ, 1)  # preset false: 0 >= 1
            with builder.guarded(pred):
                builder.isetp(guard, "LT", scratch, bound)
        self._guard_slot_key[slot] = None
        self._pool.release([scratch])
        return guard

    def _compute_guard(self, expr: Affine, bound: int, pred):
        """A (cached) runtime guard predicate for unrolled compute.

        Unrolled tails evaluate the same residual condition for a run of
        instances (every register-tile element of one ``ki`` step shares one
        ``stride·ko + ki < K``); caching by residual reuses the ISETP until
        its slot is recycled.
        """
        key = (expr, bound, None if pred is None else pred.index)
        for slot in _GUARD_PREDICATES:
            if self._guard_slot_key.get(slot) == key and (
                pred is None or slot != pred.index
            ):
                return predicate(slot)
        guard = self._materialise_guard(expr, bound, pred)
        self._guard_slot_key[guard.index] = key
        return guard

    def _emit_guard(self, stmt: Guard, env: dict[str, int], pred) -> None:
        decision, expr = self._fold_guard(stmt, env)
        if decision == "skipped":
            return
        if decision == "taken" or id(stmt) in self._droppable:
            self._emit_block(stmt.body, env, pred)
            return
        guard = self._materialise_guard(expr, stmt.bound, pred)
        self._active_guard_slots.append(guard.index)
        try:
            self._emit_block(stmt.body, env, guard)
        finally:
            self._active_guard_slots.pop()

    # -- sequential loops ------------------------------------------------ #

    def _emit_seq_loop(self, loop: Loop, env: dict[str, int]) -> None:
        with self._builder.provenance(f"loop({loop.var})"):
            self._emit_seq_loop_inner(loop, env)

    def _emit_seq_loop_inner(self, loop: Loop, env: dict[str, int]) -> None:
        builder = self._builder
        counter = self._counters[loop.var]
        up = self._up_counters.get(loop.var)
        builder.mov32i(counter, loop.extent)
        if up is not None:
            builder.mov32i(up, 0)
        enclosing_seq = bool(getattr(self, "_seq_stack", ()))
        self._seq_stack = getattr(self, "_seq_stack", []) + [loop.var]

        body = list(loop.body)
        stages: list[Stage] = []
        while body and isinstance(body[0], Stage):
            stages.append(body.pop(0))
        pipelined = bool(stages) and all(
            self._stage_plans[id(s)].pipelined for s in stages
        )
        parity = bool(stages) and all(s.parity is not None for s in stages)
        if not parity and any(s.parity is not None for s in stages):
            raise LoweringError(
                f"loop '{loop.var}' mixes double-buffered and single-buffered "
                f"stages; double_buffer every staged operand of the loop"
            )
        if parity and any(s.parity != loop.var for s in stages):
            raise LoweringError(
                f"a stage heading '{loop.var}' alternates on a different loop"
            )

        advanced = [
            p for p in self._pointers.values()
            if not p.scratch_seq and loop.var in p.seq_terms and p.reg is not None
        ]
        stage_pointers = {
            id(self._stage_plans[id(s)].src_pointer) for s in stages
        } if pipelined else set()
        early = [p for p in advanced if id(p) in stage_pointers]
        late = [p for p in advanced if id(p) not in stage_pointers]

        # Pointers whose parity bit flips each iteration of a double-buffered
        # loop: the stage's shared-store pointers, and every pointer that
        # reads one of the alternating tiles.
        parity_stores: list[_Pointer] = []
        parity_reads: list[_Pointer] = []
        if parity:
            buffers = {s.buffer for s in stages}
            seen: set[int] = set()
            for stage in stages:
                pointer = self._stage_plans[id(stage)].store_pointer
                if id(pointer) not in seen:
                    seen.add(id(pointer))
                    parity_stores.append(pointer)
            parity_reads = [
                p for p in self._pointers.values()
                if p.tensor in buffers and not p.is_store and p.reg is not None
            ]

        if pipelined:
            for stage in stages:
                self._emit_prefetch_loads(self._stage_plans[id(stage)], guard=None)
        if parity and pipelined:
            # Double buffering needs only ONE barrier per iteration: tile 0
            # is staged into parity half 0 ahead of the loop, the in-loop
            # barrier separates each iteration's reads from the previous
            # iteration's stores, and the prefetched stores of tile ``i + 1``
            # land in the *inactive* half after iteration ``i``'s compute —
            # the write-after-read hazard the second barrier used to fence is
            # gone.  Re-entry from an enclosing loop needs one fence: the
            # previous run's final reads may target the half these pre-loop
            # stores rewrite.
            if enclosing_seq:
                builder.bar(0)
            for stage in stages:
                self._emit_stage_stores(self._stage_plans[id(stage)],
                                        from_prefetch=True, guard=None)

        if parity and not pipelined and enclosing_seq:
            # Eager parity stores write their half right at the loop head;
            # fence them once from a previous run's final reads.
            builder.bar(0)

        label = builder.label(f"L_{loop.var}")
        # Guard predicates computed outside the loop may involve this loop's
        # iteration counter; force re-evaluation inside the body (and again
        # after the loop, when the counter holds its final value).
        self._guard_slot_key.clear()
        p_more = predicate(_PREFETCH_PREDICATE)
        bottom_decrement = True
        if stages and parity:
            if pipelined:
                builder.bar(0)
                if loop.extent > 1:
                    for pointer in early:
                        builder.iadd(pointer.reg, pointer.reg,
                                     pointer.seq_terms[loop.var])
                    builder.iadd(counter, counter, -1)
                    bottom_decrement = False
                    builder.isetp(p_more, "GT", counter, 0)
                    for stage in stages:
                        self._emit_prefetch_loads(
                            self._stage_plans[id(stage)], guard=p_more,
                            advance_var=loop.var, advance_steps=1,
                        )
            else:
                # Eager double buffering: the current tile lands in its
                # parity half, then a single barrier fences the stores from
                # the reads.  (Re-entry from an enclosing loop was fenced
                # once, ahead of the label.)
                self._emit_stage_group(stages, env, guard=None,
                                       leading_barrier=False)
        elif stages:
            builder.bar(0)
            if pipelined:
                for stage in stages:
                    self._emit_stage_stores(self._stage_plans[id(stage)],
                                            from_prefetch=True, guard=None)
            else:
                self._emit_stage_group(stages, env, guard=None,
                                       leading_barrier=False)
            builder.bar(0)

        if pipelined and not parity:
            for pointer in early:
                builder.iadd(pointer.reg, pointer.reg, pointer.seq_terms[loop.var])
            builder.iadd(counter, counter, -1)
            bottom_decrement = False
            builder.isetp(p_more, "GT", counter, 0)
            for stage in stages:
                self._emit_prefetch_loads(self._stage_plans[id(stage)], guard=p_more,
                                          advance_var=loop.var)

        self._emit_block(tuple(body), env, None)

        if parity and loop.extent > 1:
            if pipelined:
                # After the compute: tile ``i + 1``'s prefetched values land
                # in the inactive half, fenced from their readers by the
                # *next* iteration's barrier.  The prefetch predicate is
                # re-evaluated here — a nested pipelined staging loop in the
                # body shares P1 and would otherwise leave it false.
                builder.isetp(p_more, "GT", counter, 0)
                for pointer in parity_stores:
                    builder.lop_xor(pointer.reg, pointer.reg, self._parity_mask)
                for stage in stages:
                    self._emit_stage_stores(self._stage_plans[id(stage)],
                                            from_prefetch=True, guard=p_more)
                for pointer in parity_reads:
                    builder.lop_xor(pointer.reg, pointer.reg, self._parity_mask)
            else:
                for pointer in parity_stores + parity_reads:
                    builder.lop_xor(pointer.reg, pointer.reg, self._parity_mask)

        for pointer in late:
            builder.iadd(pointer.reg, pointer.reg, pointer.seq_terms[loop.var])
        if bottom_decrement:
            builder.iadd(counter, counter, -1)
        if up is not None:
            builder.iadd(up, up, 1)
        p_loop = predicate(_LOOP_PREDICATE)
        builder.isetp(p_loop, "GT", counter, 0)
        builder.bra(label, predicate=p_loop)
        self._guard_slot_key.clear()

        self._seq_stack.pop()
        for pointer in advanced:
            # Rewind the pointer when its advanced value survives the loop:
            # either later statements use it, or an enclosing sequential loop
            # will run this loop again from the advanced value.  (A parity
            # loop of one iteration never advances its stage pointers — the
            # in-loop prefetch is elided entirely.)
            steps = loop.extent
            if parity and pipelined and loop.extent == 1 and pointer in early:
                steps = 0
            if steps and (loop.var in pointer.sites_after_loop or enclosing_seq):
                builder.iadd(
                    pointer.reg, pointer.reg, -steps * pointer.seq_terms[loop.var]
                )
        if parity and loop.extent > 1 and loop.extent % 2 and enclosing_seq:
            # An enclosing loop will run this loop again: restore parity 0.
            for pointer in parity_stores + parity_reads:
                builder.lop_xor(pointer.reg, pointer.reg, self._parity_mask)

    # -- staging --------------------------------------------------------- #

    def _stage_clip_dims(self, stage: Stage) -> tuple[list[int], int | None]:
        """Clipped tensor dims of a stage: (element-invariant, q-varying).

        A thread's consecutive elements walk ``axes[-1]``; a clip on that
        dimension needs a per-element predicate, clips on any other dimension
        are invariant across the thread's run.
        """
        if not stage.limits or all(limit is None for limit in stage.limits):
            return [], None
        qdim = stage.axes[-1]
        invariant = [
            dim for dim, limit in enumerate(stage.limits)
            if limit is not None and dim != qdim
        ]
        varying = qdim if stage.limits[qdim] is not None else None
        return invariant, varying

    def _clip_var_reg(self, var: str, plan: _StagePlan,
                      cache: dict[str, Register], temps: list[Register]) -> Register:
        """A live register holding ``var``'s runtime value at staging time.

        Persistent index registers and up-counters are reused; everything
        else (block/thread indices, the cooperative-load distribution) is
        recomputed from the special registers into pool scratch — the clip
        conditions must not widen the kernel's persistent register set.
        """
        if var in cache:
            return cache[var]
        builder = self._builder
        geometry = self._geometry

        def fresh() -> Register:
            reg = self._pool.alloc()
            temps.append(reg)
            return reg

        def tid_reg() -> Register:
            if "__tid" not in cache:
                reg = fresh()
                builder.s2r(reg, SpecialRegister.TID_X)
                cache["__tid"] = reg
            return cache["__tid"]

        reg = self._var_regs.get(var) or self._up_counters.get(var)
        if reg is None and var == "__flat_tid":
            reg = tid_reg()
        elif reg is None and var in ("__b0", "__b1"):
            groups = plan.groups_per_row
            if groups <= 1:
                if var == "__b0":
                    reg = tid_reg()
                else:
                    reg = fresh()
                    builder.mov32i(reg, 0)
            else:
                tid = tid_reg()
                reg = fresh()
                if var == "__b0":
                    builder.shr(reg, tid, groups.bit_length() - 1)
                else:
                    builder.lop_and(reg, tid, groups - 1)
        elif reg is None:
            kind = self._kinds.get(var)
            if kind is None:
                raise LoweringError(f"no runtime value for staging variable '{var}'")
            if kind.is_block:
                reg = fresh()
                builder.s2r(
                    reg,
                    SpecialRegister.CTAID_X if kind is LoopKind.BLOCK_X
                    else SpecialRegister.CTAID_Y,
                )
            elif kind is LoopKind.THREAD_X:
                tid = tid_reg()
                if geometry.threads_y > 1:
                    reg = fresh()
                    builder.lop_and(reg, tid, geometry.threads_x - 1)
                else:
                    reg = tid
            elif kind is LoopKind.THREAD_Y:
                tid = tid_reg()
                reg = fresh()
                builder.shr(reg, tid, geometry.threads_x.bit_length() - 1)
            else:
                raise LoweringError(
                    f"staging clip condition depends on {kind.value} loop '{var}'"
                )
        cache[var] = reg
        return reg

    def _emit_clip_index(self, plan: _StagePlan, dim: int, advance_var: str | None,
                         cache: dict[str, Register], temps: list[Register],
                         advance_steps: int = 1) -> Register:
        """The runtime tensor-dim index of a thread's first element in ``dim``.

        ``advance_var`` shifts the sequential base ``advance_steps`` staging
        steps forward — the in-loop prefetch targets a tile *ahead* of the
        one the iteration register describes.
        """
        builder = self._builder
        stage = plan.stage
        expr = stage.base[dim]
        const = expr.const + (
            expr.coeff(advance_var) * advance_steps if advance_var else 0
        )
        reg = self._pool.alloc()
        temps.append(reg)
        builder.mov32i(reg, const)
        for var in sorted(expr.vars()):
            builder.imad(
                reg, self._clip_var_reg(var, plan, cache, temps), expr.coeff(var), reg
            )
        if len(stage.sizes) == 2:
            if dim == stage.axes[0]:
                builder.iadd(reg, reg, self._clip_var_reg("__b0", plan, cache, temps))
            elif dim == stage.axes[1]:
                builder.imad(
                    reg, self._clip_var_reg("__b1", plan, cache, temps),
                    plan.per_thread, reg,
                )
        elif dim == stage.axes[0]:
            builder.imad(
                reg, self._clip_var_reg("__flat_tid", plan, cache, temps),
                plan.per_thread, reg,
            )
        return reg

    def _stage_clip_plan(self, plan: _StagePlan, guard, advance_var: str | None,
                         cache: dict[str, Register], temps: list[Register],
                         advance_steps: int = 1):
        """Prepare a clipped stage's load predicates.

        Returns ``(base_pred, varying_reg, varying_limit)``: the
        element-invariant clip conjunction (folded with ``guard``) lands in
        one predicate, and the q-varying dimension's index register is left
        for :meth:`_element_guard` to compare per element.
        """
        builder = self._builder
        invariant, varying = self._stage_clip_dims(plan.stage)
        base_pred = guard
        first = True
        for dim in invariant:
            slot = predicate(_CLIP_PREDICATES[0])
            reg = self._emit_clip_index(plan, dim, advance_var, cache, temps,
                                        advance_steps)
            limit = plan.stage.limits[dim]
            if first and base_pred is None:
                builder.isetp(slot, "LT", reg, limit)
            elif first:
                builder.isetp(slot, "GE", RZ, 1)  # preset false: 0 >= 1
                with builder.guarded(base_pred):
                    builder.isetp(slot, "LT", reg, limit)
            else:
                with builder.guarded(slot):
                    builder.isetp(slot, "LT", reg, limit)
            first = False
            base_pred = slot
            temps.remove(reg)
            self._pool.release([reg])
        varying_reg = None
        varying_limit = 0
        if varying is not None:
            varying_reg = self._emit_clip_index(plan, varying, advance_var, cache,
                                                temps, advance_steps)
            varying_limit = plan.stage.limits[varying]
        return base_pred, varying_reg, varying_limit

    def _element_guard(self, base_pred, varying_reg, varying_limit: int, q: int):
        """The load predicate of staged element ``q`` (``None`` = unguarded)."""
        if varying_reg is None:
            return base_pred
        builder = self._builder
        slot = predicate(_CLIP_PREDICATES[1])
        if base_pred is None:
            builder.isetp(slot, "LT", varying_reg, varying_limit - q)
        else:
            builder.isetp(slot, "GE", RZ, 1)  # preset false: 0 >= 1
            with builder.guarded(base_pred):
                builder.isetp(slot, "LT", varying_reg, varying_limit - q)
        return slot

    def _emit_prefetch_loads(self, plan: _StagePlan, guard, *,
                             advance_var: str | None = None,
                             advance_steps: int = 1) -> None:
        """Global loads of one staged tile into the prefetch registers.

        Clipped stages predicate every element's load on its window
        condition (conjoined with ``guard``), so the dead lanes of a
        boundary tile stop reading slack memory — the simulated DRAM traffic
        of a clipped pipelined stage equals the compulsory traffic the bound
        model prices.
        """
        with self._builder.provenance(f"stage_shared({plan.stage.buffer})/prefetch"):
            self._emit_prefetch_loads_inner(plan, guard, advance_var=advance_var,
                                            advance_steps=advance_steps)

    def _emit_prefetch_loads_inner(self, plan: _StagePlan, guard, *,
                                   advance_var: str | None = None,
                                   advance_steps: int = 1) -> None:
        builder = self._builder
        base = plan.src_pointer.reg
        if not plan.stage.limits or all(l is None for l in plan.stage.limits):
            def emit() -> None:
                q = 0
                while q < plan.per_thread:
                    offset = plan.src_const + q * plan.q_src_step
                    reg = plan.prefetch_regs[q]
                    if (
                        self._wide_global
                        and plan.q_src_step == 4
                        and q + 1 < plan.per_thread
                        and plan.prefetch_regs[q + 1].index == reg.index + 1
                    ):
                        builder.ld(reg, MemRef(base=base, offset=offset), width=64)
                        q += 2
                    else:
                        builder.ld(reg, MemRef(base=base, offset=offset), width=32)
                        q += 1

            if guard is not None:
                with builder.guarded(guard):
                    emit()
            else:
                emit()
            return

        temps: list[Register] = []
        cache: dict[str, Register] = {}
        base_pred, varying_reg, varying_limit = self._stage_clip_plan(
            plan, guard, advance_var, cache, temps, advance_steps
        )
        for q in range(plan.per_thread):
            pred = self._element_guard(base_pred, varying_reg, varying_limit, q)
            offset = plan.src_const + q * plan.q_src_step
            if pred is not None:
                with builder.guarded(pred):
                    builder.ld(plan.prefetch_regs[q], MemRef(base=base, offset=offset),
                               width=32)
            else:
                builder.ld(plan.prefetch_regs[q], MemRef(base=base, offset=offset),
                           width=32)
        self._pool.release(temps)

    def _emit_stage_stores(self, plan: _StagePlan, *, from_prefetch: bool,
                           guard, temps: list[Register] | None = None) -> None:
        with self._builder.provenance(f"stage_shared({plan.stage.buffer})/store"):
            self._emit_stage_stores_inner(plan, from_prefetch=from_prefetch,
                                          guard=guard, temps=temps)

    def _emit_stage_stores_inner(self, plan: _StagePlan, *, from_prefetch: bool,
                                 guard, temps: list[Register] | None = None) -> None:
        builder = self._builder
        regs = plan.prefetch_regs if from_prefetch else temps
        store_base = plan.store_pointer.reg

        def emit() -> None:
            for q in range(plan.per_thread):
                builder.sts(
                    MemRef(base=store_base, offset=plan.shared_base + q * plan.q_store_step),
                    regs[q],
                )

        if guard is not None:
            with builder.guarded(guard):
                emit()
        else:
            emit()

    def _emit_stage_group(self, stages: list[Stage], env: dict[str, int], *,
                          guard, leading_barrier: bool) -> None:
        """Non-pipelined staging: loads into pool temps, stores, barrier.

        Each stage's temporaries are released before the next stage loads, so
        two staged operands never need 2× the per-tile registers (the price is
        load-use adjacency — the pipelined path avoids it).
        """
        builder = self._builder
        if leading_barrier:
            with builder.provenance("barrier"):
                builder.bar(0)
        for stage in stages:
            with builder.provenance(f"stage_shared({stage.buffer})/copy"):
                self._emit_stage_copy(stage, guard)
        with builder.provenance("barrier"):
            builder.bar(0)

    def _emit_stage_copy(self, stage: Stage, guard) -> None:
        """One eager cooperative copy: chunked loads into pool temps, stores."""
        builder = self._builder
        plan = self._stage_plans[id(stage)]
        base = plan.src_pointer.reg
        clipped = bool(stage.limits) and any(
            limit is not None for limit in stage.limits
        )
        clip_temps: list[Register] = []
        base_pred, varying_reg, varying_limit = guard, None, 0
        if clipped:
            base_pred, varying_reg, varying_limit = self._stage_clip_plan(
                plan, guard, None, {}, clip_temps
            )
        chunk = max(1, min(plan.per_thread, self._pool.free_count))
        for start in range(0, plan.per_thread, chunk):
            count = min(chunk, plan.per_thread - start)
            temps = [self._pool.alloc() for _ in range(count)]
            for i in range(count):
                pred = (
                    self._element_guard(
                        base_pred, varying_reg, varying_limit, start + i
                    )
                    if clipped else guard
                )
                self._emit_predicated(
                    lambda i=i: builder.ld(
                        temps[i],
                        MemRef(
                            base=base,
                            offset=plan.src_const + (start + i) * plan.q_src_step,
                        ),
                    ),
                    pred,
                )
            for i in range(count):
                self._emit_predicated(
                    lambda i=i: builder.sts(
                        MemRef(
                            base=plan.store_pointer.reg,
                            offset=plan.shared_base + (start + i) * plan.q_store_step,
                        ),
                        temps[i],
                    ),
                    guard,
                )
            self._pool.release(temps)
        self._pool.release(clip_temps)

    # -- batched compute -------------------------------------------------- #

    def _resolve_read(self, read_: Read, env: dict[str, int]):
        """A loadable read → ('mem', base_reg, offset, space) or ('reg', register)."""
        # The pointer, seq pattern and unroll affine of a read are all
        # env-independent; only the constant fold of the unroll terms varies
        # across iterations.  Key by identity: the template Read objects stay
        # alive (and are re-visited per unroll value) for the whole lowering.
        cached = self._resolve_cache.get(id(read_))
        if cached is None:
            tensor = read_.tensor
            if (
                self._proc.is_buffer(tensor)
                and self._proc.buffer(tensor).memory == "register"
            ):
                cached = (read_, None, None, 0, False, None)
            else:
                runtime, seq, unroll_affine = self._split_access(tensor, read_.index)
                pointer = self._pointer_for(tensor, runtime, seq)
                shared = self._proc.is_buffer(tensor)
                extra = pointer.shared_base if shared else 0
                cached = (read_, pointer, unroll_affine, extra, shared, seq)
            self._resolve_cache[id(read_)] = cached
        _, pointer, unroll_affine, extra, shared, seq = cached
        if pointer is None:
            return ("reg", self._register_element(read_.tensor, read_.index, env))
        total = unroll_affine.const
        for var, coeff in unroll_affine.terms:
            value = env.get(var)
            if value is None:
                offset = unroll_affine.substitute(
                    {v: Affine.constant(c) for v, c in env.items()}
                )
                raise LoweringError(
                    f"access {read_} keeps unresolved unrolled terms {offset}; "
                    f"unroll the loops it indexes with"
                )
            total += coeff * value
        base = pointer.reg if pointer.reg is not None else RZ
        return ("mem", pointer, base, total + extra, shared, seq)

    def _register_element(self, buffer_name: str, index: tuple[Affine, ...],
                          env: dict[str, int]) -> Register:
        buffer = self._proc.buffer(buffer_name)
        coords = []
        for expr in index:
            total = expr.const
            for var, coeff in expr.terms:
                value = env.get(var)
                if value is None:
                    raise LoweringError(
                        f"register buffer '{buffer_name}' indexed by non-unrolled "
                        f"expression {expr}"
                    )
                total += coeff * value
            coords.append(total)
        flat = int(np.ravel_multi_index(tuple(coords), buffer.shape))
        return self._buffer_regs[buffer_name][flat]

    def _scratch_address(self, pointer: _Pointer, base: Register, offset: int,
                         seq_terms: dict[str, int]):
        """IMAD-compose a scratch address for irregular seq-loop accesses."""
        if not (pointer.scratch_seq and seq_terms):
            return base, offset, None
        builder = self._builder
        scratch = self._pool.alloc()
        first = True
        for var, coeff in sorted(seq_terms.items()):
            up = self._up_counters.get(var)
            if up is None:
                raise LoweringError(f"no iteration register for seq loop '{var}'")
            if first:
                builder.imad(scratch, up, coeff, base)
                first = False
            else:
                builder.imad(scratch, up, coeff, scratch)
        return scratch, offset, scratch

    def _collect_reads(self, stmts: tuple[Stmt, ...], env: dict[str, int]):
        """Unique loadable reads of a compute subtree, with use counts."""
        found: dict[tuple, list] = {}

        def visit(stmts_: tuple[Stmt, ...], env_: dict[str, int], group: int) -> None:
            for stmt in stmts_:
                if isinstance(stmt, Loop):
                    for value in range(stmt.extent):
                        visit(stmt.body, {**env_, stmt.var: value},
                              group if stmts_ is not stmts else value)
                elif isinstance(stmt, Guard):
                    if self._fold_guard(stmt, env_)[0] != "skipped":
                        visit(stmt.body, env_, group)
                elif isinstance(stmt, Assign):
                    for r in expr_reads(stmt.value):
                        resolved = self._resolve_read(r, env_)
                        if resolved[0] != "mem":
                            continue
                        _, pointer, base, offset, shared, seq = resolved
                        key = (id(pointer), offset)
                        entry = found.setdefault(
                            key, [pointer, base, offset, shared, seq, set()]
                        )
                        entry[5].add(group)

        visit(stmts, env, -1)
        return found

    def _emit_compute(self, stmts: tuple[Stmt, ...], env: dict[str, int], pred) -> None:
        mark = self._pool.mark()
        self._compute_cache: dict[tuple, Register] = {}
        with self._builder.provenance("compute"):
            self._emit_compute_rec(stmts, env, pred, self._compute_cache)
        self._pool.restore(mark)

    def _guard_scratch_reserve(self, stmts: tuple[Stmt, ...]) -> int:
        """Pool registers to hold back for runtime-guard ISETP scratch."""
        for stmt in walk_stmts(stmts):
            if isinstance(stmt, Guard) and id(stmt) not in self._droppable:
                if any(
                    self._var_class(var) in ("launch", "seq")
                    for var in stmt.expr.vars()
                ):
                    return 1
        return 0

    def _emit_compute_rec(self, stmts: tuple[Stmt, ...], env: dict[str, int], pred,
                          cache: dict[tuple, Register]) -> None:
        if len(stmts) == 1 and isinstance(stmts[0], Guard):
            # A guard heading the batch: fold it, drop it, or predicate the
            # whole batch, then keep batching its body.
            stmt = stmts[0]
            decision, expr = self._fold_guard(stmt, env)
            if decision == "skipped":
                return
            if decision == "taken" or id(stmt) in self._droppable:
                self._emit_compute_rec(stmt.body, env, pred, cache)
                return
            guard = self._compute_guard(expr, stmt.bound, pred)
            self._active_guard_slots.append(guard.index)
            try:
                self._emit_compute_rec(stmt.body, env, guard, cache)
            finally:
                self._active_guard_slots.pop()
            return
        reads = self._collect_reads(stmts, env)
        uncached = {k: v for k, v in reads.items() if k not in cache}
        budget = self._pool.free_count - self._guard_scratch_reserve(stmts)
        if len(uncached) <= budget:
            self._preload(uncached, pred, cache)
            self._emit_compute_body(stmts, env, pred, cache)
            return
        if len(stmts) != 1 or not isinstance(stmts[0], Loop):
            raise LoweringError(
                f"compute batch needs {len(uncached)} operand registers but the pool "
                f"holds {self._pool.free_count}; raise pool_size or split the loop"
            )
        loop = stmts[0]
        common = {
            k: v for k, v in uncached.items() if len(v[5]) > 1
        }
        if len(common) > self._pool.free_count:
            raise LoweringError(
                f"{len(common)} loop-invariant operands exceed the {self._pool.free_count}"
                f"-register pool; raise pool_size or split the loop further"
            )
        self._preload(common, pred, cache)
        for value in range(loop.extent):
            mark = self._pool.mark()
            inner_cache = dict(cache)
            self._emit_compute_rec(loop.body, {**env, loop.var: value}, pred, inner_cache)
            self._pool.restore(mark)

    def _preload(self, reads: dict, pred, cache: dict[tuple, Register]) -> None:
        """Load a batch of operands, pairing adjacent addresses into wide loads."""
        builder = self._builder
        ordered = sorted(reads.items(), key=lambda item: (item[1][0].key, item[1][2]))
        position = 0
        while position < len(ordered):
            key, (pointer, base, offset, shared, seq, _) = ordered[position]
            paired = None
            wide = self._wide_shared if shared else self._wide_global
            if wide and position + 1 < len(ordered):
                next_key, (next_pointer, _, next_offset, _, _, _) = ordered[position + 1]
                if next_pointer is pointer and next_offset == offset + 4 and not (
                    pointer.scratch_seq and seq
                ):
                    paired = next_key
            address, resolved_offset, scratch = self._scratch_address(
                pointer, base, offset, seq
            )
            opcode = builder.lds if shared else builder.ld
            if paired is not None:
                pair = self._pool.alloc_pair()
                if pair is None:
                    paired = None
                else:
                    lo, hi = pair
                    if pred is not None:
                        with builder.guarded(pred):
                            opcode(lo, MemRef(base=address, offset=resolved_offset), width=64)
                    else:
                        opcode(lo, MemRef(base=address, offset=resolved_offset), width=64)
                    cache[key] = lo
                    cache[paired] = hi
                    position += 2
            if paired is None:
                reg = self._pool.alloc()
                if pred is not None:
                    with builder.guarded(pred):
                        opcode(reg, MemRef(base=address, offset=resolved_offset), width=32)
                else:
                    opcode(reg, MemRef(base=address, offset=resolved_offset), width=32)
                cache[key] = reg
                position += 1
            if scratch is not None:
                self._pool.release([scratch])

    def _emit_compute_body(self, stmts: tuple[Stmt, ...], env: dict[str, int], pred,
                           cache: dict[tuple, Register]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Loop):
                for value in range(stmt.extent):
                    self._emit_compute_body(stmt.body, {**env, stmt.var: value}, pred, cache)
            elif isinstance(stmt, Guard):
                decision, expr = self._fold_guard(stmt, env)
                if decision == "skipped":
                    continue
                if decision == "taken" or id(stmt) in self._droppable:
                    self._emit_compute_body(stmt.body, env, pred, cache)
                else:
                    guard = self._compute_guard(expr, stmt.bound, pred)
                    self._active_guard_slots.append(guard.index)
                    try:
                        self._emit_compute_body(stmt.body, env, guard, cache)
                    finally:
                        self._active_guard_slots.pop()
            elif isinstance(stmt, Assign):
                self._emit_assign(stmt, env, pred, cache)
            else:
                raise LoweringError(f"statement {stmt!r} inside a compute batch")

    def _operand(self, expr: Expr, env: dict[str, int], pred,
                 cache: dict[tuple, Register], temps: list[Register]) -> Register:
        builder = self._builder
        if isinstance(expr, Read):
            resolved = self._resolve_read(expr, env)
            if resolved[0] == "reg":
                return resolved[1]
            _, pointer, base, offset, shared, seq = resolved
            key = (id(pointer), offset)
            if key in cache:
                return cache[key]
            address, resolved_offset, scratch = self._scratch_address(
                pointer, base, offset, seq
            )
            reg = self._pool.alloc()
            temps.append(reg)
            op = builder.lds if shared else builder.ld
            if pred is not None:
                with builder.guarded(pred):
                    op(reg, MemRef(base=address, offset=resolved_offset), width=32)
            else:
                op(reg, MemRef(base=address, offset=resolved_offset), width=32)
            if scratch is not None:
                self._pool.release([scratch])
            return reg
        if isinstance(expr, Const):
            reg = self._pool.alloc()
            temps.append(reg)
            self._emit_predicated(lambda: builder.mov32i(reg, float(expr.value)), pred)
            return reg
        if isinstance(expr, BinOp):
            lhs = self._operand(expr.lhs, env, pred, cache, temps)
            rhs = self._operand(expr.rhs, env, pred, cache, temps)
            reg = self._pool.alloc()
            temps.append(reg)
            emit = builder.fmul if expr.op == "mul" else builder.fadd
            self._emit_predicated(lambda: emit(reg, lhs, rhs), pred)
            return reg
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _emit_predicated(self, emit, pred) -> None:
        if pred is not None:
            with self._builder.guarded(pred):
                emit()
        else:
            emit()

    def _emit_assign(self, stmt: Assign, env: dict[str, int], pred,
                     cache: dict[tuple, Register]) -> None:
        builder = self._builder
        temps: list[Register] = []
        is_reg_dest = (
            self._proc.is_buffer(stmt.tensor)
            and self._proc.buffer(stmt.tensor).memory == "register"
        )
        if is_reg_dest:
            dest = self._register_element(stmt.tensor, stmt.index, env)
            value = stmt.value
            if stmt.accumulate and isinstance(value, BinOp) and value.op == "mul":
                a = self._operand(value.lhs, env, pred, cache, temps)
                b = self._operand(value.rhs, env, pred, cache, temps)
                self._emit_predicated(lambda: builder.ffma(dest, a, b, dest), pred)
            elif stmt.accumulate:
                v = self._operand(value, env, pred, cache, temps)
                self._emit_predicated(lambda: builder.fadd(dest, dest, v), pred)
            elif isinstance(value, Const):
                self._emit_predicated(lambda: builder.mov32i(dest, float(value.value)), pred)
            elif isinstance(value, Read):
                src = self._operand(value, env, pred, cache, temps)
                self._emit_predicated(lambda: builder.mov(dest, src), pred)
            else:
                v = self._operand(value, env, pred, cache, temps)
                self._emit_predicated(lambda: builder.mov(dest, v), pred)
        else:
            runtime, seq, unroll_affine = self._split_access(stmt.tensor, stmt.index)
            offset_expr = unroll_affine.substitute(
                {v: Affine.constant(c) for v, c in env.items()}
            )
            if not offset_expr.is_constant:
                raise LoweringError(
                    f"store {stmt} keeps unresolved unrolled terms; unroll its loops"
                )
            pointer = self._pointer_for(stmt.tensor, runtime, seq)
            shared = self._proc.is_buffer(stmt.tensor)
            base = pointer.reg if pointer.reg is not None else RZ
            offset = offset_expr.const + (pointer.shared_base if shared else 0)
            address, offset, scratch = self._scratch_address(pointer, base, offset, seq)
            store = builder.sts if shared else builder.st
            load = builder.lds if shared else builder.ld
            if stmt.accumulate:
                old = self._pool.alloc()
                temps.append(old)
                self._emit_predicated(
                    lambda: load(old, MemRef(base=address, offset=offset), width=32), pred
                )
                if isinstance(stmt.value, BinOp) and stmt.value.op == "mul":
                    a = self._operand(stmt.value.lhs, env, pred, cache, temps)
                    b = self._operand(stmt.value.rhs, env, pred, cache, temps)
                    self._emit_predicated(lambda: builder.ffma(old, a, b, old), pred)
                else:
                    v = self._operand(stmt.value, env, pred, cache, temps)
                    self._emit_predicated(lambda: builder.fadd(old, old, v), pred)
                self._emit_predicated(
                    lambda: store(MemRef(base=address, offset=offset), old), pred
                )
            else:
                v = self._operand(stmt.value, env, pred, cache, temps)
                self._emit_predicated(
                    lambda: store(MemRef(base=address, offset=offset), v), pred
                )
            if scratch is not None:
                self._pool.release([scratch])
        self._pool.release(temps)

    # -- epilogue --------------------------------------------------------- #

    def _runtime_reg(self, var: str) -> Register:
        """The live register holding a launch index or seq iteration count."""
        reg = (
            self._epilogue_env.get(var)
            or self._var_regs.get(var)
            or self._up_counters.get(var)
        )
        if reg is None:
            raise LoweringError(f"variable '{var}' has no runtime register")
        return reg

    def _clip_base_reg(self, expr: Affine, env: dict[str, int]) -> Register:
        """Materialise the runtime value of a clipped window-base dimension."""
        builder = self._builder
        value = expr.substitute({v: Affine.constant(c) for v, c in env.items()})
        reg = self._pool.alloc()
        builder.mov32i(reg, value.const)
        for var in sorted(value.vars()):
            builder.imad(reg, self._runtime_reg(var), value.coeff(var), reg)
        return reg

    def _emit_unstage(self, stmt: Unstage, env: dict[str, int], pred) -> None:
        with self._builder.provenance(f"unstage({stmt.buffer})"):
            self._emit_unstage_inner(stmt, env, pred)

    def _emit_unstage_inner(self, stmt: Unstage, env: dict[str, int], pred) -> None:
        builder = self._builder
        regs = self._buffer_regs[stmt.buffer]
        runtime, seq, unroll_affine = self._split_access(stmt.tensor, stmt.base)
        base_expr = unroll_affine.substitute(
            {v: Affine.constant(c) for v, c in env.items()}
        )
        if not base_expr.is_constant:
            raise LoweringError("write-back base keeps unresolved unrolled terms")
        pointer = self._pointer_for(stmt.tensor, runtime, seq)
        if pointer.reg is None:
            raise LoweringError(f"write-back pointer for '{stmt.tensor}' was never planned")
        strides = self._proc.param(stmt.tensor).strides()
        address, base_offset, scratch = self._scratch_address(
            pointer, pointer.reg, base_expr.const, seq
        )
        clipped = [d for d, limit in enumerate(stmt.limits) if limit is not None]
        clip_regs: dict[int, Register] = {}
        if clipped:
            if pred is not None:
                raise LoweringError("a clipped write-back under a guard is not supported")
            for dim in clipped:
                clip_regs[dim] = self._clip_base_reg(stmt.base[dim], env)
        total = 1
        for size in stmt.sizes:
            total *= size
        for flat in range(total):
            coords = np.unravel_index(flat, stmt.sizes)
            offset = base_offset + 4 * sum(
                int(c) * s for c, s in zip(coords, strides)
            )
            if clipped:
                # base_d + coord_d < limit_d per clipped dim, AND-chained by
                # running the follow-up compares under the predicate.
                guard = predicate(self._guard_slot(None))
                for position, dim in enumerate(clipped):
                    bound = stmt.limits[dim] - int(coords[dim])
                    if position == 0:
                        builder.isetp(guard, "LT", clip_regs[dim], bound)
                    else:
                        with builder.guarded(guard):
                            builder.isetp(guard, "LT", clip_regs[dim], bound)
                self._guard_slot_key[guard.index] = None
                with builder.guarded(guard):
                    builder.st(MemRef(base=address, offset=offset), regs[flat])
            else:
                self._emit_predicated(
                    lambda reg=regs[flat], off=offset: builder.st(
                        MemRef(base=address, offset=off), reg
                    ),
                    pred,
                )
        if clip_regs:
            self._pool.release(list(clip_regs.values()))
        if scratch is not None:
            self._pool.release([scratch])

    def _emit_epilogue(self, stmts: tuple[Stmt, ...]) -> None:
        if not stmts:
            return
        with self._builder.provenance("epilogue"):
            self._emit_epilogue_inner(stmts)

    def _emit_epilogue_inner(self, stmts: tuple[Stmt, ...]) -> None:
        builder = self._builder
        # The main loop is over: prefetch and pool registers are dead, so the
        # write-back pointers can reuse them (the hand kernels' trick for
        # staying inside the register budget).
        pool = self._pool
        epilogue_pointers = [
            p for p in self._pointers.values() if p.epilogue and p.needs_register
        ]
        has_clip = any(
            isinstance(stmt, Unstage) and any(l is not None for l in stmt.limits)
            for stmt in walk_stmts(stmts)
        )
        if has_clip:
            # Clipped write-backs need index registers alongside the pointers;
            # the dead prefetch registers widen the pool to make room.
            for plan in self._stage_plans.values():
                if plan.prefetch_regs:
                    pool.release(plan.prefetch_regs)
                    plan.prefetch_regs = []
        scratch: list[Register] = []
        if epilogue_pointers or self._epilogue_clip_vars:
            needed: set[str] = set(self._epilogue_clip_vars)
            for pointer in epilogue_pointers:
                needed.update(var for var, _ in pointer.runtime_terms)
            env: dict[str, Register] = {}

            def take() -> Register:
                reg = pool.alloc()
                scratch.append(reg)
                return reg

            thread_vars = {
                v for v in needed
                if v not in self._var_regs and self._kinds[v].is_thread
            }
            tid = take() if thread_vars else None
            if tid is not None:
                builder.s2r(tid, SpecialRegister.TID_X)
            for var in sorted(needed):
                if var in self._var_regs:
                    env[var] = self._var_regs[var]
                    continue
                kind = self._kinds[var]
                reg = take()
                env[var] = reg
                if kind is LoopKind.BLOCK_X:
                    builder.s2r(reg, SpecialRegister.CTAID_X)
                elif kind is LoopKind.BLOCK_Y:
                    builder.s2r(reg, SpecialRegister.CTAID_Y)
                elif kind is LoopKind.THREAD_X:
                    if self._geometry.threads_y > 1:
                        builder.lop_and(reg, tid, self._geometry.threads_x - 1)
                    else:
                        builder.mov(reg, tid)
                else:
                    builder.shr(reg, tid, self._geometry.threads_x.bit_length() - 1)
            for pointer in epilogue_pointers:
                pointer.reg = pool.alloc()
                self._emit_pointer(pointer, pointer.reg, env)
            self._epilogue_env = env
        if not has_clip:
            # Without clip conditions the env registers are dead once the
            # pointers are built — the historical (register-minimal) shape.
            pool.release(scratch)
            scratch = []
        self._emit_block(stmts, {}, None)
        pool.release(scratch)
        self._epilogue_env = {}
