"""The DSL kernel library: naive loop nests and their golden schedules.

Each workload is written *once* as the textbook loop nest, and every
optimized variant is derived by composing scheduling primitives — the whole
point of the tile IR.  The schedules below reproduce, step by step, the
hand-written structure of the paper's kernels:

* :func:`schedule_sgemm` rebuilds Section 5's SGEMM: block/thread/register
  blocking by two levels of ``split``, the accumulator tile via
  ``stage_registers``, the software-pipelined shared-memory staging of the A
  and B tiles via ``stage_shared`` (A transposed so its column is read with
  unit stride, enabling LDS.64 pairing), and the unrolled
  B-register-pair inner loop via a 2-wide ``split`` of the j tile.
* :func:`schedule_transpose` rebuilds the padded tiled transpose: the thread
  axes are deliberately bound *crosswise* (row loop → thread x) so the
  global stores stay coalesced, and the staging buffer takes the §5.1
  ``pad=1`` that keeps the column-order shared reads conflict-free.
* :func:`schedule_sgemv` rebuilds the row-per-thread SGEMV with its
  shared-memory x tile, and goes one step beyond the hand kernel by
  software-pipelining the x staging loads.

The naive procs are also each schedule's oracle: tests require
``interpret(naive) == interpret(scheduled)`` bit-for-bit.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.tile import schedule as S
from repro.tile.ir import (
    Assign,
    Const,
    Loop,
    Proc,
    TensorParam,
    mul,
    read,
    to_affine,
)

__all__ = [
    "copy_proc",
    "matmul_proc",
    "transpose_proc",
    "sgemv_proc",
    "schedule_sgemm",
    "schedule_transpose",
    "schedule_sgemv",
]


# --------------------------------------------------------------------------- #
# Naive loop nests.                                                            #
# --------------------------------------------------------------------------- #


def copy_proc(n: int) -> Proc:
    """``dst = src`` over a vector — the smallest demo/testing proc."""
    body = (
        Loop(
            var="i",
            extent=n,
            body=(Assign(tensor="dst", index=(to_affine("i"),), value=read("src", "i")),),
        ),
    )
    return Proc(
        name=f"copy_{n}",
        params=(TensorParam("src", (n,)), TensorParam("dst", (n,))),
        body=body,
    )


def matmul_proc(m: int, n: int, k: int, *, init_separate: bool = False) -> Proc:
    """``C = A · B`` as the textbook triple loop.

    With ``init_separate`` the zero-initialisation runs in its own loop nest
    (variables ``i0``/``j0``); the default keeps it inline above the k-loop,
    which is the form the SGEMM schedule starts from.
    """
    accum = Loop(
        var="k",
        extent=k,
        body=(
            Assign(
                tensor="C",
                index=(to_affine("i"), to_affine("j")),
                value=mul(read("A", "i", "k"), read("B", "k", "j")),
                accumulate=True,
            ),
        ),
    )
    init = Assign(tensor="C", index=(to_affine("i"), to_affine("j")), value=Const(0.0))
    if init_separate:
        body = (
            Loop(
                var="i0",
                extent=m,
                body=(
                    Loop(
                        var="j0",
                        extent=n,
                        body=(
                            Assign(
                                tensor="C",
                                index=(to_affine("i0"), to_affine("j0")),
                                value=Const(0.0),
                            ),
                        ),
                    ),
                ),
            ),
            Loop(var="i", extent=m, body=(Loop(var="j", extent=n, body=(accum,)),)),
        )
    else:
        body = (
            Loop(var="i", extent=m, body=(Loop(var="j", extent=n, body=(init, accum)),)),
        )
    return Proc(
        name=f"matmul_{m}x{n}x{k}",
        params=(
            TensorParam("A", (m, k)),
            TensorParam("B", (k, n)),
            TensorParam("C", (m, n)),
        ),
        body=body,
    )


def transpose_proc(m: int, n: int) -> Proc:
    """``out = inᵀ`` with ``in`` stored m × n row-major."""
    body = (
        Loop(
            var="i",
            extent=m,
            body=(
                Loop(
                    var="j",
                    extent=n,
                    body=(
                        Assign(
                            tensor="out",
                            index=(to_affine("j"), to_affine("i")),
                            value=read("in", "i", "j"),
                        ),
                    ),
                ),
            ),
        ),
    )
    return Proc(
        name=f"transpose_{m}x{n}",
        params=(TensorParam("in", (m, n)), TensorParam("out", (n, m))),
        body=body,
    )


def sgemv_proc(m: int, k: int) -> Proc:
    """``y = A · x`` with A stored m × k row-major."""
    body = (
        Loop(
            var="i",
            extent=m,
            body=(
                Assign(tensor="y", index=(to_affine("i"),), value=Const(0.0)),
                Loop(
                    var="k",
                    extent=k,
                    body=(
                        Assign(
                            tensor="y",
                            index=(to_affine("i"),),
                            value=mul(read("A", "i", "k"), read("x", "k")),
                            accumulate=True,
                        ),
                    ),
                ),
            ),
        ),
    )
    return Proc(
        name=f"sgemv_{m}x{k}",
        params=(
            TensorParam("A", (m, k)),
            TensorParam("x", (k,)),
            TensorParam("y", (m,)),
        ),
        body=body,
    )


# --------------------------------------------------------------------------- #
# Golden schedules.                                                            #
# --------------------------------------------------------------------------- #


def schedule_sgemm(
    proc: Proc,
    *,
    tile: int = 96,
    register_blocking: int = 6,
    stride: int = 16,
    b_window: int = 2,
    stage: bool = True,
    prefetch: bool = True,
    unroll_inner: bool = True,
    double_buffer: bool = False,
) -> Proc:
    """The paper's SGEMM structure, derived from the naive triple loop.

    Parameters mirror :class:`repro.sgemm.config.SgemmKernelConfig`:
    ``tile`` is the block tile (B_Sh), ``register_blocking`` the per-thread
    tile edge (B_R), ``stride`` the K-extent staged per iteration (L), and
    ``b_window`` the B-register group width (2 ⇒ the LDS.64 pairs of the
    hand kernel; 1 ⇒ 32-bit B loads).  ``stage``/``prefetch``/``unroll_inner``
    exist so the autotuner can sweep the staging and pipelining decisions;
    ``double_buffer`` alternates both shared tiles by k-iteration parity, so
    the lowered main loop pays one ``BAR.SYNC`` instead of two (at twice the
    shared-memory footprint).
    """
    br = register_blocking
    if tile % br:
        raise ScheduleError(f"register blocking {br} must divide the tile {tile}")
    if br % b_window:
        raise ScheduleError(f"b_window {b_window} must divide register blocking {br}")
    if double_buffer and not stage:
        raise ScheduleError("double_buffer requires staged shared tiles")

    # Block and thread decomposition: i = by·tile + ty·br + iq, same for j.
    # predicate_tail is split when the tile divides and the guarded tail
    # otherwise, so arbitrary (M, N, K) flow through the same schedule.
    p = S.predicate_tail(proc, "i", tile, "by", "ii")
    p = S.split(p, "ii", br, "ty", "iq")
    p = S.predicate_tail(p, "j", tile, "bx", "jj")
    p = S.split(p, "jj", br, "tx", "jq")
    # Nest order by, bx, ty, tx, iq, jq (blocks out, register tile in).
    p = S.reorder(p, "iq", "bx")
    p = S.reorder(p, "ty", "bx")
    p = S.reorder(p, "iq", "tx")
    p = S.bind_block(p, "by", "y")
    p = S.bind_block(p, "bx", "x")
    p = S.bind_thread(p, "ty", "y")
    p = S.bind_thread(p, "tx", "x")

    # The accumulator tile lives in registers for the whole k-loop.
    p = S.stage_registers(p, "tx", "C")

    # Separate the zero-initialisation from the accumulation so the k-loop
    # can move above the register-tile loops.
    p = S.fission(p, "jq")
    p = S.fission(p, "iq")
    p = S.reorder(p, "jq1", "k")
    p = S.reorder(p, "iq1", "k")

    # Software-pipelined staging loop over K in steps of the stride.
    p = S.predicate_tail(p, "k", stride, "ko", "ki")
    if stage:
        p = S.stage_shared(p, "ko", "A", transpose=True, prefetch=prefetch)
        p = S.stage_shared(p, "ko", "B", prefetch=prefetch)
        if double_buffer:
            p = S.double_buffer(p, "A_shared")
            p = S.double_buffer(p, "B_shared")

    # Inner loop: per k-step, walk the B row in windows of `b_window`
    # registers against the whole A column (the hand kernel's 2-register
    # B scheme), then unroll everything below the staging loop.
    if b_window > 1:
        p = S.split(p, "jq1", b_window, "jw", "jv")
        p = S.reorder(p, "iq1", "jw")
        p = S.reorder(p, "iq1", "jv")
        inner = ("ki", "jw", "jv", "iq1")
    else:
        p = S.reorder(p, "iq1", "jq1")
        inner = ("ki", "jq1", "iq1")
    if unroll_inner:
        for var in inner + ("iq0", "jq0"):
            p = S.unroll(p, var)
    return p


def schedule_transpose(proc: Proc, *, tile: int = 16, pad: int = 1) -> Proc:
    """The padded tiled transpose.

    The row loop binds to thread *x* and the column loop to thread *y* — the
    crosswise binding that makes both the global loads (performed by the
    cooperative staging copy) and the global stores unit-stride, while the
    shared-memory tile eats the transposition.  ``pad`` is the §5.1 row
    padding that keeps the column-order shared reads bank-conflict-free.
    Arbitrary (m, n) are accepted: boundary tiles stage clipped windows and
    predicate their stores.
    """
    p = S.predicate_tail(proc, "i", tile, "by", "ii")
    p = S.predicate_tail(p, "j", tile, "bx", "jj")
    p = S.reorder(p, "ii", "bx")
    p = S.bind_block(p, "by", "y")
    p = S.bind_block(p, "bx", "x")
    p = S.bind_thread(p, "ii", "x")
    p = S.bind_thread(p, "jj", "y")
    return S.stage_shared(p, "bx", "in", pad=pad, prefetch=False)


def schedule_sgemv(
    proc: Proc,
    *,
    threads: int = 32,
    k_window: int = 2,
    stage: bool = True,
    prefetch: bool = True,
) -> Proc:
    """Row-per-thread SGEMV with a shared-memory x tile.

    ``k_window`` pairs the unrolled A loads so the lowering fuses them into
    LD.64 (the hand generator's ``wide_loads``); ``prefetch`` pipelines the
    x-tile staging load — one step beyond the hand kernel, which leaves the
    load on the critical path between its barriers.  Arbitrary (m, k) are
    accepted through ``predicate_tail`` row/column guards.
    """
    p = S.predicate_tail(proc, "i", threads, "bx", "tx")
    p = S.bind_block(p, "bx", "x")
    p = S.bind_thread(p, "tx", "x")
    p = S.stage_registers(p, "tx", "y")
    p = S.predicate_tail(p, "k", threads, "ko", "ki")
    if stage:
        p = S.stage_shared(p, "ko", "x", prefetch=prefetch)
    if k_window > 1:
        if threads % k_window:
            raise ScheduleError(f"k_window {k_window} must divide the x tile {threads}")
        p = S.split(p, "ki", k_window, "kw", "kq")
        p = S.unroll(p, "kw")
        p = S.unroll(p, "kq")
    else:
        p = S.unroll(p, "ki")
    return p
