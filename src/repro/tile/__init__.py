"""``repro.tile`` — a schedulable loop-nest IR that lowers to SASS.

The layer between workloads and the ISA: kernels are written once as naive
loop nests (:mod:`repro.tile.ir`), reshaped by verified scheduling primitives
(:mod:`repro.tile.schedule`) whose legality decisions all flow through the
dependence-analysis engine (:mod:`repro.tile.deps`), checked against the
NumPy oracle
(:mod:`repro.tile.interp`) and lowered to assembled kernels through the
existing :mod:`repro.isa` builder (:mod:`repro.tile.lower`).  The shipped
kernels and their golden schedules live in :mod:`repro.tile.library`; the
registry workloads built from them in :mod:`repro.tile.workloads`; the
schedule-space autotuning glue in :mod:`repro.tile.autotune`.
"""

from repro.tile.deps import Dependence, dependences
from repro.tile.interp import assert_equivalent, interpret
from repro.tile.ir import (
    Affine,
    Assign,
    BinOp,
    Buffer,
    Const,
    Guard,
    Loop,
    LoopKind,
    Proc,
    Read,
    Stage,
    TensorParam,
    Unstage,
    check_proc,
)
from repro.tile.lower import LaunchGeometry, launch_geometry, lower, shared_layout
from repro.tile.resources import proc_occupancy, proc_resources, proc_shared_footprint
from repro.tile.schedule import (
    bind_block,
    bind_thread,
    double_buffer,
    fission,
    predicate_tail,
    reorder,
    split,
    stage_registers,
    stage_shared,
    unroll,
)

__all__ = [
    "Affine",
    "Assign",
    "BinOp",
    "Buffer",
    "Const",
    "Guard",
    "Loop",
    "LoopKind",
    "Proc",
    "Read",
    "Stage",
    "TensorParam",
    "Unstage",
    "check_proc",
    "Dependence",
    "dependences",
    "interpret",
    "assert_equivalent",
    "lower",
    "launch_geometry",
    "LaunchGeometry",
    "shared_layout",
    "proc_resources",
    "proc_shared_footprint",
    "proc_occupancy",
    "split",
    "predicate_tail",
    "reorder",
    "fission",
    "unroll",
    "bind_block",
    "bind_thread",
    "stage_shared",
    "stage_registers",
    "double_buffer",
]
