"""Scheduling primitives: pure ``Proc -> Proc`` rewrites.

Each primitive restructures or annotates a loop nest without changing what it
computes — the Exo/Halide discipline applied to the paper's hand
optimizations.  The naive nest states the algorithm once; ``split``,
``reorder``, ``unroll`` and ``predicate_tail`` shape the iteration space;
``bind_block``/``bind_thread`` map loops onto the launch geometry; and
``stage_shared``/``stage_registers`` introduce the memory hierarchy (the
barrier-fenced shared-memory tiles and the per-thread accumulator block of
Section 5).

Every primitive is validated against the NumPy oracle in the test suite:
``interpret(p) == interpret(primitive(p))`` bit-for-bit, because a schedule
may reorder independent iterations and stage values but never changes the
per-element accumulation order.

All primitives raise :class:`~repro.errors.ScheduleError` when the rewrite
would be illegal (non-dividing split factors, imperfect nests, reads that do
not decompose into a stageable window, ...), so an invalid schedule fails at
schedule-construction time rather than producing a wrong kernel.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ScheduleError
from repro.tile.ir import (
    Affine,
    Assign,
    Buffer,
    Guard,
    Loop,
    LoopKind,
    Proc,
    Read,
    Stage,
    Stmt,
    Unstage,
    check_proc,
    expr_reads,
    map_expr_reads,
    map_stmts,
    substitute_stmts,
    walk_stmts,
)

__all__ = [
    "split",
    "predicate_tail",
    "reorder",
    "fission",
    "unroll",
    "bind_block",
    "bind_thread",
    "stage_shared",
    "stage_registers",
]


# --------------------------------------------------------------------------- #
# Internal helpers.                                                            #
# --------------------------------------------------------------------------- #


def _rewrite_loop(proc: Proc, var: str, fn) -> Proc:
    """Rebuild ``proc`` with ``fn`` applied to the loop named ``var``."""
    proc.find_loop(var)  # raises with a helpful message when missing

    def rewrite(stmt: Stmt):
        if isinstance(stmt, Loop) and stmt.var == var:
            return fn(stmt)
        return stmt

    return proc.with_body(map_stmts(proc.body, rewrite))


def _fresh(proc: Proc, name: str) -> str:
    if name in proc.loops():
        raise ScheduleError(f"loop variable '{name}' already exists")
    return name


def _loop_kinds(proc: Proc) -> dict[str, LoopKind]:
    return {var: loop.kind for var, loop in proc.loops().items()}


def _checked(proc: Proc) -> Proc:
    check_proc(proc)
    return proc


# --------------------------------------------------------------------------- #
# Loop-structure primitives.                                                   #
# --------------------------------------------------------------------------- #


def split(proc: Proc, var: str, factor: int, outer: str | None = None,
          inner: str | None = None) -> Proc:
    """Split loop ``var`` into ``outer`` × ``inner`` (``factor`` must divide).

    ``for i in N`` becomes ``for io in N//factor: for ii in factor`` with
    ``i := io·factor + ii`` substituted throughout the body — the tiling step
    behind the paper's block/thread/register blocking hierarchy.

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import split
    >>> p = split(matmul_proc(m=4, n=4, k=2), "i", 2)
    >>> print(p)                            # doctest: +NORMALIZE_WHITESPACE
    proc matmul_4x4x2(A: f32[4, 2], B: f32[2, 4], C: f32[4, 4])
      for io in 2:
        for ii in 2:
          for j in 4:
            C[ii + 2*io, j] = 0.0
            for k in 2:
              C[ii + 2*io, j] += (A[ii + 2*io, k] * B[k, j])
    """
    outer = _fresh(proc, outer or f"{var}o")
    inner = _fresh(proc, inner or f"{var}i")
    if outer == inner:
        raise ScheduleError("outer and inner split names must differ")
    if factor < 1:
        raise ScheduleError(f"split factor must be >= 1, got {factor}")

    def rewrite(loop: Loop) -> Loop:
        if loop.extent % factor:
            raise ScheduleError(
                f"split factor {factor} does not divide extent {loop.extent} of '{var}' "
                f"(use predicate_tail for imperfect splits)"
            )
        if loop.kind is not LoopKind.SEQ:
            raise ScheduleError(f"cannot split bound/unrolled loop '{var}'")
        body = substitute_stmts(
            loop.body, {var: Affine.var(outer) * factor + Affine.var(inner)}
        )
        return Loop(
            var=outer,
            extent=loop.extent // factor,
            body=(Loop(var=inner, extent=factor, body=body),),
        )

    return _checked(_rewrite_loop(proc, var, rewrite))


def predicate_tail(proc: Proc, var: str, factor: int, outer: str | None = None,
                   inner: str | None = None) -> Proc:
    """Split ``var`` by a non-dividing ``factor``, guarding the tail.

    Like :func:`split`, but the outer extent rounds up and the body is wrapped
    in ``if io·factor + ii < N`` — the predication idiom hand-written SASS
    uses for boundary tiles instead of divergent branches (the simulator only
    supports warp-uniform control flow, so tails *must* lower to guards).

    >>> from repro.tile.library import copy_proc
    >>> from repro.tile.schedule import predicate_tail
    >>> p = predicate_tail(copy_proc(n=10), "i", 4)
    >>> print(p)                            # doctest: +NORMALIZE_WHITESPACE
    proc copy_10(src: f32[10], dst: f32[10])
      for io in 3:
        for ii in 4:
          if ii + 4*io < 10:
            dst[ii + 4*io] = src[ii + 4*io]
    """
    outer = _fresh(proc, outer or f"{var}o")
    inner = _fresh(proc, inner or f"{var}i")
    if outer == inner:
        raise ScheduleError("outer and inner split names must differ")
    if factor < 1:
        raise ScheduleError(f"split factor must be >= 1, got {factor}")

    def rewrite(loop: Loop) -> Loop:
        if loop.kind is not LoopKind.SEQ:
            raise ScheduleError(f"cannot split bound/unrolled loop '{var}'")
        index = Affine.var(outer) * factor + Affine.var(inner)
        body = substitute_stmts(loop.body, {var: index})
        guarded = body if loop.extent % factor == 0 else (
            Guard(expr=index, bound=loop.extent, body=body),
        )
        return Loop(
            var=outer,
            extent=-(-loop.extent // factor),
            body=(Loop(var=inner, extent=factor, body=guarded),),
        )

    return _checked(_rewrite_loop(proc, var, rewrite))


def reorder(proc: Proc, outer_var: str, inner_var: str) -> Proc:
    """Interchange two perfectly nested loops (``outer_var`` directly around
    ``inner_var``).

    Legal for the IR's dense affine nests because per-element accumulation
    order (the sequence of ``k`` values folded into one ``C`` element) is
    preserved by any permutation of *distinct* loops — which is why the
    oracle can insist on bit-exact equality.

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import reorder
    >>> print(reorder(matmul_proc(m=2, n=2, k=2, init_separate=True), "i", "j"))
    ...                                     # doctest: +NORMALIZE_WHITESPACE
    proc matmul_2x2x2(A: f32[2, 2], B: f32[2, 2], C: f32[2, 2])
      for i0 in 2:
        for j0 in 2:
          C[i0, j0] = 0.0
      for j in 2:
        for i in 2:
          for k in 2:
            C[i, j] += (A[i, k] * B[k, j])
    """

    def rewrite(loop: Loop) -> Loop:
        if len(loop.body) != 1 or not isinstance(loop.body[0], Loop):
            raise ScheduleError(
                f"'{outer_var}' and '{inner_var}' are not perfectly nested"
            )
        inner = loop.body[0]
        if inner.var != inner_var:
            raise ScheduleError(
                f"loop directly inside '{outer_var}' is '{inner.var}', not '{inner_var}'"
            )
        return replace(inner, body=(replace(loop, body=inner.body),))

    return _checked(_rewrite_loop(proc, outer_var, rewrite))


def fission(proc: Proc, var: str, at: int = 1, names: tuple[str, str] | None = None) -> Proc:
    """Fission loop ``var`` into two loops over the same range.

    ``for v: [S_0 ... S_at-1, S_at ...]`` becomes ``for v0: [S_0 ...]; for
    v1: [S_at ...]`` — the step that separates the accumulator
    initialisation from the k-loop so :func:`reorder` can hoist the k-loop
    above the register-tile loops.  Legality is checked conservatively:
    every tensor *written* in the body must have some dimension in which all
    of its accesses share one non-zero coefficient of ``var`` and the
    remaining intra-iteration spread stays below that coefficient, so
    distinct iterations touch disjoint elements and the interleaving change
    cannot be observed.

    >>> from repro.tile import library, schedule
    >>> p = schedule.stage_registers(library.matmul_proc(m=2, n=2, k=2), "i", "C")
    >>> print(schedule.fission(p, "j"))     # doctest: +NORMALIZE_WHITESPACE
    proc matmul_2x2x2(A: f32[2, 2], B: f32[2, 2], C: f32[2, 2])
      register C_reg: f32[2]
      for i in 2:
        for j0 in 2:
          C_reg[j0] = 0.0
        for j1 in 2:
          for k in 2:
            C_reg[j1] += (A[i, k] * B[k, j1])
        unstage C[i, 0 ...] <- C_reg[1, 2]
    """
    first_name, second_name = names or (f"{var}0", f"{var}1")
    _fresh(proc, first_name)
    if first_name == second_name:
        raise ScheduleError("fissioned loop names must differ")
    _fresh(proc, second_name)

    def rewrite(loop: Loop) -> tuple[Stmt, ...]:
        if loop.kind is not LoopKind.SEQ:
            raise ScheduleError(f"cannot fission bound/unrolled loop '{var}'")
        if not 0 < at < len(loop.body):
            raise ScheduleError(
                f"fission point {at} outside the {len(loop.body)}-statement body of '{var}'"
            )
        _check_fission_legal(proc, loop)
        first = substitute_stmts(loop.body[:at], {var: Affine.var(first_name)})
        second = substitute_stmts(loop.body[at:], {var: Affine.var(second_name)})
        return (
            Loop(var=first_name, extent=loop.extent, body=first, kind=loop.kind),
            Loop(var=second_name, extent=loop.extent, body=second, kind=loop.kind),
        )

    return _checked(_rewrite_loop(proc, var, rewrite))


def _check_fission_legal(proc: Proc, loop: Loop) -> None:
    """Conservative disjointness check for :func:`fission`."""
    inner_vars = _subtree_vars(loop)
    # Outer variables have a common (fixed) value in both halves, so they
    # cancel out of the spread; give them the trivial range [0, 1).
    extents = {var: 1 for var in proc.loops()}
    for var, inner in proc.loops().items():
        if var in inner_vars:
            extents[var] = inner.extent

    accesses: dict[str, list[tuple[Affine, ...]]] = {}
    written: set[str] = set()
    for stmt in walk_stmts(loop.body):
        if isinstance(stmt, Assign):
            accesses.setdefault(stmt.tensor, []).append(stmt.index)
            written.add(stmt.tensor)
            for r in expr_reads(stmt.value):
                accesses.setdefault(r.tensor, []).append(r.index)
        elif isinstance(stmt, (Stage, Unstage)):
            raise ScheduleError(
                f"cannot fission '{loop.var}' across a staging statement"
            )

    for tensor in sorted(written):
        indexes = accesses[tensor]
        rank = len(indexes[0])
        for dim in range(rank):
            coeffs = {index[dim].coeff(loop.var) for index in indexes}
            if len(coeffs) != 1:
                continue
            coeff = next(iter(coeffs))
            if coeff == 0:
                continue
            rests = [index[dim] - Affine.var(loop.var) * coeff for index in indexes]
            bounds = [rest.bounds(extents) for rest in rests]
            spread = max(hi for _, hi in bounds) - min(lo for lo, _ in bounds)
            if spread < abs(coeff):
                break
        else:
            raise ScheduleError(
                f"cannot prove iterations of '{loop.var}' touch disjoint elements of "
                f"'{tensor}'; fission would reorder conflicting accesses"
            )


def unroll(proc: Proc, var: str) -> Proc:
    """Tag loop ``var`` for full unrolling at lowering time.

    Semantically a no-op (the interpreter ignores tags); the lowering expands
    every iteration, resolving the variable's address contributions into
    immediate offsets — how the paper's inner loop becomes a straight run of
    LDS/FFMA with literal offsets.

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import unroll
    >>> unroll(matmul_proc(m=2, n=2, k=2), "k").find_loop("k").kind.value
    'unroll'
    """

    def rewrite(loop: Loop) -> Loop:
        if loop.kind is not LoopKind.SEQ:
            raise ScheduleError(f"loop '{var}' is already {loop.kind.value}")
        return replace(loop, kind=LoopKind.UNROLL)

    return _checked(_rewrite_loop(proc, var, rewrite))


def bind_block(proc: Proc, var: str, axis: str) -> Proc:
    """Bind loop ``var`` to a launch-grid axis (``"x"`` or ``"y"``).

    Each iteration becomes one block of the grid; the lowering reads the
    block index from ``CTAID.X``/``CTAID.Y`` instead of emitting a loop.

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import bind_block
    >>> bind_block(matmul_proc(m=2, n=2, k=2), "i", "y").find_loop("i").kind.value
    'block_y'
    """
    return _bind(proc, var, axis, {"x": LoopKind.BLOCK_X, "y": LoopKind.BLOCK_Y})


def bind_thread(proc: Proc, var: str, axis: str) -> Proc:
    """Bind loop ``var`` to a thread axis within the block.

    Iterations run as parallel threads; the lowering decomposes the flat
    ``TID.X`` with shift/mask (the x-extent must be a power of two when a
    y-axis is also bound, matching the hand generators' convention).

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import bind_thread
    >>> bind_thread(matmul_proc(m=2, n=2, k=2), "j", "x").find_loop("j").kind.value
    'thread_x'
    """
    return _bind(proc, var, axis, {"x": LoopKind.THREAD_X, "y": LoopKind.THREAD_Y})


def _bind(proc: Proc, var: str, axis: str, kinds: dict[str, LoopKind]) -> Proc:
    if axis not in kinds:
        raise ScheduleError(f"axis must be one of {sorted(kinds)}, got {axis!r}")
    kind = kinds[axis]
    if kind in _loop_kinds(proc).values():
        raise ScheduleError(f"another loop is already bound to {kind.value}")

    def rewrite(loop: Loop) -> Loop:
        if loop.kind is not LoopKind.SEQ:
            raise ScheduleError(f"loop '{var}' is already {loop.kind.value}")
        return replace(loop, kind=kind)

    return _checked(_rewrite_loop(proc, var, rewrite))


# --------------------------------------------------------------------------- #
# Staging primitives.                                                          #
# --------------------------------------------------------------------------- #


def _subtree_vars(loop: Loop) -> frozenset[str]:
    """Variables of loops strictly inside ``loop``."""
    return frozenset(
        stmt.var for stmt in walk_stmts(loop.body) if isinstance(stmt, Loop)
    )


def stage_shared(proc: Proc, at: str, tensor: str, *, pad: int = 0,
                 transpose: bool = False, prefetch: bool = True,
                 buffer: str | None = None) -> Proc:
    """Stage the window of ``tensor`` read inside loop ``at`` through shared
    memory.

    Every read of ``tensor`` within the body of ``at`` must decompose, per
    dimension, into a common *base* (block indices and loops enclosing ``at``)
    plus an *offset* over thread-bound loops and loops inside ``at``.  The
    offsets' span determines the buffer shape; a :class:`~repro.tile.ir.Stage`
    copy is inserted at the top of the body and the reads are redirected to
    the buffer.  ``pad`` appends words to the innermost buffer dimension
    (§5.1 bank-conflict padding), ``transpose`` swaps the two buffer
    dimensions (so a column-walked operand is read with unit stride, like the
    A tile of the paper's SGEMM), and ``prefetch`` asks the lowering to
    software-pipeline the copy's global loads across iterations of ``at``.

    >>> from repro.tile import library, schedule
    >>> p = library.matmul_proc(m=4, n=4, k=4)
    >>> p = schedule.stage_shared(p, "j", "B", prefetch=False)
    >>> print(p)                            # doctest: +NORMALIZE_WHITESPACE
    proc matmul_4x4x4(A: f32[4, 4], B: f32[4, 4], C: f32[4, 4])
      shared B_shared: f32[4, 1]
      for i in 4:
        for j in 4:
          stage B_shared[4, 1] <- B[0, j ...]
          C[i, j] = 0.0
          for k in 4:
            C[i, j] += (A[i, k] * B_shared[k, 0])
    """
    at_loop = proc.find_loop(at)
    buffer_name = buffer or f"{tensor}_shared"
    if proc.is_buffer(buffer_name) or any(p.name == buffer_name for p in proc.params):
        raise ScheduleError(f"name '{buffer_name}' is already taken")
    if pad < 0:
        raise ScheduleError("pad must be non-negative")

    kinds = _loop_kinds(proc)
    inside = _subtree_vars(at_loop)
    thread_vars = frozenset(v for v, k in kinds.items() if k.is_thread)
    offset_vars = inside | thread_vars

    reads = [
        r
        for stmt in walk_stmts(at_loop.body)
        if isinstance(stmt, Assign)
        for r in expr_reads(stmt.value)
        if r.tensor == tensor
    ]
    if not reads:
        raise ScheduleError(f"no reads of '{tensor}' inside loop '{at}'")
    if any(
        isinstance(stmt, Assign) and stmt.tensor == tensor
        for stmt in walk_stmts(at_loop.body)
    ):
        raise ScheduleError(f"'{tensor}' is written inside '{at}'; only inputs can be staged")

    rank = len(proc.param(tensor).shape)
    extents = {var: loop.extent for var, loop in proc.loops().items()}
    bases: list[Affine] = []
    sizes: list[int] = []
    offsets_by_read: dict[Read, tuple[Affine, ...]] = {}
    split_per_read = {r: tuple(i.split_terms(offset_vars) for i in r.index) for r in reads}
    for dim in range(rank):
        dim_bases = {split_per_read[r][dim][0] for r in reads}
        if len(dim_bases) != 1:
            raise ScheduleError(
                f"reads of '{tensor}' disagree on the dimension-{dim} window base: "
                + ", ".join(str(b) for b in sorted(dim_bases, key=str))
            )
        bases.append(next(iter(dim_bases)))
        span = 0
        for r in reads:
            offset = split_per_read[r][dim][1]
            lo, hi = offset.bounds(extents)
            if lo < 0:
                raise ScheduleError(
                    f"offset {offset} of '{tensor}' dimension {dim} can be negative"
                )
            span = max(span, hi)
        sizes.append(span + 1)
    for r in reads:
        offsets_by_read[r] = tuple(split_per_read[r][d][1] for d in range(rank))

    axes = tuple(range(rank))
    if transpose:
        if rank != 2:
            raise ScheduleError("transpose staging requires a 2-D tensor")
        axes = (1, 0)
    buffer_sizes = tuple(sizes[a] for a in axes)

    new_buffer = Buffer(name=buffer_name, shape=buffer_sizes, memory="shared", pad=pad)
    stage = Stage(
        buffer=buffer_name,
        tensor=tensor,
        base=tuple(bases),
        sizes=buffer_sizes,
        axes=axes,
        prefetch=prefetch,
    )

    def redirect(stmt: Stmt):
        if isinstance(stmt, Assign):
            def swap(r: Read) -> Read:
                if r.tensor != tensor:
                    return r
                offsets = offsets_by_read[r]
                return Read(tensor=buffer_name, index=tuple(offsets[a] for a in axes))

            return replace(stmt, value=map_expr_reads(stmt.value, swap))
        return stmt

    def rewrite(loop: Loop) -> Loop:
        return replace(loop, body=(stage,) + map_stmts(loop.body, redirect))

    rewritten = _rewrite_loop(proc, at, rewrite)
    return _checked(replace(rewritten, buffers=rewritten.buffers + (new_buffer,)))


def stage_registers(proc: Proc, at: str, tensor: str, *,
                    buffer: str | None = None) -> Proc:
    """Stage the per-thread window of ``tensor`` written inside loop ``at`` in
    registers.

    The accumulator idiom of Section 5.2: every access to ``tensor`` inside
    ``at`` (typically the innermost thread loop) is redirected to a small
    per-thread ``register`` buffer indexed only by the loops *inside* ``at``,
    and an :class:`~repro.tile.ir.Unstage` write-back is appended at the end
    of the body.  The lowering gives each element its own register, so the
    whole k-loop accumulates without touching memory.

    >>> from repro.tile import library, schedule
    >>> p = library.matmul_proc(m=2, n=2, k=2)
    >>> print(schedule.stage_registers(p, "i", "C"))
    ...                                     # doctest: +NORMALIZE_WHITESPACE
    proc matmul_2x2x2(A: f32[2, 2], B: f32[2, 2], C: f32[2, 2])
      register C_reg: f32[2]
      for i in 2:
        for j in 2:
          C_reg[j] = 0.0
          for k in 2:
            C_reg[j] += (A[i, k] * B[k, j])
        unstage C[i, 0 ...] <- C_reg[1, 2]
    """
    at_loop = proc.find_loop(at)
    buffer_name = buffer or f"{tensor}_reg"
    if proc.is_buffer(buffer_name) or any(p.name == buffer_name for p in proc.params):
        raise ScheduleError(f"name '{buffer_name}' is already taken")

    offset_vars = _subtree_vars(at_loop)
    rank = len(proc.param(tensor).shape)
    extents = {var: loop.extent for var, loop in proc.loops().items()}

    accesses: list[tuple[Affine, ...]] = [
        stmt.index
        for stmt in walk_stmts(at_loop.body)
        if isinstance(stmt, Assign) and stmt.tensor == tensor
    ]
    accesses += [
        r.index
        for stmt in walk_stmts(at_loop.body)
        if isinstance(stmt, Assign)
        for r in expr_reads(stmt.value)
        if r.tensor == tensor
    ]
    if not accesses:
        raise ScheduleError(f"no accesses to '{tensor}' inside loop '{at}'")
    # The register buffer starts at zero, so every element read or
    # accumulated must first be defined by a plain assignment with the same
    # index expression earlier in the body — the accumulator-init idiom.
    # Staging a read-only operand needs stage_shared, not a write-back.
    initialised: set[tuple[Affine, ...]] = set()
    for stmt in walk_stmts(at_loop.body):
        if not isinstance(stmt, Assign):
            continue
        for r in expr_reads(stmt.value):
            if r.tensor == tensor and r.index not in initialised:
                raise ScheduleError(
                    f"'{tensor}' is read at {r} before being initialised inside "
                    f"'{at}'; register staging requires the init-then-accumulate "
                    f"pattern"
                )
        if stmt.tensor == tensor:
            if stmt.accumulate and stmt.index not in initialised:
                raise ScheduleError(
                    f"'{tensor}' is accumulated at index ({', '.join(map(str, stmt.index))}) "
                    f"before being initialised inside '{at}'"
                )
            if not stmt.accumulate:
                initialised.add(stmt.index)
    if not initialised:
        raise ScheduleError(
            f"'{tensor}' is never written inside '{at}'; register staging targets "
            f"the output accumulator, not read-only operands"
        )
    outside_writes = sum(
        1 for stmt in walk_stmts(proc.body)
        if isinstance(stmt, (Assign, Unstage)) and stmt.tensor == tensor
    ) - sum(
        1 for stmt in walk_stmts(at_loop.body)
        if isinstance(stmt, (Assign, Unstage)) and stmt.tensor == tensor
    )
    if outside_writes:
        raise ScheduleError(
            f"'{tensor}' is also written outside '{at}'; the write-back would clobber it"
        )

    bases: list[Affine] = []
    sizes: list[int] = []
    for dim in range(rank):
        dim_split = [index[dim].split_terms(offset_vars) for index in accesses]
        dim_bases = {base for base, _ in dim_split}
        if len(dim_bases) != 1:
            raise ScheduleError(
                f"accesses to '{tensor}' disagree on the dimension-{dim} window base: "
                + ", ".join(str(b) for b in sorted(dim_bases, key=str))
            )
        bases.append(next(iter(dim_bases)))
        span = 0
        for _, offset in dim_split:
            lo, hi = offset.bounds(extents)
            if lo < 0:
                raise ScheduleError(
                    f"offset {offset} of '{tensor}' dimension {dim} can be negative"
                )
            span = max(span, hi)
        sizes.append(span + 1)

    # Collapse dimensions the thread does not walk (window size 1) so a row
    # of C becomes a 1-D register block rather than carrying dead axes.
    kept = [d for d in range(rank) if sizes[d] > 1] or [rank - 1]
    buffer_shape = tuple(sizes[d] for d in kept)
    new_buffer = Buffer(name=buffer_name, shape=buffer_shape, memory="register")

    def offsets_of(index: tuple[Affine, ...]) -> tuple[Affine, ...]:
        return tuple(index[d].split_terms(offset_vars)[1] for d in kept)

    def redirect(stmt: Stmt):
        if isinstance(stmt, Assign):
            def swap(r: Read) -> Read:
                if r.tensor != tensor:
                    return r
                return Read(tensor=buffer_name, index=offsets_of(r.index))

            value = map_expr_reads(stmt.value, swap)
            if stmt.tensor == tensor:
                return Assign(
                    tensor=buffer_name,
                    index=offsets_of(stmt.index),
                    value=value,
                    accumulate=stmt.accumulate,
                )
            return replace(stmt, value=value)
        return stmt

    unstage = Unstage(
        tensor=tensor,
        base=tuple(bases),
        buffer=buffer_name,
        sizes=tuple(sizes),
    )

    def rewrite(loop: Loop) -> Loop:
        return replace(loop, body=map_stmts(loop.body, redirect) + (unstage,))

    rewritten = _rewrite_loop(proc, at, rewrite)
    return _checked(replace(rewritten, buffers=rewritten.buffers + (new_buffer,)))
