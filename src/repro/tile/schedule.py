"""Scheduling primitives: pure ``Proc -> Proc`` rewrites.

Each primitive restructures or annotates a loop nest without changing what it
computes — the Exo/Halide discipline applied to the paper's hand
optimizations.  The naive nest states the algorithm once; ``split``,
``reorder``, ``unroll`` and ``predicate_tail`` shape the iteration space;
``bind_block``/``bind_thread`` map loops onto the launch geometry; and
``stage_shared``/``stage_registers`` introduce the memory hierarchy (the
barrier-fenced shared-memory tiles and the per-thread accumulator block of
Section 5).

**Legality is centralized in :mod:`repro.tile.deps`.**  Every primitive whose
rewrite can reorder statement instances (``reorder``, ``fission``,
``unroll``) asks the dependence engine for a blocking dependence instead of
pattern-matching the nest, and the staging primitives derive their
read-only/init-before-accumulate requirements from the same access analysis.
A rejection always raises :class:`~repro.errors.ScheduleError` naming the
primitive, the loops and tensors involved and — when one exists — the
blocking dependence with its distance vector.

Every primitive is validated against the NumPy oracle in the test suite:
``interpret(p) == interpret(primitive(p))`` bit-for-bit, because a schedule
may reorder independent iterations and stage values but never changes the
per-element accumulation order.

``predicate_tail`` guards compose with everything downstream: ``reorder``
and ``fission`` commute through interposed :class:`~repro.tile.ir.Guard`
nodes (a guard never references a loop nested inside it, so hoisting a loop
across it preserves the guarded instance set), and the staging primitives
translate guards that cap an access dimension into window clip ``limits`` —
which is what carries an imperfect problem size from the schedule all the
way into the lowering's predicated epilogue.
"""

from __future__ import annotations

import functools
from dataclasses import replace

from repro.errors import ScheduleError
from repro.prof.trace import trace_span
from repro.tile import deps as D
from repro.tile.ir import (
    Affine,
    Assign,
    Buffer,
    Guard,
    Loop,
    LoopKind,
    Proc,
    Read,
    Stage,
    Stmt,
    Unstage,
    check_proc,
    map_expr_reads,
    map_stmts,
    substitute_stmts,
    walk_stmts,
)

__all__ = [
    "split",
    "predicate_tail",
    "reorder",
    "fission",
    "unroll",
    "bind_block",
    "bind_thread",
    "stage_shared",
    "stage_registers",
    "double_buffer",
]


# --------------------------------------------------------------------------- #
# Internal helpers.                                                            #
# --------------------------------------------------------------------------- #


def _traced(primitive):
    """Record each primitive application as a trace span (see ``repro.prof``)."""

    @functools.wraps(primitive)
    def wrapper(proc, *args, **kwargs):
        with trace_span(
            f"schedule.{primitive.__name__}",
            category="tile",
            proc=getattr(proc, "name", ""),
        ):
            return primitive(proc, *args, **kwargs)

    return wrapper


def _reject(primitive: str, detail: str, *, dependence: D.Dependence | None = None):
    """Raise a :class:`ScheduleError` with consistent diagnostics."""
    message = f"{primitive}: {detail}"
    if dependence is not None:
        message += f" — blocked by {dependence.describe()}"
    raise ScheduleError(message, primitive=primitive, dependence=dependence)


def _rewrite_loop(proc: Proc, var: str, fn) -> Proc:
    """Rebuild ``proc`` with ``fn`` applied to the loop named ``var``."""
    proc.find_loop(var)  # raises with a helpful message when missing

    def rewrite(stmt: Stmt):
        if isinstance(stmt, Loop) and stmt.var == var:
            return fn(stmt)
        return stmt

    return proc.with_body(map_stmts(proc.body, rewrite))


def _fresh(proc: Proc, primitive: str, name: str) -> str:
    if name in proc.loops():
        _reject(primitive, f"loop variable '{name}' already exists")
    return name


def _loop_kinds(proc: Proc) -> dict[str, LoopKind]:
    return {var: loop.kind for var, loop in proc.loops().items()}


def _checked(proc: Proc) -> Proc:
    check_proc(proc)
    return proc


def _unwrap_guards(
    body: tuple[Stmt, ...]
) -> tuple[tuple[Guard, ...], tuple[Stmt, ...]]:
    """Strip a chain of single-statement guards off ``body``.

    ``(G1{G2{stmts...}},)`` unwraps to ``((G1, G2), stmts)`` — the shape
    ``predicate_tail`` guards take after later splits interpose loops.
    """
    guards: list[Guard] = []
    while len(body) == 1 and isinstance(body[0], Guard):
        guards.append(body[0])
        body = body[0].body
    return tuple(guards), body


def _wrap_guards(guards: tuple[Guard, ...], body: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
    """Re-wrap ``body`` in a chain of guards (innermost last)."""
    for guard in reversed(guards):
        body = (replace(guard, body=body),)
    return body


def _context_of(proc: Proc, var: str) -> tuple[tuple[str, ...], tuple[tuple[Affine, int], ...]]:
    """(enclosing loop vars, enclosing guards) of the loop named ``var``."""

    def search(stmts, loops, guards):
        for stmt in stmts:
            if isinstance(stmt, Loop):
                if stmt.var == var:
                    return loops, guards
                found = search(stmt.body, loops + (stmt.var,), guards)
                if found is not None:
                    return found
            elif isinstance(stmt, Guard):
                found = search(stmt.body, loops, guards + ((stmt.expr, stmt.bound),))
                if found is not None:
                    return found
        return None

    found = search(proc.body, (), ())
    if found is None:  # pragma: no cover - find_loop raises first
        raise ScheduleError(f"no loop '{var}' in proc '{proc.name}'")
    return found


def _guards_matching_dim(
    guards: tuple[tuple[Affine, int], ...], index: Affine
) -> set[int]:
    """Bounds of guards that cap exactly the access expression ``index``."""
    return {bound for expr, bound in guards if expr == index}


# --------------------------------------------------------------------------- #
# Loop-structure primitives.                                                   #
# --------------------------------------------------------------------------- #


@_traced
def split(proc: Proc, var: str, factor: int, outer: str | None = None,
          inner: str | None = None) -> Proc:
    """Split loop ``var`` into ``outer`` × ``inner`` (``factor`` must divide).

    ``for i in N`` becomes ``for io in N//factor: for ii in factor`` with
    ``i := io·factor + ii`` substituted throughout the body — the tiling step
    behind the paper's block/thread/register blocking hierarchy.  A split
    never reorders instances, so it needs no dependence test; the checks are
    structural.

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import split
    >>> p = split(matmul_proc(m=4, n=4, k=2), "i", 2)
    >>> print(p)                            # doctest: +NORMALIZE_WHITESPACE
    proc matmul_4x4x2(A: f32[4, 2], B: f32[2, 4], C: f32[4, 4])
      for io in 2:
        for ii in 2:
          for j in 4:
            C[ii + 2*io, j] = 0.0
            for k in 2:
              C[ii + 2*io, j] += (A[ii + 2*io, k] * B[k, j])
    """
    outer = _fresh(proc, "split", outer or f"{var}o")
    inner = _fresh(proc, "split", inner or f"{var}i")
    if outer == inner:
        _reject("split", "outer and inner split names must differ")
    if factor < 1:
        _reject("split", f"split factor must be >= 1, got {factor}")

    def rewrite(loop: Loop) -> Loop:
        if loop.extent % factor:
            _reject(
                "split",
                f"factor {factor} does not divide extent {loop.extent} of '{var}' "
                f"(use predicate_tail for imperfect splits)",
            )
        if loop.kind is not LoopKind.SEQ:
            _reject("split", f"cannot split bound/unrolled loop '{var}'")
        body = substitute_stmts(
            loop.body, {var: Affine.var(outer) * factor + Affine.var(inner)}
        )
        return Loop(
            var=outer,
            extent=loop.extent // factor,
            body=(Loop(var=inner, extent=factor, body=body),),
        )

    return _checked(_rewrite_loop(proc, var, rewrite))


@_traced
def predicate_tail(proc: Proc, var: str, factor: int, outer: str | None = None,
                   inner: str | None = None) -> Proc:
    """Split ``var`` by a possibly non-dividing ``factor``, guarding the tail.

    Like :func:`split`, but the outer extent rounds up and each body
    statement is wrapped in ``if io·factor + ii < N`` — the predication idiom
    hand-written SASS uses for boundary tiles instead of divergent branches
    (the simulator only supports warp-uniform control flow, so tails *must*
    lower to guards).  Statements are guarded individually so that downstream
    ``fission``/``reorder`` keep working on the body; guard expressions only
    reference loop variables, so the per-statement form is equivalent to one
    block guard.

    >>> from repro.tile.library import copy_proc
    >>> from repro.tile.schedule import predicate_tail
    >>> p = predicate_tail(copy_proc(n=10), "i", 4)
    >>> print(p)                            # doctest: +NORMALIZE_WHITESPACE
    proc copy_10(src: f32[10], dst: f32[10])
      for io in 3:
        for ii in 4:
          if ii + 4*io < 10:
            dst[ii + 4*io] = src[ii + 4*io]
    """
    outer = _fresh(proc, "predicate_tail", outer or f"{var}o")
    inner = _fresh(proc, "predicate_tail", inner or f"{var}i")
    if outer == inner:
        _reject("predicate_tail", "outer and inner split names must differ")
    if factor < 1:
        _reject("predicate_tail", f"split factor must be >= 1, got {factor}")

    def rewrite(loop: Loop) -> Loop:
        if loop.kind is not LoopKind.SEQ:
            _reject("predicate_tail", f"cannot split bound/unrolled loop '{var}'")
        index = Affine.var(outer) * factor + Affine.var(inner)
        body = substitute_stmts(loop.body, {var: index})
        if loop.extent % factor:
            body = tuple(
                Guard(expr=index, bound=loop.extent, body=(stmt,)) for stmt in body
            )
        return Loop(
            var=outer,
            extent=-(-loop.extent // factor),
            body=(Loop(var=inner, extent=factor, body=body),),
        )

    return _checked(_rewrite_loop(proc, var, rewrite))


@_traced
def reorder(proc: Proc, outer_var: str, inner_var: str) -> Proc:
    """Interchange two nested loops (``outer_var`` around ``inner_var``,
    possibly through a chain of tail guards).

    Legality comes from :func:`repro.tile.deps.check_reorder`: interchange
    reverses execution order exactly for instance pairs whose distance
    vector has strictly opposite signs on the two loops, so the rewrite is
    rejected when such a dependence cannot be ruled out.  Guards between the
    loops commute with the interchange (a guard cannot reference the inner
    loop's variable) and stay attached above the original inner body.

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import reorder
    >>> print(reorder(matmul_proc(m=2, n=2, k=2, init_separate=True), "i", "j"))
    ...                                     # doctest: +NORMALIZE_WHITESPACE
    proc matmul_2x2x2(A: f32[2, 2], B: f32[2, 2], C: f32[2, 2])
      for i0 in 2:
        for j0 in 2:
          C[i0, j0] = 0.0
      for j in 2:
        for i in 2:
          for k in 2:
            C[i, j] += (A[i, k] * B[k, j])
    """

    def rewrite(loop: Loop) -> Loop:
        guards, body = _unwrap_guards(loop.body)
        if len(body) != 1 or not isinstance(body[0], Loop):
            _reject(
                "reorder",
                f"'{outer_var}' and '{inner_var}' are not perfectly nested",
            )
        inner = body[0]
        if inner.var != inner_var:
            _reject(
                "reorder",
                f"loop directly inside '{outer_var}' is '{inner.var}', not '{inner_var}'",
            )
        blocking = D.check_reorder(proc, outer_var, inner_var)
        if blocking is not None:
            _reject(
                "reorder",
                f"interchanging '{outer_var}' and '{inner_var}' would reverse a "
                f"dependence",
                dependence=blocking,
            )
        inner_body = _wrap_guards(guards, inner.body)
        return replace(inner, body=(replace(loop, body=inner_body),))

    return _checked(_rewrite_loop(proc, outer_var, rewrite))


@_traced
def fission(proc: Proc, var: str, at: int = 1, names: tuple[str, str] | None = None) -> Proc:
    """Fission loop ``var`` into two loops over the same range.

    ``for v: [S_0 ... S_at-1, S_at ...]`` becomes ``for v0: [S_0 ...]; for
    v1: [S_at ...]`` — the step that separates the accumulator
    initialisation from the k-loop so :func:`reorder` can hoist the k-loop
    above the register-tile loops.  A chain of tail guards wrapping the body
    is duplicated onto both halves.

    Legality comes from :func:`repro.tile.deps.check_fission`: fission runs
    every iteration of the first group before any of the second, which is
    only sound when no dependence flows from the second group back to the
    first at a *negative* distance on ``var`` (unknown distances are treated
    as hostile).

    >>> from repro.tile import library, schedule
    >>> p = schedule.stage_registers(library.matmul_proc(m=2, n=2, k=2), "i", "C")
    >>> print(schedule.fission(p, "j"))     # doctest: +NORMALIZE_WHITESPACE
    proc matmul_2x2x2(A: f32[2, 2], B: f32[2, 2], C: f32[2, 2])
      register C_reg: f32[2]
      for i in 2:
        for j0 in 2:
          C_reg[j0] = 0.0
        for j1 in 2:
          for k in 2:
            C_reg[j1] += (A[i, k] * B[k, j1])
        unstage C[i, 0 ...] <- C_reg[1, 2]
    """
    first_name, second_name = names or (f"{var}0", f"{var}1")
    _fresh(proc, "fission", first_name)
    if first_name == second_name:
        _reject("fission", "fissioned loop names must differ")
    _fresh(proc, "fission", second_name)
    path, outer_guards = _context_of(proc, var)

    def rewrite(loop: Loop) -> tuple[Stmt, ...]:
        if loop.kind is not LoopKind.SEQ:
            _reject("fission", f"cannot fission bound/unrolled loop '{var}'")
        for stmt in walk_stmts(loop.body):
            if isinstance(stmt, (Stage, Unstage)):
                _reject(
                    "fission",
                    f"cannot fission '{var}' across the staging statement '{stmt}'",
                )
        guards, body = _unwrap_guards(loop.body)
        if not 0 < at < len(body):
            _reject(
                "fission",
                f"fission point {at} outside the {len(body)}-statement body of '{var}'",
            )
        guard_ctx = outer_guards + tuple((g.expr, g.bound) for g in guards)
        blocking = D.check_fission(
            proc, loop, body[:at], body[at:], path=path, guards=guard_ctx
        )
        if blocking is not None:
            _reject(
                "fission",
                f"iterations of '{var}' do not commute across the fission point",
                dependence=blocking,
            )
        first = substitute_stmts(
            _wrap_guards(guards, body[:at]), {var: Affine.var(first_name)}
        )
        second = substitute_stmts(
            _wrap_guards(guards, body[at:]), {var: Affine.var(second_name)}
        )
        return (
            Loop(var=first_name, extent=loop.extent, body=first, kind=loop.kind),
            Loop(var=second_name, extent=loop.extent, body=second, kind=loop.kind),
        )

    return _checked(_rewrite_loop(proc, var, rewrite))


@_traced
def unroll(proc: Proc, var: str) -> Proc:
    """Tag loop ``var`` for full unrolling at lowering time.

    Semantically a no-op (the interpreter ignores tags), but the lowering
    emits unrolled subtrees *batch-wise*, hoisting every operand load ahead
    of the batch's arithmetic — so :func:`repro.tile.deps.check_unroll`
    rejects subtrees with a memory flow dependence (a value written and then
    read through a non-register tensor inside the batch), which the hoisting
    would break.

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import unroll
    >>> unroll(matmul_proc(m=2, n=2, k=2), "k").find_loop("k").kind.value
    'unroll'
    """
    path, _ = _context_of(proc, var)

    def rewrite(loop: Loop) -> Loop:
        if loop.kind is not LoopKind.SEQ:
            _reject("unroll", f"loop '{var}' is already {loop.kind.value}")
        blocking = D.check_unroll(proc, loop, path=path)
        if blocking is not None:
            _reject(
                "unroll",
                f"the body of '{var}' stores a value that a batched load would "
                f"read stale",
                dependence=blocking,
            )
        return replace(loop, kind=LoopKind.UNROLL)

    return _checked(_rewrite_loop(proc, var, rewrite))


@_traced
def bind_block(proc: Proc, var: str, axis: str) -> Proc:
    """Bind loop ``var`` to a launch-grid axis (``"x"`` or ``"y"``).

    Each iteration becomes one block of the grid; the lowering reads the
    block index from ``CTAID.X``/``CTAID.Y`` instead of emitting a loop.

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import bind_block
    >>> bind_block(matmul_proc(m=2, n=2, k=2), "i", "y").find_loop("i").kind.value
    'block_y'
    """
    return _bind(proc, "bind_block", var, axis,
                 {"x": LoopKind.BLOCK_X, "y": LoopKind.BLOCK_Y})


@_traced
def bind_thread(proc: Proc, var: str, axis: str) -> Proc:
    """Bind loop ``var`` to a thread axis within the block.

    Iterations run as parallel threads; the lowering decomposes the flat
    ``TID.X`` with shift/mask (the x-extent must be a power of two when a
    y-axis is also bound, matching the hand generators' convention).

    >>> from repro.tile.library import matmul_proc
    >>> from repro.tile.schedule import bind_thread
    >>> bind_thread(matmul_proc(m=2, n=2, k=2), "j", "x").find_loop("j").kind.value
    'thread_x'
    """
    return _bind(proc, "bind_thread", var, axis,
                 {"x": LoopKind.THREAD_X, "y": LoopKind.THREAD_Y})


def _bind(proc: Proc, primitive: str, var: str, axis: str,
          kinds: dict[str, LoopKind]) -> Proc:
    if axis not in kinds:
        _reject(primitive, f"axis must be one of {sorted(kinds)}, got {axis!r}")
    kind = kinds[axis]
    if kind in _loop_kinds(proc).values():
        _reject(primitive, f"another loop is already bound to {kind.value}")

    def rewrite(loop: Loop) -> Loop:
        if loop.kind is not LoopKind.SEQ:
            _reject(primitive, f"loop '{var}' is already {loop.kind.value}")
        return replace(loop, kind=kind)

    return _checked(_rewrite_loop(proc, var, rewrite))


# --------------------------------------------------------------------------- #
# Staging primitives.                                                          #
# --------------------------------------------------------------------------- #


def _subtree_vars(loop: Loop) -> frozenset[str]:
    """Variables of loops strictly inside ``loop``."""
    return frozenset(
        stmt.var for stmt in walk_stmts(loop.body) if isinstance(stmt, Loop)
    )


def _window_limits(
    rank: int,
    accesses: list[D.Access],
) -> tuple[int | None, ...]:
    """Per-dimension clip limits implied by tail guards around the accesses.

    Dimension ``d`` is clipped at bound ``b`` when *every* access carries a
    guard whose expression is exactly its dimension-``d`` index and all those
    guards agree on ``b`` — the shape ``predicate_tail`` produces.  Anything
    else leaves the dimension unclipped (and the static window check decides
    whether that is still in bounds).
    """
    limits: list[int | None] = []
    for dim in range(rank):
        agreed: set[int] | None = None
        for access in accesses:
            matching = _guards_matching_dim(access.guards, access.index[dim])
            agreed = matching if agreed is None else (agreed & matching)
            if not agreed:
                break
        limits.append(min(agreed) if agreed else None)
    return tuple(limits)


@_traced
def stage_shared(proc: Proc, at: str, tensor: str, *, pad: int = 0,
                 transpose: bool = False, prefetch: bool = True,
                 buffer: str | None = None) -> Proc:
    """Stage the window of ``tensor`` read inside loop ``at`` through shared
    memory.

    Every read of ``tensor`` within the body of ``at`` must decompose, per
    dimension, into a common *base* (block indices and loops enclosing ``at``)
    plus an *offset* over thread-bound loops and loops inside ``at``.  The
    offsets' span determines the buffer shape; a :class:`~repro.tile.ir.Stage`
    copy is inserted at the top of the body and the reads are redirected to
    the buffer.  ``pad`` appends words to the innermost buffer dimension
    (§5.1 bank-conflict padding), ``transpose`` swaps the two buffer
    dimensions (so a column-walked operand is read with unit stride, like the
    A tile of the paper's SGEMM), and ``prefetch`` asks the lowering to
    software-pipeline the copy's global loads across iterations of ``at``.

    Legality is an access-analysis fact: ``tensor`` must be read-only inside
    ``at`` (a write would create a flow dependence into the staged copy).
    Reads guarded by ``predicate_tail`` guards that cap an index dimension
    turn into window clip ``limits`` on the :class:`~repro.tile.ir.Stage`, so
    boundary tiles of an imperfect problem stage only in-bounds elements.

    >>> from repro.tile import library, schedule
    >>> p = library.matmul_proc(m=4, n=4, k=4)
    >>> p = schedule.stage_shared(p, "j", "B", prefetch=False)
    >>> print(p)                            # doctest: +NORMALIZE_WHITESPACE
    proc matmul_4x4x4(A: f32[4, 4], B: f32[4, 4], C: f32[4, 4])
      shared B_shared: f32[4, 1]
      for i in 4:
        for j in 4:
          stage B_shared[4, 1] <- B[0, j ...]
          C[i, j] = 0.0
          for k in 4:
            C[i, j] += (A[i, k] * B_shared[k, 0])
    """
    at_loop = proc.find_loop(at)
    buffer_name = buffer or f"{tensor}_shared"
    if proc.is_buffer(buffer_name) or any(p.name == buffer_name for p in proc.params):
        _reject("stage_shared", f"name '{buffer_name}' is already taken")
    if pad < 0:
        _reject("stage_shared", "pad must be non-negative")

    kinds = _loop_kinds(proc)
    inside = _subtree_vars(at_loop)
    thread_vars = frozenset(v for v, k in kinds.items() if k.is_thread)
    offset_vars = inside | thread_vars

    accesses = D.collect_accesses(at_loop.body)
    writes = [a for a in accesses if a.tensor == tensor and a.is_write]
    if writes:
        _reject(
            "stage_shared",
            f"'{tensor}' is written inside '{at}' ('{writes[0].describe()}'); "
            f"only read-only operands can be staged",
        )
    read_accesses = [
        a for a in accesses if a.tensor == tensor and not a.is_write
    ]
    if not read_accesses:
        _reject("stage_shared", f"no reads of '{tensor}' inside loop '{at}'")
    # Read is a frozen value type, so the Access indices reconstruct the
    # exact redirection keys the rewrite below matches against.
    reads = [Read(tensor=tensor, index=a.index) for a in read_accesses]

    rank = len(proc.param(tensor).shape)
    extents = {var: loop.extent for var, loop in proc.loops().items()}
    bases: list[Affine] = []
    sizes: list[int] = []
    offsets_by_read: dict[Read, tuple[Affine, ...]] = {}
    split_per_read = {r: tuple(i.split_terms(offset_vars) for i in r.index) for r in reads}
    for dim in range(rank):
        dim_bases = {split_per_read[r][dim][0] for r in reads}
        if len(dim_bases) != 1:
            _reject(
                "stage_shared",
                f"reads of '{tensor}' disagree on the dimension-{dim} window base: "
                + ", ".join(str(b) for b in sorted(dim_bases, key=str)),
            )
        bases.append(next(iter(dim_bases)))
        span = 0
        for r in reads:
            offset = split_per_read[r][dim][1]
            lo, hi = offset.bounds(extents)
            if lo < 0:
                _reject(
                    "stage_shared",
                    f"offset {offset} of '{tensor}' dimension {dim} can be negative",
                )
            span = max(span, hi)
        sizes.append(span + 1)
    for r in reads:
        offsets_by_read[r] = tuple(split_per_read[r][d][1] for d in range(rank))

    limits = _window_limits(rank, read_accesses)

    axes = tuple(range(rank))
    if transpose:
        if rank != 2:
            _reject("stage_shared", "transpose staging requires a 2-D tensor")
        axes = (1, 0)
    buffer_sizes = tuple(sizes[a] for a in axes)

    new_buffer = Buffer(name=buffer_name, shape=buffer_sizes, memory="shared", pad=pad)
    stage = Stage(
        buffer=buffer_name,
        tensor=tensor,
        base=tuple(bases),
        sizes=buffer_sizes,
        axes=axes,
        prefetch=prefetch,
        limits=limits if any(limit is not None for limit in limits) else (),
    )

    def redirect(stmt: Stmt):
        if isinstance(stmt, Assign):
            def swap(r: Read) -> Read:
                if r.tensor != tensor:
                    return r
                offsets = offsets_by_read[r]
                return Read(tensor=buffer_name, index=tuple(offsets[a] for a in axes))

            return replace(stmt, value=map_expr_reads(stmt.value, swap))
        return stmt

    def rewrite(loop: Loop) -> Loop:
        return replace(loop, body=(stage,) + map_stmts(loop.body, redirect))

    rewritten = _rewrite_loop(proc, at, rewrite)
    return _checked(replace(rewritten, buffers=rewritten.buffers + (new_buffer,)))


@_traced
def double_buffer(proc: Proc, buffer: str) -> Proc:
    """Double-buffer a staged shared tile: two copies, alternating by the
    parity of the staging loop.

    The target must be a shared buffer filled by a :class:`~repro.tile.ir.Stage`
    that *heads* a sequential loop (the main-loop staging shape
    ``stage_shared`` produces).  The rewrite marks the buffer ``double`` and
    tags the stage with the loop's parity, which is all the semantics need:
    iteration ``i`` writes and reads tile ``i % 2``, bit-identically to the
    single-buffered proc.  The payoff is in the lowering — with two tiles the
    write-after-read hazard between consecutive iterations disappears, so the
    main loop needs **one** ``BAR.SYNC`` instead of the ``BAR; STS; BAR``
    pair, and the prefetched stores land in the inactive tile while the
    compute is still reading the active one.

    Legality comes from :func:`repro.tile.deps.check_double_buffer`: the
    lowering prefetches iteration ``i``'s window during iteration ``i − 1``,
    so a cross-iteration flow into the staged window whose distance is
    unknown or can be less than 2 is rejected.  Clipped stages (from
    ``predicate_tail`` schedules) double-buffer unchanged — the parity only
    relocates the tile, the clip limits still bound what is copied.

    >>> from repro.tile import library, schedule
    >>> p = library.matmul_proc(m=4, n=4, k=4)
    >>> p = schedule.split(p, "k", 2, "ko", "ki")
    >>> p = schedule.stage_shared(p, "ko", "B", prefetch=True)
    >>> p = schedule.double_buffer(p, "B_shared")
    >>> p.buffer("B_shared").double
    True
    >>> print(p)                            # doctest: +NORMALIZE_WHITESPACE
    proc matmul_4x4x4(A: f32[4, 4], B: f32[4, 4], C: f32[4, 4])
      shared B_shared: f32[2, 1] x2
      for i in 4:
        for j in 4:
          C[i, j] = 0.0
          for ko in 2:
            stage B_shared[2, 1] <- B[2*ko, j ...] parity(ko)
            for ki in 2:
              C[i, j] += (A[i, ki + 2*ko] * B_shared[ki, 0])
    """
    target = None
    for candidate in proc.buffers:
        if candidate.name == buffer:
            target = candidate
    if target is None:
        _reject("double_buffer", f"proc '{proc.name}' has no staging buffer '{buffer}'")
    if target.memory != "shared":
        _reject("double_buffer", f"'{buffer}' is a {target.memory} buffer; only "
                                 f"shared tiles can be double-buffered")
    if target.double:
        _reject("double_buffer", f"'{buffer}' is already double-buffered")
    for stmt in walk_stmts(proc.body):
        if isinstance(stmt, Assign) and stmt.tensor == buffer:
            _reject(
                "double_buffer",
                f"'{buffer}' is written by '{stmt}' outside its staging copy; "
                f"parity lowering requires the stage to be the only writer",
            )

    def find(stmts: tuple[Stmt, ...], path: tuple[str, ...]):
        """(loop, stage, enclosing path) where the stage heads a seq loop."""
        for stmt in stmts:
            if isinstance(stmt, Loop):
                if stmt.kind is LoopKind.SEQ:
                    for inner in stmt.body:
                        if not isinstance(inner, Stage):
                            break
                        if inner.buffer == buffer:
                            return stmt, inner, path
                found = find(stmt.body, path + (stmt.var,))
                if found is not None:
                    return found
            elif isinstance(stmt, Guard):
                found = find(stmt.body, path)
                if found is not None:
                    return found
        return None

    found = find(proc.body, ())
    if found is None:
        _reject(
            "double_buffer",
            f"the stage of '{buffer}' does not head a sequential loop; only "
            f"main-loop staging can alternate tiles",
        )
    loop, stage, path = found

    blocking = D.check_double_buffer(proc, loop, stage, path=path)
    if blocking is not None:
        _reject(
            "double_buffer",
            f"the staged window of '{stage.tensor}' is written inside '{loop.var}' "
            f"too close to its prefetch",
            dependence=blocking,
        )

    def rewrite(stmt: Stmt):
        if isinstance(stmt, Stage) and stmt is stage:
            return replace(stmt, parity=loop.var)
        return stmt

    rewritten = proc.with_body(map_stmts(proc.body, rewrite))
    buffers = tuple(
        replace(b, double=True) if b.name == buffer else b for b in rewritten.buffers
    )
    return _checked(replace(rewritten, buffers=buffers))


@_traced
def stage_registers(proc: Proc, at: str, tensor: str, *,
                    buffer: str | None = None) -> Proc:
    """Stage the per-thread window of ``tensor`` written inside loop ``at`` in
    registers.

    The accumulator idiom of Section 5.2: every access to ``tensor`` inside
    ``at`` (typically the innermost thread loop) is redirected to a small
    per-thread ``register`` buffer indexed only by the loops *inside* ``at``,
    and an :class:`~repro.tile.ir.Unstage` write-back is appended at the end
    of the body.  The lowering gives each element its own register, so the
    whole k-loop accumulates without touching memory.

    Legality is the flow-dependence discipline of the accumulator pattern:
    every read (or ``+=``) of an element must be covered by an earlier plain
    initialisation under no *narrower* guard, and nothing outside ``at`` may
    write the tensor (the write-back would clobber it).  Accesses guarded by
    ``predicate_tail`` guards that cap an index dimension turn into clip
    ``limits`` on the write-back, which the lowering emits as predicated
    epilogue stores — boundary tiles store only in-bounds elements.

    >>> from repro.tile import library, schedule
    >>> p = library.matmul_proc(m=2, n=2, k=2)
    >>> print(schedule.stage_registers(p, "i", "C"))
    ...                                     # doctest: +NORMALIZE_WHITESPACE
    proc matmul_2x2x2(A: f32[2, 2], B: f32[2, 2], C: f32[2, 2])
      register C_reg: f32[2]
      for i in 2:
        for j in 2:
          C_reg[j] = 0.0
          for k in 2:
            C_reg[j] += (A[i, k] * B[k, j])
        unstage C[i, 0 ...] <- C_reg[1, 2]
    """
    at_loop = proc.find_loop(at)
    buffer_name = buffer or f"{tensor}_reg"
    if proc.is_buffer(buffer_name) or any(p.name == buffer_name for p in proc.params):
        _reject("stage_registers", f"name '{buffer_name}' is already taken")

    offset_vars = _subtree_vars(at_loop)
    rank = len(proc.param(tensor).shape)
    extents = {var: loop.extent for var, loop in proc.loops().items()}

    tensor_accesses = [
        a for a in D.collect_accesses(at_loop.body) if a.tensor == tensor
    ]
    if not tensor_accesses:
        _reject("stage_registers", f"no accesses to '{tensor}' inside loop '{at}'")
    accesses: list[tuple[Affine, ...]] = [a.index for a in tensor_accesses]

    # The register buffer starts undefined, so every element read or
    # accumulated must first be defined by a plain assignment with the same
    # index expression — under guards no narrower than the use — earlier in
    # the body (the accumulator-init flow-dependence idiom).  Staging a
    # read-only operand needs stage_shared, not a write-back.
    initialised: dict[tuple[Affine, ...], frozenset] = {}

    def check_covered(access: D.Access, what: str) -> None:
        guards = initialised.get(access.index)
        if guards is None:
            _reject(
                "stage_registers",
                f"'{tensor}' is {what} at '{access.describe()}' before being "
                f"initialised inside '{at}'; register staging requires the "
                f"init-then-accumulate pattern",
            )
        if not guards <= frozenset(access.guards):
            _reject(
                "stage_registers",
                f"the initialisation of '{tensor}' is guarded more narrowly than "
                f"its use '{access.describe()}'",
            )

    for access in tensor_accesses:
        if not access.is_write:
            if not access.implicit:
                check_covered(access, "read")
        else:
            if access.implicit:  # pragma: no cover - writes are never implicit
                continue
            # Accumulating writes read their element first.
            matching = [
                a for a in tensor_accesses
                if a.implicit and a.position == access.position - 1
            ]
            if matching:
                check_covered(access, "accumulated")
            else:
                initialised.setdefault(access.index, frozenset(access.guards))
    if not initialised:
        _reject(
            "stage_registers",
            f"'{tensor}' is never written inside '{at}'; register staging targets "
            f"the output accumulator, not read-only operands",
        )
    outside_writes = sum(
        1 for stmt in walk_stmts(proc.body)
        if isinstance(stmt, (Assign, Unstage)) and stmt.tensor == tensor
    ) - sum(
        1 for stmt in walk_stmts(at_loop.body)
        if isinstance(stmt, (Assign, Unstage)) and stmt.tensor == tensor
    )
    if outside_writes:
        _reject(
            "stage_registers",
            f"'{tensor}' is also written outside '{at}'; the write-back would "
            f"clobber it",
        )

    bases: list[Affine] = []
    sizes: list[int] = []
    for dim in range(rank):
        dim_split = [index[dim].split_terms(offset_vars) for index in accesses]
        dim_bases = {base for base, _ in dim_split}
        if len(dim_bases) != 1:
            _reject(
                "stage_registers",
                f"accesses to '{tensor}' disagree on the dimension-{dim} window base: "
                + ", ".join(str(b) for b in sorted(dim_bases, key=str)),
            )
        bases.append(next(iter(dim_bases)))
        span = 0
        for _, offset in dim_split:
            lo, hi = offset.bounds(extents)
            if lo < 0:
                _reject(
                    "stage_registers",
                    f"offset {offset} of '{tensor}' dimension {dim} can be negative",
                )
            span = max(span, hi)
        sizes.append(span + 1)

    limits = _window_limits(rank, tensor_accesses)

    # Collapse dimensions the thread does not walk (window size 1) so a row
    # of C becomes a 1-D register block rather than carrying dead axes.
    kept = [d for d in range(rank) if sizes[d] > 1] or [rank - 1]
    buffer_shape = tuple(sizes[d] for d in kept)
    new_buffer = Buffer(name=buffer_name, shape=buffer_shape, memory="register")

    def offsets_of(index: tuple[Affine, ...]) -> tuple[Affine, ...]:
        return tuple(index[d].split_terms(offset_vars)[1] for d in kept)

    def redirect(stmt: Stmt):
        if isinstance(stmt, Assign):
            def swap(r: Read) -> Read:
                if r.tensor != tensor:
                    return r
                return Read(tensor=buffer_name, index=offsets_of(r.index))

            value = map_expr_reads(stmt.value, swap)
            if stmt.tensor == tensor:
                return Assign(
                    tensor=buffer_name,
                    index=offsets_of(stmt.index),
                    value=value,
                    accumulate=stmt.accumulate,
                )
            return replace(stmt, value=value)
        return stmt

    unstage = Unstage(
        tensor=tensor,
        base=tuple(bases),
        buffer=buffer_name,
        sizes=tuple(sizes),
        limits=limits if any(limit is not None for limit in limits) else (),
    )

    def rewrite(loop: Loop) -> Loop:
        return replace(loop, body=map_stmts(loop.body, redirect) + (unstage,))

    rewritten = _rewrite_loop(proc, at, rewrite)
    return _checked(replace(rewritten, buffers=rewritten.buffers + (new_buffer,)))
