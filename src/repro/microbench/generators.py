"""Micro-benchmark kernel generators.

All generators emit straight-line (unrolled) instruction streams, like the
paper's benchmarks ("each thread executes the same 8192 math instructions…
4 independent FFMA instructions unrolled 2048 times"), so they can be timed
without functional execution.  Three families are provided:

* :func:`pure_ffma_kernel` — unmixed FFMA streams with configurable operand
  register indices (Table 2: throughput vs operand register banks);
* :func:`mix_kernel` — FFMA/LDS.X mixes at a given ratio, either with the
  FFMAs independent of the loads or dependent on them (Fig 2 and Fig 4);
* :func:`ffma_register_pattern_kernel` — arbitrary repeated operand patterns,
  used by the register-bank-conflict ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.isa.assembler import Kernel
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import MemRef
from repro.isa.registers import Register, reg

#: Registers reserved as independent accumulator chains in generated kernels.
#: Each chain's (accumulator, operand A, operand B) triple sits on three
#: distinct register banks (even0 / odd0 / even1) so the generated streams are
#: free of Kepler operand-bank conflicts unless a benchmark asks for them.
_ACCUMULATORS = (reg(8), reg(16), reg(24), reg(32))
_OPERAND_A = (reg(9), reg(17), reg(25), reg(33))
_OPERAND_B = (reg(12), reg(20), reg(28), reg(4))


def _init_float_registers(builder: KernelBuilder, highest: int) -> None:
    """Seed R0..R<highest> with small distinct float values."""
    for index in range(highest + 1):
        builder.mov32i(index, 0.25 + 0.5 * index)


@dataclass(frozen=True)
class FfmaOperandPattern:
    """One FFMA operand pattern ``FFMA Rd, Ra, Rb, Rc`` by register index."""

    dest: int
    a: int
    b: int
    c: int

    def registers(self) -> tuple[int, int, int, int]:
        """The four register indices as a tuple."""
        return (self.dest, self.a, self.b, self.c)


def pure_ffma_kernel(
    pattern: FfmaOperandPattern,
    instruction_count: int = 512,
    *,
    independent_chains: int = 4,
    name: str | None = None,
) -> Kernel:
    """An unrolled stream of FFMAs using a fixed operand register pattern.

    When the pattern's destination equals its addend (``FFMA RA, RB, RC, RA``)
    the stream is built from ``independent_chains`` shifted copies of the
    pattern so the measurement is throughput-limited rather than
    latency-limited, matching the paper's "4 independent FFMA instructions
    unrolled 2048 times" methodology.  Shifting preserves each register's
    bank (indices move by 8).
    """
    if instruction_count <= 0:
        raise ModelError("instruction_count must be positive")
    builder = KernelBuilder(name=name or "pure_ffma", threads_per_block=1024)
    highest = max(pattern.registers()) + 8 * (independent_chains - 1)
    if highest > 62:
        raise ModelError(
            f"operand pattern with {independent_chains} shifted chains needs R{highest}, "
            "which exceeds the 63-register limit"
        )
    _init_float_registers(builder, highest)
    emitted = 0
    chain = 0
    while emitted < instruction_count:
        shift = 8 * (chain % independent_chains)
        builder.ffma(
            pattern.dest + shift, pattern.a + shift, pattern.b + shift, pattern.c + shift
        )
        emitted += 1
        chain += 1
    builder.exit()
    return builder.build()


def mix_kernel(
    ffma_per_lds: int,
    lds_width_bits: int = 64,
    *,
    dependent: bool = False,
    groups: int = 48,
    shared_memory_bytes: int = 8192,
    name: str | None = None,
) -> Kernel:
    """An unrolled FFMA/LDS.X mix at a fixed ratio (paper Fig 2 and Fig 4).

    Parameters
    ----------
    ffma_per_lds:
        Number of FFMA instructions per LDS.X instruction (the x-axis of
        Fig 2).  Zero produces a pure-LDS stream.
    lds_width_bits:
        Width of the shared-memory loads (32, 64 or 128).
    dependent:
        When true, the FFMAs of each group consume the registers produced by
        the group's LDS (the paper's "dependent" curve, closest to the real
        SGEMM main loop); when false all instructions are independent.
    groups:
        Number of (LDS + FFMA…) groups to unroll.
    """
    if ffma_per_lds < 0:
        raise ModelError("ffma_per_lds must be non-negative")
    if lds_width_bits not in (32, 64, 128):
        raise ModelError("LDS width must be 32, 64 or 128 bits")
    if groups <= 0:
        raise ModelError("groups must be positive")

    builder = KernelBuilder(
        name=name or f"mix_{ffma_per_lds}to1_lds{lds_width_bits}",
        shared_memory_bytes=shared_memory_bytes,
        threads_per_block=1024,
    )
    _init_float_registers(builder, 34)
    # Shared-memory address register (zero: a uniform, conflict-free address).
    address = reg(35)
    builder.mov32i(address, 0)

    load_words = lds_width_bits // 32
    # Load destinations R36/R44: their banks (even1/odd1) never collide with
    # the accumulator (even0) and operand-A (odd0) banks of the dependent FFMAs.
    load_dest_base = 36

    for group in range(groups):
        dest = reg(load_dest_base + (group % 2) * 8)
        offset = (group % 4) * 16
        builder.lds(dest, MemRef(base=address, offset=offset), width=lds_width_bits)
        for j in range(ffma_per_lds):
            accumulator = _ACCUMULATORS[j % len(_ACCUMULATORS)]
            operand_a = _OPERAND_A[j % len(_OPERAND_A)]
            if dependent:
                # Consume one of the registers the LDS just produced.
                source = Register(dest.index + (j % load_words))
                builder.ffma(accumulator, operand_a, source, accumulator)
            else:
                operand_b = _OPERAND_B[j % len(_OPERAND_B)]
                builder.ffma(accumulator, operand_a, operand_b, accumulator)
    builder.exit()
    return builder.build()


def ffma_register_pattern_kernel(
    patterns: list[FfmaOperandPattern],
    repeats: int = 128,
    name: str | None = None,
) -> Kernel:
    """Repeat an explicit list of FFMA operand patterns ``repeats`` times.

    Used by ablations that compare bank-conflicting and conflict-free operand
    assignments under otherwise identical instruction streams.
    """
    if not patterns:
        raise ModelError("at least one operand pattern is required")
    if repeats <= 0:
        raise ModelError("repeats must be positive")
    builder = KernelBuilder(name=name or "ffma_patterns", threads_per_block=1024)
    highest = max(max(p.registers()) for p in patterns)
    _init_float_registers(builder, highest)
    for _ in range(repeats):
        for pattern in patterns:
            builder.ffma(pattern.dest, pattern.a, pattern.b, pattern.c)
    builder.exit()
    return builder.build()
