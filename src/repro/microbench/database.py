"""The measured-throughput database (the model's F_T source).

Equation 7 of the paper defines the throughput factor F_T as a function of the
register blocking factor, the issue/SP/LDST throughputs and the number of
active threads, *obtained through benchmarks*.  :class:`PerfDatabase` is that
benchmark store: a keyed collection of measured instruction throughputs that
the analytic model queries, with nearest-neighbour fallback so the model can
interpolate between measured active-thread counts and mix ratios.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import ModelError


@dataclass(frozen=True, order=True)
class ThroughputKey:
    """Identifies one measured mix point.

    Attributes
    ----------
    gpu:
        GPU key (``"gtx580"``, ``"gtx680"``, …).
    lds_width_bits:
        Width of the LDS instruction in the mix (32, 64 or 128); 0 for a
        pure-FFMA measurement.
    ffma_per_lds:
        FFMA instructions per LDS instruction in the mix (the mix ratio); use
        a large value or the pure-FFMA key for unmixed streams.
    active_threads:
        Number of active threads per SM during the measurement.
    dependent:
        Whether the FFMAs depend on the LDS result (the paper's "dependent"
        configuration, which models the real SGEMM main loop).
    """

    gpu: str
    lds_width_bits: int
    ffma_per_lds: float
    active_threads: int
    dependent: bool = True


@dataclass(frozen=True)
class ThroughputRecord:
    """One measured point: overall and FFMA-only thread-instruction throughput."""

    key: ThroughputKey
    instructions_per_cycle: float
    ffma_per_cycle: float
    source: str = "simulator"

    def __post_init__(self) -> None:
        if self.instructions_per_cycle < 0 or self.ffma_per_cycle < 0:
            raise ModelError("throughput values must be non-negative")


class PerfDatabase:
    """Keyed store of measured instruction throughputs.

    Records are added by the micro-benchmark runner (or loaded from the
    shipped paper dataset) and queried by the upper-bound model.  Queries that
    do not hit an exact key fall back to the nearest measured point in
    (active_threads, ffma_per_lds) space for the same GPU/width/dependence,
    which mirrors how the paper reads values off its measured curves.
    """

    def __init__(self, name: str = "default") -> None:
        self._name = name
        self._records: dict[ThroughputKey, ThroughputRecord] = {}

    @property
    def name(self) -> str:
        """Human-readable database name (e.g. ``"simulator"`` or ``"paper"``)."""
        return self._name

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: ThroughputRecord) -> None:
        """Insert or replace one measured point."""
        self._records[record.key] = record

    def add_measurement(
        self,
        gpu: str,
        lds_width_bits: int,
        ffma_per_lds: float,
        active_threads: int,
        instructions_per_cycle: float,
        ffma_per_cycle: float,
        *,
        dependent: bool = True,
        source: str = "simulator",
    ) -> ThroughputRecord:
        """Convenience wrapper building the key and record in one call."""
        record = ThroughputRecord(
            key=ThroughputKey(
                gpu=gpu,
                lds_width_bits=lds_width_bits,
                ffma_per_lds=ffma_per_lds,
                active_threads=active_threads,
                dependent=dependent,
            ),
            instructions_per_cycle=instructions_per_cycle,
            ffma_per_cycle=ffma_per_cycle,
            source=source,
        )
        self.add(record)
        return record

    def records(self) -> list[ThroughputRecord]:
        """All records, sorted by key."""
        return [self._records[key] for key in sorted(self._records)]

    def exact(self, key: ThroughputKey) -> ThroughputRecord | None:
        """The record for ``key`` if it was measured exactly."""
        return self._records.get(key)

    def lookup(
        self,
        gpu: str,
        lds_width_bits: int,
        ffma_per_lds: float,
        active_threads: int,
        dependent: bool = True,
    ) -> ThroughputRecord:
        """Best available record for a query point.

        Exact matches win; otherwise the nearest measured point for the same
        (gpu, width, dependence) is returned, preferring records whose active
        thread count does not exceed the query (pessimistic, like reading the
        measured curve at the operating point).

        Raises
        ------
        ModelError
            If the database has no record at all for that GPU/width/dependence.
        """
        exact_key = ThroughputKey(
            gpu=gpu,
            lds_width_bits=lds_width_bits,
            ffma_per_lds=ffma_per_lds,
            active_threads=active_threads,
            dependent=dependent,
        )
        exact = self._records.get(exact_key)
        if exact is not None:
            return exact

        candidates = [
            record
            for key, record in self._records.items()
            if key.gpu == gpu and key.lds_width_bits == lds_width_bits and key.dependent == dependent
        ]
        if not candidates:
            raise ModelError(
                f"no throughput measurements for gpu={gpu}, width={lds_width_bits}, "
                f"dependent={dependent} in database '{self._name}'"
            )

        def distance(record: ThroughputRecord) -> tuple[float, float]:
            ratio_gap = abs(record.key.ffma_per_lds - ffma_per_lds)
            thread_gap = abs(record.key.active_threads - active_threads)
            # Prefer measurements at or below the queried thread count.
            penalty = 0.5 if record.key.active_threads > active_threads else 0.0
            return (ratio_gap + penalty, thread_gap)

        return min(candidates, key=distance)

    # ------------------------------------------------------------------ #
    # Persistence.                                                        #
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Serialise the database to a JSON string."""
        payload = {
            "name": self._name,
            "records": [
                {"key": asdict(record.key), "instructions_per_cycle": record.instructions_per_cycle,
                 "ffma_per_cycle": record.ffma_per_cycle, "source": record.source}
                for record in self.records()
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "PerfDatabase":
        """Load a database previously serialised with :meth:`to_json`."""
        payload = json.loads(text)
        database = cls(name=payload.get("name", "loaded"))
        for entry in payload.get("records", []):
            key = ThroughputKey(**entry["key"])
            database.add(
                ThroughputRecord(
                    key=key,
                    instructions_per_cycle=entry["instructions_per_cycle"],
                    ffma_per_cycle=entry["ffma_per_cycle"],
                    source=entry.get("source", "loaded"),
                )
            )
        return database

    def save(self, path: str | Path) -> None:
        """Write the database to ``path`` as JSON."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "PerfDatabase":
        """Read a database from a JSON file."""
        return cls.from_json(Path(path).read_text())
