"""Assembly-level micro-benchmarks and the measured-throughput database.

The paper's methodology hinges on a small set of measured numbers per GPU:
instruction throughput for the FFMA/LDS.X mixes the algorithm will execute,
as a function of the mix ratio, the dependence pattern and the number of
active threads, plus the operand-register-bank behaviour of FFMA on Kepler.

This package provides

* kernel generators for those micro-benchmarks (:mod:`repro.microbench.generators`),
* a runner that measures them on the simulator (:mod:`repro.microbench.runner`),
* curve/table front-ends that reproduce Fig 2, Fig 4 and Table 2
  (:mod:`repro.microbench.mix_curves`, :mod:`repro.microbench.instruction_table`),
* :class:`repro.microbench.database.PerfDatabase`, the store the analytic
  model reads its throughput factors from.  Two databases ship with the
  library: one populated from the simulator, one carrying the paper's
  published hardware measurements.
"""

from repro.microbench.database import PerfDatabase, ThroughputKey, ThroughputRecord
from repro.microbench.generators import (
    ffma_register_pattern_kernel,
    mix_kernel,
    pure_ffma_kernel,
)
from repro.microbench.runner import MicrobenchRunner, MixMeasurement
from repro.microbench.mix_curves import figure2_curves, figure4_curves
from repro.microbench.instruction_table import table2_rows
from repro.microbench.paper_data import paper_database

__all__ = [
    "PerfDatabase",
    "ThroughputKey",
    "ThroughputRecord",
    "ffma_register_pattern_kernel",
    "mix_kernel",
    "pure_ffma_kernel",
    "MicrobenchRunner",
    "MixMeasurement",
    "figure2_curves",
    "figure4_curves",
    "table2_rows",
    "paper_database",
]
