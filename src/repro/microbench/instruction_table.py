"""Kepler math-instruction throughput vs operand register indices (paper Table 2).

The table's point is that on GK104 the scheduler issue ceiling (~132 thread
instructions per cycle, well below the 192 SPs) and the operand register banks
dominate FFMA throughput: with all-distinct, conflict-free source registers
throughput is ~132; a 2-way bank conflict halves it (~66); a 3-way conflict
cuts it to a third (~44).  Accumulator reuse (``FFMA RA, RB, RC, RA``) costs a
few percent relative to fully distinct operands.

We reproduce the table's FFMA/FADD/FMUL/IADD rows on the simulator.  The
integer-multiply rows (IMUL/IMAD run at a quarter rate on GK104) are reported
from the machine description since the simulator models single-rate SP math
only; they are marked ``modelled`` in the output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.register_file import bank_conflict_degree
from repro.arch.specs import GpuSpec
from repro.microbench.generators import FfmaOperandPattern
from repro.microbench.runner import MicrobenchRunner

#: The operand-register variants Table 2 reports for FFMA-class instructions.
TABLE2_FFMA_VARIANTS: tuple[tuple[str, FfmaOperandPattern], ...] = (
    ("FFMA R0, R1, R4, R0", FfmaOperandPattern(dest=0, a=1, b=4, c=0)),
    ("FFMA R0, R1, R4, R5", FfmaOperandPattern(dest=0, a=1, b=4, c=5)),
    ("FFMA R0, R1, R3, R5", FfmaOperandPattern(dest=0, a=1, b=3, c=5)),
    ("FFMA R0, R1, R3, R9", FfmaOperandPattern(dest=0, a=1, b=3, c=9)),
)

#: Paper-reported throughputs for those variants (operations per shader cycle).
PAPER_TABLE2_FFMA = {
    "FFMA R0, R1, R4, R0": 129.0,
    "FFMA R0, R1, R4, R5": 132.0,
    "FFMA R0, R1, R3, R5": 66.2,
    "FFMA R0, R1, R3, R9": 44.2,
}


@dataclass(frozen=True)
class Table2Row:
    """One row of the reproduced Table 2."""

    instruction: str
    conflict_degree: int
    measured_per_cycle: float
    paper_per_cycle: float | None
    source: str = "simulator"


def table2_rows(
    gpu: GpuSpec,
    *,
    active_threads: int = 1024,
    instruction_count: int = 384,
) -> list[Table2Row]:
    """Reproduce the FFMA rows of Table 2 on the simulator.

    Parameters
    ----------
    gpu:
        Machine description (the table is about the Kepler GTX680, but the
        same sweep runs on any description).
    active_threads:
        Active threads per SM during the measurement (the paper uses
        1024-thread blocks).
    instruction_count:
        Unrolled FFMAs per thread in the benchmark kernel.
    """
    runner = MicrobenchRunner(gpu)
    rows: list[Table2Row] = []
    for label, pattern in TABLE2_FFMA_VARIANTS:
        throughput = runner.measure_ffma_pattern(
            pattern, active_threads=active_threads, instruction_count=instruction_count
        )
        degree = bank_conflict_degree([pattern.a, pattern.b, pattern.c])
        rows.append(
            Table2Row(
                instruction=label,
                conflict_degree=degree,
                measured_per_cycle=throughput,
                paper_per_cycle=PAPER_TABLE2_FFMA.get(label),
            )
        )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render Table 2 rows as an aligned text table."""
    header = f"{'instruction':32s} {'banks':>5s} {'measured':>9s} {'paper':>7s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = f"{row.paper_per_cycle:7.1f}" if row.paper_per_cycle is not None else "    n/a"
        lines.append(
            f"{row.instruction:32s} {row.conflict_degree:5d} {row.measured_per_cycle:9.1f} {paper}"
        )
    return "\n".join(lines)
