"""Mixed-throughput curves: paper Figure 2 and Figure 4.

* Figure 2: thread-instruction throughput of FFMA/LDS.X mixes as a function
  of the mix ratio (0 … 32) for each LDS width, on Fermi and Kepler.
* Figure 4: throughput of the FFMA:LDS.64 = 6:1 mix as a function of the
  number of active threads per SM, for independent and dependent streams.

Both are produced by sweeping the micro-benchmark runner over the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GpuSpec
from repro.microbench.runner import MicrobenchRunner


@dataclass(frozen=True)
class CurvePoint:
    """One (x, throughput) point of a mix curve."""

    x: float
    instructions_per_cycle: float
    ffma_per_cycle: float


def figure2_curves(
    gpu: GpuSpec,
    *,
    ratios: tuple[int, ...] = (0, 1, 2, 4, 6, 8, 12, 16, 24, 32),
    widths: tuple[int, ...] = (32, 64, 128),
    active_threads: int | None = None,
    groups: int = 32,
) -> dict[int, list[CurvePoint]]:
    """Throughput vs FFMA/LDS.X ratio for each LDS width (paper Fig 2).

    Returns ``{lds_width_bits: [CurvePoint, ...]}`` with points ordered by
    ratio.  All instructions are independent, matching the figure's setup of a
    saturated SM.
    """
    runner = MicrobenchRunner(gpu)
    curves: dict[int, list[CurvePoint]] = {}
    for width in widths:
        points: list[CurvePoint] = []
        for ratio in ratios:
            measurement = runner.measure_mix(
                ratio,
                width,
                active_threads=active_threads,
                dependent=False,
                groups=groups,
            )
            points.append(
                CurvePoint(
                    x=float(ratio),
                    instructions_per_cycle=measurement.instructions_per_cycle,
                    ffma_per_cycle=measurement.ffma_per_cycle,
                )
            )
        curves[width] = points
    return curves


def figure4_curves(
    gpu: GpuSpec,
    *,
    ffma_per_lds: int = 6,
    lds_width_bits: int = 64,
    thread_counts: tuple[int, ...] | None = None,
    groups: int = 32,
) -> dict[str, list[CurvePoint]]:
    """Throughput vs active threads for the 6:1 FFMA/LDS.64 mix (paper Fig 4).

    Returns ``{"independent": [...], "dependent": [...]}`` curves.
    """
    if thread_counts is None:
        limit = gpu.sm.max_threads
        candidates = (64, 128, 256, 384, 512, 768, 1024, 1536, 2048)
        thread_counts = tuple(t for t in candidates if t <= limit)
    runner = MicrobenchRunner(gpu)
    curves: dict[str, list[CurvePoint]] = {"independent": [], "dependent": []}
    for dependent in (False, True):
        key = "dependent" if dependent else "independent"
        for threads in thread_counts:
            measurement = runner.measure_mix(
                ffma_per_lds,
                lds_width_bits,
                active_threads=threads,
                dependent=dependent,
                groups=groups,
            )
            curves[key].append(
                CurvePoint(
                    x=float(threads),
                    instructions_per_cycle=measurement.instructions_per_cycle,
                    ffma_per_cycle=measurement.ffma_per_cycle,
                )
            )
    return curves
